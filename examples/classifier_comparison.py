"""Classifier comparison: the paper's stage-4 experiments in miniature.

Builds a labeled benchmark, then walks the Section 6.2 protocol:

- six learners (Table 5) on binary labels,
- ALM schemes 2/4/7/8 with RandomForest (RQ3/RQ5),
- feature selection with the five Table 4 rankers on a held-out fold
  (RQ6/RQ7), reporting the chosen top-10 features.

Run:  python examples/classifier_comparison.py
"""

import numpy as np

from repro.astro import GBT350DRIFT
from repro.astro.benchmark import build_benchmark
from repro.core.alm import ALM_SCHEMES
from repro.core.features import FEATURE_NAMES
from repro.ml import (
    J48,
    MLP,
    PART,
    SMO,
    JRip,
    RandomForest,
    cross_validate,
    rank_features,
    select_top_k,
)
from repro.ml.validation import paper_protocol_split


def main() -> None:
    print("=== building a GBT350Drift-like labeled benchmark ===")
    bench = build_benchmark(
        GBT350DRIFT, n_pulsars=14, target_positive=250, target_negative=2500,
        rrat_fraction=0.2, seed=3,
    )
    print(f"{bench.n_positive} positives / {bench.n_negative} negatives "
          f"({bench.n_rrat} RRAT pulses)")

    # --- Table 5: the six learners on binary labels ---------------------------
    print("\n--- six learners, binary labels (3-fold CV) ---")
    scheme = ALM_SCHEMES["2"]
    y = bench.labels(scheme)
    learners = {
        "MPN": lambda: MLP(epochs=80, seed=0),
        "SMO": lambda: SMO(max_per_machine=300, max_passes=1, seed=0),
        "JRip": lambda: JRip(seed=0),
        "J48": lambda: J48(),
        "PART": lambda: PART(),
        "RF": lambda: RandomForest(n_trees=20, seed=0),
    }
    for name, factory in learners.items():
        rep = cross_validate(factory, bench.features, y, n_folds=3,
                             positive_collapse=scheme)
        print(f"  {name:5s} {rep.summary()}")

    # --- RQ3/RQ5: ALM schemes with RF ---------------------------------------
    print("\n--- ALM schemes with RandomForest (raw + SMOTE pooled) ---")
    for scheme_name in ("2", "4", "7", "8"):
        scheme = ALM_SCHEMES[scheme_name]
        y = bench.labels(scheme)
        recalls, times = [], []
        for smote in (False, True):
            rep = cross_validate(lambda: RandomForest(n_trees=20, seed=0),
                                 bench.features, y, n_folds=3,
                                 positive_collapse=scheme, apply_smote=smote)
            recalls.append(rep.recall)
            times.append(rep.train_time_s)
        print(f"  scheme {scheme_name:2s}: recall={np.mean(recalls):.3f} "
              f"train={sum(times):.2f}s")

    # --- RQ6/RQ7: feature selection --------------------------------------------
    print("\n--- feature selection (top-10 from the held-out fold) ---")
    scheme = ALM_SCHEMES["7"]
    y = bench.labels(scheme)
    fs_fold, rest = paper_protocol_split(y, seed=0)
    for method in ("IG", "GR", "SU", "Cor", "1R"):
        merits = rank_features(method, bench.features[fs_fold], y[fs_fold])
        top = select_top_k(merits, 10)
        rep = cross_validate(lambda: RandomForest(n_trees=20, seed=0),
                             bench.features[rest], y[rest], n_folds=3,
                             positive_collapse=scheme, feature_subset=top)
        names = ", ".join(FEATURE_NAMES[i] for i in top[:4])
        print(f"  {method:3s}: recall={rep.recall:.3f} train={rep.train_time_s:.2f}s "
              f"(top: {names}, ...)")


if __name__ == "__main__":
    main()
