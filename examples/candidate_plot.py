"""Figure 1 as data: a single pulse search candidate for B1853+01.

Regenerates the three subplot series of the paper's Fig. 1 — SNR vs DM,
SNR vs time, and DM vs time — as ASCII scatter plots, and emphasizes two
identified single pulses the way the figure highlights "single pulse#1"
and "single pulse#2".  Also shows the granularity contrast: the DPG-mode
search of the 2016 paper finds ~1 candidate where the single pulse search
finds hundreds.

Run:  python examples/candidate_plot.py
"""

import numpy as np

from repro.astro import GBT350DRIFT, generate_observation
from repro.astro.population import b1853_like
from repro.core.rapid import run_rapid_dpg, run_rapid_observation


def ascii_scatter(x, y, marks=None, width=72, height=16, title=""):
    """Minimal ASCII scatter plot; ``marks`` is a boolean emphasis mask."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    grid = [[" "] * width for _ in range(height)]
    if x.size:
        x0, x1 = x.min(), x.max() or 1.0
        y0, y1 = y.min(), y.max()
        xs = ((x - x0) / max(x1 - x0, 1e-12) * (width - 1)).astype(int)
        ys = ((y - y0) / max(y1 - y0, 1e-12) * (height - 1)).astype(int)
        order = np.argsort(marks.astype(int)) if marks is not None else range(x.size)
        for i in order:
            char = "#" if marks is not None and marks[i] else "."
            grid[height - 1 - ys[i]][xs[i]] = char
    lines = [title] + ["|" + "".join(row) + "|" for row in grid]
    return "\n".join(lines)


def main() -> None:
    obs = generate_observation(GBT350DRIFT, [b1853_like()], seed=1853,
                               n_noise_clusters=50, n_rfi_bursts=2)
    result = run_rapid_observation(obs)
    n_dpg = run_rapid_dpg(obs)
    print(f"B1853+01 observation: {len(obs.spes)} single pulse events, "
          f"{len(obs.clusters)} clusters")
    print(f"single pulses identified: {result.n_pulses} "
          f"(DPG-mode search of the 2016 paper finds {n_dpg}; the paper "
          f"reports 188 vs 1)\n")

    dms = np.array([s.dm for s in obs.spes])
    snrs = np.array([s.snr for s in obs.spes])
    times = np.array([s.time_s for s in obs.spes])

    # Emphasize the two brightest identified pulses from the pulsar, as in
    # the paper's figure.
    positives = [p for p in result.pulses if p.source_name == "B1853+01"]
    top2 = sorted(positives, key=lambda p: -p.features.MaxSNR)[:2]
    marks = np.zeros(len(obs.spes), dtype=bool)
    for pulse in top2:
        window = (
            (times >= pulse.features.StartTime)
            & (times <= pulse.features.StopTime)
            & (dms >= pulse.features.SNRPeakDM - pulse.features.DMRange)
            & (dms <= pulse.features.SNRPeakDM + pulse.features.DMRange)
        )
        marks |= window
    for i, pulse in enumerate(top2, start=1):
        print(f"single pulse#{i}: SNRPeakDM={pulse.features.SNRPeakDM:.1f} "
              f"MaxSNR={pulse.features.MaxSNR:.1f} "
              f"t=[{pulse.features.StartTime:.2f}, {pulse.features.StopTime:.2f}] s")

    print()
    print(ascii_scatter(dms, snrs, marks, title="SNR vs DM  (top subplot)"))
    print()
    print(ascii_scatter(times, snrs, marks, title="SNR vs time (middle subplot)"))
    print()
    print(ascii_scatter(times, dms, marks, title="DM vs time  (bottom subplot; # = emphasized pulses)"))


if __name__ == "__main__":
    main()
