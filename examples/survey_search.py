"""Survey-scale identification: D-RAPID on a multi-observation PALFA run.

Demonstrates the distributed side of the paper:

- a simulated HDFS cluster with replication and a datanode failure,
- the Fig. 3 staged dataflow (map to KVP → partition → aggregate → left
  outer join → search) with the shuffle-free copartitioned join,
- cluster simulation: how elapsed time would scale on the paper's
  YARN testbed at 1/5/10/15/20 executors, versus the multithreaded
  single-box baseline (Fig. 4's experiment, in miniature).

Run:  python examples/survey_search.py
"""

import functools

import numpy as np

from repro.astro import PALFA, generate_observation, synthesize_population
from repro.core.drapid import DRapidDriver
from repro.core.multithreaded import MultithreadedRapid, ThreadedBoxModel
from repro.core.rapid import run_rapid_on_cluster
from repro.dfs import DataNode, DFSClient
from repro.io.spe_files import upload_observations
from repro.sparklet import ClusterConfig, SparkletContext, simulate_job
from repro.sparklet.cluster import ExecutorSpec, paper_testbed


def main() -> None:
    print("=== survey-scale D-RAPID run (PALFA-like) ===")
    population = synthesize_population(10, rrat_fraction=0.1, max_dm=600.0, seed=7)
    observations = [
        generate_observation(
            PALFA, [population[i % len(population)]], mjd=56000.0 + i, beam=i % 7,
            n_noise_clusters=30, n_rfi_bursts=1, n_pulse_mimics=6,
            seed=11 * i, obs_length_s=30.0,
        )
        for i in range(20)
    ]
    n_spes = sum(len(o.spes) for o in observations)
    n_clusters = sum(len(o.clusters) for o in observations)
    print(f"workload: {len(observations)} observations, {n_spes} SPEs, {n_clusters} clusters")

    # --- DFS with replication; lose a datanode mid-flight --------------------
    dfs = DFSClient([DataNode(f"dn{i}") for i in range(15)], replication=3,
                    block_size=64 * 1024)
    data_path, cluster_path = upload_observations(dfs, observations)
    dfs.kill_datanode("dn3")
    print(f"uploaded {len(dfs.get(data_path)) / 1024:.0f} KiB to the DFS; "
          f"dn3 killed, blocks re-replicated")

    # --- YARN grant + D-RAPID -------------------------------------------------
    rm = paper_testbed()
    grants = rm.request_executors(20, ExecutorSpec())
    print(f"YARN granted {len(grants)} executors across "
          f"{len({g.node_id for g in grants})} nodes")

    ctx = SparkletContext(app_name="survey-search", default_parallelism=8)
    driver = DRapidDriver.with_paper_partitioning(
        ctx, dfs, grids={"PALFA": observations[0].grid}, total_cores=40,
    )
    result = driver.run(data_path, cluster_path)
    positives = sum(1 for p in result.pulses if p.source_name)
    print(f"\nD-RAPID: {result.n_pulses} single pulses "
          f"({positives} from known sources), {result.n_null_joins} null joins")
    print(f"ML files written under {result.ml_output_path}: "
          f"{len(dfs.ls(result.ml_output_path))} partitions")

    # --- replay on the simulated cluster (Fig. 4 in miniature) ------------
    print("\nelapsed time on the simulated testbed (data scaled to 10.2 GB):")
    data_scale = 10.2 * 1024**3 / len(dfs.get(data_path))
    for n in (1, 5, 10, 15, 20):
        run = simulate_job(result.metrics, ClusterConfig(num_executors=n,
                                                         data_scale=data_scale))
        spill = f", spilled {run.total_spilled_bytes / 1024**3:.1f} GiB" if run.total_spilled_bytes else ""
        print(f"  {n:2d} executors: {run.elapsed_s:8.1f} s{spill}")

    # --- multithreaded baseline ------------------------------------------------
    tasks = []
    for obs in observations:
        times = np.array([s.time_s for s in obs.spes])
        dms = np.array([s.dm for s in obs.spes])
        snrs = np.array([s.snr for s in obs.spes])
        for cluster in obs.clusters:
            if cluster.size < 2:
                continue
            idx = np.array(cluster.indices)
            tasks.append(functools.partial(
                run_rapid_on_cluster, times[idx], dms[idx], snrs[idx],
                cluster.rank, obs.grid.spacing_at,
            ))
    runner = MultithreadedRapid(n_threads=1)
    runner.run(tasks)
    box = ThreadedBoxModel()
    print("\nmultithreaded RAPID on the 6-core box (same scaled workload):")
    for n, t in box.sweep([d * data_scale for d in runner.durations], [1, 5, 10, 20],
                          input_bytes=10.2 * 1024**3).items():
        print(f"  {n:2d} threads:   {t:8.1f} s")


if __name__ == "__main__":
    main()
