"""The complete chain: dynamic spectrum → SPEs → clusters → single pulses.

The paper's "raw data" is already dedispersed and event-detected; this
example starts one step earlier, at the telescope output (Section 3's
phases 1–3), and runs everything:

1. synthesize a filterbank (channels × samples) with dispersed pulses,
2. incoherently dedisperse the whole trial-DM ladder in one batch
   (:func:`repro.astro.kernels.dedisperse_batch` via ``dedisperse_all``),
3. O(n) cumulative-sum boxcar single pulse search (the PRESTO analogue)
   → SPE list,
4. customized DBSCAN clustering (grid-indexed neighbour search),
5. Algorithm 1 peak search + 22-feature extraction.

Run:  python examples/from_voltages.py
"""

import time

import numpy as np

from repro.astro.clustering import SinglePulseDBSCAN
from repro.astro.filterbank import InjectedPulse, single_pulse_search, synthesize_filterbank
from repro.core.rapid import run_rapid_on_cluster
from repro.execution import KernelConfig


def main() -> None:
    truth = [
        InjectedPulse(time_s=2.0, dm=60.0, width_ms=20.0, amplitude=3.0),
        InjectedPulse(time_s=5.5, dm=60.0, width_ms=20.0, amplitude=2.4),
    ]
    print("=== phase 1: signal collection (synthetic filterbank) ===")
    fb = synthesize_filterbank(
        duration_s=8.0, n_channels=48, f_low_mhz=300.0, f_high_mhz=400.0,
        sample_time_s=2e-3, pulses=truth, seed=7,
    )
    print(f"filterbank: {fb.n_channels} channels x {fb.n_samples} samples "
          f"({fb.f_low_mhz:.0f}-{fb.f_high_mhz:.0f} MHz)")
    for p in truth:
        print(f"  injected pulse: t={p.time_s}s DM={p.dm} width={p.width_ms}ms")

    print("\n=== phases 2-3: batch dedispersion + O(n) boxcar search ===")
    trials = np.arange(10.0, 130.0, 2.5)
    t0 = time.perf_counter()
    spes = single_pulse_search(fb, trials, snr_threshold=5.5)
    elapsed = time.perf_counter() - t0
    print(f"{len(spes)} single pulse events across {trials.size} trial DMs "
          f"in {elapsed * 1e3:.0f} ms (vectorized kernels)")
    # On fine DM grids, KernelConfig(method="tree") reuses per-subband
    # partial sums across neighbouring trial DMs (~2-3x over the exact
    # direct kernel; see BENCH_frontend_kernels.json).  On this coarse
    # 2.5-unit ladder the tree falls back to the exact path by cost model,
    # so the demonstration just confirms selection is a one-liner.  (The
    # cumsum boxcar keeps the comparison bit-stable; the default decomposed
    # mode differs by float summation order, ~1e-15.)
    tree_spes = single_pulse_search(
        fb, trials, snr_threshold=5.5,
        kernel=KernelConfig(method="tree", impl="auto", boxcar="cumsum"),
    )
    assert len(tree_spes) == len(spes)
    print(f"tree kernel path: {len(tree_spes)} events "
          f"(coarse ladder -> exact fallback, same candidates)")

    print("\n=== stage 2: customized DBSCAN ===")
    times = np.array([s.time_s for s in spes])
    dms = np.array([s.dm for s in spes])
    snrs = np.array([s.snr for s in spes])
    steps = dms / 2.5
    clusterer = SinglePulseDBSCAN(eps_time_s=0.15, eps_dm_steps=4.0, min_samples=3)
    _labels, clusters = clusterer.fit(times, dms, snrs, steps)
    print(f"{len(clusters)} clusters "
          f"(sizes {sorted(c.size for c in clusters)})")

    print("\n=== stage 3: Algorithm 1 search + feature extraction ===")
    found = 0
    for cluster in sorted(clusters, key=lambda c: -c.max_snr):
        idx = np.array(cluster.indices)
        pulses = run_rapid_on_cluster(
            times[idx], dms[idx], snrs[idx], cluster_rank=cluster.rank,
            dm_spacing_of=lambda _d: 2.5,
        )
        for pulse in pulses:
            found += 1
            f = pulse.features
            print(f"  single pulse: SNRPeakDM={f.SNRPeakDM:6.1f} "
                  f"MaxSNR={f.MaxSNR:5.1f} t=[{f.StartTime:.2f},{f.StopTime:.2f}]s "
                  f"NumSPEs={int(f.NumSPEs)}")
    print(f"\n{found} single pulses identified; "
          f"{len(truth)} were injected at DM 60 — compare SNRPeakDM above.")


if __name__ == "__main__":
    main()
