"""Quickstart: identify and classify single pulses in 60 seconds.

Runs the full Fig. 2 workflow of the paper on a small synthetic survey:

1. synthesize observations of a pulsar population (stage 1: SPE files),
2. cluster the events with the customized DBSCAN (stage 2: cluster file),
3. run D-RAPID on the Sparklet engine over a simulated DFS (stage 3),
4. label pulses with an ALM scheme and train a RandomForest (stage 4).

Run:  python examples/quickstart.py
"""

from repro.api import PipelineConfig, run_pipeline
from repro.astro import synthesize_population


def main() -> None:
    print("=== D-RAPID quickstart ===")
    population = synthesize_population(n_pulsars=8, rrat_fraction=0.25, seed=42)
    print(f"population: {len(population)} sources "
          f"({sum(p.is_rrat for p in population)} RRATs)")
    for pulsar in population[:3]:
        print(f"  {pulsar.name}: P={pulsar.period_s:.2f}s DM={pulsar.dm:.0f} "
              f"SNR~{pulsar.mean_snr:.1f}")

    config = PipelineConfig(survey="GBT350Drift", scheme="7", seed=42,
                            n_observations=4, classify=True)
    result = run_pipeline(config, pulsars=population)

    print(f"\nobservations: {len(result.observations)}")
    print(f"clusters searched: {result.drapid.n_clusters}")
    print(f"single pulses identified: {result.drapid.n_pulses}")
    print(f"  positives (from known sources): {int(result.is_pulsar.sum())}")
    print(f"  negatives (noise/RFI):          {int((~result.is_pulsar).sum())}")

    scheme = result.scheme
    print(f"\nALM scheme {scheme.name} class distribution:")
    import numpy as np

    for cls, count in zip(scheme.classes, np.bincount(result.labels, minlength=scheme.n_classes)):
        print(f"  {cls:12s} {count}")

    assert result.report is not None
    print(f"\nRandomForest (3-fold CV): {result.report.summary()}")


if __name__ == "__main__":
    main()
