"""Unit tests for the memo store, candidate DB and session resolution.

The store's contract is blunt: a corrupted or truncated entry is *never*
served — it is evicted and the caller recomputes.  The tests here flip
bits, truncate files and swap payloads to prove it, then cover the
LRU/memory tier, blob addressing, the SQLite candidate archive, and the
config-resolution rules (explicit beats env; env suppressed under faults).
"""

from __future__ import annotations

import glob
import os
import pickle

import pytest

from repro.memo import (
    CandidateDB,
    MemoConfig,
    MemoSession,
    MemoStore,
    env_memo_config,
    resolve_memo,
)
from repro.sparklet import SparkletContext
from repro.sparklet.faults import FaultConfig


# -- entry tier ---------------------------------------------------------------

def test_put_get_round_trip(tmp_path):
    store = MemoStore(str(tmp_path))
    assert store.get("k" * 64) is None
    assert store.stats.misses == 1
    assert store.put("k" * 64, {"results": [1, 2, 3]})
    assert store.get("k" * 64) == {"results": [1, 2, 3]}
    assert store.stats.hits == 1
    assert store.stats.stores == 1


def test_memory_tier_returns_fresh_objects(tmp_path):
    """A hit must unpickle fresh structures: mutating a result returned by
    one get must not poison the next get."""
    store = MemoStore(str(tmp_path))
    store.put("key1", {"results": [1, 2]})
    first = store.get("key1")
    first["results"].append(99)
    assert store.get("key1") == {"results": [1, 2]}


def test_lru_eviction_falls_back_to_disk(tmp_path):
    store = MemoStore(str(tmp_path), max_memory_entries=2)
    for i in range(4):
        store.put(f"key{i}", {"v": i})
    # key0/key1 were evicted from memory; disk still serves them.
    assert store.get("key0") == {"v": 0}
    assert store.stats.disk_hits == 1
    assert store.get("key3") == {"v": 3}
    assert store.stats.memory_hits == 1


def _entry_files(store: MemoStore) -> list[str]:
    return sorted(glob.glob(os.path.join(store.path, "objects", "*", "*")))


def test_corrupted_entry_evicted_never_served(tmp_path):
    store = MemoStore(str(tmp_path))
    store.put("key1", {"v": "payload"})
    (fpath,) = _entry_files(store)
    data = bytearray(open(fpath, "rb").read())
    data[-1] ^= 0xFF  # flip a payload bit
    with open(fpath, "wb") as fh:
        fh.write(bytes(data))
    fresh = MemoStore(str(tmp_path))  # cold memory tier: must read disk
    assert fresh.get("key1") is None
    assert fresh.stats.corrupt_evicted == 1
    assert not os.path.exists(fpath)
    # Recompute-and-store works after eviction.
    assert fresh.put("key1", {"v": "recomputed"})
    assert fresh.get("key1") == {"v": "recomputed"}


def test_truncated_entry_evicted_never_served(tmp_path):
    store = MemoStore(str(tmp_path))
    store.put("key1", {"v": list(range(100))})
    (fpath,) = _entry_files(store)
    data = open(fpath, "rb").read()
    with open(fpath, "wb") as fh:
        fh.write(data[: len(data) // 2])  # torn write
    fresh = MemoStore(str(tmp_path))
    assert fresh.get("key1") is None
    assert fresh.stats.corrupt_evicted == 1
    assert not os.path.exists(fpath)


def test_checksum_catches_swapped_payload(tmp_path):
    """Even a *valid pickle* under the wrong header must not be served."""
    store = MemoStore(str(tmp_path))
    store.put("key1", {"v": 1})
    (fpath,) = _entry_files(store)
    header = open(fpath, "rb").read()[: len(b"RMEMO1\n") + 65]
    with open(fpath, "wb") as fh:
        fh.write(header + pickle.dumps({"v": "attacker"}))
    fresh = MemoStore(str(tmp_path))
    assert fresh.get("key1") is None
    assert fresh.stats.corrupt_evicted == 1


def test_unpicklable_value_is_uncacheable_not_fatal(tmp_path):
    store = MemoStore(str(tmp_path))
    assert store.put("key1", {"f": lambda: None}) is False
    assert store.stats.uncacheable == 1
    assert store.get("key1") is None


def test_no_tmp_files_left_behind(tmp_path):
    store = MemoStore(str(tmp_path))
    for i in range(8):
        store.put(f"key{i}", {"v": i})
        store.put_blob(f"blob{i}".encode())
    leftovers = [
        p for p in glob.glob(os.path.join(store.path, "**", "*"), recursive=True)
        if p.endswith(".tmp")
    ]
    assert leftovers == []


# -- blob tier ----------------------------------------------------------------

def test_blob_round_trip_and_content_addressing(tmp_path):
    store = MemoStore(str(tmp_path))
    sha = store.put_blob(b"raw SPE bytes")
    assert store.has_blob(sha)
    assert store.get_blob(sha) == b"raw SPE bytes"
    assert store.put_blob(b"raw SPE bytes") == sha  # idempotent


def test_corrupted_blob_raises_and_evicts(tmp_path):
    store = MemoStore(str(tmp_path))
    sha = store.put_blob(b"pristine input file")
    fpath = store._blob_path(sha)
    with open(fpath, "wb") as fh:
        fh.write(b"tampered")
    with pytest.raises(ValueError, match="checksum"):
        store.get_blob(sha)
    assert not store.has_blob(sha)
    assert store.stats.corrupt_evicted == 1


# -- candidate DB -------------------------------------------------------------

def test_candidate_db_insert_and_query(tmp_path):
    db = CandidateDB(str(tmp_path / "cand.sqlite"))
    run_id = db.insert_run(kind="drapid", survey="GBT350Drift", seed=3,
                           config_digest="cd", config_json="{}",
                           lineage_hash="lh", n_pulses=3, reproducible=1)
    ids = db.insert_candidates(run_id, [
        ("obsA", 1, 50.0, 12.0, 10.0, 1, "rowA"),
        ("obsA", 2, 80.0, 30.0, 20.0, 0, "rowB"),
        ("obsB", 1, 120.0, 7.5, 30.0, 1, "rowC"),
    ])
    assert len(ids) == 3
    assert db.counts() == (1, 3)
    # SNR window, ordered by SNR descending.
    rows = db.query(snr_min=10.0)
    assert [r["ml_row"] for r in rows] == ["rowB", "rowA"]
    # DM + time windows compose; observation filter narrows.
    assert [r["ml_row"] for r in db.query(dm_min=60.0, dm_max=100.0)] == ["rowB"]
    assert [r["ml_row"] for r in db.query(time_min=25.0)] == ["rowC"]
    assert [r["ml_row"] for r in db.query(observation_key="obsB")] == ["rowC"]
    assert db.get_candidate(ids[0])["observation_key"] == "obsA"
    assert db.get_run(run_id)["survey"] == "GBT350Drift"
    assert db.get_candidate(10_000) is None
    db.close()


# -- config resolution --------------------------------------------------------

def test_env_memo_config(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_MEMO", raising=False)
    assert env_memo_config() is None
    monkeypatch.setenv("REPRO_MEMO", "0")
    assert env_memo_config() is None
    monkeypatch.setenv("REPRO_MEMO", "1")
    monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "envdir"))
    cfg = env_memo_config()
    assert cfg is not None and cfg.dir == str(tmp_path / "envdir")


def test_resolve_memo_env_suppressed_under_faults(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_MEMO", "1")
    monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "envdir"))
    assert resolve_memo(None) is not None
    # Chaos suites assert exact failure counts; env memo must step aside.
    assert resolve_memo(None, fault_config=FaultConfig.chaos()) is None
    # ...but an explicit config is the caller saying "I know".
    explicit = MemoConfig(dir=str(tmp_path / "mine"))
    session = resolve_memo(explicit, fault_config=FaultConfig.chaos())
    assert session is not None and session.store.path == str(tmp_path / "mine")
    assert resolve_memo(MemoConfig(enabled=False)) is None


def test_conftest_isolates_memo_dir_per_test(tmp_path):
    """The autouse fixture must point REPRO_MEMO_DIR inside this test's
    tmp_path — no test ever shares the machine-wide default store."""
    memo_dir = os.environ.get("REPRO_MEMO_DIR")
    assert memo_dir is not None
    assert memo_dir.startswith(str(tmp_path.parent))


# -- cross-session isolation guard -------------------------------------------

def _count_sum(memo_dir: str, data: list[int], n_parts: int) -> list[int]:
    session = MemoSession(MemoConfig(dir=memo_dir, store_candidates=False))
    with SparkletContext(app_name="iso", default_parallelism=n_parts,
                         backend="serial", memo=session) as ctx:
        return ctx.parallelize(data, n_parts).map(lambda x: x * 2).collect()


def test_sessions_with_different_configs_never_cross_hit(memo_dir):
    """Back-to-back sessions sharing one store: same inputs hit, any
    changed input (data or partitioning) misses and recomputes."""
    base = _count_sum(memo_dir, [1, 2, 3, 4], 2)
    assert base == [2, 4, 6, 8]
    # Same everything → warm hit, identical output.
    assert _count_sum(memo_dir, [1, 2, 3, 4], 2) == base
    # Different data → different lineage hash → correct fresh result.
    assert _count_sum(memo_dir, [5, 6], 2) == [10, 12]
    # Different partitioning of the same data → also a distinct key.
    assert _count_sum(memo_dir, [1, 2, 3, 4], 4) == base
