"""Unit tests for ALM labeling (Tables 2–3)."""

import numpy as np
import pytest

from repro.core.alm import (
    ALM_SCHEMES,
    NON_PULSAR,
    binarize,
    brightness_bin,
    distance_bin,
    label_instances,
)
from repro.core.features import FEATURE_NAMES


def feature_row(snr_peak_dm=50.0, avg_snr=10.0, max_snr=15.0):
    row = np.zeros(len(FEATURE_NAMES))
    row[FEATURE_NAMES.index("SNRPeakDM")] = snr_peak_dm
    row[FEATURE_NAMES.index("AvgSNR")] = avg_snr
    row[FEATURE_NAMES.index("MaxSNR")] = max_snr
    return row


class TestTable2Thresholds:
    def test_distance_bins(self):
        assert distance_bin(0.0) == "Near"
        assert distance_bin(99.99) == "Near"
        assert distance_bin(100.0) == "Mid"
        assert distance_bin(174.99) == "Mid"
        assert distance_bin(175.0) == "Far"
        assert distance_bin(1000.0) == "Far"

    def test_negative_dm_rejected(self):
        with pytest.raises(ValueError):
            distance_bin(-0.1)

    def test_brightness_bins(self):
        assert brightness_bin(0.1) == "Weak"
        assert brightness_bin(8.0) == "Weak"  # (0, 8] is weak
        assert brightness_bin(8.01) == "Strong"


class TestTable3Schemes:
    def test_all_five_schemes_present(self):
        assert set(ALM_SCHEMES) == {"2", "4*", "4", "7", "8"}

    def test_class_counts_match_names(self):
        for name, scheme in ALM_SCHEMES.items():
            expected = int(name.rstrip("*"))
            assert scheme.n_classes == expected

    def test_scheme7_class_list(self):
        assert ALM_SCHEMES["7"].classes == (
            NON_PULSAR, "Near-Weak", "Near-Strong", "Mid-Weak", "Mid-Strong",
            "Far-Weak", "Far-Strong",
        )

    def test_scheme8_adds_rrat(self):
        assert ALM_SCHEMES["8"].classes[-1] == "RRAT"


class TestLabeling:
    def test_non_pulsar_always_class_zero(self):
        for scheme in ALM_SCHEMES.values():
            labels = label_instances(scheme, feature_row()[None, :], [False], [False])
            assert labels[0] == 0

    def test_binary_pulsar(self):
        labels = label_instances("2", feature_row()[None, :], [True], [False])
        assert ALM_SCHEMES["2"].classes[labels[0]] == "Pulsar"

    @pytest.mark.parametrize(
        "dm,avg,expected",
        [
            (50.0, 5.0, "Near-Weak"),
            (50.0, 12.0, "Near-Strong"),
            (120.0, 5.0, "Mid-Weak"),
            (120.0, 12.0, "Mid-Strong"),
            (300.0, 5.0, "Far-Weak"),
            (300.0, 12.0, "Far-Strong"),
        ],
    )
    def test_scheme7_cells(self, dm, avg, expected):
        labels = label_instances("7", feature_row(dm, avg)[None, :], [True], [False])
        assert ALM_SCHEMES["7"].classes[labels[0]] == expected

    def test_scheme4_ignores_brightness(self):
        weak = label_instances("4", feature_row(120.0, 5.0)[None, :], [True], [False])
        strong = label_instances("4", feature_row(120.0, 20.0)[None, :], [True], [False])
        assert weak[0] == strong[0]
        assert ALM_SCHEMES["4"].classes[weak[0]] == "Mid"

    def test_scheme8_rrat_overrides_cells(self):
        labels = label_instances("8", feature_row(120.0, 12.0)[None, :], [True], [True])
        assert ALM_SCHEMES["8"].classes[labels[0]] == "RRAT"

    def test_scheme7_has_no_rrat_class(self):
        labels = label_instances("7", feature_row(120.0, 12.0)[None, :], [True], [True])
        assert ALM_SCHEMES["7"].classes[labels[0]] == "Mid-Strong"

    def test_scheme4star_uses_visual_brightness(self):
        bright = label_instances("4*", feature_row(max_snr=30.0)[None, :], [True], [False])
        dim = label_instances("4*", feature_row(max_snr=10.0)[None, :], [True], [False])
        assert ALM_SCHEMES["4*"].classes[bright[0]] == "Very Bright Pulsar"
        assert ALM_SCHEMES["4*"].classes[dim[0]] == "Pulsar"
        rrat = label_instances("4*", feature_row()[None, :], [True], [True])
        assert ALM_SCHEMES["4*"].classes[rrat[0]] == "RRAT"

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            label_instances("2", np.zeros((2, 5)), [True, False], [False, False])
        with pytest.raises(ValueError):
            label_instances("2", feature_row()[None, :], [True, False], [False])


class TestBinarize:
    def test_collapse(self):
        scheme = ALM_SCHEMES["7"]
        labels = np.array([0, 1, 3, 6, 0])
        assert list(binarize(scheme, labels)) == [0, 1, 1, 1, 0]

    def test_binary_scheme_is_identity(self):
        labels = np.array([0, 1, 1, 0])
        assert list(binarize("2", labels)) == [0, 1, 1, 0]
