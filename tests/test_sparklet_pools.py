"""Fair-share scheduler pools: ordering laws and pool threading.

The pools component decides which pool's queued work the shared driver
serves next; its ordering must be deterministic (the serving byte-identity
law depends on it) and must match the Spark fair-scheduler shape: starved
pools (below min-share) first, then smallest weighted service share, names
breaking ties.  Pool identity must also survive the trip through the DAG
scheduler into job metrics, events and replay.
"""

from __future__ import annotations

import pytest

from repro.obs import ObsConfig
from repro.obs.replay import replay_job_metrics
from repro.obs.session import ObsSession
from repro.sparklet import SparkletContext
from repro.sparklet.pools import DEFAULT_POOL, PoolConfig, SchedulerPools, pool_salt


class TestPoolConfig:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            PoolConfig("")

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            PoolConfig("p", weight=0.0)

    def test_rejects_negative_min_share(self):
        with pytest.raises(ValueError, match="min_share"):
            PoolConfig("p", min_share=-1.0)


class TestFairOrdering:
    def test_default_pool_exists(self):
        pools = SchedulerPools()
        assert DEFAULT_POOL in pools.pool_names

    def test_single_pool_is_fifo(self):
        pools = SchedulerPools()
        for item in ["a", "b", "c"]:
            pools.submit(DEFAULT_POOL, item)
        drained = [pools.next_entry()[1] for _ in range(3)]
        assert drained == ["a", "b", "c"]

    def test_unknown_pool_auto_registers(self):
        pools = SchedulerPools()
        pools.submit("mystery", "x")
        assert "mystery" in pools.pool_names
        assert pools.config_of("mystery").weight == 1.0

    def test_least_served_pool_goes_first(self):
        pools = SchedulerPools()
        pools.register(PoolConfig("a"))
        pools.register(PoolConfig("b"))
        pools.submit("a", 1)
        pools.submit("b", 2)
        pools.charge("a", 10.0)
        assert pools.pick() == "b"

    def test_weighted_shares_divide_service(self):
        # Pool "heavy" (weight 2) with twice the service of "light"
        # (weight 1) has the same weighted ratio; the name breaks the tie.
        pools = SchedulerPools()
        pools.register(PoolConfig("heavy", weight=2.0))
        pools.register(PoolConfig("light", weight=1.0))
        pools.submit("heavy", 1)
        pools.submit("light", 2)
        pools.charge("heavy", 4.0)
        pools.charge("light", 2.0)
        assert pools.pick() == "heavy"
        # Tip the balance: light now under-served relative to weight.
        pools.charge("heavy", 1.0)
        assert pools.pick() == "light"

    def test_min_share_pool_preempts_weighted_order(self):
        pools = SchedulerPools()
        pools.register(PoolConfig("vip", weight=0.1, min_share=0.5))
        pools.register(PoolConfig("bulk", weight=10.0))
        pools.submit("vip", 1)
        pools.submit("bulk", 2)
        pools.charge("vip", 1.0)   # terrible weighted ratio (10.0)
        pools.charge("bulk", 0.1)  # great weighted ratio (0.01)
        # At t=10s vip's floor is 5s and it has only 1s: starved, goes first.
        assert pools.pick(now_s=10.0) == "vip"
        # With no elapsed time there is no floor; weighted order wins.
        assert pools.pick(now_s=0.0) == "bulk"

    def test_eligible_filter_restricts_choice(self):
        pools = SchedulerPools()
        pools.register(PoolConfig("a"))
        pools.register(PoolConfig("b"))
        pools.submit("a", 1)
        pools.submit("b", 2)
        assert pools.pick(eligible={"b"}) == "b"
        assert pools.pick(eligible=set()) is None

    def test_interleaves_equal_weight_pools(self):
        pools = SchedulerPools()
        pools.register(PoolConfig("a"))
        pools.register(PoolConfig("b"))
        for i in range(3):
            pools.submit("a", f"a{i}")
            pools.submit("b", f"b{i}")
        order = []
        while True:
            picked = pools.next_entry(pools.total_service())
            if picked is None:
                break
            name, entry = picked
            order.append(entry)
            pools.charge(name, 1.0)
        # Equal weights + equal charges → strict alternation, a first (name tie).
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_shares_sum_to_one(self):
        pools = SchedulerPools()
        pools.register(PoolConfig("a"))
        pools.register(PoolConfig("b"))
        pools.charge("a", 3.0)
        pools.charge("b", 1.0)
        shares = pools.shares()
        assert shares["a"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_stats_snapshot_shape(self):
        pools = SchedulerPools()
        pools.register(PoolConfig("t0", weight=2.0, min_share=0.25))
        pools.submit("t0", object())
        pools.charge("t0", 1.5)
        stats = pools.stats()
        assert stats["t0"]["weight"] == 2.0
        assert stats["t0"]["min_share"] == 0.25
        assert stats["t0"]["service_s"] == 1.5
        assert stats["t0"]["queued"] == 1


class TestPoolSalt:
    def test_default_pool_salts_to_zero(self):
        assert pool_salt(DEFAULT_POOL) == 0

    def test_named_pools_salt_deterministically(self):
        assert pool_salt("tenant-0") == pool_salt("tenant-0")
        assert pool_salt("tenant-0") != pool_salt("tenant-1")


class TestPoolThreading:
    """Pool identity flows context → scheduler → metrics → events → replay."""

    def test_default_pool_on_job_metrics(self, ctx):
        ctx.parallelize(range(8), 4).collect()
        assert ctx.last_job_metrics().pool == "default"

    def test_set_pool_tags_job_metrics(self, ctx):
        ctx.register_pool("tenant-a", weight=2.0)
        ctx.set_pool("tenant-a")
        ctx.parallelize(range(8), 4).collect()
        assert ctx.last_job_metrics().pool == "tenant-a"
        assert ctx.current_pool == "tenant-a"

    def test_pool_context_manager_restores_previous(self, ctx):
        with ctx.pool("tenant-b"):
            ctx.parallelize(range(4), 2).count()
            assert ctx.last_job_metrics().pool == "tenant-b"
        assert ctx.current_pool == "default"
        ctx.parallelize(range(4), 2).count()
        assert ctx.last_job_metrics().pool == "default"

    def test_pool_charged_for_job_service(self, ctx):
        with ctx.pool("tenant-c"):
            ctx.parallelize(range(100), 4).map(lambda x: x * x).collect()
        stats = ctx.pool_stats()
        assert stats["tenant-c"]["n_picked"] == 1
        assert stats["tenant-c"]["service_s"] > 0.0

    def test_metrics_to_dict_round_trips_pool(self, ctx):
        with ctx.pool("tenant-d"):
            ctx.parallelize(range(4), 2).collect()
        from repro.sparklet.metrics import JobMetrics

        job = ctx.last_job_metrics()
        assert JobMetrics.from_dict(job.to_dict()).pool == "tenant-d"

    def test_pool_on_job_start_event_and_replay(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = ObsSession.from_config(
            ObsConfig(enabled=True, event_log_path=str(path))
        )
        ctx = SparkletContext(app_name="t", default_parallelism=2, obs=obs)
        try:
            with ctx.pool("tenant-e"):
                ctx.parallelize(range(6), 2).collect()
        finally:
            ctx.close()
        obs.flush()
        starts = [e for e in obs.events() if e["type"] == "job_start"]
        assert starts and starts[-1]["pool"] == "tenant-e"
        replayed = replay_job_metrics(str(path))
        assert replayed[-1].pool == "tenant-e"

    def test_queued_jobs_from_two_pools_interleave_fairly(self, serial_ctx):
        """Pre-queued jobs drain in fair order, not submission order."""
        sched = serial_ctx.scheduler
        serial_ctx.register_pool("a")
        serial_ctx.register_pool("b")
        handles = []
        for _ in range(2):
            rdd = serial_ctx.parallelize(range(10), 2)
            handles.append(sched.submit_job(rdd, lambda it: list(it), pool="a"))
            rdd = serial_ctx.parallelize(range(10), 2)
            handles.append(sched.submit_job(rdd, lambda it: list(it), pool="b"))
        assert sched.runtime.pools.n_queued == 4
        sched.drain()
        assert sched.runtime.pools.n_queued == 0
        order = [j.pool for j in sched.job_history]
        # Both start at zero service: "a" wins the name tie-break, then "b"
        # is strictly less-served.  Later picks depend on measured task
        # durations, but fair ordering never lets one pool run its whole
        # queue while the other waits.
        assert order[:2] == ["a", "b"]
        assert sorted(order[2:]) == ["a", "b"]
        for handle in handles:
            results, job = handle.result()
            assert sorted(x for part in results for x in part) == list(range(10))

    def test_unresolved_handle_raises(self, serial_ctx):
        rdd = serial_ctx.parallelize(range(4), 2)
        handle = serial_ctx.scheduler.submit_job(rdd, lambda it: list(it))
        with pytest.raises(RuntimeError, match="not executed"):
            handle.result()
        serial_ctx.scheduler.drain()
        handle.result()  # resolved now

    def test_failing_job_charges_pool_and_raises(self, serial_ctx):
        def boom(x):
            raise ValueError("task body failure")

        with serial_ctx.pool("tenant-f"), pytest.raises(ValueError):
            serial_ctx.parallelize(range(4), 2).map(boom).collect()
        # The handle resolved with the error; the queue is drained.
        assert serial_ctx.scheduler.runtime.pools.n_queued == 0
