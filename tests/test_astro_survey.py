"""Unit tests for survey configs, observation generation and benchmarks."""

import numpy as np
import pytest

from repro.astro import GBT350DRIFT, PALFA, generate_observation
from repro.astro.benchmark import build_benchmark, cached_benchmark
from repro.astro.population import b1853_like
from repro.astro.survey import SurveyConfig


class TestSurveyConfigs:
    def test_gbt_parameters(self):
        assert GBT350DRIFT.center_freq_mhz == 350.0
        assert GBT350DRIFT.bandwidth_mhz == 100.0
        assert GBT350DRIFT.n_beams == 1

    def test_palfa_parameters(self):
        assert PALFA.center_freq_mhz == 1400.0
        assert PALFA.bandwidth_mhz == 300.0
        assert PALFA.n_beams == 7

    def test_dm_grid_uses_survey_max(self):
        grid = PALFA.dm_grid(coarsen=10.0)
        assert grid.trial_dms().max() < PALFA.max_dm


class TestGenerateObservation:
    def test_deterministic(self):
        a = generate_observation(GBT350DRIFT, [b1853_like()], seed=5, obs_length_s=30.0)
        b = generate_observation(GBT350DRIFT, [b1853_like()], seed=5, obs_length_s=30.0)
        assert a.spes == b.spes
        assert len(a.clusters) == len(b.clusters)

    def test_key_carries_survey_name(self, observation):
        assert observation.key.dataset == "GBT350Drift"

    def test_truth_partitions_clusters(self, observation):
        pos = observation.positives()
        neg = observation.negatives()
        assert len(pos) + len(neg) == len(observation.clusters)
        assert pos  # a bright pulsar must produce positive clusters

    def test_pulsar_free_observation_has_no_positives(self):
        obs = generate_observation(GBT350DRIFT, [], seed=9, n_noise_clusters=30,
                                   obs_length_s=30.0)
        assert obs.positives() == []
        assert len(obs.clusters) > 0

    def test_labels_align_with_spes(self, observation):
        assert observation.labels.shape[0] == len(observation.spes)

    def test_cluster_truth_covers_all_clusters(self, observation):
        for cluster in observation.clusters:
            assert cluster.cluster_id in observation.cluster_truth

    def test_empty_observation(self):
        cfg = SurveyConfig("tiny", 350.0, 100.0, 1e-4, 1, 10.0, 100.0)
        obs = generate_observation(cfg, [], seed=0, n_noise_clusters=0, n_rfi_bursts=0)
        assert obs.spes == [] and obs.clusters == []


class TestBenchmark:
    def test_reaches_targets(self, small_benchmark):
        assert small_benchmark.n_positive == 150
        assert small_benchmark.n_negative == 700

    def test_features_shape(self, small_benchmark):
        assert small_benchmark.features.shape == (850, 22)
        assert np.isfinite(small_benchmark.features).all()

    def test_labels_match_scheme_sizes(self, small_benchmark):
        for name, n in (("2", 2), ("4", 4), ("7", 7), ("8", 8), ("4*", 4)):
            labels = small_benchmark.labels(name)
            assert labels.max() < n

    def test_binary_labels_match_truth(self, small_benchmark):
        labels = small_benchmark.labels("2")
        assert np.array_equal(labels == 1, small_benchmark.is_pulsar)

    def test_dataset_view(self, small_benchmark):
        ds = small_benchmark.dataset("7")
        assert ds.n_classes == 7
        assert ds.n_instances == small_benchmark.n_instances
        assert ds.feature_names[0] == "NumSPEs"

    def test_subsample(self, small_benchmark):
        sub = small_benchmark.subsample(50, 100, seed=1)
        assert sub.n_positive == 50 and sub.n_negative == 100

    def test_subsample_rejects_oversized_request(self, small_benchmark):
        with pytest.raises(ValueError):
            small_benchmark.subsample(10_000, 10, seed=1)

    def test_cached_benchmark_returns_same_object(self):
        kwargs = dict(n_pulsars=4, target_positive=20, target_negative=80, seed=3)
        a = cached_benchmark(GBT350DRIFT, **kwargs)
        b = cached_benchmark(GBT350DRIFT, **kwargs)
        assert a is b

    def test_guard_against_unreachable_targets(self):
        with pytest.raises(RuntimeError, match="exhausted"):
            build_benchmark(
                GBT350DRIFT, n_pulsars=2, target_positive=10_000,
                target_negative=10, max_observations=2, seed=0,
            )
