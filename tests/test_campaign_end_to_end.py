"""The campaign gate: drift is detected, retraining recovers recall.

One seeded three-phase campaign (quiet baseline → RFI storm season → a
half-gain CHIME tenant joining) is run four ways — retrain-on twice,
retrain-off (the ablation), and retrain-on over the parallel execution
backend — and the suite checks the headline claims:

- no drift declaration during the quiet baseline phase;
- drift is declared within ``LATENCY`` global batches of each regime
  change (the storm onset and the newcomer's arrival);
- drift-triggered retraining + hot-swap restores the newcomer's
  injected-pulse recall to within 5 points of the anchor's baseline
  recall, while the no-retrain ablation stays degraded;
- the canonical report is byte-identical across repeated runs and across
  serial/parallel backends (``CampaignResult.checksum``).
"""

import dataclasses
import json

import pytest

from repro.api import run_campaign
from repro.campaign import CampaignConfig, RetrainConfig
from repro.execution import ExecutionConfig

SEED = 0
#: Global-batch budget for declaring drift after a regime change.
LATENCY = 12
#: Recovered recall must be within this of the quiet-baseline recall.
MARGIN = 0.05


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(CampaignConfig(scenario="three-phase", seed=SEED))


@pytest.fixture(scope="module")
def ablation():
    cfg = CampaignConfig(
        scenario="three-phase", seed=SEED,
        retrain=dataclasses.replace(RetrainConfig(), enabled=False),
    )
    return run_campaign(cfg)


def _phase_start(report, p):
    return report["phases"][p]["started_at_global_batch"]


def test_campaign_runs_all_phases_and_tenants(campaign):
    r = campaign.report
    assert r["n_tenants"] == 2
    assert [p["name"] for p in r["phases"]] == [
        "baseline", "storm-season", "expansion"]
    assert _phase_start(r, 0) == 0
    assert 0 < _phase_start(r, 1) < _phase_start(r, 2) < r["n_batches"]
    # chime only appears once it joins.
    assert set(r["phases"][0]["tenants"]) == {"gbt"}
    assert set(r["phases"][2]["tenants"]) == {"chime", "gbt"}
    # Every phase scored a meaningful pulse sample.
    for phase in r["phases"]:
        for m in phase["tenants"].values():
            assert m["n_pulses"] > 10 and m["n_true"] > 5


def test_no_drift_declared_in_the_quiet_baseline(campaign):
    assert all(d["phase"] >= 1 for d in campaign.drift_timeline)


@pytest.mark.parametrize("phase", [1, 2])
def test_drift_detected_promptly_after_each_regime_change(campaign, phase):
    start = _phase_start(campaign.report, phase)
    latencies = [d["global_batch"] - start
                 for d in campaign.drift_timeline if d["phase"] == phase]
    assert latencies, f"no drift declared in phase {phase}"
    assert min(latencies) <= LATENCY, (
        f"phase {phase} drift declared {min(latencies)} batches after onset"
    )


def test_retraining_recovers_newcomer_recall(campaign):
    baseline = campaign.phase_metrics("gbt", 0)["recall"]
    assert baseline is not None and baseline >= 0.8
    chime = campaign.phase_metrics("chime", 2)
    # After the hot-swap the newcomer's recall is within MARGIN of the
    # quiet-baseline recall (the final model serves it well).
    assert chime["final_model_version"] > 1, "no retrained model served chime"
    assert chime["recall_final_model"] >= baseline - MARGIN
    assert campaign.report["n_retrains"] >= 1
    assert campaign.report["n_swaps"] >= 1


def test_ablation_without_retraining_stays_degraded(campaign, ablation):
    r = ablation.report
    assert r["retrain_enabled"] is False
    assert r["n_retrains"] == 0 and r["n_swaps"] == 0
    # Drift is still *detected* (monitors run regardless)...
    assert r["n_drift_detections"] >= 1
    # ...but the stale model keeps serving: the newcomer stays well below
    # the recovered recall and below the baseline-minus-margin bar.
    baseline = campaign.phase_metrics("gbt", 0)["recall"]
    stale = ablation.phase_metrics("chime", 2)
    recovered = campaign.phase_metrics("chime", 2)["recall_final_model"]
    assert stale["final_model_version"] == 1
    assert stale["recall_final_model"] < baseline - MARGIN
    assert stale["recall_final_model"] < recovered - 0.2


def test_retrain_events_are_causally_ordered(campaign):
    r = campaign.report
    drift_batches = [d["global_batch"] for d in r["drift_timeline"]]
    assert drift_batches == sorted(drift_batches)
    versions = [s["version"] for s in r["swaps"]]
    assert versions == sorted(versions)
    for retrain in r["retrains"]:
        # Every retrain is a response to a drift declaration at that batch.
        assert retrain["global_batch"] in drift_batches
        assert retrain["n_samples"] >= 1
        assert 0 < retrain["n_positive"] < retrain["n_samples"]
    for swap in r["swaps"]:
        assert swap["version"] == swap["old_version"] + 1


def test_report_is_deterministic_across_runs(campaign):
    again = run_campaign(CampaignConfig(scenario="three-phase", seed=SEED))
    assert again.checksum() == campaign.checksum()
    assert again.to_json() == campaign.to_json()


def test_report_is_identical_across_execution_backends(campaign):
    parallel = run_campaign(CampaignConfig(
        scenario="three-phase", seed=SEED,
        execution=ExecutionConfig(backend="parallel", num_workers=2),
    ))
    assert parallel.checksum() == campaign.checksum()


def test_cli_campaign_matches_the_api(campaign, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    assert main(["campaign", "--seed", str(SEED),
                 "--report-out", str(out)]) == 0
    text = capsys.readouterr().out
    assert campaign.checksum() in text
    assert json.loads(out.read_text()) == campaign.report
