"""The streaming engine's contract: streamed ≡ offline, byte for byte.

Every test here runs the same workload twice — once through
``run_pipeline`` (offline, all data at rest) and once through
``run_streaming`` (micro-batches, watermarks, backpressure, crashes) —
and asserts the canonical ML output text is *identical*.  Batching,
rate limits, and recovery must be invisible in the result.
"""

import numpy as np
import pytest

from repro.api import PipelineConfig, StreamingConfig, run_pipeline, run_streaming
from repro.ml import RandomForest
from repro.ml.persistence import save_model
from repro.streaming import LinearCostModel, canonical_ml_text


@pytest.fixture(scope="module")
def base_pipeline():
    return PipelineConfig(n_pulsars=3, n_observations=2, seed=7)


@pytest.fixture(scope="module")
def offline_text(base_pipeline):
    result = run_pipeline(base_pipeline)
    return canonical_ml_text(result.drapid.pulse_batch)


class TestByteIdentity:
    def test_streamed_equals_offline(self, base_pipeline, offline_text):
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, batch_interval_s=0.5, arrival_rate=2000.0,
        ))
        assert result.n_batches > 1
        assert result.canonical_ml_text() == offline_text

    def test_slow_arrival_many_batches(self, base_pipeline, offline_text):
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, batch_interval_s=0.25, arrival_rate=300.0,
            checkpoint_interval=4,
        ))
        assert result.n_batches > 20  # genuinely fine-grained batching
        assert result.canonical_ml_text() == offline_text
        assert result.checkpoints_written > 0

    def test_cluster_spanning_three_plus_batches(self):
        """A pulse whose cluster straddles >= 3 micro-batch boundaries must
        still come out byte-identical (the cross-batch state is doing real
        work, not just pass-through)."""
        pipeline = PipelineConfig(n_pulsars=3, n_observations=1, seed=11)
        offline = canonical_ml_text(run_pipeline(pipeline).drapid.pulse_batch)
        result = run_streaming(StreamingConfig(
            pipeline=pipeline, batch_interval_s=0.25, arrival_rate=120.0,
            checkpoint_interval=6,
        ))
        assert result.max_batches_spanned >= 3
        assert result.canonical_ml_text() == offline


class TestCrashRecovery:
    def test_recovery_from_checkpoint_is_byte_identical(
        self, base_pipeline, offline_text
    ):
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, batch_interval_s=0.25, arrival_rate=300.0,
            checkpoint_interval=4, crash_at_batch=7,
        ))
        assert result.n_recoveries == 1
        assert result.canonical_ml_text() == offline_text

    def test_crash_before_first_checkpoint_cold_restarts(
        self, base_pipeline, offline_text
    ):
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, batch_interval_s=0.25, arrival_rate=300.0,
            checkpoint_interval=50, crash_at_batch=3,
        ))
        assert result.n_recoveries == 1
        assert result.canonical_ml_text() == offline_text

    def test_recovered_run_matches_uncrashed_stats_tail(self, base_pipeline):
        """Batches after the recovery point replay deterministically."""
        cfg = dict(pipeline=base_pipeline, batch_interval_s=0.25,
                   arrival_rate=300.0, checkpoint_interval=4)
        clean = run_streaming(StreamingConfig(**cfg))
        crashed = run_streaming(StreamingConfig(**cfg, crash_at_batch=7))
        assert [s.n_rows for s in crashed.batches] == [s.n_rows for s in clean.batches]


class TestBackpressure:
    OVERLOAD = dict(
        batch_interval_s=0.5, arrival_rate=400.0,
        cost_model=LinearCostModel(rows_per_s=200.0, fixed_s=0.01),
    )

    def test_queue_bounded_with_backpressure(self, base_pipeline, offline_text):
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, backpressure=True, **self.OVERLOAD,
        ))
        assert result.max_queue_depth <= 3
        assert result.canonical_ml_text() == offline_text

    def test_queue_grows_without_backpressure(self, base_pipeline, offline_text):
        with_bp = run_streaming(StreamingConfig(
            pipeline=base_pipeline, backpressure=True, **self.OVERLOAD,
        ))
        without = run_streaming(StreamingConfig(
            pipeline=base_pipeline, backpressure=False, **self.OVERLOAD,
        ))
        assert without.max_queue_depth > with_bp.max_queue_depth
        # rate limiting reorders nothing — output still identical
        assert without.canonical_ml_text() == offline_text

    def test_pid_converges_toward_capacity(self, base_pipeline):
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, backpressure=True, **self.OVERLOAD,
        ))
        final_rates = [s.rate_limit for s in result.batches[-3:]]
        # capacity is 200 rows/s; the limiter should have throttled the
        # 400 rows/s source down near it
        assert all(r < 250.0 for r in final_rates)


class TestInStreamServing:
    def test_scores_finalized_pulses_with_persisted_model(
        self, base_pipeline, tmp_path
    ):
        offline = run_pipeline(base_pipeline)
        model = RandomForest(n_trees=5, seed=0).fit(
            offline.features, offline.is_pulsar.astype(np.int64)
        )
        path = tmp_path / "serving.pkl"
        save_model(model, path)
        result = run_streaming(StreamingConfig(
            pipeline=base_pipeline, batch_interval_s=0.5, arrival_rate=2000.0,
            model_path=str(path),
        ))
        assert result.predicted is not None
        assert result.predicted.shape == (result.n_pulses,)
        # in-stream scores match scoring the offline batch with the same model
        np.testing.assert_array_equal(
            result.predicted, model.predict(result.pulse_batch.features)
        )
        assert sum(s.n_scored for s in result.batches) == result.n_pulses
