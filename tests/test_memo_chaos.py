"""Memoization × fault injection: caching must never launder chaos.

Two directions of the same law:

- A *clean* memoized run populates the store; a later run under fault
  injection that hits the cache returns results byte-identical to a clean
  uncached run (the faults simply never fire — nothing executed).
- A *faulted* run computes correct results through lineage recovery but
  must **not** store entries (its metrics carry failure counts that would
  replay into clean runs); the next clean run recomputes and stores.

Plus the corruption law end-to-end through the scheduler: a corrupted or
truncated entry is evicted and transparently recomputed, never served.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.memo import MemoConfig, MemoSession
from repro.sparklet import SparkletContext
from repro.sparklet.faults import (
    EXECUTOR_LOSS,
    FETCH_FAILURE,
    TASK_CRASH,
    FailureRule,
    FaultConfig,
)

RULE_MIXES = [
    FaultConfig(seed=7, rules=(FailureRule(TASK_CRASH, 0.3, max_fires=4),)),
    FaultConfig(seed=11, rules=(FailureRule(EXECUTOR_LOSS, 0.2, max_fires=2),)),
    FaultConfig(seed=13, rules=(FailureRule(FETCH_FAILURE, 0.25, max_fires=3),)),
    FaultConfig.chaos(seed=5, rate=0.2, max_fires=3),
]


def _job(ctx):
    acc = ctx.accumulator(0)

    def tag(x):
        acc.add(1)
        return (x % 5, x * 3)

    out = (ctx.parallelize(list(range(50)), 4)
           .map(tag)
           .reduce_by_key(lambda a, b: a + b, num_partitions=3)
           .collect())
    return sorted(out), acc.value


def _run(memo_session=None, fault_config=None):
    with SparkletContext(app_name="chaos", default_parallelism=2,
                         backend="serial", memo=memo_session,
                         fault_config=fault_config) as ctx:
        result = _job(ctx)
        failures = sum(
            s.n_task_failures + s.n_executor_lost + s.n_fetch_failures
            for j in ctx.scheduler.job_history for s in j.stages
        )
    return result, failures


@pytest.mark.parametrize("fault_config", RULE_MIXES)
def test_cache_hit_under_faults_matches_clean_uncached_run(fault_config, memo_dir):
    clean_uncached, _ = _run()
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)
    # Populate from a clean memoized run.
    cold, _ = _run(MemoSession(cfg))
    assert cold == clean_uncached
    # Faulted run with an explicit memo config: the job-key hit short-
    # circuits execution entirely, so no fault ever fires and the output
    # is byte-identical to the clean uncached run.
    session = MemoSession(cfg)
    faulted, failures = _run(session, fault_config)
    assert faulted == clean_uncached
    assert failures == 0
    assert session.store.stats.hits >= 1


@pytest.mark.parametrize("fault_config", RULE_MIXES)
def test_faulted_runs_never_poison_clean_runs(fault_config, memo_dir):
    """Fault-first direction: whatever a faulted run stored (only stages
    that themselves ran clean are eligible), replaying it into later clean
    runs must yield correct results and *zero* failure metrics."""
    clean_uncached, _ = _run()
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)
    # Fault-first: lineage recovery keeps the output correct.
    faulted, _ = _run(MemoSession(cfg), fault_config)
    assert faulted == clean_uncached
    # Clean runs after it: correct results, and any replayed entries carry
    # no failure counts — a faulted *stage* or *job* is never stored.
    cold, cold_failures = _run(MemoSession(cfg))
    warm_session = MemoSession(cfg)
    warm, warm_failures = _run(warm_session)
    assert cold == warm == clean_uncached
    assert cold_failures == 0 and warm_failures == 0
    assert warm_session.store.stats.hits >= 1


def test_at_least_one_rule_mix_actually_fires():
    """Guard the guards: the mixes above must inject real failures in the
    fault-first scenario, or the never-store assertions test nothing."""
    fired = 0
    for fc in RULE_MIXES:
        _, failures = _run(None, fc)
        fired += failures
    assert fired > 0


def _entry_files(memo_dir: str) -> list[str]:
    return sorted(glob.glob(os.path.join(memo_dir, "objects", "*", "*")))


def test_corrupted_entries_recomputed_through_scheduler(memo_dir):
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)
    clean, _ = _run()
    cold, _ = _run(MemoSession(cfg))
    files = _entry_files(memo_dir)
    assert files
    for fpath in files:  # flip one payload bit in every stored entry
        data = bytearray(open(fpath, "rb").read())
        data[-1] ^= 0x01
        with open(fpath, "wb") as fh:
            fh.write(bytes(data))
    session = MemoSession(cfg)
    warm, _ = _run(session)
    assert warm == clean == cold
    assert session.store.stats.hits == 0
    assert session.store.stats.corrupt_evicted == len(files)
    # The recomputation re-stored valid entries; the next run hits again.
    session2 = MemoSession(cfg)
    again, _ = _run(session2)
    assert again == clean
    assert session2.store.stats.hits >= 1
    assert session2.store.stats.corrupt_evicted == 0


def test_truncated_entries_recomputed_through_scheduler(memo_dir):
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)
    clean, _ = _run()
    _run(MemoSession(cfg))
    files = _entry_files(memo_dir)
    assert files
    for fpath in files:
        data = open(fpath, "rb").read()
        with open(fpath, "wb") as fh:
            fh.write(data[: max(1, len(data) // 3)])
    session = MemoSession(cfg)
    warm, _ = _run(session)
    assert warm == clean
    assert session.store.stats.corrupt_evicted == len(files)
