"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_generate(self, capsys):
        assert main(["generate", "--pulsars", "3", "--observations", "1",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "single pulse events:" in out
        assert "clusters:" in out

    def test_identify(self, capsys):
        assert main(["identify", "--pulsars", "3", "--observations", "1",
                     "--scheme", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "single pulses identified:" in out
        assert "Non-pulsar" in out

    def test_classify(self, capsys):
        assert main([
            "classify", "--learner", "J48", "--scheme", "2",
            "--positives", "40", "--negatives", "200", "--folds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Recall=" in out

    def test_classify_with_feature_selection(self, capsys):
        assert main([
            "classify", "--learner", "J48", "--scheme", "4",
            "--positives", "40", "--negatives", "200", "--folds", "2",
            "--feature-selection", "IG", "--smote",
        ]) == 0
        out = capsys.readouterr().out
        assert "feature selection (IG)" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--observations", "3",
                     "--executors", "1", "4", "--data-gb", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "executors:" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
