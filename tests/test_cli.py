"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_generate(self, capsys):
        assert main(["generate", "--pulsars", "3", "--observations", "1",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "single pulse events:" in out
        assert "clusters:" in out

    def test_identify(self, capsys):
        assert main(["identify", "--pulsars", "3", "--observations", "1",
                     "--scheme", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "single pulses identified:" in out
        assert "Non-pulsar" in out

    def test_classify(self, capsys):
        assert main([
            "classify", "--learner", "J48", "--scheme", "2",
            "--positives", "40", "--negatives", "200", "--folds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Recall=" in out

    def test_classify_with_feature_selection(self, capsys):
        assert main([
            "classify", "--learner", "J48", "--scheme", "4",
            "--positives", "40", "--negatives", "200", "--folds", "2",
            "--feature-selection", "IG", "--smote",
        ]) == 0
        out = capsys.readouterr().out
        assert "feature selection (IG)" in out

    def test_stream(self, capsys):
        assert main(["stream", "--pulsars", "3", "--observations", "1",
                     "--seed", "11", "--batch-interval", "0.25",
                     "--arrival-rate", "600"]) == 0
        out = capsys.readouterr().out
        assert "batches:" in out
        assert "pulses identified:" in out
        assert "widest cluster span:" in out
        assert "max queue depth:" in out

    def test_stream_crash_recovery(self, capsys):
        assert main(["stream", "--pulsars", "3", "--observations", "1",
                     "--seed", "11", "--batch-interval", "0.25",
                     "--arrival-rate", "300", "--checkpoint-interval", "4",
                     "--crash-at", "6"]) == 0
        out = capsys.readouterr().out
        assert "recoveries: 1" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--observations", "3",
                     "--executors", "1", "4", "--data-gb", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "executors:" in out

    def test_serve(self, capsys):
        assert main(["serve", "--tenants", "2", "--pulsars", "3",
                     "--observations", "1", "--seed", "5",
                     "--weights", "2", "1", "--batch-interval", "0.25",
                     "--arrival-rate", "600"]) == 0
        out = capsys.readouterr().out
        assert "tenants: 2 (2 admitted, 0 rejected)" in out
        assert "tenant-0" in out and "tenant-1" in out
        assert "share" in out

    def test_serve_tenant_traces_without_trace_out(self, capsys, tmp_path):
        # --tenant-trace-dir alone must still write the per-tenant JSONLs:
        # the CLI brings up an in-memory shared session for the views to
        # route through.
        tdir = tmp_path / "tenants"
        assert main(["serve", "--tenants", "2", "--pulsars", "3",
                     "--observations", "1", "--seed", "5",
                     "--batch-interval", "0.25", "--arrival-rate", "600",
                     "--tenant-trace-dir", str(tdir)]) == 0
        out = capsys.readouterr().out
        assert f"per-tenant traces written under: {tdir}" in out
        for tid in ("tenant-0", "tenant-1"):
            log = tdir / f"{tid}.jsonl"
            assert log.exists() and log.stat().st_size > 0
        assert main(["trace-report", str(tdir / "tenant-0.jsonl"),
                     "--tenant", "tenant-0"]) == 0
        report = capsys.readouterr().out
        assert "tenant: tenant-0" in report
        assert "scheduling pools" in report

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliTracing:
    def test_identify_trace_out_then_report(self, capsys, tmp_path):
        log = tmp_path / "run.jsonl"
        assert main(["identify", "--pulsars", "3", "--observations", "1",
                     "--seed", "4", "--trace-out", str(log)]) == 0
        out = capsys.readouterr().out
        assert f"trace written: {log}" in out
        assert log.exists() and log.stat().st_size > 0

        assert main(["trace-report", str(log)]) == 0
        report = capsys.readouterr().out
        assert "stage timeline" in report
        assert "tasks" in report

    def test_trace_report_json_replays_metrics(self, capsys, tmp_path):
        import json

        log = tmp_path / "run.jsonl"
        assert main(["identify", "--pulsars", "3", "--observations", "1",
                     "--seed", "4", "--trace-out", str(log)]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(log), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["summary"]["n_jobs"] > 0
        assert parsed["stages"]

    def test_simulate_trace_out(self, capsys, tmp_path):
        log = tmp_path / "sim.jsonl"
        assert main(["simulate", "--observations", "2", "--executors", "1", "2",
                     "--data-gb", "0.5", "--trace-out", str(log)]) == 0
        out = capsys.readouterr().out
        assert "trace written:" in out
        from repro.obs import read_events

        kinds = {e["type"] for e in read_events(log)}
        assert "dfs_put" in kinds
        assert "sim_stage" in kinds

    def test_stream_trace_out(self, capsys, tmp_path):
        log = tmp_path / "stream.jsonl"
        assert main(["stream", "--pulsars", "3", "--observations", "1",
                     "--seed", "11", "--batch-interval", "0.25",
                     "--arrival-rate", "600", "--trace-out", str(log)]) == 0
        out = capsys.readouterr().out
        assert "trace written:" in out
        from repro.obs import read_events

        kinds = {e["type"] for e in read_events(log)}
        assert "batch_submitted" in kinds
        assert "watermark_advanced" in kinds


class TestConsoleScript:
    """Satellite: the packaged ``repro`` entry point must resolve."""

    def test_entry_point_declared(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        meta = tomllib.loads(pyproject.read_text())
        assert meta["project"]["scripts"]["repro"] == "repro.cli:main"

    def test_entry_point_target_is_callable(self):
        import importlib

        module_name, _, attr = "repro.cli:main".partition(":")
        target = getattr(importlib.import_module(module_name), attr)
        assert callable(target)
        assert target is main
