"""Unit tests for model/benchmark persistence."""

import numpy as np
import pytest

from repro.ml import J48, RandomForest
from repro.ml.persistence import (
    FORMAT_VERSION,
    load_benchmark,
    load_model,
    save_benchmark,
    save_model,
)


class TestModelPersistence:
    def test_roundtrip_preserves_predictions(self, toy_classification, tmp_path):
        X, y = toy_classification
        model = RandomForest(n_trees=7, seed=0).fit(X, y)
        save_model(model, tmp_path / "rf.pkl")
        loaded = load_model(tmp_path / "rf.pkl")
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_roundtrip_tree(self, toy_classification, tmp_path):
        X, y = toy_classification
        model = J48().fit(X, y)
        save_model(model, tmp_path / "tree.pkl")
        loaded = load_model(tmp_path / "tree.pkl")
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_creates_parent_directories(self, toy_classification, tmp_path):
        X, y = toy_classification
        save_model(J48().fit(X, y), tmp_path / "deep" / "nested" / "m.pkl")
        assert (tmp_path / "deep" / "nested" / "m.pkl").exists()

    def test_rejects_non_model_file(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="not a saved model"):
            load_model(path)

    def test_rejects_wrong_version(self, toy_classification, tmp_path):
        import pickle

        X, y = toy_classification
        payload = {"format_version": FORMAT_VERSION + 1, "class_name": "J48",
                   "model": J48().fit(X, y)}
        path = tmp_path / "future.pkl"
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_model(path)


class _EvilSystem:
    """Pickles to ``os.system("...")`` — classic unpickling RCE payload."""

    def __reduce__(self):
        import os

        return (os.system, ("echo pwned > /dev/null",))


class _EvilEval:
    """Pickles to ``eval("...")`` — RCE through an allowed-looking module."""

    def __reduce__(self):
        return (eval, ("1+1",))


class TestHostilePayloads:
    """load_model must refuse payloads that resolve non-allowlisted classes."""

    def test_os_system_payload_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "evil.pkl"
        path.write_bytes(pickle.dumps(
            {"format_version": FORMAT_VERSION, "class_name": "X",
             "model": _EvilSystem()}
        ))
        with pytest.raises(pickle.UnpicklingError, match="refusing to unpickle"):
            load_model(path)

    def test_eval_payload_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "evil.pkl"
        path.write_bytes(pickle.dumps(
            {"format_version": FORMAT_VERSION, "class_name": "X",
             "model": _EvilEval()}
        ))
        with pytest.raises(pickle.UnpicklingError, match="builtins.eval"):
            load_model(path)

    def test_error_names_the_rejected_class(self, tmp_path):
        import pickle

        path = tmp_path / "evil.pkl"
        path.write_bytes(pickle.dumps(_EvilSystem()))
        with pytest.raises(pickle.UnpicklingError) as excinfo:
            load_model(path)
        assert "system" in str(excinfo.value)

    def test_subprocess_payload_rejected(self, tmp_path):
        import pickle
        import subprocess

        class EvilCall:
            def __reduce__(self):
                return (subprocess.call, (["true"],))

        path = tmp_path / "evil.pkl"
        path.write_bytes(pickle.dumps(EvilCall()))
        with pytest.raises(pickle.UnpicklingError, match="subprocess"):
            load_model(path)

    def test_benign_numpy_graph_still_loads(self, tmp_path):
        """The allowlist must not reject what save_model legitimately writes."""
        save_model({"w": np.arange(5.0), "meta": (1, "x")}, tmp_path / "m.pkl")
        loaded = load_model(tmp_path / "m.pkl")
        np.testing.assert_array_equal(loaded["w"], np.arange(5.0))


class TestBenchmarkPersistence:
    def test_roundtrip(self, small_benchmark, tmp_path):
        save_benchmark(small_benchmark, tmp_path / "bench")
        loaded = load_benchmark(tmp_path / "bench")
        assert loaded.survey_name == small_benchmark.survey_name
        np.testing.assert_allclose(loaded.features, small_benchmark.features)
        np.testing.assert_array_equal(loaded.is_pulsar, small_benchmark.is_pulsar)
        assert loaded.source_names == small_benchmark.source_names

    def test_labels_identical_after_roundtrip(self, small_benchmark, tmp_path):
        save_benchmark(small_benchmark, tmp_path / "bench")
        loaded = load_benchmark(tmp_path / "bench")
        for scheme in ("2", "4*", "7", "8"):
            np.testing.assert_array_equal(
                loaded.labels(scheme), small_benchmark.labels(scheme)
            )

    def test_version_gate(self, small_benchmark, tmp_path):
        import json

        save_benchmark(small_benchmark, tmp_path / "bench")
        meta_path = (tmp_path / "bench").with_suffix(".json")
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format version"):
            load_benchmark(tmp_path / "bench")
