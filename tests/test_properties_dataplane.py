"""Property-based tests: columnar batch ops vs record-oriented references.

Each property drives a batch operation (slice, take, concat, sort-by-DM,
serialize round-trip) and checks it agrees with the equivalent computation
done record at a time — the ISSUE's satellite-3 contract.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.astro.spe import SPE
from repro.core.features import PulseFeatures
from repro.core.rapid import SinglePulse
from repro.dataplane import N_FEATURES, ClusterBatch, PulseBatch, SPEBatch
from repro.io.spe_files import ClusterRecord

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


spe_records = st.lists(
    st.builds(
        SPE,
        dm=st.floats(0.0, 2000.0, allow_nan=False),
        snr=st.floats(0.0, 100.0, allow_nan=False),
        time_s=st.floats(0.0, 600.0, allow_nan=False),
        sample=st.integers(0, 10**6),
        downfact=st.integers(1, 300),
    ),
    max_size=40,
)

cluster_records = st.lists(
    st.builds(
        ClusterRecord,
        key=st.sampled_from(["a|1|s|0", "b|2|s|1", "c|3|s|2"]),
        cluster_id=st.integers(0, 500),
        rank=st.integers(1, 6),
        n_spes=st.integers(2, 1000),
        dm_lo=st.floats(0.0, 100.0, allow_nan=False),
        dm_hi=st.floats(100.0, 2000.0, allow_nan=False),
        t_lo=st.floats(0.0, 10.0, allow_nan=False),
        t_hi=st.floats(10.0, 600.0, allow_nan=False),
        max_snr=st.floats(0.0, 100.0, allow_nan=False),
        source=st.one_of(st.none(), st.sampled_from(["J0000+00", "J1234-56"])),
        is_rrat=st.booleans(),
    ),
    max_size=30,
)

pulse_records = st.lists(
    st.builds(
        lambda key, cid, a, width, src, rrat, vec: SinglePulse(
            observation_key=key, cluster_id=cid, spe_start=a, spe_stop=a + width,
            features=PulseFeatures.from_vector(np.array(vec)),
            source_name=src, is_rrat=rrat,
        ),
        key=st.sampled_from(["a|1|s|0", "b|2|s|1"]),
        cid=st.integers(0, 99),
        a=st.integers(0, 1000),
        width=st.integers(1, 50),
        src=st.one_of(st.none(), st.just("J0000+00")),
        rrat=st.booleans(),
        vec=st.lists(finite, min_size=N_FEATURES, max_size=N_FEATURES),
    ),
    max_size=25,
)


class TestSPEBatchProperties:
    @SETTINGS
    @given(spes=spe_records)
    def test_record_round_trip(self, spes):
        batch = SPEBatch.from_records(spes)
        assert batch.to_records() == spes

    @SETTINGS
    @given(spes=spe_records, data=st.data())
    def test_slice_matches_list_slice(self, spes, data):
        batch = SPEBatch.from_records(spes)
        i = data.draw(st.integers(0, len(spes)))
        j = data.draw(st.integers(i, len(spes)))
        assert batch.slice(i, j).to_records() == spes[i:j]

    @SETTINGS
    @given(spes=spe_records, data=st.data())
    def test_take_matches_list_indexing(self, spes, data):
        batch = SPEBatch.from_records(spes)
        idx = data.draw(
            st.lists(st.integers(0, max(len(spes) - 1, 0)), max_size=30)
        ) if spes else []
        taken = batch.take(np.array(idx, dtype=np.int64))
        assert taken.to_records() == [spes[i] for i in idx]

    @SETTINGS
    @given(chunks=st.lists(spe_records, max_size=5))
    def test_concat_matches_list_concat(self, chunks):
        batches = [SPEBatch.from_records(c) for c in chunks]
        flat = [s for c in chunks for s in c]
        assert SPEBatch.concat(batches).to_records() == flat

    @SETTINGS
    @given(spes=spe_records)
    def test_sort_by_dm_matches_sorted(self, spes):
        batch = SPEBatch.from_records(spes)
        want = sorted(spes, key=lambda s: (s.dm, s.time_s))
        assert batch.sort_by_dm().to_records() == want

    @SETTINGS
    @given(spes=spe_records)
    def test_sort_by_time_matches_sorted(self, spes):
        batch = SPEBatch.from_records(spes)
        want = sorted(spes, key=lambda s: (s.time_s, s.dm))
        assert batch.sort_by_time().to_records() == want

    @SETTINGS
    @given(spes=spe_records)
    def test_csv_rows_match_per_record_serializer(self, spes):
        batch = SPEBatch.from_records(spes)
        assert batch.to_csv_rows() == [s.to_csv_row() for s in spes]

    @SETTINGS
    @given(spes=spe_records)
    def test_csv_round_trip_is_parse_stable(self, spes):
        # %.3f/%.6f quantizes, so one round trip may move values; parsing
        # the re-serialized rows must then be a fixed point.
        once = SPEBatch.from_csv_rows(SPEBatch.from_records(spes).to_csv_rows())
        twice = SPEBatch.from_csv_rows(once.to_csv_rows())
        assert once == twice


class TestClusterBatchProperties:
    @SETTINGS
    @given(recs=cluster_records)
    def test_record_round_trip(self, recs):
        batch = ClusterBatch.from_records(recs)
        assert batch.to_records() == recs

    @SETTINGS
    @given(recs=cluster_records)
    def test_lines_match_per_record_serializer(self, recs):
        batch = ClusterBatch.from_records(recs)
        assert batch.to_lines() == [r.to_line() for r in recs]

    @SETTINGS
    @given(recs=cluster_records)
    def test_split_by_key_preserves_order(self, recs):
        batch = ClusterBatch.from_records(recs)
        seen: dict[str, list[ClusterRecord]] = {}
        for r in recs:
            seen.setdefault(r.key, []).append(r)
        got = {k: b.to_records() for k, b in batch.split_by_key()}
        assert list(got) == list(seen)
        assert got == seen

    @SETTINGS
    @given(chunks=st.lists(cluster_records, max_size=4))
    def test_concat_matches_list_concat(self, chunks):
        batches = [ClusterBatch.from_records(c) for c in chunks]
        flat = [r for c in chunks for r in c]
        assert ClusterBatch.concat(batches).to_records() == flat


class TestPulseBatchProperties:
    @SETTINGS
    @given(pulses=pulse_records)
    def test_record_round_trip(self, pulses):
        batch = PulseBatch.from_records(pulses)
        assert batch.to_records() == pulses

    @SETTINGS
    @given(pulses=pulse_records)
    def test_ml_lines_match_per_record_serializer(self, pulses):
        batch = PulseBatch.from_records(pulses)
        assert batch.to_ml_lines() == [p.to_ml_row() for p in pulses]

    @SETTINGS
    @given(pulses=pulse_records)
    def test_ml_serialize_round_trip_exact(self, pulses):
        batch = PulseBatch.from_records(pulses)
        assert PulseBatch.from_ml_lines(batch.to_ml_lines()) == batch
        # And per record through the SinglePulse adapter, bit for bit.
        for p in pulses:
            assert SinglePulse.from_ml_row(p.to_ml_row()) == p

    @SETTINGS
    @given(pulses=pulse_records, data=st.data())
    def test_slice_and_take_match_list_ops(self, pulses, data):
        batch = PulseBatch.from_records(pulses)
        i = data.draw(st.integers(0, len(pulses)))
        j = data.draw(st.integers(i, len(pulses)))
        assert batch.slice(i, j).to_records() == pulses[i:j]
        idx = data.draw(
            st.lists(st.integers(0, max(len(pulses) - 1, 0)), max_size=20)
        ) if pulses else []
        assert batch.take(np.array(idx, dtype=np.int64)).to_records() == [
            pulses[i] for i in idx
        ]

    @SETTINGS
    @given(chunks=st.lists(pulse_records, max_size=4))
    def test_concat_matches_list_concat(self, chunks):
        batches = [PulseBatch.from_records(c) for c in chunks]
        flat = [p for c in chunks for p in c]
        assert PulseBatch.concat(batches).to_records() == flat
