"""Unit tests for stage construction, metrics capture and fault tolerance."""

import pytest

from repro.sparklet import HashPartitioner
from repro.sparklet.scheduler import TaskFailure


class TestStagePlanning:
    def test_narrow_only_job_is_single_stage(self, ctx):
        ctx.parallelize(range(10), 3).map(lambda x: x + 1).filter(lambda x: x > 2).collect()
        job = ctx.last_job_metrics()
        assert len(job.stages) == 1
        assert not job.stages[0].is_shuffle_map

    def test_shuffle_splits_into_two_stages(self, ctx):
        ctx.parallelize([(1, 1), (2, 2)], 2).reduce_by_key(lambda a, b: a + b).collect()
        job = ctx.last_job_metrics()
        assert len(job.stages) == 2
        assert job.stages[0].is_shuffle_map
        assert not job.stages[1].is_shuffle_map

    def test_completed_shuffle_not_rerun(self, ctx):
        rdd = ctx.parallelize([(1, 1), (2, 2)], 2).reduce_by_key(lambda a, b: a + b)
        rdd.collect()
        rdd.collect()  # second action reuses the map-output
        second = ctx.scheduler.job_history[-1]
        assert all(not s.is_shuffle_map for s in second.stages)

    def test_copartitioned_join_adds_no_shuffle_stage(self, ctx):
        part = HashPartitioner(4)
        a = ctx.parallelize([(i, "a") for i in range(8)], 2).partition_by(part)
        b = ctx.parallelize([(i, "b") for i in range(8)], 2).partition_by(part)
        a.join(b, partitioner=part).collect()
        job = ctx.last_job_metrics()
        # Exactly two shuffle-map stages (the two partition_by), one result.
        assert sum(1 for s in job.stages if s.is_shuffle_map) == 2
        assert sum(1 for s in job.stages if not s.is_shuffle_map) == 1

    def test_task_count_matches_partitions(self, ctx):
        ctx.parallelize(range(100), 7).map(lambda x: x).collect()
        job = ctx.last_job_metrics()
        assert len(job.stages[0].tasks) == 7


class TestMetricsCapture:
    def test_durations_positive(self, ctx):
        ctx.parallelize(range(1000), 4).map(lambda x: x * x).collect()
        job = ctx.last_job_metrics()
        assert all(t.duration_s >= 0 for t in job.stages[0].tasks)
        assert job.total_task_seconds >= 0

    def test_record_counts(self, ctx):
        ctx.parallelize(range(100), 4).collect()
        tasks = ctx.last_job_metrics().stages[0].tasks
        assert sum(t.records_in for t in tasks) == 100

    def test_shuffle_write_and_read_bytes(self, ctx):
        ctx.parallelize([(i % 3, i) for i in range(60)], 4).group_by_key().collect()
        job = ctx.last_job_metrics()
        map_stage, result_stage = job.stages
        assert map_stage.total_shuffle_write > 0
        assert sum(t.shuffle_read_bytes for t in result_stage.tasks) > 0

    def test_locality_recorded_for_dfs_input(self, ctx, dfs):
        dfs.put_text("/m.csv", "a\nb\nc\n")
        ctx.text_file(dfs, "/m.csv").collect()
        tasks = ctx.last_job_metrics().stages[0].tasks
        assert all(t.locality for t in tasks)

    def test_all_job_metrics_merges(self, ctx):
        ctx.parallelize([1], 1).collect()
        ctx.parallelize([2], 1).collect()
        assert len(ctx.all_job_metrics().stages) == 2
        ctx.reset_metrics()
        with pytest.raises(RuntimeError):
            ctx.last_job_metrics()


class TestFaultTolerance:
    def test_transient_task_failure_is_retried(self, ctx):
        attempts = {}

        def injector(stage_id, partition, attempt):
            attempts.setdefault((stage_id, partition), 0)
            attempts[(stage_id, partition)] += 1
            if partition == 1 and attempt == 1:
                raise TaskFailure("injected")

        ctx.runtime.failure_injector = injector
        got = ctx.parallelize(range(10), 3).map(lambda x: x * 2).collect()
        assert got == [x * 2 for x in range(10)]

    def test_retries_reflected_in_metrics(self, ctx):
        def injector(stage_id, partition, attempt):
            if partition == 0 and attempt <= 2:
                raise TaskFailure("flaky")

        ctx.runtime.failure_injector = injector
        ctx.parallelize(range(4), 2).collect()
        tasks = ctx.last_job_metrics().stages[0].tasks
        by_part = {t.partition: t.attempts for t in tasks}
        assert by_part[0] == 3
        assert by_part[1] == 1

    def test_permanent_failure_raises_after_max_retries(self, ctx):
        def injector(stage_id, partition, attempt):
            raise TaskFailure("always")

        ctx.runtime.failure_injector = injector
        with pytest.raises(TaskFailure):
            ctx.parallelize(range(4), 2).collect()

    def test_shuffle_map_task_failure_recovered(self, ctx):
        state = {"failed": False}

        def injector(stage_id, partition, attempt):
            # Fail the first shuffle-map task attempt once, ever.
            if not state["failed"]:
                state["failed"] = True
                raise TaskFailure("map task died")

        ctx.runtime.failure_injector = injector
        got = dict(
            ctx.parallelize([(i % 2, 1) for i in range(10)], 3)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert got == {0: 5, 1: 5}
