"""Unit tests for RAPID (cluster/observation search) and feature extraction."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, PulseFeatures, extract_pulse_features
from repro.core.rapid import (
    SinglePulse,
    run_rapid_dpg,
    run_rapid_observation,
    run_rapid_on_cluster,
)


def synthetic_cluster(center_dm=50.0, width=3.0, height=12.0, n=60, t0=5.0):
    dms = np.linspace(center_dm - 10, center_dm + 10, n)
    snrs = 5.5 + height * np.exp(-0.5 * ((dms - center_dm) / width) ** 2)
    times = np.full(n, t0) + np.linspace(-0.01, 0.01, n)
    return times, dms, snrs


class TestRunRapidOnCluster:
    def test_finds_the_pulse(self):
        times, dms, snrs = synthetic_cluster()
        pulses = run_rapid_on_cluster(times, dms, snrs, cluster_rank=1,
                                      dm_spacing_of=lambda _d: 0.5)
        assert len(pulses) == 1
        assert pulses[0].features.SNRPeakDM == pytest.approx(50.0, abs=1.0)

    def test_multiple_peaks_ranked_by_brightness(self):
        t1, d1, s1 = synthetic_cluster(center_dm=40.0, height=15.0)
        t2, d2, s2 = synthetic_cluster(center_dm=80.0, height=8.0)
        times = np.concatenate([t1, t2])
        dms = np.concatenate([d1, d2])
        snrs = np.concatenate([s1, s2])
        pulses = run_rapid_on_cluster(times, dms, snrs, cluster_rank=1,
                                      dm_spacing_of=lambda _d: 0.5)
        assert len(pulses) == 2
        brightest = min(pulses, key=lambda p: p.features.PulseRank)
        assert brightest.features.SNRPeakDM == pytest.approx(40.0, abs=1.5)
        assert {p.features.PulseRank for p in pulses} == {1.0, 2.0}
        assert all(p.features.NumPeaks == 2.0 for p in pulses)

    def test_tiny_cluster_skipped(self):
        pulses = run_rapid_on_cluster(np.array([1.0]), np.array([2.0]), np.array([6.0]),
                                      cluster_rank=1, dm_spacing_of=lambda _d: 1.0)
        assert pulses == []

    def test_provenance_carried(self):
        times, dms, snrs = synthetic_cluster()
        pulses = run_rapid_on_cluster(
            times, dms, snrs, cluster_rank=3, dm_spacing_of=lambda _d: 0.5,
            observation_key="K", cluster_id=17, source_name="PSR-X", is_rrat=True,
        )
        p = pulses[0]
        assert p.observation_key == "K"
        assert p.cluster_id == 17
        assert p.source_name == "PSR-X"
        assert p.is_rrat
        assert p.features.ClusterRank == 3.0

    def test_unsorted_input_is_sorted_internally(self):
        times, dms, snrs = synthetic_cluster()
        order = np.random.default_rng(0).permutation(len(dms))
        a = run_rapid_on_cluster(times, dms, snrs, 1, lambda _d: 0.5)
        b = run_rapid_on_cluster(times[order], dms[order], snrs[order], 1, lambda _d: 0.5)
        assert len(a) == len(b) == 1
        assert a[0].features.SNRPeakDM == b[0].features.SNRPeakDM


class TestRunRapidObservation:
    def test_pulsar_observation_yields_positive_pulses(self, observation):
        result = run_rapid_observation(observation)
        assert result.n_pulses > 0
        assert any(p.source_name for p in result.pulses)
        assert result.n_clusters_searched + result.n_clusters_skipped == len(observation.clusters)

    def test_single_pulse_granularity_beats_dpg(self, observation):
        """The Fig. 1 contrast: SP search finds orders of magnitude more
        pulses than the DPG-mode aggregate search."""
        sp = run_rapid_observation(observation).n_pulses
        dpg = run_rapid_dpg(observation)
        assert sp > 20 * max(dpg, 1)

    def test_min_cluster_size_filters(self, observation):
        strict = run_rapid_observation(observation, min_cluster_size=1000)
        assert strict.n_clusters_searched == 0


class TestMlRowRoundtrip:
    def test_roundtrip(self, observation):
        pulses = run_rapid_observation(observation).pulses
        for pulse in pulses[:20]:
            parsed = SinglePulse.from_ml_row(pulse.to_ml_row())
            assert parsed.observation_key == pulse.observation_key
            assert parsed.cluster_id == pulse.cluster_id
            assert parsed.source_name == pulse.source_name
            assert parsed.is_rrat == pulse.is_rrat
            np.testing.assert_allclose(
                parsed.features.to_vector(), pulse.features.to_vector(), rtol=1e-5
            )

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError):
            SinglePulse.from_ml_row("a,b,c")


class TestFeatureExtraction:
    def _features(self, **overrides):
        times, dms, snrs = synthetic_cluster()
        kwargs = dict(
            dms=dms, snrs=snrs, times=times, peak_hint=0, binsize=5,
            cluster_rank=1, pulse_rank=1, n_peaks_in_cluster=1, dm_spacing=0.5,
            cluster_start_time=times.min(), cluster_stop_time=times.max(),
        )
        kwargs.update(overrides)
        return extract_pulse_features(**kwargs)

    def test_feature_count_and_order(self):
        feats = self._features()
        vec = feats.to_vector()
        assert vec.shape == (22,)
        assert PulseFeatures.from_vector(vec) == feats

    def test_summary_statistics_correct(self):
        times, dms, snrs = synthetic_cluster()
        feats = self._features()
        assert feats.NumSPEs == len(dms)
        assert feats.MaxSNR == pytest.approx(snrs.max())
        assert feats.MinSNR == pytest.approx(snrs.min())
        assert feats.AvgSNR == pytest.approx(snrs.mean())
        assert feats.DMRange == pytest.approx(dms.max() - dms.min())
        assert feats.SNRPeakDM == pytest.approx(dms[np.argmax(snrs)])

    def test_table1_features(self):
        times, dms, snrs = synthetic_cluster()
        feats = self._features(cluster_rank=4, pulse_rank=2, dm_spacing=0.25)
        assert feats.ClusterRank == 4.0
        assert feats.PulseRank == 2.0
        assert feats.DMSpacing == 0.25
        assert feats.StartTime == pytest.approx(times.min())
        assert feats.StopTime == pytest.approx(times.max())

    def test_snr_ratio_definition(self):
        times, dms, snrs = synthetic_cluster()
        peak_hint = 10
        feats = self._features(peak_hint=peak_hint)
        assert feats.SNRRatio == pytest.approx(snrs[peak_hint] / snrs.max())
        assert 0.0 <= feats.SNRRatio <= 1.0

    def test_peak_width_half_max(self):
        feats = self._features()
        assert 0.0 < feats.PeakWidthDM < 21.0

    def test_empty_pulse_rejected(self):
        with pytest.raises(ValueError):
            self._features(dms=np.array([]), snrs=np.array([]), times=np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self._features(times=np.array([1.0, 2.0]))

    def test_feature_names_constant(self):
        assert len(FEATURE_NAMES) == 22
        assert FEATURE_NAMES[16:] == (
            "StartTime", "StopTime", "ClusterRank", "PulseRank", "DMSpacing", "SNRRatio",
        )
