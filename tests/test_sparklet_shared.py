"""Unit tests for broadcast variables and accumulators."""

import pytest

from repro.sparklet.scheduler import TaskFailure


class TestBroadcast:
    def test_tasks_read_broadcast_value(self, ctx):
        grid = ctx.broadcast({"step": 2})
        got = ctx.parallelize(range(5), 2).map(lambda x: x * grid.value["step"]).collect()
        assert got == [0, 2, 4, 6, 8]

    def test_destroyed_broadcast_unreadable(self, ctx):
        b = ctx.broadcast([1, 2, 3])
        b.destroy()
        with pytest.raises(RuntimeError, match="destroyed"):
            _ = b.value

    def test_broadcasts_independent(self, ctx):
        a = ctx.broadcast("first")
        b = ctx.broadcast("second")
        a.destroy()
        assert b.value == "second"


class TestAccumulator:
    def test_counts_records(self, ctx):
        seen = ctx.accumulator(0)
        ctx.parallelize(range(25), 4).foreach(lambda _x: seen.add(1))
        assert seen.value == 25

    def test_custom_op(self, ctx):
        biggest = ctx.accumulator(float("-inf"), op=max)
        ctx.parallelize([3.0, 9.0, 1.0], 3).foreach(biggest.add)
        assert biggest.value == 9.0

    def test_iadd_syntax(self, ctx):
        acc = ctx.accumulator(0)

        def bump(_x):
            nonlocal acc
            acc += 2

        ctx.parallelize(range(4), 2).foreach(bump)
        assert acc.value == 8

    def test_retried_attempts_count_once(self, ctx):
        """The Spark guarantee: a task that fails and retries must not
        double-count its accumulator adds."""
        acc = ctx.accumulator(0)
        failed: set = set()

        def injector(stage_id, partition, attempt):
            if partition == 0 and attempt == 1:
                failed.add(partition)
                raise TaskFailure("flaky")

        ctx.runtime.failure_injector = injector
        ctx.parallelize(range(12), 3).foreach(lambda _x: acc.add(1))
        assert failed  # the injector really fired
        assert acc.value == 12

    def test_adds_from_failed_only_attempt_discarded(self, ctx):
        acc = ctx.accumulator(0)

        def injector(stage_id, partition, attempt):
            raise TaskFailure("always")

        ctx.runtime.failure_injector = injector
        with pytest.raises(TaskFailure):
            ctx.parallelize(range(4), 1).foreach(lambda _x: acc.add(1))
        assert acc.value == 0

    def test_driver_side_add_and_reset(self, ctx):
        acc = ctx.accumulator(10)
        acc.add(5)
        assert acc.value == 15
        acc.reset()
        assert acc.value == 10

    def test_parse_error_counter_pattern(self, ctx, dfs, observation):
        """The production pattern: count dropped rows during D-RAPID parsing."""
        dropped = ctx.accumulator(0)
        dfs.put_text("/acc/data.csv", "good,1\nbad\ngood,2\nbad\n")

        def parse(line):
            parts = line.split(",")
            if len(parts) != 2:
                dropped.add(1)
                return None
            return (parts[0], int(parts[1]))

        rows = ctx.text_file(dfs, "/acc/data.csv").map(parse).filter(lambda r: r).collect()
        assert len(rows) == 2
        assert dropped.value == 2
