"""Unit tests for the customized DBSCAN clustering."""

import numpy as np
import pytest

from repro.astro.clustering import NOISE, Cluster, SinglePulseDBSCAN


def run_dbscan(times, dms, snrs=None, steps=None, **kwargs):
    times = np.asarray(times, dtype=float)
    dms = np.asarray(dms, dtype=float)
    snrs = np.asarray(snrs if snrs is not None else np.ones_like(times), dtype=float)
    steps = np.asarray(steps if steps is not None else dms, dtype=float)
    return SinglePulseDBSCAN(**kwargs).fit(times, dms, snrs, steps)


class TestDBSCANCore:
    def test_two_well_separated_blobs(self):
        rng = np.random.default_rng(0)
        t = np.concatenate([rng.normal(1.0, 0.01, 30), rng.normal(9.0, 0.01, 30)])
        d = np.concatenate([rng.normal(10.0, 0.5, 30), rng.normal(50.0, 0.5, 30)])
        labels, clusters = run_dbscan(t, d)
        assert len(clusters) == 2
        assert set(labels) <= {0, 1, NOISE}

    def test_isolated_points_are_noise(self):
        t = np.array([0.0, 50.0, 100.0])
        d = np.array([0.0, 100.0, 200.0])
        labels, clusters = run_dbscan(t, d, **{"min_samples": 3})
        assert clusters == []
        assert np.all(labels == NOISE)

    def test_min_samples_controls_density(self):
        t = np.zeros(3)
        d = np.array([1.0, 1.5, 2.0])
        _l1, c_loose = run_dbscan(t, d, min_samples=2)
        _l2, c_strict = run_dbscan(t, d, min_samples=10)
        assert len(c_loose) == 1
        assert c_strict == []

    def test_empty_input(self):
        labels, clusters = run_dbscan([], [])
        assert labels.size == 0 and clusters == []

    def test_mismatched_lengths_rejected(self):
        clusterer = SinglePulseDBSCAN()
        with pytest.raises(ValueError):
            clusterer.fit(np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3))

    def test_labels_cover_cluster_indices(self):
        rng = np.random.default_rng(1)
        t = rng.normal(1.0, 0.02, 40)
        d = rng.normal(5.0, 1.0, 40)
        labels, clusters = run_dbscan(t, d)
        for cluster in clusters:
            assert all(labels[i] == cluster.cluster_id for i in cluster.indices)

    def test_cluster_ids_dense_from_zero(self):
        rng = np.random.default_rng(2)
        t = np.concatenate([rng.normal(i * 10.0, 0.01, 20) for i in range(4)])
        d = np.concatenate([rng.normal(20.0, 0.5, 20) for _ in range(4)])
        _labels, clusters = run_dbscan(t, d)
        assert [c.cluster_id for c in clusters] == list(range(len(clusters)))


class TestArtifactMerging:
    def test_time_adjacent_overlapping_dm_clusters_merge(self):
        """Two halves of one pulse split by a small time gap must merge."""
        rng = np.random.default_rng(3)
        t1 = rng.normal(1.0, 0.02, 25)
        t2 = rng.normal(1.18, 0.02, 25)  # 0.18 s gap < merge_gap 0.2 s
        d = rng.normal(30.0, 0.8, 50)
        labels, clusters = run_dbscan(
            np.concatenate([t1, t2]), d, eps_time_s=0.05, merge_gap_s=0.2
        )
        assert len(clusters) == 1

    def test_distant_clusters_do_not_merge(self):
        rng = np.random.default_rng(4)
        t1 = rng.normal(1.0, 0.02, 25)
        t2 = rng.normal(5.0, 0.02, 25)
        d = rng.normal(30.0, 0.8, 50)
        _labels, clusters = run_dbscan(
            np.concatenate([t1, t2]), d, eps_time_s=0.05, merge_gap_s=0.2
        )
        assert len(clusters) == 2

    def test_dm_disjoint_clusters_do_not_merge(self):
        rng = np.random.default_rng(5)
        t = np.concatenate([rng.normal(1.0, 0.02, 25), rng.normal(1.1, 0.02, 25)])
        d = np.concatenate([rng.normal(10.0, 0.3, 25), rng.normal(80.0, 0.3, 25)])
        _labels, clusters = run_dbscan(t, d, eps_time_s=0.05, merge_gap_s=0.3)
        assert len(clusters) == 2


class TestClusterSummaries:
    def test_bounds_and_max_snr(self):
        rng = np.random.default_rng(6)
        t = rng.normal(2.0, 0.02, 30)
        d = rng.normal(40.0, 1.0, 30)
        s = rng.uniform(5, 20, 30)
        _labels, clusters = run_dbscan(t, d, snrs=s)
        c = clusters[0]
        member_snrs = s[c.indices]
        assert c.max_snr == pytest.approx(member_snrs.max())
        assert c.t_lo <= c.t_hi and c.dm_lo <= c.dm_hi

    def test_rank_orders_by_brightness(self):
        rng = np.random.default_rng(7)
        t = np.concatenate([rng.normal(1.0, 0.01, 20), rng.normal(8.0, 0.01, 20)])
        d = np.concatenate([rng.normal(20.0, 0.5, 20), rng.normal(20.0, 0.5, 20)])
        s = np.concatenate([np.full(20, 8.0), np.full(20, 20.0)])
        _labels, clusters = run_dbscan(t, d, snrs=s)
        brightest = max(clusters, key=lambda c: c.max_snr)
        assert brightest.rank == 1

    def test_csv_row_roundtrip_of_summary_fields(self):
        c = Cluster(3, [0, 1], 10.0, 12.0, 1.0, 2.0, 9.5, rank=2)
        parsed = Cluster.from_csv_row(c.to_csv_row())
        assert parsed.cluster_id == 3
        assert parsed.dm_lo == pytest.approx(10.0)
        assert parsed.max_snr == pytest.approx(9.5)

    def test_malformed_csv_rejected(self):
        with pytest.raises(ValueError):
            Cluster.from_csv_row("1,2,3")
