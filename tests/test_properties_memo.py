"""Property-based cache laws for the memoization subsystem.

The laws, in decreasing order of importance:

1. **Transparency** — a warm (memoized) run returns byte-identical results
   to a cold run and to an unmemoized run, on every backend, for any data,
   partitioning and closure; accumulators included.
2. **Stability** — lineage hashes are pure functions of structure: stable
   across processes (and across ``PYTHONHASHSEED``), insensitive to dict
   insertion order and float formatting.
3. **Sensitivity** — perturbing any single config field or one byte of
   upstream data changes the key, so stale entries can never be served.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.search import SearchParams
from repro.memo import MemoConfig, MemoSession, config_digest, token_for
from repro.memo.hashing import callable_token, canonical_json, lineage_token
from repro.sparklet import SparkletContext

# -- strategies --------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


# -- law 2: stability ---------------------------------------------------------

@given(st.dictionaries(st.text(max_size=8), values, max_size=6),
       st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_token_insensitive_to_dict_insertion_order(d, rnd):
    items = list(d.items())
    rnd.shuffle(items)
    reordered = dict(items)
    assert token_for(reordered) == token_for(d)
    assert canonical_json(reordered) == canonical_json(d)


@given(st.sets(st.integers(), max_size=8), st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_token_insensitive_to_set_iteration_order(s, rnd):
    items = list(s)
    rnd.shuffle(items)
    assert token_for(set(items)) == token_for(s)


@given(st.floats(allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_float_token_depends_only_on_the_double(x):
    # repr round-trips exactly, so re-parsing the shortest decimal form
    # must give the same token; a different double must not.
    assert token_for(float(repr(x))) == token_for(x)
    import math

    if x == 0.0 or not math.isinf(x):
        nudged = math.nextafter(x, math.inf)
        if nudged != x and not math.isinf(nudged):
            assert token_for(nudged) != token_for(x)


def _normalized(v):
    """Collapse the equivalences token_for deliberately makes: tuples and
    lists are identified (both are 'a sequence')."""
    if isinstance(v, (list, tuple)):
        return ["seq", *[_normalized(x) for x in v]]
    if isinstance(v, dict):
        return {k: _normalized(x) for k, x in v.items()}
    return v


@given(values, values)
@settings(max_examples=60, deadline=None)
def test_equal_tokens_imply_equal_values(a, b):
    """No collisions on JSON-ish data: if two values hash alike they *are*
    alike (up to the list/tuple identification)."""
    if token_for(a) == token_for(b):
        assert _normalized(a) == _normalized(b)


_XPROC_SCRIPT = r"""
import sys
sys.path.insert(0, "src")
from repro.dfs import DataNode, DFSClient
from repro.memo import job_key, token_for
from repro.memo.hashing import callable_token

payload = {"b": 2.5, "a": [1, 2, {"x": (1, "s")}], "c": {"k": [True, None]}}
k = 3
def mapper(v, bias=1.5):
    return v * k + bias

dfs = DFSClient([DataNode("dn0")], replication=1)
dfs.put_text("/in.txt", "alpha\nbeta\ngamma\n")
from repro.sparklet import SparkletContext
with SparkletContext(app_name="x", default_parallelism=2) as ctx:
    rdd = (ctx.text_file(dfs, "/in.txt")
              .map(lambda line: (line[0], 1))
              .reduce_by_key(lambda a, b: a + b, num_partitions=2))
    jk = job_key(rdd, list, None)
print(token_for(payload))
print(callable_token(mapper))
print(jk)
"""


def test_hashes_stable_across_processes_and_hashseed():
    """Two interpreters with different PYTHONHASHSEED must agree on value
    tokens, callable tokens and full job keys."""
    outs = []
    for seed in ("1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        proc = subprocess.run(
            [sys.executable, "-c", _XPROC_SCRIPT], env=env, cwd="/root/repo",
            capture_output=True, text=True, check=True,
        )
        outs.append(proc.stdout)
    assert outs[0] == outs[1]
    assert len(outs[0].splitlines()) == 3


# -- law 3: sensitivity -------------------------------------------------------

def test_any_single_search_params_field_changes_the_digest():
    base = SearchParams()
    seen = {config_digest(base)}
    for f in dataclasses.fields(SearchParams):
        if not f.compare:
            continue
        old = getattr(base, f.name)
        if isinstance(old, bool):
            new = not old
        elif isinstance(old, (int, float)):
            new = old + 1
        elif isinstance(old, str):
            new = old + "_x"
        else:
            continue
        d = config_digest(dataclasses.replace(base, **{f.name: new}))
        assert d not in seen, f"perturbing {f.name} did not change the digest"
        seen.add(d)


@given(st.dictionaries(st.text(min_size=1, max_size=8), st.integers(),
                       min_size=1, max_size=6),
       st.data())
@settings(max_examples=30, deadline=None)
def test_any_single_config_key_perturbation_changes_the_digest(cfg, data):
    key = data.draw(st.sampled_from(sorted(cfg)))
    perturbed = dict(cfg)
    perturbed[key] = cfg[key] + 1
    assert config_digest(perturbed) != config_digest(cfg)


def test_one_byte_of_upstream_data_changes_the_lineage(dfs):
    with SparkletContext(app_name="t", default_parallelism=2) as ctx:
        dfs.put_text("/a.txt", "hello world\n")
        before = lineage_token(ctx.text_file(dfs, "/a.txt").map(str.upper))
        dfs.delete("/a.txt")
        dfs.put_text("/a.txt", "hello worlD\n")
        after = lineage_token(ctx.text_file(dfs, "/a.txt").map(str.upper))
    assert before != after


def test_closure_capture_changes_the_lineage():
    def chain(k):
        with SparkletContext(app_name="t", default_parallelism=2) as ctx:
            return lineage_token(ctx.parallelize([1, 2, 3], 2).map(lambda x: x * k))

    assert chain(2) != chain(3)
    assert chain(2) == chain(2)


# -- law 1: transparency ------------------------------------------------------

def _wordcount(ctx, data, n_parts):
    acc = ctx.accumulator(0)

    def tag(x):
        acc.add(1)
        return (x % 5, x)

    pairs = ctx.parallelize(data, n_parts).map(tag)
    result = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=2).collect()
    return sorted(result), acc.value


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1,
             max_size=30),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
def test_warm_equals_cold_equals_uncached(data, n_parts):
    memo_dir = tempfile.mkdtemp(prefix="memo-prop-")
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)

    with SparkletContext(app_name="u", default_parallelism=2,
                         backend="serial") as ctx:
        uncached = _wordcount(ctx, data, n_parts)
    with SparkletContext(app_name="c", default_parallelism=2, backend="serial",
                         memo=MemoSession(cfg)) as ctx:
        cold = _wordcount(ctx, data, n_parts)
    warm_session = MemoSession(cfg)
    with SparkletContext(app_name="w", default_parallelism=2, backend="serial",
                         memo=warm_session) as ctx:
        warm = _wordcount(ctx, data, n_parts)

    assert cold == uncached
    assert warm == uncached  # results AND accumulator value replay identically
    assert warm_session.store.stats.hits >= 1


@pytest.mark.parametrize("backend", ["serial", "parallel"])
def test_warm_equals_cold_across_backends(backend, memo_dir):
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)
    data = list(range(40))

    def run(session):
        with SparkletContext(app_name="b", default_parallelism=2,
                             backend=backend, num_workers=2,
                             memo=session) as ctx:
            return _wordcount(ctx, data, 3)

    uncached = run(None)
    cold = run(MemoSession(cfg))
    warm_session = MemoSession(cfg)
    warm = run(warm_session)
    assert cold == uncached == warm
    assert warm_session.store.stats.hits >= 1


@pytest.mark.parametrize("backend", ["serial", "parallel"])
def test_prefix_overlap_reuses_the_shared_map_stage(backend, memo_dir):
    """Two jobs sharing a shuffle prefix but differing downstream: the
    second job must stage-hit the shared shuffle, job-miss overall, and
    still produce exactly what an unmemoized run produces."""
    cfg = MemoConfig(dir=memo_dir, store_candidates=False)
    data = list(range(60))

    def jobs(ctx):
        pairs = ctx.parallelize(data, 4).map(lambda x: (x % 7, x))
        summed = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=3)
        first = sorted(summed.collect())
        second = sorted(summed.map(lambda kv: (kv[0], kv[1] * 10)).collect())
        return first, second

    with SparkletContext(app_name="u", default_parallelism=2, backend=backend,
                         num_workers=2) as ctx:
        expected = jobs(ctx)
    with SparkletContext(app_name="c", default_parallelism=2, backend=backend,
                         num_workers=2, memo=MemoSession(cfg)) as ctx:
        assert jobs(ctx) == expected

    session = MemoSession(cfg)
    with SparkletContext(app_name="w", default_parallelism=2, backend=backend,
                         num_workers=2, memo=session) as ctx:
        pairs = ctx.parallelize(data, 4).map(lambda x: (x % 7, x))
        summed = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=3)
        # Perturbed downstream: job key misses, shared shuffle stage hits.
        third = sorted(summed.map(lambda kv: (kv[0], kv[1] * 11)).collect())
    with SparkletContext(app_name="u2", default_parallelism=2, backend=backend,
                         num_workers=2) as ctx:
        pairs = ctx.parallelize(data, 4).map(lambda x: (x % 7, x))
        summed = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=3)
        expected_third = sorted(
            summed.map(lambda kv: (kv[0], kv[1] * 11)).collect())
    assert third == expected_third
