"""Unit tests for RDD transformations and actions (list-oracle style)."""

import pytest



class TestParallelize:
    def test_collect_preserves_order(self, ctx):
        data = list(range(37))
        assert ctx.parallelize(data, 5).collect() == data

    def test_partition_slicing_covers_all(self, ctx):
        rdd = ctx.parallelize(list(range(10)), 4)
        parts = rdd.glom().collect()
        assert len(parts) == 4
        assert [x for p in parts for x in p] == list(range(10))

    def test_more_partitions_than_elements(self, ctx):
        rdd = ctx.parallelize([1, 2], 8)
        assert rdd.count() == 2
        assert rdd.num_partitions == 8

    def test_invalid_partition_count(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 0)


class TestTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).map(lambda x: x * 10).collect() == [10, 20, 30]

    def test_filter(self, ctx):
        got = ctx.parallelize(range(20), 3).filter(lambda x: x % 3 == 0).collect()
        assert got == [0, 3, 6, 9, 12, 15, 18]

    def test_flat_map(self, ctx):
        got = ctx.parallelize(["a b", "c"], 2).flat_map(str.split).collect()
        assert got == ["a", "b", "c"]

    def test_map_partitions(self, ctx):
        got = ctx.parallelize(range(10), 3).map_partitions(lambda it: [sum(it)]).collect()
        assert sum(got) == sum(range(10))
        assert len(got) == 3

    def test_map_partitions_with_index(self, ctx):
        got = ctx.parallelize(range(6), 3).map_partitions_with_index(
            lambda i, it: [(i, list(it))]
        ).collect()
        assert [i for i, _ in got] == [0, 1, 2]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3, 4], 2)
        assert sorted(a.union(b).collect()) == [1, 2, 3, 4]
        assert a.union(b).num_partitions == 4

    def test_distinct(self, ctx):
        got = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect()
        assert sorted(got) == [1, 2, 3]

    def test_key_by(self, ctx):
        got = ctx.parallelize(["aa", "b"], 1).key_by(len).collect()
        assert got == [(2, "aa"), (1, "b")]

    def test_sample_fraction_bounds(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        got = rdd.sample(0.1, seed=3).collect()
        assert 50 <= len(got) <= 200
        with pytest.raises(ValueError):
            rdd.sample(1.5)

    def test_chaining_is_lazy(self, serial_ctx):
        ctx = serial_ctx  # driver-side side effects: serial semantics only
        calls = []

        def probe(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize([1, 2, 3], 1).map(probe)
        assert calls == []  # nothing ran yet
        rdd.collect()
        assert calls == [1, 2, 3]


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(101), 7).count() == 101

    def test_take_smaller_than_data(self, ctx):
        assert ctx.parallelize(range(100), 5).take(3) == [0, 1, 2]

    def test_take_more_than_data(self, ctx):
        assert ctx.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_take_nonpositive(self, ctx):
        assert ctx.parallelize([1], 1).take(0) == []

    def test_first(self, ctx):
        assert ctx.parallelize([9, 8], 2).first() == 9
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).first()

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(10), 4).reduce(lambda a, b: a + b) == 45

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).fold(0, lambda a, b: a + b) == 6

    def test_aggregate(self, ctx):
        # (count, sum) via aggregate
        got = ctx.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + 1, acc[1] + x),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert got == (10, 45)

    def test_foreach_side_effects(self, serial_ctx):
        ctx = serial_ctx  # driver-side side effects: serial semantics only
        seen = []
        ctx.parallelize([1, 2, 3], 2).foreach(seen.append)
        assert sorted(seen) == [1, 2, 3]


class TestCaching:
    def test_cache_avoids_recompute(self, serial_ctx):
        ctx = serial_ctx  # driver-side side effects: serial semantics only
        calls = []

        def probe(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize([1, 2, 3], 1).map(probe).cache()
        rdd.collect()
        rdd.collect()
        assert calls == [1, 2, 3]  # computed once

    def test_unpersist_recomputes(self, serial_ctx):
        ctx = serial_ctx  # driver-side side effects: serial semantics only
        calls = []

        def probe(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize([1], 1).map(probe).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert calls == [1, 1]


class TestTextFile:
    def test_reads_all_lines(self, ctx, dfs):
        lines = [f"row-{i}" for i in range(500)]
        dfs.put_text("/t.csv", "\n".join(lines) + "\n")
        rdd = ctx.text_file(dfs, "/t.csv")
        assert rdd.collect() == lines

    def test_block_boundary_lines_owned_once(self, ctx, dfs):
        # Long lines guarantee block straddling with the 4 KiB test blocks.
        lines = [("x" * 300) + f"-{i}" for i in range(100)]
        dfs.put_text("/long.csv", "\n".join(lines) + "\n")
        rdd = ctx.text_file(dfs, "/long.csv")
        assert rdd.num_partitions > 1  # actually multi-block
        assert rdd.collect() == lines

    def test_no_trailing_newline(self, ctx, dfs):
        dfs.put_text("/nt.csv", "a\nb\nc")
        assert ctx.text_file(dfs, "/nt.csv").collect() == ["a", "b", "c"]

    def test_preferred_locations_come_from_replicas(self, ctx, dfs):
        dfs.put_text("/loc.csv", "hello\n")
        rdd = ctx.text_file(dfs, "/loc.csv")
        locs = rdd.preferred_locations(0)
        assert locs  # at least one replica location
        assert all(loc.startswith("dn") for loc in locs)

    def test_save_as_text_file_roundtrip(self, ctx, dfs):
        data = [f"line{i}" for i in range(50)]
        ctx.parallelize(data, 3).save_as_text_file(dfs, "/out")
        parts = dfs.ls("/out/")
        assert len(parts) == 3
        combined = "".join(dfs.get_text(p) for p in parts)
        assert combined.splitlines() == data
