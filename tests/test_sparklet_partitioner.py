"""Unit tests for partitioners and the portable hash."""

import pytest

from repro.sparklet.partitioner import (
    HashPartitioner,
    RangePartitioner,
    portable_hash,
)


class TestPortableHash:
    def test_stable_for_strings(self):
        # Regression guard: these values must never change across runs or
        # PYTHONHASHSEED settings (colocated joins depend on it).
        assert portable_hash("GBT350Drift|55000.0|J0000+0000|0") == portable_hash(
            "GBT350Drift|55000.0|J0000+0000|0"
        )
        assert portable_hash("abc") != portable_hash("abd")

    def test_int_identity(self):
        assert portable_hash(42) == 42
        assert portable_hash(-7) == -7

    def test_bool_and_none(self):
        assert portable_hash(None) == 0
        assert portable_hash(True) == 1
        assert portable_hash(False) == 0

    def test_float_int_consistency(self):
        assert portable_hash(3.0) == portable_hash(3)

    def test_bytes_equal_to_utf8_string(self):
        assert portable_hash("key") == portable_hash(b"key")

    def test_tuple_keys(self):
        assert portable_hash(("a", 1)) == portable_hash(("a", 1))
        assert portable_hash(("a", 1)) != portable_hash(("a", 2))
        assert portable_hash((("x",), 2)) == portable_hash((("x",), 2))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            portable_hash([1, 2, 3])


class TestHashPartitioner:
    def test_in_range(self):
        part = HashPartitioner(7)
        for key in ("a", "b", 12, ("k", 3), None):
            assert 0 <= part.partition_for(key) < 7

    def test_deterministic(self):
        part = HashPartitioner(13)
        keys = [f"key-{i}" for i in range(100)]
        assert [part.partition_for(k) for k in keys] == [part.partition_for(k) for k in keys]

    def test_equality_semantics(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert HashPartitioner(4) != RangePartitioner([1, 2, 3])

    def test_rejects_nonpositive_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_spreads_keys(self):
        part = HashPartitioner(8)
        buckets = {part.partition_for(f"obs-{i}") for i in range(200)}
        assert len(buckets) == 8  # every partition hit with 200 keys


class TestRangePartitioner:
    def test_basic_ranges(self):
        part = RangePartitioner([10, 20])
        assert part.num_partitions == 3
        assert part.partition_for(5) == 0
        assert part.partition_for(10) == 0  # bisect_left: bound belongs left
        assert part.partition_for(15) == 1
        assert part.partition_for(25) == 2

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            RangePartitioner([5, 3])

    def test_from_sample_equidepth(self):
        part = RangePartitioner.from_sample(range(100), 4)
        counts = [0, 0, 0, 0]
        for k in range(100):
            counts[part.partition_for(k)] += 1
        assert max(counts) - min(counts) <= 2

    def test_from_sample_single_partition(self):
        part = RangePartitioner.from_sample([1, 2, 3], 1)
        assert part.num_partitions == 1
        assert part.partition_for(99) == 0

    def test_sorted_keys_map_to_monotone_partitions(self):
        part = RangePartitioner.from_sample(range(0, 1000, 7), 5)
        parts = [part.partition_for(k) for k in range(0, 1000, 13)]
        assert parts == sorted(parts)
