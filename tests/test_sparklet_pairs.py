"""Unit tests for pair-RDD operations (dict-oracle style)."""

from collections import defaultdict

import pytest

from repro.sparklet import HashPartitioner


@pytest.fixture
def kv_data():
    return [(f"k{i % 5}", i) for i in range(40)]


class TestReduceByKey:
    def test_sums_match_oracle(self, ctx, kv_data):
        oracle = defaultdict(int)
        for k, v in kv_data:
            oracle[k] += v
        got = dict(ctx.parallelize(kv_data, 4).reduce_by_key(lambda a, b: a + b).collect())
        assert got == dict(oracle)

    def test_single_partition(self, ctx):
        got = dict(ctx.parallelize([("a", 1), ("a", 2)], 1).reduce_by_key(lambda a, b: a + b).collect())
        assert got == {"a": 3}

    def test_output_partitioner_set(self, ctx, kv_data):
        rdd = ctx.parallelize(kv_data, 4).reduce_by_key(lambda a, b: a + b, num_partitions=3)
        assert rdd.partitioner == HashPartitioner(3)

    def test_keys_colocated_by_hash(self, ctx, kv_data):
        part = HashPartitioner(3)
        rdd = ctx.parallelize(kv_data, 4).reduce_by_key(lambda a, b: a + b, partitioner=part)
        for i, bucket in enumerate(rdd.glom().collect()):
            for k, _v in bucket:
                assert part.partition_for(k) == i


class TestAggregateByKey:
    def test_list_aggregation(self, ctx):
        data = [("x", 1), ("y", 2), ("x", 3)]
        got = dict(
            ctx.parallelize(data, 3)
            .aggregate_by_key([], lambda acc, v: acc + [v], lambda a, b: a + b)
            .collect()
        )
        assert sorted(got["x"]) == [1, 3]
        assert got["y"] == [2]

    def test_zero_value_not_shared_between_keys(self, ctx):
        # A mutable zero must be deep-copied per combiner.
        data = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        got = dict(
            ctx.parallelize(data, 2)
            .aggregate_by_key([], lambda acc, v: acc.append(v) or acc, lambda a, b: a + b)
            .collect()
        )
        assert sorted(got["a"]) == [1, 3]
        assert sorted(got["b"]) == [2, 4]

    def test_count_and_sum(self, ctx, kv_data):
        got = dict(
            ctx.parallelize(kv_data, 4)
            .aggregate_by_key((0, 0), lambda acc, v: (acc[0] + 1, acc[1] + v),
                              lambda a, b: (a[0] + b[0], a[1] + b[1]))
            .collect()
        )
        assert got["k0"][0] == 8  # 40 items over 5 keys


class TestGroupByKey:
    def test_groups_match_oracle(self, ctx, kv_data):
        oracle = defaultdict(list)
        for k, v in kv_data:
            oracle[k].append(v)
        got = dict(ctx.parallelize(kv_data, 4).group_by_key().collect())
        assert {k: sorted(v) for k, v in got.items()} == {
            k: sorted(v) for k, v in oracle.items()
        }


class TestMapValues:
    def test_map_values_preserves_partitioning(self, ctx, kv_data):
        part = HashPartitioner(3)
        rdd = ctx.parallelize(kv_data, 4).partition_by(part).map_values(lambda v: v * 2)
        assert rdd.partitioner == part

    def test_flat_map_values(self, ctx):
        got = ctx.parallelize([("a", [1, 2])], 1).flat_map_values(lambda v: v).collect()
        assert got == [("a", 1), ("a", 2)]

    def test_keys_values(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)], 1)
        assert rdd.keys().collect() == ["a", "b"]
        assert rdd.values().collect() == [1, 2]

    def test_count_by_key(self, ctx, kv_data):
        got = ctx.parallelize(kv_data, 4).count_by_key()
        assert got == {f"k{i}": 8 for i in range(5)}


class TestPartitionBy:
    def test_same_partitioner_is_noop(self, ctx, kv_data):
        part = HashPartitioner(4)
        rdd = ctx.parallelize(kv_data, 4).partition_by(part)
        assert rdd.partition_by(part) is rdd

    def test_repartition_moves_keys(self, ctx, kv_data):
        part = HashPartitioner(6)
        rdd = ctx.parallelize(kv_data, 2).partition_by(part)
        assert rdd.num_partitions == 6
        assert sorted(rdd.collect()) == sorted(kv_data)


class TestJoins:
    def test_inner_join(self, ctx):
        a = ctx.parallelize([("k1", 1), ("k2", 2)], 2)
        b = ctx.parallelize([("k1", "x"), ("k3", "y")], 2)
        assert dict(a.join(b).collect()) == {"k1": (1, "x")}

    def test_inner_join_cross_product_on_dup_keys(self, ctx):
        a = ctx.parallelize([("k", 1), ("k", 2)], 1)
        b = ctx.parallelize([("k", "x"), ("k", "y")], 1)
        got = sorted(v for _k, v in a.join(b).collect())
        assert got == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_left_outer_join_keeps_left_nulls(self, ctx):
        a = ctx.parallelize([("k1", 1), ("k2", 2)], 2)
        b = ctx.parallelize([("k1", "x")], 1)
        got = dict(a.left_outer_join(b).collect())
        assert got == {"k1": (1, "x"), "k2": (2, None)}

    def test_right_outer_join(self, ctx):
        a = ctx.parallelize([("k1", 1)], 1)
        b = ctx.parallelize([("k1", "x"), ("k2", "y")], 1)
        got = dict(a.right_outer_join(b).collect())
        assert got == {"k1": (1, "x"), "k2": (None, "y")}

    def test_cogroup_groups_both_sides(self, ctx):
        a = ctx.parallelize([("k", 1), ("k", 2), ("j", 3)], 2)
        b = ctx.parallelize([("k", "x")], 1)
        got = {k: (sorted(l), sorted(r)) for k, (l, r) in a.cogroup(b).collect()}
        assert got == {"k": ([1, 2], ["x"]), "j": ([3], [])}

    def test_copartitioned_join_is_narrow(self, ctx):
        """The D-RAPID optimization: identically partitioned inputs join
        without any new shuffle dependency."""
        part = HashPartitioner(4)
        a = ctx.parallelize([(i, "a") for i in range(20)], 3).partition_by(part)
        b = ctx.parallelize([(i, "b") for i in range(20)], 2).partition_by(part)
        # Force materialization of the partition_by shuffles.
        a.count()
        b.count()
        joined = a.join(b, partitioner=part)
        # Walk lineage: the cogroup node must have no ShuffleDependency.
        from repro.sparklet.rdd import CoGroupedRDD, ShuffleDependency

        node = joined
        while not isinstance(node, CoGroupedRDD):
            node = node.deps[0].rdd
        assert not any(isinstance(d, ShuffleDependency) for d in node.deps)
        assert dict(joined.collect()) == {i: ("a", "b") for i in range(20)}

    def test_uncopartitioned_join_needs_shuffles(self, ctx):
        from repro.sparklet.rdd import CoGroupedRDD, ShuffleDependency

        a = ctx.parallelize([(i, "a") for i in range(10)], 3)
        b = ctx.parallelize([(i, "b") for i in range(10)], 2)
        joined = a.join(b)
        node = joined
        while not isinstance(node, CoGroupedRDD):
            node = node.deps[0].rdd
        assert all(isinstance(d, ShuffleDependency) for d in node.deps)
        assert dict(joined.collect()) == {i: ("a", "b") for i in range(10)}


class TestSortByKey:
    def test_sorted_output(self, ctx):
        import random

        data = [(random.Random(5).randint(0, 100), i) for i in range(50)]
        random.Random(6).shuffle(data)
        got = ctx.parallelize(data, 4).sort_by_key().collect()
        keys = [k for k, _v in got]
        assert keys == sorted(keys)
