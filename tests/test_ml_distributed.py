"""Unit tests for the distributed RandomForest (future-work extension)."""

import numpy as np
import pytest

from repro.ml.distributed import DistributedRandomForest
from repro.ml.forest import RandomForest
from repro.sparklet import ClusterConfig, SparkletContext, simulate_job
from repro.sparklet.scheduler import TaskFailure


class TestDistributedRandomForest:
    def test_learns_like_local_forest(self, toy_classification):
        X, y = toy_classification
        ctx = SparkletContext(default_parallelism=4)
        dist = DistributedRandomForest(ctx, n_trees=9, seed=0).fit(X, y)
        local = RandomForest(n_trees=9, seed=0).fit(X, y)
        acc_dist = float((dist.predict(X) == y).mean())
        acc_local = float((local.predict(X) == y).mean())
        assert acc_dist > 0.9
        assert abs(acc_dist - acc_local) < 0.05

    def test_one_task_per_tree(self, toy_classification):
        X, y = toy_classification
        ctx = SparkletContext(default_parallelism=4)
        dist = DistributedRandomForest(ctx, n_trees=7, seed=1).fit(X, y)
        metrics = dist.training_metrics
        assert metrics.num_tasks == 7
        assert all(t.duration_s > 0 for s in metrics.stages for t in s.tasks)

    def test_cluster_simulation_projects_speedup(self, toy_classification):
        X, y = toy_classification
        ctx = SparkletContext(default_parallelism=4)
        dist = DistributedRandomForest(ctx, n_trees=16, seed=2).fit(X, y)
        job = dist.training_metrics
        one = simulate_job(job, ClusterConfig(num_executors=1)).elapsed_s
        eight = simulate_job(job, ClusterConfig(num_executors=8)).elapsed_s
        assert eight < one

    def test_predict_proba_normalized(self, toy_classification):
        X, y = toy_classification
        ctx = SparkletContext(default_parallelism=4)
        dist = DistributedRandomForest(ctx, n_trees=5, seed=3).fit(X, y)
        probs = dist.predict_proba(X[:8])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_survives_task_failures(self, toy_classification):
        X, y = toy_classification
        ctx = SparkletContext(default_parallelism=4)
        failed: set = set()

        def injector(stage_id, partition, attempt):
            if partition == 2 and partition not in failed:
                failed.add(partition)
                raise TaskFailure("tree task died")

        ctx.runtime.failure_injector = injector
        dist = DistributedRandomForest(ctx, n_trees=6, seed=4).fit(X, y)
        assert float((dist.predict(X) == y).mean()) > 0.9

    def test_validation(self, toy_classification):
        X, y = toy_classification
        ctx = SparkletContext(default_parallelism=4)
        with pytest.raises(ValueError):
            DistributedRandomForest(ctx, n_trees=0).fit(X, y)
        with pytest.raises(RuntimeError):
            DistributedRandomForest(ctx, n_trees=2).predict(X)
