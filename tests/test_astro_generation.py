"""Unit tests for population synthesis, pulse/noise/RFI generation."""

import numpy as np
import pytest

from repro.astro.dispersion import DMGrid
from repro.astro.population import Pulsar, b1853_like, synthesize_population
from repro.astro.pulses import effective_width_ms, generate_pulsar_spes
from repro.astro.rfi import (
    generate_noise_spes,
    generate_pulse_mimic_spes,
    generate_rfi_spes,
)


class TestPopulation:
    def test_deterministic_given_seed(self):
        a = synthesize_population(10, seed=3)
        b = synthesize_population(10, seed=3)
        assert a == b

    def test_rrat_count_deterministic(self):
        pop = synthesize_population(20, rrat_fraction=0.25, seed=1)
        assert sum(p.is_rrat for p in pop) == 5

    def test_dm_bounds_respected(self):
        pop = synthesize_population(50, max_dm=200.0, seed=2)
        assert all(2.0 <= p.dm <= 200.0 for p in pop)

    def test_names_unique(self):
        pop = synthesize_population(30, seed=4)
        assert len({p.name for p in pop}) == 30

    def test_dm_spans_alm_bins(self):
        pop = synthesize_population(60, max_dm=400.0, seed=5)
        dms = [p.dm for p in pop]
        assert any(d < 100 for d in dms)
        assert any(100 <= d < 175 for d in dms)
        assert any(d >= 175 for d in dms)

    def test_rrats_sporadic_and_bright(self):
        pop = synthesize_population(40, rrat_fraction=0.5, seed=6)
        rrats = [p for p in pop if p.is_rrat]
        normals = [p for p in pop if not p.is_rrat]
        assert max(p.pulse_fraction for p in rrats) < min(p.pulse_fraction for p in normals)
        assert np.mean([p.mean_snr for p in rrats]) > np.mean([p.mean_snr for p in normals])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthesize_population(0)
        with pytest.raises(ValueError):
            synthesize_population(5, rrat_fraction=1.5)

    def test_pulsar_validation(self):
        with pytest.raises(ValueError):
            Pulsar("bad", period_s=-1, dm=10, width_ms=5, mean_snr=10,
                   snr_sigma=0.2, pulse_fraction=0.5, is_rrat=False, sky_position="J")


class TestEffectiveWidth:
    def test_at_least_intrinsic(self):
        assert effective_width_ms(5.0, 0.0, 350.0, 100.0) >= 5.0

    def test_grows_with_dm(self):
        widths = [effective_width_ms(5.0, dm, 350.0, 100.0) for dm in (0, 100, 300)]
        assert widths == sorted(widths)

    def test_low_frequency_broadens_more(self):
        gbt = effective_width_ms(5.0, 200.0, 350.0, 100.0)
        palfa = effective_width_ms(5.0, 200.0, 1400.0, 300.0)
        assert gbt > palfa

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            effective_width_ms(0.0, 10.0, 350.0, 100.0)


class TestPulseGeneration:
    @pytest.fixture
    def grid(self):
        return DMGrid(max_dm=300.0, coarsen=10.0)

    def test_bright_pulsar_produces_spes(self, grid):
        rng = np.random.default_rng(0)
        spes, truths = generate_pulsar_spes(
            b1853_like(), 60.0, grid, 350.0, 100.0, rng=rng
        )
        assert len(spes) > 50
        assert len(truths) > 10

    def test_spe_cluster_peaks_near_true_dm(self, grid):
        rng = np.random.default_rng(1)
        pulsar = b1853_like()
        spes, truths = generate_pulsar_spes(pulsar, 60.0, grid, 350.0, 100.0, rng=rng)
        for truth in truths[:10]:
            members = [spes[i] for i in truth.spe_indices]
            peak = max(members, key=lambda s: s.snr)
            assert abs(peak.dm - pulsar.dm) < 10.0

    def test_spe_times_within_observation(self, grid):
        rng = np.random.default_rng(2)
        spes, _ = generate_pulsar_spes(b1853_like(), 30.0, grid, 350.0, 100.0, rng=rng)
        assert all(0.0 <= s.time_s < 30.0 for s in spes)

    def test_snrs_above_threshold(self, grid):
        rng = np.random.default_rng(3)
        spes, _ = generate_pulsar_spes(
            b1853_like(), 30.0, grid, 350.0, 100.0, snr_threshold=6.0, rng=rng
        )
        assert all(s.snr >= 6.0 for s in spes)

    def test_observation_shorter_than_period_yields_nothing(self, grid):
        slow = Pulsar("slow", period_s=100.0, dm=50.0, width_ms=5.0, mean_snr=20.0,
                      snr_sigma=0.2, pulse_fraction=1.0, is_rrat=False, sky_position="J")
        spes, truths = generate_pulsar_spes(slow, 10.0, grid, 350.0, 100.0)
        assert spes == [] and truths == []

    def test_rejects_bad_obs_length(self, grid):
        with pytest.raises(ValueError):
            generate_pulsar_spes(b1853_like(), 0.0, grid, 350.0, 100.0)

    def test_start_index_offsets_truth(self, grid):
        rng = np.random.default_rng(4)
        _spes, truths = generate_pulsar_spes(
            b1853_like(), 20.0, grid, 350.0, 100.0, rng=rng, start_index=1000
        )
        assert all(min(t.spe_indices) >= 1000 for t in truths)


class TestNoiseAndRFI:
    @pytest.fixture
    def grid(self):
        return DMGrid(max_dm=300.0, coarsen=10.0)

    def test_noise_cluster_count_scales(self, grid):
        few = generate_noise_spes(5, 60.0, grid, rng=np.random.default_rng(0))
        many = generate_noise_spes(50, 60.0, grid, rng=np.random.default_rng(0))
        assert len(many) > len(few)

    def test_noise_snr_mostly_weak(self, grid):
        spes = generate_noise_spes(100, 60.0, grid, rng=np.random.default_rng(1))
        snrs = np.array([s.snr for s in spes])
        assert np.median(snrs) < 7.0

    def test_rfi_strongest_at_low_dm(self, grid):
        spes = generate_rfi_spes(10, 60.0, grid, rng=np.random.default_rng(2))
        low = [s.snr for s in spes if s.dm < 20]
        high = [s.snr for s in spes if s.dm > 100]
        assert low and np.mean(low) > (np.mean(high) if high else 0.0)

    def test_mimics_have_peaked_profiles(self, grid):
        spes = generate_pulse_mimic_spes(1, 60.0, grid, rng=np.random.default_rng(3))
        if len(spes) >= 5:
            snrs = np.array([s.snr for s in spes])
            # Peak visibly exceeds the wings.
            assert snrs.max() > np.median(snrs) + 1.0

    def test_all_generators_respect_time_bounds(self, grid):
        rng = np.random.default_rng(4)
        for gen in (generate_noise_spes, generate_rfi_spes, generate_pulse_mimic_spes):
            spes = gen(10, 30.0, grid, rng=rng)
            assert all(0.0 <= s.time_s < 30.0 for s in spes)
