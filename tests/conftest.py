"""Shared fixtures: small synthetic datasets, DFS/Sparklet instances.

Everything here is deliberately tiny — substrate behaviour is what the unit
tests probe; the scaled experiments live in ``benchmarks/``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.astro import GBT350DRIFT, generate_observation, synthesize_population
from repro.astro.benchmark import Benchmark, build_benchmark
from repro.astro.population import b1853_like
from repro.dfs import DataNode, DFSClient
from repro.sparklet import SparkletContext


def pytest_collection_modifyitems(config, items):
    """Optionally shuffle test order: ``REPRO_TEST_SHUFFLE=<seed>``.

    The suite must not depend on collection order (shared caches, env
    leakage, module state); CI runs one shuffled pass to enforce that.
    """
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if seed:
        random.Random(int(seed)).shuffle(items)


@pytest.fixture(scope="session", autouse=True)
def _memo_env_session_isolation(tmp_path_factory):
    """Session-level floor under the per-test isolation below.

    Class/module/session-scoped fixtures are set up *before* any
    function-scoped autouse fixture runs, so a pipeline run inside one
    would otherwise fall back to the shared ``$TMPDIR/repro-memo`` default
    — warm with entries from previous pytest invocations (or other users
    on a shared machine).  Pointing the env at a per-invocation directory
    here guarantees every run in this process starts from a cold store.
    """
    old = os.environ.get("REPRO_MEMO_DIR")
    os.environ["REPRO_MEMO_DIR"] = str(tmp_path_factory.mktemp("memo-session"))
    yield
    if old is None:
        os.environ.pop("REPRO_MEMO_DIR", None)
    else:
        os.environ["REPRO_MEMO_DIR"] = old


@pytest.fixture(autouse=True)
def _memo_env_isolation(tmp_path, monkeypatch):
    """Point memoization at a per-test directory, never at a shared one.

    Two hazards this removes: (a) ``REPRO_MEMO=1`` suite runs would share
    one tmpdir store across every test (and across *users* on a shared
    machine, since the default lives under ``$TMPDIR``); (b) a test that
    sets ``REPRO_MEMO`` itself would leak it into later tests.
    """
    monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "memo"))
    yield


@pytest.fixture
def memo_dir(tmp_path):
    """A fresh private memoization directory (for explicit MemoConfig use)."""
    d = tmp_path / "memo-explicit"
    d.mkdir()
    return str(d)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def dfs() -> DFSClient:
    nodes = [DataNode(f"dn{i}", capacity=50_000_000) for i in range(4)]
    return DFSClient(nodes, replication=2, block_size=4096, seed=0)


@pytest.fixture
def ctx():
    """A context closed at teardown: under ``REPRO_BACKEND=parallel`` an
    open context pins shared-memory segments that the shm-hygiene tests
    would report as leaks."""
    c = SparkletContext(app_name="test", default_parallelism=4)
    yield c
    c.close()


@pytest.fixture
def serial_ctx() -> SparkletContext:
    """Explicitly in-process execution, regardless of REPRO_BACKEND.

    For tests that observe driver-side effects of task closures (lists
    appended to from ``map``/``foreach``) — semantics that only hold when
    tasks run in the driver process.
    """
    c = SparkletContext(app_name="test", default_parallelism=4,
                        backend="serial")
    yield c
    c.close()


@pytest.fixture(scope="session")
def observation():
    """One observation of a bright pulsar plus noise/RFI (session-cached)."""
    return generate_observation(
        GBT350DRIFT, [b1853_like()], seed=3, n_noise_clusters=40, n_rfi_bursts=2,
        n_pulse_mimics=10, obs_length_s=60.0,
    )


@pytest.fixture(scope="session")
def small_population():
    return synthesize_population(8, rrat_fraction=0.25, max_dm=300.0, seed=7)


@pytest.fixture(scope="session")
def small_benchmark() -> Benchmark:
    """A small but fully-featured labeled benchmark (session-cached)."""
    return build_benchmark(
        GBT350DRIFT,
        n_pulsars=12,
        target_positive=150,
        target_negative=700,
        rrat_fraction=0.25,
        seed=0,
    )


@pytest.fixture(scope="session")
def toy_classification():
    """Separable 3-class blobs with noise dimensions: (X, y)."""
    gen = np.random.default_rng(0)
    per = 120
    X = np.vstack(
        [
            gen.normal([0.0, 0.0], 1.0, (per, 2)),
            gen.normal([5.0, 0.0], 1.0, (per, 2)),
            gen.normal([2.5, 5.0], 1.0, (per, 2)),
        ]
    )
    X = np.hstack([X, gen.normal(0.0, 1.0, (3 * per, 4))])
    y = np.repeat([0, 1, 2], per)
    shuffle = gen.permutation(3 * per)
    return X[shuffle], y[shuffle]
