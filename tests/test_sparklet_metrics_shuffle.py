"""Direct unit tests for metrics estimation and the shuffle manager."""

import pytest

from repro.sparklet.metrics import JobMetrics, StageMetrics, TaskMetrics, estimate_bytes
from repro.sparklet.shuffle import ShuffleManager


class TestEstimateBytes:
    def test_empty(self):
        assert estimate_bytes([]) == 0

    def test_small_list_exact_regime(self):
        small = estimate_bytes([1, 2, 3])
        assert small > 0

    def test_scales_roughly_linearly(self):
        base = [("key-%d" % i, float(i)) for i in range(100)]
        one = estimate_bytes(base)
        ten = estimate_bytes(base * 10)
        assert 5 * one < ten < 20 * one

    def test_larger_records_cost_more(self):
        small = estimate_bytes(["x"] * 200)
        big = estimate_bytes(["x" * 500] * 200)
        assert big > 10 * small


class TestShuffleManager:
    def test_write_then_fetch(self):
        sm = ShuffleManager()
        written = sm.write(1, 0, [("a", 1), ("b", 2)])
        assert written > 0
        assert sm.fetch(1, 0) == [("a", 1), ("b", 2)]
        assert sm.fetch_bytes(1, 0) == written

    def test_appends_across_map_tasks(self):
        sm = ShuffleManager()
        sm.write(1, 0, [("a", 1)])
        sm.write(1, 0, [("a", 2)])
        assert sm.fetch(1, 0) == [("a", 1), ("a", 2)]

    def test_buckets_isolated(self):
        sm = ShuffleManager()
        sm.write(1, 0, [("a", 1)])
        sm.write(1, 1, [("b", 2)])
        sm.write(2, 0, [("c", 3)])
        assert sm.fetch(1, 1) == [("b", 2)]
        assert sm.fetch(2, 0) == [("c", 3)]
        assert sm.fetch(2, 1) == []

    def test_empty_write_is_noop(self):
        sm = ShuffleManager()
        assert sm.write(1, 0, []) == 0
        assert not sm.has_shuffle(1)

    def test_explicit_nbytes_recorded(self):
        sm = ShuffleManager()
        sm.write(1, 0, [("a", 1)], nbytes=12345)
        assert sm.fetch_bytes(1, 0) == 12345

    def test_clear(self):
        sm = ShuffleManager()
        sm.write(1, 0, [("a", 1)])
        sm.clear()
        assert sm.fetch(1, 0) == []
        assert not sm.has_shuffle(1)


class TestMetricsAggregates:
    def _stage(self, durations, stage_id=0, shuffle_write=0):
        stage = StageMetrics(stage_id, "s")
        for i, d in enumerate(durations):
            stage.tasks.append(TaskMetrics(stage_id=stage_id, partition=i,
                                           duration_s=d, bytes_in=100,
                                           shuffle_write_bytes=shuffle_write))
        return stage

    def test_stage_totals(self):
        stage = self._stage([1.0, 2.0, 3.0], shuffle_write=10)
        assert stage.total_task_seconds == pytest.approx(6.0)
        assert stage.max_task_seconds == pytest.approx(3.0)
        assert stage.total_bytes_in == 300
        assert stage.total_shuffle_write == 30

    def test_empty_stage(self):
        stage = StageMetrics(0, "empty")
        assert stage.max_task_seconds == 0.0
        assert stage.total_task_seconds == 0.0

    def test_job_merge(self):
        a = JobMetrics(0)
        a.stages.append(self._stage([1.0], stage_id=0))
        b = JobMetrics(1)
        b.stages.append(self._stage([2.0, 2.0], stage_id=1))
        merged = a.merge(b)
        assert merged.num_tasks == 3
        assert merged.total_task_seconds == pytest.approx(5.0)
        # merge does not mutate the originals
        assert a.num_tasks == 1 and b.num_tasks == 2
