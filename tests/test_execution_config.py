"""The unified execution surface: KernelConfig/ExecutionConfig semantics.

Covers the api-redesign contract end to end: validation of the frozen
records, the environment < config < CLI resolution order, the deprecated
loose-keyword shim on the facade configs (with output identity between the
old and new spellings), the numba-absent import fallback, kernel provenance
in the memo lineage hash, the ``kernel_selected`` observability event and
its trace-report section, and the CLI flag plumbing.
"""

import importlib
import json
import sys

import numpy as np
import pytest

from repro.execution import (
    BACKEND_ENV,
    KERNEL_IMPL_ENV,
    KERNEL_METHOD_ENV,
    WORKERS_ENV,
    ExecutionConfig,
    KernelConfig,
    env_execution_config,
    resolve_execution,
)


class TestKernelConfigValidation:
    def test_defaults_resolve(self, monkeypatch):
        for var in (KERNEL_METHOD_ENV, KERNEL_IMPL_ENV):
            monkeypatch.delenv(var, raising=False)
        k = KernelConfig().resolved()
        assert k.method == "direct"
        assert k.impl == "auto"
        assert k.boxcar == "cumsum"

    def test_boxcar_couples_to_method(self, monkeypatch):
        for var in (KERNEL_METHOD_ENV, KERNEL_IMPL_ENV):
            monkeypatch.delenv(var, raising=False)
        assert KernelConfig(method="tree").resolved().boxcar == "decomposed"
        assert KernelConfig(method="subband").resolved().boxcar == "decomposed"
        assert KernelConfig(method="direct").resolved().boxcar == "cumsum"
        # An explicit boxcar always wins over the coupling.
        assert KernelConfig(method="tree", boxcar="cumsum").resolved().boxcar == "cumsum"

    @pytest.mark.parametrize("bad", [
        dict(method="fft"),
        dict(impl="cuda"),
        dict(boxcar="fft"),
        dict(n_subbands=0),
        dict(n_subbands=-2),
        dict(tol_samples=-1.0),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            KernelConfig(**bad)

    @pytest.mark.parametrize("bad", [
        dict(backend="gpu"),
        dict(num_workers=0),
        dict(io_wait_s_per_mb=-0.1),
    ])
    def test_invalid_execution_rejected(self, bad):
        with pytest.raises(ValueError):
            ExecutionConfig(**bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            KernelConfig().method = "tree"
        with pytest.raises(Exception):
            ExecutionConfig().backend = "parallel"


class TestEnvResolution:
    def test_env_fills_unset_fields(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "simulated")
        monkeypatch.setenv(WORKERS_ENV, "5")
        monkeypatch.setenv(KERNEL_METHOD_ENV, "tree")
        monkeypatch.setenv(KERNEL_IMPL_ENV, "numpy")
        e = env_execution_config()
        assert e.backend == "simulated"
        assert e.num_workers == 5
        assert e.kernel.method == "tree"
        assert e.kernel.impl == "numpy"

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "simulated")
        monkeypatch.setenv(KERNEL_METHOD_ENV, "tree")
        r = resolve_execution(
            ExecutionConfig(backend="serial",
                            kernel=KernelConfig(method="subband"))
        )
        assert r.backend == "serial"
        assert r.kernel.method == "subband"

    def test_env_applies_when_config_silent(self, monkeypatch):
        monkeypatch.setenv(KERNEL_METHOD_ENV, "subband")
        monkeypatch.delenv(KERNEL_IMPL_ENV, raising=False)
        r = resolve_execution(ExecutionConfig())
        assert r.kernel.method == "subband"
        assert r.kernel.impl == "auto"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_METHOD_ENV, "warp")
        with pytest.raises(ValueError):
            env_execution_config()


class TestFacadeShim:
    def test_loose_keywords_warn_and_fold(self):
        from repro.api import PipelineConfig

        with pytest.warns(DeprecationWarning):
            old = PipelineConfig(backend="serial", num_workers=3)
        new = PipelineConfig(
            execution=ExecutionConfig(backend="serial", num_workers=3)
        )
        assert old == new
        assert old.backend is None and old.num_workers is None
        assert old.execution.backend == "serial"

    def test_serving_config_folds_too(self):
        from repro.api import ServingConfig, TenantConfig

        with pytest.warns(DeprecationWarning):
            cfg = ServingConfig(tenants=(TenantConfig(tenant_id="t0"),),
                                backend="serial")
        assert cfg.execution.backend == "serial"
        assert cfg.backend is None

    def test_conflicting_spellings_rejected(self):
        from repro.api import PipelineConfig

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                PipelineConfig(backend="serial",
                               execution=ExecutionConfig(backend="parallel"))

    def test_old_and_new_spellings_identical_output(self):
        """Facade identity: the deprecated keywords and the ExecutionConfig
        spelling drive byte-identical runs on the same seed."""
        from repro.api import PipelineConfig, run_pipeline

        with pytest.warns(DeprecationWarning):
            old_cfg = PipelineConfig(seed=7, n_pulsars=3, n_observations=2,
                                     backend="serial")
        new_cfg = PipelineConfig(seed=7, n_pulsars=3, n_observations=2,
                                 execution=ExecutionConfig(backend="serial"))
        a = run_pipeline(old_cfg)
        b = run_pipeline(new_cfg)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_default_execution_identical_to_no_execution(self):
        """A default ExecutionConfig adds no behaviour: same output as a
        config that never mentions execution at all."""
        from repro.api import PipelineConfig, run_pipeline

        a = run_pipeline(PipelineConfig(seed=3, n_pulsars=3, n_observations=2))
        b = run_pipeline(PipelineConfig(seed=3, n_pulsars=3, n_observations=2,
                                        execution=ExecutionConfig()))
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)


class TestNumbaFallback:
    def test_absent_numba_disables_cleanly(self, monkeypatch):
        """With numba unimportable, the shim module must land with
        HAS_NUMBA=False and None kernels — and resolve_impl must degrade
        both 'auto' and an explicit 'numba' request to 'numpy'."""
        import repro.astro._kernels_numba as shim

        monkeypatch.setitem(sys.modules, "numba", None)
        try:
            reloaded = importlib.reload(shim)
            assert reloaded.HAS_NUMBA is False
            assert reloaded.dedisperse_accumulate is None
            assert reloaded.scatter_add_shifted is None
            assert reloaded.best_z_cumsum is None
        finally:
            monkeypatch.delitem(sys.modules, "numba", raising=False)
            importlib.reload(shim)

    def test_resolve_impl_degrades_when_absent(self, monkeypatch):
        import repro.astro.kernels as kernels

        monkeypatch.setattr(kernels, "HAS_NUMBA", False)
        assert kernels.resolve_impl("auto") == "numpy"
        assert kernels.resolve_impl("numba") == "numpy"
        assert kernels.resolve_impl("numpy") == "numpy"
        monkeypatch.setattr(kernels, "HAS_NUMBA", True)
        assert kernels.resolve_impl("auto") == "numba"
        assert kernels.resolve_impl("numba") == "numba"

    def test_numba_impl_request_still_computes(self):
        """impl='numba' must produce correct output whether or not numba is
        actually importable (falls back to the numpy path if not)."""
        from repro.astro.kernels import dedisperse_batch

        rng = np.random.default_rng(0)
        data = rng.normal(size=(8, 128))
        edges = np.linspace(300.0, 400.0, 9)
        freqs = 0.5 * (edges[:-1] + edges[1:])
        dms = [10.0, 40.0, 90.0]
        a = dedisperse_batch(data, freqs, 400.0, 1e-3, dms)
        b = dedisperse_batch(data, freqs, 400.0, 1e-3, dms, impl="numba")
        assert np.array_equal(a, b)


class TestMemoProvenance:
    def test_kernel_method_perturbs_lineage_key(self):
        """Different kernel methods must hash to different memo keys —
        tolerance-law differences are semantic, not cosmetic."""
        from repro.astro.survey import GBT350DRIFT
        from repro.core.pipeline import SinglePulsePipeline
        from repro.memo.hashing import config_digest

        digests = set()
        for method in ("direct", "subband", "tree"):
            pipe = SinglePulsePipeline.from_config(
                survey=GBT350DRIFT,
                execution=ExecutionConfig(kernel=KernelConfig(method=method)),
            )
            digests.add(config_digest(pipe._provenance_config()))
        assert len(digests) == 3

    def test_loose_and_unified_spellings_same_key(self):
        """backend is an operational knob: old and new spellings of the
        same semantics must produce the same provenance digest."""
        from repro.astro.survey import GBT350DRIFT
        from repro.core.pipeline import SinglePulsePipeline
        from repro.memo.hashing import config_digest

        a = SinglePulsePipeline.from_config(survey=GBT350DRIFT, backend="serial")
        b = SinglePulsePipeline.from_config(
            survey=GBT350DRIFT, execution=ExecutionConfig(backend="serial")
        )
        assert config_digest(a._provenance_config()) == config_digest(
            b._provenance_config()
        )


class TestKernelSelectedObservability:
    def _run_with_trace(self, tmp_path, **kernel_fields):
        from repro.api import PipelineConfig, run_pipeline
        from repro.obs import ObsConfig

        log = tmp_path / "trace.jsonl"
        cfg = PipelineConfig(
            seed=1, n_pulsars=3, n_observations=2,
            obs_config=ObsConfig(enabled=True, event_log_path=str(log)),
            execution=ExecutionConfig(kernel=KernelConfig(**kernel_fields)),
        )
        run_pipeline(cfg)
        return log

    def test_event_emitted_with_resolution_fields(self, tmp_path):
        from repro.obs.events import KERNEL_SELECTED, read_events

        log = self._run_with_trace(tmp_path, method="tree", impl="numpy")
        events = [e for e in read_events(log) if e["type"] == KERNEL_SELECTED]
        assert events
        ev = events[0]
        assert ev["method"] == "tree"
        assert ev["impl"] == "numpy"
        assert ev["impl_requested"] == "numpy"
        assert ev["boxcar"] == "decomposed"
        assert ev["source"] == "pipeline"

    def test_trace_report_surfaces_kernels_section(self, tmp_path):
        from repro.obs import build_report, render_text

        log = self._run_with_trace(tmp_path, method="subband")
        report = build_report(str(log))
        assert report["kernels"]["selected"]
        sel = report["kernels"]["selected"][0]
        assert sel["method"] == "subband"
        text = render_text(report)
        assert "front-end kernels" in text
        assert "subband" in text

    def test_fallback_visible_in_event(self, tmp_path, monkeypatch):
        """Requesting numba without numba present records the degradation:
        impl_requested='numba' but impl='numpy'."""
        import repro.astro.kernels as kernels
        from repro.obs.events import KERNEL_SELECTED, read_events

        monkeypatch.setattr(kernels, "HAS_NUMBA", False)
        log = self._run_with_trace(tmp_path, impl="numba")
        ev = [e for e in read_events(log) if e["type"] == KERNEL_SELECTED][0]
        assert ev["impl_requested"] == "numba"
        assert ev["impl"] == "numpy"


class TestCliPlumbing:
    def test_kernel_flags_accepted(self, capsys):
        from repro.cli import main

        rc = main([
            "identify", "--pulsars", "2", "--observations", "2",
            "--kernel-method", "tree", "--kernel-impl", "numpy",
        ])
        assert rc == 0
        assert "single pulses identified" in capsys.readouterr().out

    def test_kernel_flags_reach_the_event_log(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.events import KERNEL_SELECTED, read_events

        log = tmp_path / "t.jsonl"
        rc = main([
            "identify", "--pulsars", "2", "--observations", "2",
            "--kernel-method", "subband", "--trace-out", str(log),
        ])
        assert rc == 0
        capsys.readouterr()
        ev = [e for e in read_events(log) if e["type"] == KERNEL_SELECTED]
        assert ev and ev[0]["method"] == "subband"

    def test_cli_beats_env(self, tmp_path, capsys, monkeypatch):
        """Resolution order env < config < CLI: the flag wins."""
        from repro.cli import main
        from repro.obs.events import KERNEL_SELECTED, read_events

        monkeypatch.setenv(KERNEL_METHOD_ENV, "subband")
        log = tmp_path / "t.jsonl"
        rc = main([
            "identify", "--pulsars", "2", "--observations", "2",
            "--kernel-method", "tree", "--trace-out", str(log),
        ])
        assert rc == 0
        capsys.readouterr()
        ev = [e for e in read_events(log) if e["type"] == KERNEL_SELECTED]
        assert ev and ev[0]["method"] == "tree"

    def test_invalid_flag_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["identify", "--kernel-method", "fft"])


class TestFrontendSearchIntegration:
    def test_survey_frontend_consistent_across_methods(self):
        """The survey-level front end finds the same brightest candidate
        under every kernel method (tolerance-law displacements are small
        against the DM-grid spacing)."""
        from repro.astro.filterbank import InjectedPulse
        from repro.astro.survey import GBT350DRIFT, frontend_single_pulse_search

        pulse = InjectedPulse(time_s=3.0, dm=60.0, width_ms=16.0, amplitude=1.8)
        results = {}
        for method in ("direct", "subband", "tree"):
            _fb, spes = frontend_single_pulse_search(
                GBT350DRIFT, [pulse], duration_s=6.0, n_channels=32,
                sample_time_s=2e-3,
                kernel=KernelConfig(method=method, impl="numpy"),
            )
            assert spes, method
            best = max(spes, key=lambda s: s.snr)
            results[method] = best
        for method, best in results.items():
            assert abs(best.dm - pulse.dm) <= 10.0, method
            assert abs(best.time_s - pulse.time_s) <= 0.5, method

    def test_search_with_default_kernel_matches_legacy(self):
        """kernel=KernelConfig(method='direct', boxcar='cumsum') is the
        legacy path: SPE output must be byte-identical to calling the
        search with no kernel at all."""
        from repro.astro.filterbank import (
            InjectedPulse,
            single_pulse_search,
            synthesize_filterbank,
        )

        fb = synthesize_filterbank(
            duration_s=4.0, n_channels=32, sample_time_s=2e-3,
            pulses=[InjectedPulse(time_s=2.0, dm=45.0, width_ms=10.0,
                                  amplitude=1.5)],
            seed=2,
        )
        trials = np.arange(30.0, 60.0, 1.5)
        legacy = single_pulse_search(fb, trials, snr_threshold=6.0)
        configured = single_pulse_search(
            fb, trials, snr_threshold=6.0,
            kernel=KernelConfig(method="direct", impl="numpy",
                                boxcar="cumsum"),
        )
        assert json.dumps([s.__dict__ for s in legacy], default=str) == \
            json.dumps([s.__dict__ for s in configured], default=str)
