"""Unit tests for Dataset and classification metrics."""

import numpy as np
import pytest

from repro.ml.dataset import Dataset
from repro.ml.metrics import (
    BinaryScores,
    ClassificationReport,
    binary_scores,
    confusion_matrix,
    per_class_scores,
    scores_from_confusion,
)


class TestDataset:
    def test_basic_construction(self):
        ds = Dataset(np.zeros((4, 3)), np.array([0, 1, 0, 1]))
        assert ds.n_instances == 4
        assert ds.n_features == 3
        assert ds.n_classes == 2
        assert ds.feature_names == ("f0", "f1", "f2")

    def test_class_counts(self):
        ds = Dataset(np.zeros((5, 2)), np.array([0, 0, 1, 1, 1]))
        assert list(ds.class_counts()) == [2, 3]

    def test_imbalance_ratio(self):
        ds = Dataset(np.zeros((10, 1)), np.array([0] * 8 + [1] * 2))
        assert ds.imbalance_ratio() == pytest.approx(4.0)

    def test_subset_and_select_features(self):
        ds = Dataset(np.arange(12.0).reshape(4, 3), np.array([0, 1, 0, 1]),
                     feature_names=("a", "b", "c"))
        sub = ds.subset(np.array([0, 2]))
        assert sub.n_instances == 2
        sel = ds.select_features([2, 0])
        assert sel.feature_names == ("c", "a")
        assert sel.X[0, 0] == 2.0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros(3), np.array([0, 1, 0]))  # 1-D X
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.array([0, 1]))  # length mismatch
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([-1, 0]))  # negative label
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0, 1]), feature_names=("only_one",))


class TestConfusionMatrix:
    def test_counts(self):
        cm = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2)
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_rows_sum_to_class_counts(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 100)
        y_pred = rng.integers(0, 4, 100)
        cm = confusion_matrix(y_true, y_pred, 4)
        assert np.array_equal(cm.sum(axis=1), np.bincount(y_true, minlength=4))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 3]), np.array([0, 1]), 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestBinaryScores:
    def test_equations_2_3_4(self):
        s = BinaryScores(tp=8, tn=80, fp=2, fn=2)
        assert s.recall == pytest.approx(0.8)
        assert s.precision == pytest.approx(0.8)
        assert s.f_measure == pytest.approx(0.8)
        assert s.accuracy == pytest.approx(88 / 92)

    def test_degenerate_zero_denominators(self):
        s = BinaryScores(tp=0, tn=10, fp=0, fn=0)
        assert s.recall == 0.0
        assert s.precision == 0.0
        assert s.f_measure == 0.0

    def test_binary_scores_from_arrays(self):
        s = binary_scores(np.array([1, 1, 0, 0]), np.array([1, 0, 0, 1]))
        assert (s.tp, s.fn, s.tn, s.fp) == (1, 1, 1, 1)

    def test_f_is_harmonic_mean(self):
        s = BinaryScores(tp=9, tn=50, fp=1, fn=3)
        p, r = s.precision, s.recall
        assert s.f_measure == pytest.approx(2 * p * r / (p + r))


class TestCollapsedScores:
    def test_multiclass_collapse(self):
        # 3 classes: 0 = non-pulsar, 1/2 = pulsar subclasses.
        y_true = np.array([0, 0, 1, 2, 2])
        y_pred = np.array([0, 1, 2, 2, 0])  # subclass confusion 1→2 is still TP
        cm = confusion_matrix(y_true, y_pred, 3)
        s = scores_from_confusion(cm, positive_classes=[1, 2])
        assert s.tp == 2  # (1→2) and (2→2)
        assert s.fp == 1  # (0→1)
        assert s.fn == 1  # (2→0)
        assert s.tn == 1

    def test_per_class_scores(self):
        cm = np.array([[5, 1], [2, 8]])
        scores = per_class_scores(cm)
        assert scores[0]["recall"] == pytest.approx(5 / 6)
        assert scores[1]["precision"] == pytest.approx(8 / 9)


class TestClassificationReport:
    def test_aggregation(self):
        rep = ClassificationReport()
        rep.add_fold(BinaryScores(8, 80, 2, 2), train_time_s=1.0,
                     fold_confusion=np.eye(2, dtype=int))
        rep.add_fold(BinaryScores(9, 79, 1, 3), train_time_s=3.0,
                     fold_confusion=np.eye(2, dtype=int))
        assert rep.recall == pytest.approx((0.8 + 0.75) / 2)
        assert rep.train_time_s == pytest.approx(4.0)
        assert rep.median_train_time_s == pytest.approx(2.0)
        assert rep.confusion.tolist() == [[2, 0], [0, 2]]

    def test_empty_report(self):
        rep = ClassificationReport()
        assert rep.recall == 0.0
        assert rep.train_time_s == 0.0

    def test_summary_format(self):
        rep = ClassificationReport()
        rep.add_fold(BinaryScores(1, 1, 0, 0), 0.5)
        assert "Recall=1.000" in rep.summary()
