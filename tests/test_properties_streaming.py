"""Property test: the streamed≡offline law holds across the knob space.

Hypothesis draws (seed, batch interval, arrival rate) triples and checks
that ``run_streaming`` reproduces ``run_pipeline`` byte-for-byte every
time.  The offline side is computed once per seed and cached — only the
streaming side varies within a seed.

One drawn corner is pinned via ``@example``: a slow-arrival run whose
widest cluster spans at least three micro-batches, so the suite always
exercises genuinely cross-batch state (not just the law on easy splits).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, example, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.api import PipelineConfig, StreamingConfig, run_pipeline, run_streaming  # noqa: E402
from repro.streaming import canonical_ml_text  # noqa: E402

_OFFLINE_CACHE: dict[int, str] = {}


def _offline_text(seed: int) -> str:
    if seed not in _OFFLINE_CACHE:
        result = run_pipeline(PipelineConfig(n_pulsars=3, n_observations=1, seed=seed))
        _OFFLINE_CACHE[seed] = canonical_ml_text(result.drapid.pulse_batch)
    return _OFFLINE_CACHE[seed]


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=3),
    batch_interval_s=st.sampled_from([0.25, 0.5, 1.0]),
    arrival_rate=st.sampled_from([150.0, 600.0, 2400.0]),
)
@example(seed=11, batch_interval_s=0.25, arrival_rate=120.0)  # span >= 3 case
def test_streamed_output_matches_offline(seed, batch_interval_s, arrival_rate):
    result = run_streaming(StreamingConfig(
        pipeline=PipelineConfig(n_pulsars=3, n_observations=1, seed=seed),
        batch_interval_s=batch_interval_s,
        arrival_rate=arrival_rate,
        checkpoint_interval=4,
    ))
    if seed == 11 and arrival_rate == 120.0:
        assert result.max_batches_spanned >= 3
    assert result.canonical_ml_text() == _offline_text(seed)
