"""Unit tests for the six learners (Table 5)."""

import numpy as np
import pytest

from repro.ml import J48, LEARNERS, MLP, PART, SMO, JRip, RandomForest


def accuracy(clf, X, y):
    return float((clf.predict(X) == y).mean())


@pytest.fixture
def binary_blobs():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 1, (80, 3)), rng.normal(4, 1, (80, 3))])
    y = np.repeat([0, 1], 80)
    order = rng.permutation(160)
    return X[order], y[order]


ALL_LEARNERS = [
    ("J48", lambda: J48()),
    ("JRip", lambda: JRip()),
    ("PART", lambda: PART()),
    ("RF", lambda: RandomForest(n_trees=10, seed=0)),
    ("SMO", lambda: SMO(max_passes=2, seed=0)),
    ("MPN", lambda: MLP(epochs=60, seed=0)),
]


class TestCommonContract:
    @pytest.mark.parametrize("name,factory", ALL_LEARNERS)
    def test_learns_separable_binary(self, name, factory, binary_blobs):
        X, y = binary_blobs
        clf = factory().fit(X, y)
        assert accuracy(clf, X, y) > 0.9, name

    @pytest.mark.parametrize("name,factory", ALL_LEARNERS)
    def test_learns_multiclass(self, name, factory, toy_classification):
        X, y = toy_classification
        clf = factory().fit(X, y)
        assert accuracy(clf, X, y) > 0.85, name

    @pytest.mark.parametrize("name,factory", ALL_LEARNERS)
    def test_predict_before_fit_raises(self, name, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((2, 3)))

    @pytest.mark.parametrize("name,factory", ALL_LEARNERS)
    def test_rejects_bad_shapes(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((3, 2)), np.zeros(4, dtype=int))

    @pytest.mark.parametrize("name,factory", ALL_LEARNERS)
    def test_rejects_empty(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    @pytest.mark.parametrize("name,factory", ALL_LEARNERS)
    def test_single_class_training(self, name, factory):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.zeros(20, dtype=int)
        clf = factory().fit(X, y)
        assert np.all(clf.predict(X) == 0), name

    def test_registry_names_match_paper(self):
        assert set(LEARNERS) == {"MPN", "SMO", "JRip", "J48", "PART", "RF"}


class TestJ48:
    def test_pruning_reduces_leaves(self, binary_blobs):
        X, y = binary_blobs
        rng = np.random.default_rng(1)
        noisy_y = y.copy()
        flip = rng.random(y.size) < 0.15
        noisy_y[flip] = 1 - noisy_y[flip]
        unpruned = J48(prune=False).fit(X, noisy_y)
        pruned = J48(prune=True).fit(X, noisy_y)
        assert pruned.n_leaves <= unpruned.n_leaves

    def test_max_depth_respected(self, toy_classification):
        X, y = toy_classification
        tree = J48(max_depth=2, prune=False).fit(X, y)
        assert tree.depth <= 2

    def test_decision_path_consistent_with_predict(self, binary_blobs):
        X, y = binary_blobs
        tree = J48().fit(X, y)
        for i in range(5):
            path = tree.decision_path(X[i])
            for feat, thr, went_left in path:
                assert (X[i, feat] <= thr) == went_left

    def test_predict_proba_rows_sum_to_one(self, toy_classification):
        X, y = toy_classification
        tree = J48().fit(X, y)
        probs = tree.predict_proba(X[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestRandomForest:
    def test_more_trees_not_worse(self, toy_classification):
        X, y = toy_classification
        small = RandomForest(n_trees=1, seed=0).fit(X, y)
        big = RandomForest(n_trees=25, seed=0).fit(X, y)
        assert accuracy(big, X, y) >= accuracy(small, X, y) - 0.05

    def test_deterministic_given_seed(self, binary_blobs):
        X, y = binary_blobs
        a = RandomForest(n_trees=5, seed=7).fit(X, y).predict(X)
        b = RandomForest(n_trees=5, seed=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_predict_proba_normalized(self, toy_classification):
        X, y = toy_classification
        rf = RandomForest(n_trees=9, seed=0).fit(X, y)
        probs = rf.predict_proba(X[:5])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stats_reports_size(self, binary_blobs):
        X, y = binary_blobs
        rf = RandomForest(n_trees=3, seed=0).fit(X, y)
        st = rf.stats()
        assert st["nodes"] >= 1 and st["depth"] >= 1

    def test_invalid_tree_count(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=0).fit(np.zeros((4, 2)), np.zeros(4, dtype=int))


class TestRules:
    def test_jrip_rules_predict_minority_first(self, binary_blobs):
        X, y = binary_blobs
        clf = JRip(seed=0).fit(X, y)
        assert clf.n_rules >= 1
        # Rules target non-default classes; the default covers the rest.
        assert all(r.prediction != clf.default_class_ for r in clf.rules_)

    def test_jrip_handles_imbalance(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(0, 1, (190, 2)), rng.normal(5, 0.5, (10, 2))])
        y = np.array([0] * 190 + [1] * 10)
        clf = JRip(seed=0).fit(X, y)
        preds = clf.predict(X)
        assert (preds[y == 1] == 1).mean() > 0.7

    def test_part_extracts_rules(self, toy_classification):
        X, y = toy_classification
        clf = PART().fit(X, y)
        assert clf.n_rules >= 2

    def test_rule_str_renders(self, binary_blobs):
        X, y = binary_blobs
        clf = JRip(seed=0).fit(X, y)
        text = str(clf.rules_[0])
        assert "=> class" in text


class TestSMO:
    def test_ovo_machine_count_quadratic(self, toy_classification):
        X, y = toy_classification
        clf = SMO(max_passes=1, seed=0).fit(X, y)
        assert clf.n_machines == 3  # C(3,2)

    def test_linear_kernel_separable(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(-2, 0.5, (40, 2)), rng.normal(2, 0.5, (40, 2))])
        y = np.repeat([0, 1], 40)
        clf = SMO(kernel="linear", max_passes=3, seed=0).fit(X, y)
        assert accuracy(clf, X, y) > 0.95

    def test_unknown_kernel_rejected(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.array([0, 1] * 5)
        with pytest.raises(ValueError):
            SMO(kernel="poly").fit(X, y)

    def test_subsampling_cap(self):
        rng = np.random.default_rng(4)
        X = np.vstack([rng.normal(0, 1, (300, 2)), rng.normal(5, 1, (300, 2))])
        y = np.repeat([0, 1], 300)
        clf = SMO(max_per_machine=100, max_passes=1, seed=0).fit(X, y)
        assert accuracy(clf, X, y) > 0.9


class TestMLP:
    def test_hidden_default_weka_a(self, toy_classification):
        X, y = toy_classification
        clf = MLP(epochs=5, seed=0).fit(X, y)
        # (d + k) // 2 = (6 + 3) // 2 = 4 hidden units
        assert clf._params["w1"].shape == (6, 4)

    def test_probabilities_normalized(self, toy_classification):
        X, y = toy_classification
        clf = MLP(epochs=30, seed=0).fit(X, y)
        probs = clf.predict_proba(X[:7])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_standardization_handles_constant_features(self):
        rng = np.random.default_rng(5)
        X = np.column_stack([rng.normal(0, 1, 60), np.full(60, 3.0)])
        y = (X[:, 0] > 0).astype(int)
        clf = MLP(epochs=60, seed=0).fit(X, y)
        assert accuracy(clf, X, y) > 0.8

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            MLP(epochs=0).fit(np.zeros((4, 2)), np.zeros(4, dtype=int))
