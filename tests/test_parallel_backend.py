"""The parallel executor backend: three-mode equivalence and shm hygiene.

The tentpole law of the backend is *byte identity*: on the same seed,
``backend="parallel"`` must produce exactly the output of the serial
reference — per-RDD-operation, for the full D-RAPID pipeline, for the
streaming engine, and under chaos fault injection.  Alongside it, segment
hygiene: every shared-memory segment a run creates is unlinked by the time
its context closes, even when a worker process is killed mid-task.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sparklet import SparkletContext
from repro.sparklet import shm as shm_mod
from repro.sparklet.executor import (
    ParallelBackend,
    SerialBackend,
    ShmShuffleManager,
    SimulatedBackend,
    make_backend,
    run_callables,
)
from repro.sparklet.faults import FaultConfig

SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ints = st.lists(st.integers(-1000, 1000), max_size=60)


def par_ctx(workers: int = 2, **kwargs) -> SparkletContext:
    return SparkletContext(backend="parallel", num_workers=workers, **kwargs)


def no_leaks() -> bool:
    return shm_mod.live_segments() == []


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("simulated"), SimulatedBackend)
        assert isinstance(make_backend("parallel", ctx_uid="t"), ParallelBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_context_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        with SparkletContext() as ctx:
            assert ctx.backend_name == "parallel"
            assert ctx.num_workers == 3
            assert isinstance(ctx.runtime.shuffle, ShmShuffleManager)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        with SparkletContext(backend="serial") as ctx:
            assert isinstance(ctx.runtime.backend, SerialBackend)

    def test_simulated_backend_records_runs(self):
        with SparkletContext(backend="simulated", num_workers=3) as ctx:
            ctx.parallelize(range(20), 4).map(lambda x: (x % 3, x)) \
               .reduce_by_key(lambda a, b: a + b).collect()
            runs = ctx.runtime.backend.runs
            assert len(runs) == 1 and runs[0].elapsed_s > 0.0


# ---------------------------------------------------------------------------
# Operation-level parity (parallel vs serial oracle)
# ---------------------------------------------------------------------------
class TestOperationParity:
    @SETTINGS
    @given(data=ints, n=st.integers(1, 5), w=st.sampled_from([1, 2, 4]))
    def test_shuffle_parity(self, data, n, w):
        def job(ctx):
            return (ctx.parallelize(data, n)
                    .map(lambda x: (x % 7, x))
                    .reduce_by_key(lambda a, b: a + b, num_partitions=3)
                    .collect())

        with SparkletContext() as s, par_ctx(w) as p:
            assert job(p) == job(s)

    @SETTINGS
    @given(data=ints, n=st.integers(1, 5))
    def test_narrow_chain_parity(self, data, n):
        def job(ctx):
            rdd = ctx.parallelize(data, n).map(lambda x: x * 3).filter(
                lambda x: x % 2 == 0)
            return rdd.collect(), rdd.count(), rdd.take(7)

        with SparkletContext() as s, par_ctx(2) as p:
            assert job(p) == job(s)

    def test_join_and_cache_parity(self):
        def job(ctx):
            left = ctx.parallelize([(i % 5, i) for i in range(60)], 4)
            right = ctx.parallelize([(k, chr(65 + k)) for k in range(5)], 2)
            joined = left.left_outer_join(right, num_partitions=3).cache()
            return joined.collect(), joined.collect(), joined.count()

        with SparkletContext() as s, par_ctx(3) as p:
            assert job(p) == job(s)

    def test_textfile_parity(self, dfs):
        lines = "".join(f"{i % 9},{i * i}\n" for i in range(800))
        dfs.put_text("/par/in.csv", lines)

        def job(ctx):
            return (ctx.text_file(dfs, "/par/in.csv")
                    .map(lambda ln: tuple(map(int, ln.split(","))))
                    .aggregate_by_key(0, lambda a, v: a + v, lambda a, b: a + b,
                                      num_partitions=3)
                    .collect())

        with SparkletContext() as s, par_ctx(2) as p:
            assert job(p) == job(s)

    def test_save_as_text_parity(self, dfs):
        def job(ctx, root):
            ctx.parallelize(range(50), 4).map(lambda x: f"row-{x}") \
               .save_as_text_file(dfs, root)
            return sorted(
                (p, dfs.get(p).decode()) for p in dfs.ls(f"{root}/part-")
            )

        with SparkletContext() as s, par_ctx(2) as p:
            a = job(s, "/out/serial")
            b = job(p, "/out/parallel")
        assert [(x[0].split("/")[-1], x[1]) for x in a] == \
               [(x[0].split("/")[-1], x[1]) for x in b]

    def test_accumulator_parity(self):
        def job(ctx):
            acc = ctx.accumulator(0)

            def f(x):
                acc.add(1)
                return (x % 4, x)

            rdd = ctx.parallelize(range(80), 4).map(f)
            out = rdd.reduce_by_key(lambda a, b: a + b).collect()
            cnt = rdd.count()
            return out, cnt, acc.value

        with SparkletContext() as s, par_ctx(2) as p:
            sa, sc, sv = job(s)
            pa, pc, pv = job(p)
        assert (pa, pc) == (sa, sc)
        assert pv == sv

    def test_worker_one_degrades_gracefully(self):
        with par_ctx(1) as p:
            got = p.parallelize(range(30), 3).map(lambda x: x + 1).collect()
        assert got == list(range(1, 31))


# ---------------------------------------------------------------------------
# Chaos: fault injection under the parallel backend
# ---------------------------------------------------------------------------
class TestParallelChaos:
    @SETTINGS
    @given(seed=st.integers(0, 30), w=st.sampled_from([1, 2, 4]))
    def test_faulted_parallel_equals_clean_serial(self, seed, w):
        def job(ctx):
            return (ctx.parallelize(range(200), 5)
                    .map(lambda x: (x % 11, x))
                    .reduce_by_key(lambda a, b: a + b, num_partitions=4)
                    .collect())

        with SparkletContext() as s:
            clean = job(s)
        with par_ctx(w, fault_config=FaultConfig.chaos(seed=seed),
                     max_task_retries=8) as p:
            faulted = job(p)
        assert faulted == clean

    def test_parallel_failure_counts_match_serial(self):
        def run(**kw):
            ctx = SparkletContext(fault_config=FaultConfig.chaos(seed=13),
                                  max_task_retries=8, **kw)
            with ctx:
                (ctx.parallelize(range(200), 5).map(lambda x: (x % 11, x))
                    .reduce_by_key(lambda a, b: a + b, num_partitions=4).collect())
                return ctx.all_job_metrics().total_failures

        # Injectors draw driver-side in submission order in both engines.
        assert run(backend="parallel", num_workers=2) == run()


# ---------------------------------------------------------------------------
# End-to-end byte identity: pipeline, D-RAPID, streaming
# ---------------------------------------------------------------------------
class TestEndToEndIdentity:
    def test_run_pipeline_identity(self):
        from repro.api import PipelineConfig, run_pipeline

        a = run_pipeline(PipelineConfig(seed=11, n_pulsars=4, n_observations=2,
                                        classify=False))
        b = run_pipeline(PipelineConfig(seed=11, n_pulsars=4, n_observations=2,
                                        classify=False, backend="parallel",
                                        num_workers=2))
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)
        assert a.drapid.n_pulses == b.drapid.n_pulses

    def test_run_drapid_identity(self):
        from repro.api import PipelineConfig, run_drapid, run_pipeline

        base = run_pipeline(PipelineConfig(seed=11, n_pulsars=4,
                                           n_observations=2, classify=False))
        obs = base.observations
        a = run_drapid(PipelineConfig(seed=11), obs)
        b = run_drapid(PipelineConfig(seed=11, backend="parallel",
                                      num_workers=2), obs)
        assert np.array_equal(a.pulse_batch.features, b.pulse_batch.features)

    def test_run_streaming_identity(self):
        from repro.api import PipelineConfig, StreamingConfig, run_streaming

        def cfg(**kw):
            return StreamingConfig(pipeline=PipelineConfig(
                seed=7, n_pulsars=3, n_observations=2, **kw))

        a = run_streaming(cfg())
        b = run_streaming(cfg(backend="parallel", num_workers=2))
        assert a.canonical_ml_text() == b.canonical_ml_text()


# ---------------------------------------------------------------------------
# Shared-memory hygiene
# ---------------------------------------------------------------------------
class TestShmHygiene:
    def test_context_close_releases_segments(self):
        ctx = par_ctx(2)
        data = [(i % 3, np.arange(4000) + i) for i in range(12)]
        ctx.parallelize(data, 4).reduce_by_key(lambda a, b: a + b).count()
        ctx.close()
        assert no_leaks()

    def test_close_is_idempotent(self):
        ctx = par_ctx(2)
        ctx.parallelize(range(10), 2).collect()
        ctx.close()
        ctx.close()
        assert no_leaks()

    def test_registry_release_owner(self):
        name = f"{shm_mod.run_prefix()}t-own"
        seg = shm_mod.create_segment(name, 128)
        seg.close()
        shm_mod.registry.register(name, 128, owner="test-owner")
        assert shm_mod.registry.release_owner("test-owner") == 1
        assert name not in shm_mod.live_segments()

    def test_sweep_catches_untracked_segment(self):
        name = f"{shm_mod.run_prefix()}t-stray"
        seg = shm_mod.create_segment(name, 64)
        seg.close()
        assert name in shm_mod.sweep()
        assert name not in shm_mod.live_segments()

    def test_blob_roundtrip_inline_and_segment(self):
        small = {"x": np.arange(10), "y": "tiny"}
        blob, seg, _size = shm_mod.encode(small, lambda: "never-used")
        assert seg is None  # under INLINE_LIMIT: no segment created
        got = shm_mod.decode(blob)
        assert np.array_equal(got["x"], small["x"]) and got["y"] == "tiny"

        big = np.arange(200_000, dtype=np.int64)
        name = f"{shm_mod.run_prefix()}t-big"
        blob, seg, size = shm_mod.encode(big, lambda: name)
        assert seg == name and size >= big.nbytes
        got = shm_mod.decode(blob)
        assert np.array_equal(got, big)
        got[0] = -1  # decoded arrays are writable copies
        assert shm_mod.registry.release(name) or True
        assert name not in shm_mod.live_segments()

    def test_worker_kill_mid_task_leaves_no_segments(self, tmp_path):
        """Kill a worker mid-task: job still completes, nothing leaks.

        Runs in a subprocess so the killed pool cannot perturb other tests,
        and so we can assert the resource tracker stays silent.
        """
        script = textwrap.dedent("""
            import os, signal, threading, time
            from repro.sparklet import SparkletContext
            from repro.sparklet import shm as shm_mod
            from repro.sparklet.executor import get_pool

            ctx = SparkletContext(backend="parallel", num_workers=2)
            pool = get_pool()
            pool.ensure(2)
            victim = pool.worker_pids()[0]

            def assassin():
                time.sleep(0.3)
                os.kill(victim, signal.SIGKILL)

            threading.Thread(target=assassin, daemon=True).start()

            def slow(x):
                time.sleep(0.02)
                return (x % 5, x)

            out = (ctx.parallelize(range(60), 6).map(slow)
                   .reduce_by_key(lambda a, b: a + b).collect())
            assert sorted(out) == sorted(
                (k, sum(x for x in range(60) if x % 5 == k)) for k in range(5)
            ), out
            ctx.close()
            assert shm_mod.live_segments() == [], shm_mod.live_segments()
            print("OK")
        """)
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_BACKEND", None)
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            timeout=120, cwd=os.path.dirname(os.path.dirname(__file__)), env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked shared_memory" not in proc.stderr
        assert "KeyError" not in proc.stderr  # resource tracker stayed balanced


# ---------------------------------------------------------------------------
# Observability: worker lifecycle + shm segment events
# ---------------------------------------------------------------------------
class TestParallelObservability:
    def test_worker_and_shm_events_flow_into_report(self):
        from repro.obs import ObsConfig, build_report

        with SparkletContext(backend="parallel", num_workers=2,
                             obs=ObsConfig(enabled=True)) as ctx:
            data = [(i % 3, np.arange(3000) + i) for i in range(12)]
            ctx.parallelize(data, 4).reduce_by_key(lambda a, b: a + b).count()
            events = ctx.obs.events()
            types = {e["type"] for e in events}
            assert "shm_segment_created" in types
            created = [e for e in events if e["type"] == "shm_segment_created"]
            assert all(e["nbytes"] > 0 for e in created)
            report = build_report(events)
        workers = report["workers"]
        assert workers["shm_segments_created"] == len(created)
        per = {w["worker_id"]: w for w in workers["per_worker"]}
        assert set(per) <= {"w0", "w1"} and per
        assert all(w["n_tasks"] > 0 and w["busy_s"] > 0 for w in per.values())

    def test_worker_spawn_events_emitted_on_fresh_pool(self):
        """Spawn events are attached to whichever obs session triggers the
        spawn; exercised in a subprocess so the pool is genuinely fresh."""
        script = (
            "from repro.sparklet import SparkletContext\n"
            "from repro.obs import ObsConfig\n"
            "with SparkletContext(backend='parallel', num_workers=2,\n"
            "                     obs=ObsConfig(enabled=True)) as ctx:\n"
            "    ctx.parallelize(range(8), 4).map(lambda x: x + 1).collect()\n"
            "    n = sum(1 for e in ctx.obs.events()\n"
            "            if e['type'] == 'worker_spawned')\n"
            "    assert n == 2, n\n"
            "print('OK')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_BACKEND", None)
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            timeout=120, cwd=os.path.dirname(os.path.dirname(__file__)), env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


# ---------------------------------------------------------------------------
# run_callables (the MultithreadedRapid path)
# ---------------------------------------------------------------------------
class TestRunCallables:
    def test_results_in_submission_order(self):
        fns = [lambda i=i: i * i for i in range(7)]
        results, durations = run_callables(fns, 3)
        assert results == [i * i for i in range(7)]
        assert len(durations) == 7 and all(d >= 0.0 for d in durations)

    def test_empty_and_invalid(self):
        assert run_callables([], 2) == ([], [])
        with pytest.raises(ValueError):
            run_callables([lambda: 1], 0)

    def test_multithreaded_rapid_routes_through_pool(self):
        from repro.core.multithreaded import MultithreadedRapid

        mt = MultithreadedRapid(n_threads=2)
        out = mt.run([lambda i=i: sum(range(i * 100)) for i in range(5)])
        assert out == [sum(range(i * 100)) for i in range(5)]
        assert len(mt.durations) == 5
