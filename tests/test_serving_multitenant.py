"""Multi-tenant serving tier: fair-share pools, admission, identity law.

The governing invariant: for every admitted tenant, the canonical ML
output of a concurrent ``run_serving`` fleet equals that tenant's solo
``run_streaming`` output — co-tenant contention moves batch boundaries and
PID inputs, never finalized clusters.  Tested directly, across backends,
under a hypothesis sweep, under chaos fault rules, and under admission
degradation (rate caps are output-safe by the same argument).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    AdmissionConfig,
    PipelineConfig,
    ServingConfig,
    StreamingConfig,
    TenantConfig,
    run_serving,
    run_streaming,
)
from repro.memo.config import MemoConfig
from repro.obs import ObsConfig
from repro.obs.events import (
    MODEL_SWAPPED,
    SESSION_ADMITTED,
    SESSION_DEGRADED,
    SESSION_REJECTED,
)
from repro.sparklet.faults import (
    EXECUTOR_LOSS,
    TASK_CRASH,
    FailureRule,
    FaultConfig,
)
from repro.streaming import LinearCostModel, weighted_fair_shares
from repro.streaming.sessions import SessionManager


def _scfg(seed: int, *, arrival_rate: float = 2400.0,
          batch_interval_s: float = 0.5, **kw) -> StreamingConfig:
    return StreamingConfig(
        pipeline=PipelineConfig(n_pulsars=3, n_observations=1, seed=seed),
        arrival_rate=arrival_rate, batch_interval_s=batch_interval_s,
        checkpoint_interval=4, **kw,
    )


_SOLO_CACHE: dict = {}


def _solo_text(scfg: StreamingConfig) -> str:
    if scfg not in _SOLO_CACHE:
        _SOLO_CACHE[scfg] = run_streaming(scfg).canonical_ml_text()
    return _SOLO_CACHE[scfg]


# -- the identity law ---------------------------------------------------------

class TestServingIdentity:
    def test_two_tenants_match_their_solo_runs(self):
        cfgs = {"alice": _scfg(1), "bob": _scfg(2, arrival_rate=900.0)}
        result = run_serving(ServingConfig(tenants=(
            TenantConfig("alice", cfgs["alice"], weight=2.0),
            TenantConfig("bob", cfgs["bob"]),
        )))
        assert sorted(result.tenants) == ["alice", "bob"]
        assert not result.rejected
        for tid, scfg in cfgs.items():
            assert result.canonical_ml_text(tid) == _solo_text(scfg)
            assert result.tenants[tid].n_pulses > 0

    def test_contention_shows_up_as_scheduling_delay(self):
        """Co-tenants on one saturated driver see nonzero scheduling delay
        (the solo runs see none at this rate), yet output is unchanged."""
        slow = LinearCostModel(rows_per_s=2000.0, fixed_s=0.05)
        cfgs = [_scfg(s, arrival_rate=2000.0, cost_model=slow)
                for s in (1, 2, 3)]
        result = run_serving(ServingConfig(
            tenants=tuple(TenantConfig(f"t{i}", c) for i, c in enumerate(cfgs)),
            admission=AdmissionConfig(mode="off"),
        ))
        delays = [b.scheduling_delay_s
                  for res in result.tenants.values() for b in res.batches]
        assert max(delays) > 0.0
        for i, scfg in enumerate(cfgs):
            assert result.canonical_ml_text(f"t{i}") == _solo_text(scfg)

    @pytest.mark.parametrize("backend", ["serial", "parallel"])
    def test_identity_across_backends(self, backend):
        cfgs = {"a": _scfg(5), "b": _scfg(6)}
        result = run_serving(ServingConfig(
            tenants=tuple(TenantConfig(t, c) for t, c in cfgs.items()),
            backend=backend, num_workers=2,
        ))
        for tid, scfg in cfgs.items():
            assert result.canonical_ml_text(tid) == _solo_text(scfg)

    def test_identity_under_chaos_fault_rules(self):
        """Per-tenant fault injection on the shared context: retries and
        recomputation fire, output is still the solo output."""
        fc = FaultConfig(seed=7, rules=(
            FailureRule(TASK_CRASH, probability=0.2, max_fires=3),
            FailureRule(EXECUTOR_LOSS, probability=0.1, max_fires=1),
        ))
        chaotic = StreamingConfig(
            pipeline=PipelineConfig(n_pulsars=3, n_observations=1, seed=3,
                                    fault_config=fc),
            arrival_rate=2400.0, batch_interval_s=0.5,
        )
        calm = _scfg(4)
        result = run_serving(ServingConfig(tenants=(
            TenantConfig("chaotic", chaotic),
            TenantConfig("calm", calm),
        )))
        assert result.canonical_ml_text("chaotic") == _solo_text(chaotic)
        assert result.canonical_ml_text("calm") == _solo_text(calm)


class TestServingIdentitySweep:
    """Hypothesis sweep: the identity law across (seeds, rates, weights)."""

    def test_sweep(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        @settings(max_examples=5, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(
            seed_a=st.integers(min_value=0, max_value=2),
            seed_b=st.integers(min_value=3, max_value=5),
            rate=st.sampled_from([600.0, 1200.0, 2400.0]),
            weight=st.sampled_from([0.5, 1.0, 3.0]),
        )
        def check(seed_a, seed_b, rate, weight):
            ca, cb = _scfg(seed_a, arrival_rate=rate), _scfg(seed_b)
            result = run_serving(ServingConfig(tenants=(
                TenantConfig("a", ca, weight=weight),
                TenantConfig("b", cb),
            )))
            assert result.canonical_ml_text("a") == _solo_text(ca)
            assert result.canonical_ml_text("b") == _solo_text(cb)

        check()


# -- fair-share scheduling ----------------------------------------------------

class TestFairness:
    def test_weighted_service_shares_under_saturation(self):
        """While both tenants are backlogged, accumulated driver service
        tracks the 2:1 pool weights (within a generous tolerance)."""
        slow = LinearCostModel(rows_per_s=1000.0, fixed_s=0.05)
        result = run_serving(ServingConfig(
            tenants=(
                TenantConfig("heavy", _scfg(1, arrival_rate=2000.0,
                                            cost_model=slow), weight=2.0),
                TenantConfig("light", _scfg(1, arrival_rate=2000.0,
                                            cost_model=slow), weight=1.0),
            ),
            admission=AdmissionConfig(mode="off"),
        ))
        # Same workload, same cost model: total service is equal once both
        # drain, so fairness shows in *when* service was delivered — the
        # heavier tenant must finish its stream earlier.
        heavy_done = max(b.completed_s for b in result.tenants["heavy"].batches)
        light_done = max(b.completed_s for b in result.tenants["light"].batches)
        assert heavy_done < light_done
        assert not result.rejected

    def test_no_tenant_starves_under_overload(self):
        slow = LinearCostModel(rows_per_s=800.0, fixed_s=0.02)
        tenants = tuple(
            TenantConfig(f"t{i}", _scfg(i, arrival_rate=1600.0,
                                        cost_model=slow))
            for i in range(3)
        )
        result = run_serving(ServingConfig(
            tenants=tenants, admission=AdmissionConfig(mode="off"),
        ))
        for i in range(3):
            res = result.tenants[f"t{i}"]
            assert res.n_batches > 0
            assert res.n_pulses > 0  # every stream drained to completion

    def test_weighted_fair_shares_water_filling(self):
        shares = weighted_fair_shares(
            demands={"a": 100.0, "b": 1000.0, "c": 1000.0},
            weights={"a": 1.0, "b": 2.0, "c": 1.0},
            capacity=1000.0,
        )
        assert shares["a"] == 100.0          # under its share: keeps demand
        assert shares["b"] == pytest.approx(600.0)
        assert shares["c"] == pytest.approx(300.0)
        assert sum(shares.values()) == pytest.approx(1000.0)


# -- admission control --------------------------------------------------------

class TestAdmission:
    def test_reject_mode_turns_away_overflow_tenants(self):
        session = run_serving(ServingConfig(
            tenants=(
                TenantConfig("first", _scfg(1, arrival_rate=600.0)),
                TenantConfig("second", _scfg(2, arrival_rate=600.0)),
                TenantConfig("third", _scfg(3, arrival_rate=600.0)),
            ),
            admission=AdmissionConfig(mode="reject",
                                      capacity_rows_per_s=1000.0),
        ))
        assert sorted(session.tenants) == ["first"]
        assert sorted(session.rejected) == ["second", "third"]
        for reason in session.rejected.values():
            assert "capacity" in reason
        # The admitted tenant is untouched by its rejected neighbours.
        assert (session.canonical_ml_text("first")
                == _solo_text(_scfg(1, arrival_rate=600.0)))

    def test_degrade_mode_caps_rates_and_preserves_output(self):
        obs = ObsConfig(enabled=True)
        scfgs = {"a": _scfg(1, arrival_rate=800.0),
                 "b": _scfg(2, arrival_rate=800.0)}
        result = run_serving(ServingConfig(
            tenants=tuple(TenantConfig(t, c) for t, c in scfgs.items()),
            admission=AdmissionConfig(mode="degrade",
                                      capacity_rows_per_s=1000.0),
            obs_config=obs,
        ))
        degraded = [e for e in result.obs.events()
                    if e["type"] == SESSION_DEGRADED]
        assert {e["tenant"] for e in degraded} == {"a", "b"}
        assert all(e["rate_cap"] == pytest.approx(500.0) for e in degraded)
        for res in result.tenants.values():
            assert all(b.rate_limit <= 500.0 + 1e-9 for b in res.batches)
        # Rate caps change block cutting, never canonical output.
        for tid, scfg in scfgs.items():
            assert result.canonical_ml_text(tid) == _solo_text(scfg)

    def test_admitted_sessions_emit_events(self):
        obs = ObsConfig(enabled=True)
        result = run_serving(ServingConfig(
            tenants=(TenantConfig("solo", _scfg(1)),), obs_config=obs,
        ))
        admitted = [e for e in result.obs.events()
                    if e["type"] == SESSION_ADMITTED]
        assert [e["tenant"] for e in admitted] == ["solo"]
        assert not [e for e in result.obs.events()
                    if e["type"] == SESSION_REJECTED]

    def test_admission_config_validation(self):
        with pytest.raises(ValueError, match="mode"):
            AdmissionConfig(mode="panic")
        with pytest.raises(ValueError, match="headroom"):
            AdmissionConfig(headroom=0.0)
        with pytest.raises(ValueError, match="capacity"):
            AdmissionConfig(capacity_rows_per_s=-1.0)


# -- config validation --------------------------------------------------------

class TestServingConfig:
    def test_duplicate_tenant_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServingConfig(tenants=(
                TenantConfig("x", _scfg(1)), TenantConfig("x", _scfg(2)),
            ))

    def test_reserved_and_invalid_tenant_ids(self):
        with pytest.raises(ValueError, match="reserved"):
            TenantConfig("default", _scfg(1))
        with pytest.raises(ValueError, match="non-empty"):
            TenantConfig("", _scfg(1))
        with pytest.raises(ValueError, match="/"):
            TenantConfig("a/b", _scfg(1))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            run_serving(ServingConfig())

    def test_crash_knob_rejected_by_session_manager(self):
        with pytest.raises(ValueError, match="crash_at_batch"):
            run_serving(ServingConfig(tenants=(
                TenantConfig("t", _scfg(1, crash_at_batch=1)),
            )))


# -- per-tenant observability and memo isolation ------------------------------

class TestTenantIsolation:
    def test_private_event_logs_contain_only_their_tenant(self, tmp_path):
        trace_dir = tmp_path / "tenants"
        trace_dir.mkdir()
        result = run_serving(ServingConfig(
            tenants=(TenantConfig("a", _scfg(1)), TenantConfig("b", _scfg(2))),
            obs_config=ObsConfig(enabled=True),
            tenant_trace_dir=str(trace_dir),
        ))
        result.obs.flush()
        for tid in ("a", "b"):
            lines = (trace_dir / f"{tid}.jsonl").read_text().splitlines()
            assert lines
            events = [json.loads(ln) for ln in lines]
            assert all(e["tenant"] == tid for e in events)
            assert all(e["pool"] == tid for e in events)

    def test_shared_log_tags_tenant_and_pool_on_engine_events(self):
        result = run_serving(ServingConfig(
            tenants=(TenantConfig("a", _scfg(1)), TenantConfig("b", _scfg(2))),
            obs_config=ObsConfig(enabled=True),
        ))
        batch_events = [e for e in result.obs.events()
                        if e["type"] == "batch_completed"]
        assert {e["tenant"] for e in batch_events} == {"a", "b"}
        job_starts = [e for e in result.obs.events() if e["type"] == "job_start"]
        assert {e["pool"] for e in job_starts} == {"a", "b"}

    def test_memo_namespaces_isolate_tenants(self, tmp_path):
        memo = MemoConfig(dir=str(tmp_path / "memo"), store_candidates=False)
        scfgs = {
            t: StreamingConfig(
                pipeline=PipelineConfig(n_pulsars=3, n_observations=1,
                                        seed=s, memo_config=memo),
                arrival_rate=2400.0, batch_interval_s=0.5,
            )
            for t, s in (("a", 1), ("b", 2))
        }
        config = ServingConfig(
            tenants=tuple(TenantConfig(t, c) for t, c in scfgs.items()),
        )
        first = run_serving(config)
        assert (tmp_path / "memo" / "ns-a").is_dir()
        assert (tmp_path / "memo" / "ns-b").is_dir()
        # A warm second fleet serves from the namespaced caches and still
        # reproduces byte-identical output.
        second = run_serving(config)
        for tid in scfgs:
            assert (second.canonical_ml_text(tid)
                    == first.canonical_ml_text(tid))


# -- model hot-swap -----------------------------------------------------------

class TestHotSwap:
    def test_swap_takes_effect_at_batch_boundary(self, tmp_path,
                                                 trained_model22):
        from repro.dfs import DataNode, DFSClient
        from repro.ml.persistence import save_model
        from repro.obs import ObsSession
        from repro.sparklet.context import SparkletContext
        from repro.streaming.engine import MicroBatchEngine
        from repro.streaming.receiver import ReplayReceiver, build_stream
        from repro.streaming.serving import ModelCache, StreamScorer
        from repro.streaming.state import StreamState

        path = tmp_path / "model.pkl"
        save_model(trained_model22, path)
        session = ObsSession(ObsConfig(enabled=True))
        cache = ModelCache()
        cache.load("tenant", path)
        scorer = StreamScorer.from_cache(cache, "tenant")

        scfg = _scfg(1, arrival_rate=300.0)  # slow arrivals: several batches
        pipe = scfg.pipeline
        from repro.api import resolve_survey
        from repro.astro.population import synthesize_population
        from repro.core.pipeline import SinglePulsePipeline

        pipeline = SinglePulsePipeline.from_config(
            survey=resolve_survey(pipe.survey), seed=pipe.seed
        )
        observations = pipeline.generate(
            list(synthesize_population(pipe.n_pulsars, seed=pipe.seed)),
            pipe.n_observations,
        )
        dfs = DFSClient([DataNode(f"dn{i}") for i in range(4)], replication=2)
        ctx = SparkletContext(default_parallelism=4)
        try:
            engine = MicroBatchEngine(
                config=scfg, receiver=ReplayReceiver(build_stream(observations)),
                state=StreamState(), dfs=dfs, ctx=ctx,
                grids={observations[0].config.name: observations[0].grid},
                scorer=scorer, obs=session,
            )
            manager = SessionManager(obs=session)
            manager.add_session("tenant", engine)
            manager.apply_admission()
            first = manager.run_next_batch()
            assert first is not None
            assert first.model_version == 1
            # Publish v2 mid-stream: visible from the *next* batch on.
            cache.publish("tenant", trained_model22)
            later = []
            while (stats := manager.run_next_batch()) is not None:
                later.append(stats)
            assert later, "stream should have had more than one batch"
            assert all(s.model_version == 2 for s in later)
            swaps = [e for e in session.events() if e["type"] == MODEL_SWAPPED]
            assert len(swaps) == 1
            assert swaps[0]["version"] == 2
            assert swaps[0]["batch_id"] == later[0].batch_id
        finally:
            ctx.close()

    def test_run_serving_shares_one_load_across_tenants(self, tmp_path,
                                                        trained_model22):
        """Two tenants serving the same artifact: outputs are scored, and
        the solo identity holds for both."""
        from repro.ml.persistence import save_model

        path = tmp_path / "model.pkl"
        save_model(trained_model22, path)
        scfgs = {t: _scfg(s, model_path=str(path))
                 for t, s in (("a", 1), ("b", 2))}
        result = run_serving(ServingConfig(
            tenants=tuple(TenantConfig(t, c) for t, c in scfgs.items()),
        ))
        for tid, scfg in scfgs.items():
            res = result.tenants[tid]
            assert res.predicted is not None
            assert len(res.predicted) == res.n_pulses
            assert res.canonical_ml_text() == _solo_text(scfg)
            assert all(b.model_version == 1 for b in res.batches
                       if b.n_pulses > 0)


@pytest.fixture(scope="module")
def trained_model22(toy_classification):
    from repro.dataplane.pulse_batch import N_FEATURES
    from repro.ml import J48

    X, y = toy_classification
    rng = np.random.default_rng(1)
    X22 = np.hstack([X, rng.normal(size=(len(X), N_FEATURES - X.shape[1]))])
    return J48().fit(X22, y)
