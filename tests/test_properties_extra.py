"""Property-based tests, second batch: learners, ALM, curves, catalog."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.core.alm import ALM_SCHEMES, binarize, label_instances
from repro.core.features import FEATURE_NAMES
from repro.ml.curves import pr_curve, roc_curve
from repro.ml.forest import RandomForest
from repro.ml.rules import JRip
from repro.ml.tree import J48

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def feature_matrix(rows: list[list[float]]) -> np.ndarray:
    out = np.zeros((len(rows), len(FEATURE_NAMES)))
    for i, (dm, avg, mx) in enumerate(rows):
        out[i, FEATURE_NAMES.index("SNRPeakDM")] = dm
        out[i, FEATURE_NAMES.index("AvgSNR")] = avg
        out[i, FEATURE_NAMES.index("MaxSNR")] = mx
    return out


class TestAlmProperties:
    @SETTINGS
    @given(
        rows=st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0.1, 100), st.floats(0.1, 200)),
            min_size=1, max_size=30,
        ),
        flags=st.data(),
    )
    def test_labeling_total_and_consistent(self, rows, flags):
        """Every instance gets a valid label in every scheme, and binarize
        recovers the is_pulsar flag exactly."""
        X = feature_matrix([list(r) for r in rows])
        n = X.shape[0]
        is_pulsar = flags.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        is_rrat = [p and flags.draw(st.booleans()) for p in is_pulsar]
        for scheme in ALM_SCHEMES.values():
            labels = label_instances(scheme, X, is_pulsar, is_rrat)
            assert labels.min() >= 0 and labels.max() < scheme.n_classes
            np.testing.assert_array_equal(
                binarize(scheme, labels), np.array(is_pulsar, dtype=int)
            )

    @SETTINGS
    @given(dm=st.floats(0, 1000), avg=st.floats(0.1, 100))
    def test_scheme7_cell_consistency(self, dm, avg):
        """Scheme 7 labels factor exactly into (distance bin, brightness bin)."""
        X = feature_matrix([[dm, avg, 10.0]])
        label = label_instances("7", X, [True], [False])[0]
        name = ALM_SCHEMES["7"].classes[label]
        dist, bright = name.split("-")
        assert (dm < 100) == (dist == "Near")
        assert (100 <= dm < 175) == (dist == "Mid")
        assert (avg > 8) == (bright == "Strong")


class TestLearnerProperties:
    @SETTINGS
    @given(seed=st.integers(0, 500))
    def test_forest_predictions_are_valid_labels(self, seed):
        rng = np.random.default_rng(seed)
        n_classes = int(rng.integers(2, 5))
        X = rng.normal(size=(60, 4))
        y = rng.integers(0, n_classes, 60)
        clf = RandomForest(n_trees=3, seed=seed).fit(X, y)
        preds = clf.predict(rng.normal(size=(25, 4)))
        assert set(preds) <= set(range(n_classes))

    @SETTINGS
    @given(seed=st.integers(0, 500))
    def test_tree_train_accuracy_beats_majority(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 3))
        y = (X[:, 0] + 0.3 * rng.normal(size=80) > 0).astype(int)
        clf = J48(prune=False).fit(X, y)
        acc = float((clf.predict(X) == y).mean())
        majority = max(np.bincount(y)) / y.size
        assert acc >= majority - 1e-9

    @SETTINGS
    @given(seed=st.integers(0, 200))
    def test_jrip_first_match_determinism(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = (X[:, 1] > 0.2).astype(int)
        clf = JRip(seed=0).fit(X, y)
        a = clf.predict(X)
        b = clf.predict(X)
        np.testing.assert_array_equal(a, b)


class TestCurveProperties:
    @SETTINGS
    @given(seed=st.integers(0, 1000), n=st.integers(5, 200))
    def test_roc_auc_in_unit_interval(self, seed, n):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        scores = rng.random(n)
        auc = roc_curve(y, scores).auc
        assert -1e-9 <= auc <= 1.0 + 1e-9

    @SETTINGS
    @given(seed=st.integers(0, 1000))
    def test_score_shift_invariance(self, seed):
        """ROC/PR depend only on the ranking, not the score scale."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 100)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        scores = rng.random(100)
        a = roc_curve(y, scores).auc
        b = roc_curve(y, scores * 7.0 + 3.0).auc
        assert a == b
        pa = pr_curve(y, scores).average_precision
        pb = pr_curve(y, scores * 7.0 + 3.0).average_precision
        assert pa == pb
