"""Property suite for the campaign drift monitors.

Hypothesis drives :class:`~repro.campaign.drift.DriftMonitor` with
synthetic score streams and checks the laws the campaign runner relies on:

- a *stationary* stream never declares drift, across seeds and window
  shapes (the false-positive law — a baseline phase must stay quiet);
- an injected distribution shift is declared within a bounded number of
  batches of the change point (the detection-latency law the end-to-end
  gate depends on);
- ``snapshot``/``restore`` round-trips exactly: a restored monitor emits
  the same signals as the original on any continuation of the stream.

The PSI/KS helpers get direct property checks too (zero on identical
samples, KS bounded and symmetric).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

import numpy as np  # noqa: E402
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.campaign.drift import DriftConfig, DriftMonitor, _ks, _psi  # noqa: E402

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _beta_batches(rng, a, b, n_batches, per_batch=60):
    return [rng.beta(a, b, size=per_batch) for _ in range(n_batches)]


# ---------------------------------------------------------------------------
# The detectors themselves
# ---------------------------------------------------------------------------
@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=1, max_value=200))
def test_psi_and_ks_vanish_on_identical_samples(seed, size):
    rng = np.random.default_rng(seed)
    x = rng.random(size)
    assert _psi(x, x, n_bins=8) == pytest.approx(0.0, abs=1e-12)
    assert _ks(x, x) == 0.0


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_ks_is_bounded_and_symmetric(seed):
    rng = np.random.default_rng(seed)
    a = rng.beta(2, 5, size=rng.integers(1, 80))
    b = rng.beta(5, 2, size=rng.integers(1, 80))
    d = _ks(a, b)
    assert 0.0 <= d <= 1.0
    assert d == pytest.approx(_ks(b, a))


def test_ks_detects_disjoint_supports():
    assert _ks(np.full(50, 0.1), np.full(50, 0.9)) == 1.0


# ---------------------------------------------------------------------------
# Stationarity: no false alarms
# ---------------------------------------------------------------------------
@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=500),
       a=st.sampled_from([2.0, 5.0, 8.0]),
       b=st.sampled_from([2.0, 5.0]))
def test_stationary_stream_never_declares_drift(seed, a, b):
    rng = np.random.default_rng(seed)
    monitor = DriftMonitor(DriftConfig())
    for i, scores in enumerate(_beta_batches(rng, a, b, 40)):
        signal = monitor.update(i, scores, n_clusters=len(scores))
        assert not signal.drifted, (
            f"false drift at batch {i}: {signal}"
        )
    assert monitor.n_detections == 0


def test_false_positive_rate_is_low_on_thin_batches():
    """With only ~30 scores per batch the PSI estimate is noisy; the
    monitor may occasionally alarm on a truly stationary stream, but the
    per-stream false-positive rate must stay in the low percent range
    (campaigns see at most a handful of spurious retrains, each harmless)."""
    fp = 0
    n_streams = 120
    for seed in range(n_streams):
        rng = np.random.default_rng(seed)
        monitor = DriftMonitor(DriftConfig())
        for i, scores in enumerate(_beta_batches(rng, 2, 5, 40, per_batch=30)):
            if monitor.update(i, scores, 30).drifted:
                fp += 1
                break
    assert fp / n_streams < 0.08, f"{fp}/{n_streams} stationary streams alarmed"


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=500))
def test_constant_rate_never_trips_rate_alarm(seed):
    rng = np.random.default_rng(seed)
    monitor = DriftMonitor(DriftConfig())
    for i in range(40):
        signal = monitor.update(i, rng.beta(3, 3, 30), n_clusters=10)
        assert "cluster_rate" not in signal.reasons


# ---------------------------------------------------------------------------
# Detection latency: a real shift is caught within a bounded window
# ---------------------------------------------------------------------------
@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=500),
       warmup=st.integers(min_value=18, max_value=30))
def test_distribution_shift_detected_within_window(seed, warmup):
    cfg = DriftConfig()
    rng = np.random.default_rng(seed)
    monitor = DriftMonitor(cfg)
    for i, scores in enumerate(_beta_batches(rng, 8, 2, warmup)):
        assert not monitor.update(i, scores, 20).drifted
    # Change point: scores collapse toward zero (the storm regime).
    detected_at = None
    for j, scores in enumerate(_beta_batches(rng, 2, 8, 12)):
        if monitor.update(warmup + j, scores, 20).drifted:
            detected_at = j
            break
    # Worst case: the current window must fill with shifted batches, then
    # the alarm must sustain.
    bound = cfg.cur_window + cfg.sustain
    assert detected_at is not None and detected_at < bound


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=500),
       mult=st.sampled_from([5, 8, 12]))
def test_cluster_rate_flood_detected(seed, mult):
    cfg = DriftConfig()
    rng = np.random.default_rng(seed)
    monitor = DriftMonitor(cfg)
    scores = rng.beta(3, 3, 30)
    for i in range(20):
        assert not monitor.update(i, scores, n_clusters=4).drifted
    detected_at = None
    for j in range(12):
        signal = monitor.update(20 + j, scores, n_clusters=4 * mult)
        if signal.drifted:
            assert "cluster_rate" in signal.reasons
            detected_at = j
            break
    assert detected_at is not None and detected_at < cfg.cur_window + cfg.sustain


# ---------------------------------------------------------------------------
# Latch, rebase, checkpoint
# ---------------------------------------------------------------------------
def _shifting_stream(rng, n):
    """Stationary for n batches, then permanently shifted."""
    return _beta_batches(rng, 8, 2, n) + _beta_batches(rng, 2, 8, n)


def test_latch_prevents_redeclaring_the_same_drift():
    rng = np.random.default_rng(7)
    monitor = DriftMonitor(DriftConfig())
    declared = [
        i for i, scores in enumerate(_shifting_stream(rng, 25))
        if monitor.update(i, scores, 20).drifted
    ]
    assert len(declared) >= 1
    # A latched monitor stays latched through a persistent shift — the
    # runner (not the monitor) decides when to rebase.
    assert monitor.n_detections <= 2


def test_rebase_clears_state_and_rearms():
    rng = np.random.default_rng(11)
    monitor = DriftMonitor(DriftConfig())
    for i, scores in enumerate(_shifting_stream(rng, 25)):
        monitor.update(i, scores, 20)
    assert monitor.n_detections >= 1
    monitor.rebase()
    assert monitor.snapshot()["scores"] == []
    assert monitor.snapshot()["latched"] is False
    # A fresh stationary stream after rebase stays quiet.
    for i, scores in enumerate(_beta_batches(rng, 3, 3, 30)):
        assert not monitor.update(100 + i, scores, 10).drifted


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=500),
       split=st.integers(min_value=1, max_value=40))
def test_snapshot_restore_roundtrip_preserves_signals(seed, split):
    import json

    rng = np.random.default_rng(seed)
    stream = _shifting_stream(rng, 22)
    original = DriftMonitor(DriftConfig())
    for i, scores in enumerate(stream[:split]):
        original.update(i, scores, len(scores) // 2)

    state = json.loads(json.dumps(original.snapshot()))
    restored = DriftMonitor(DriftConfig())
    restored.restore(state)

    for i, scores in enumerate(stream[split:], start=split):
        a = original.update(i, scores, len(scores) // 2)
        b = restored.update(i, scores, len(scores) // 2)
        assert a == b
    assert original.n_detections == restored.n_detections


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"ref_window": 1},
        {"cur_window": 0},
        {"n_bins": 1},
        {"sustain": 0},
        {"recover": 0},
    ],
)
def test_drift_config_rejects_degenerate_windows(kwargs):
    with pytest.raises(ValueError):
        DriftConfig(**kwargs)
