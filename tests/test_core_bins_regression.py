"""Unit tests for Eq. 1 bin sizing and per-bin regression."""

import math

import numpy as np
import pytest

from repro.core.bins import (
    DEFAULT_SLOPE_THRESHOLD,
    DEFAULT_WEIGHT,
    DPG_FIXED_BIN_SIZE,
    SMALL_CLUSTER_CUTOFF,
    dynamic_bin_size,
)
from repro.core.regression import bin_edges, bin_fit_residual, bin_slopes, ols_slope


class TestDynamicBinSize:
    def test_small_clusters_use_one(self):
        for n in range(SMALL_CLUSTER_CUTOFF):
            assert dynamic_bin_size(n) == 1

    def test_eq1_formula(self):
        for n in (12, 25, 100, 1000, 3500):
            assert dynamic_bin_size(n) == math.floor(DEFAULT_WEIGHT * math.sqrt(n))

    def test_weight_scales_bins(self):
        assert dynamic_bin_size(400, weight=1.75) > dynamic_bin_size(400, weight=0.75)

    def test_monotone_in_n(self):
        sizes = [dynamic_bin_size(n) for n in range(12, 4000, 37)]
        assert sizes == sorted(sizes)

    def test_paper_tuned_defaults(self):
        assert DEFAULT_WEIGHT == 0.75
        assert DEFAULT_SLOPE_THRESHOLD == 0.5
        assert DPG_FIXED_BIN_SIZE == 25

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            dynamic_bin_size(-1)
        with pytest.raises(ValueError):
            dynamic_bin_size(10, weight=0.0)


class TestOlsSlope:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        assert ols_slope(x, 2.0 * x + 1.0) == pytest.approx(2.0)

    def test_flat_line(self):
        x = np.arange(5.0)
        assert ols_slope(x, np.full(5, 3.0)) == pytest.approx(0.0)

    def test_degenerate_x_returns_zero(self):
        assert ols_slope(np.ones(4), np.arange(4.0)) == 0.0

    def test_single_point_returns_zero(self):
        assert ols_slope(np.array([1.0]), np.array([2.0])) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ols_slope(np.arange(3.0), np.arange(4.0))

    def test_matches_numpy_polyfit(self):
        rng = np.random.default_rng(0)
        x = np.sort(rng.uniform(0, 10, 30))
        y = rng.normal(0, 1, 30)
        expected = np.polyfit(x, y, 1)[0]
        assert ols_slope(x, y) == pytest.approx(expected)


class TestBinEdges:
    def test_binsize_one_is_consecutive_pairs(self):
        edges = bin_edges(5, 1)
        assert edges == [(0, 2), (1, 3), (2, 4), (3, 5)]

    def test_bins_share_boundary_point(self):
        edges = bin_edges(10, 3)
        for (s1, e1), (s2, _e2) in zip(edges, edges[1:]):
            assert s2 == s1 + 3
            assert s2 < e1  # one shared point keeps the trend continuous

    def test_last_bin_clipped(self):
        edges = bin_edges(10, 4)
        assert edges[-1][1] == 10

    def test_all_points_covered(self):
        for n in (2, 7, 23, 100):
            for b in (1, 3, 10):
                edges = bin_edges(n, b)
                covered = set()
                for s, e in edges:
                    covered.update(range(s, e))
                assert covered == set(range(n))

    def test_tiny_inputs(self):
        assert bin_edges(0, 1) == []
        assert bin_edges(1, 1) == []
        assert bin_edges(2, 5) == [(0, 2)]

    def test_invalid_binsize(self):
        with pytest.raises(ValueError):
            bin_edges(10, 0)


class TestBinSlopes:
    def test_matches_per_bin_ols(self):
        rng = np.random.default_rng(1)
        x = np.sort(rng.uniform(0, 50, 40))
        y = rng.normal(10, 2, 40)
        slopes, edges = bin_slopes(x, y, 5)
        for slope, (s, e) in zip(slopes, edges):
            assert slope == pytest.approx(ols_slope(x[s:e], y[s:e]), abs=1e-9)

    def test_rising_then_falling_profile(self):
        x = np.linspace(0, 10, 21)
        y = np.concatenate([np.linspace(5, 15, 11), np.linspace(15, 5, 10)])
        slopes, _edges = bin_slopes(x, y, 2)
        assert slopes[0] > 0.5
        assert slopes[-1] < -0.5

    def test_empty_when_too_few_points(self):
        slopes, edges = bin_slopes(np.array([1.0]), np.array([2.0]), 1)
        assert slopes.size == 0 and edges == []


class TestFitResidual:
    def test_zero_for_perfect_lines(self):
        x = np.linspace(0, 10, 30)
        assert bin_fit_residual(x, 3.0 * x + 1.0, 5) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_noise(self):
        rng = np.random.default_rng(2)
        x = np.sort(rng.uniform(0, 10, 50))
        y = rng.normal(0, 5, 50)
        assert bin_fit_residual(x, y, 5) > 0.1

    def test_empty_input(self):
        assert bin_fit_residual(np.array([]), np.array([]), 3) == 0.0
