"""Property-based tests for the observability subsystem.

The central law: the event log is a *complete* record of an execution.  For
any job shape, fault configuration and seed, replaying the JSONL events must
rebuild the scheduler's JobMetrics byte-identically — no field may exist
only in the live objects.
"""

import json

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.obs import ObsConfig, read_events, replay_job_metrics
from repro.sparklet.context import SparkletContext
from repro.sparklet.faults import (
    EXECUTOR_LOSS,
    FETCH_FAILURE,
    TASK_CRASH,
    FailureRule,
    FaultConfig,
)

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


#: Contexts run with this retry budget; the strategy keeps the total number
#: of injectable faults (sum of max_fires) strictly below it so a generated
#: config can never legitimately exhaust a task's retries and kill the job.
MAX_TASK_RETRIES = 8


def rule_strategy():
    return st.builds(
        FailureRule,
        kind=st.sampled_from([TASK_CRASH, EXECUTOR_LOSS, FETCH_FAILURE]),
        probability=st.floats(0.0, 0.4),
        max_fires=st.integers(0, 2),
    )


def fault_config_strategy():
    return st.one_of(
        st.none(),
        st.builds(
            FaultConfig,
            seed=st.integers(0, 10_000),
            rules=st.lists(rule_strategy(), min_size=0, max_size=3).map(tuple),
            max_failures_per_executor=st.integers(2, 4),
        ),
    )


def _run_workload(ctx, n_elements, n_partitions, with_shuffle):
    rdd = ctx.parallelize(range(n_elements), n_partitions)
    if with_shuffle:
        rdd.map(lambda x: (x % 3, x)).reduce_by_key(lambda a, b: a + b).collect()
    else:
        rdd.map(lambda x: x + 1).collect()


class TestReplayIsByteIdentical:
    @SETTINGS
    @given(
        fault_config=fault_config_strategy(),
        n_elements=st.integers(1, 40),
        n_partitions=st.integers(1, 6),
        with_shuffle=st.booleans(),
        n_jobs=st.integers(1, 3),
        num_executors=st.integers(2, 5),
    )
    def test_replayed_metrics_equal_live(
        self, fault_config, n_elements, n_partitions, with_shuffle, n_jobs,
        num_executors,
    ):
        ctx = SparkletContext(
            num_executors=num_executors,
            max_task_retries=MAX_TASK_RETRIES,
            obs=ObsConfig(enabled=True),
            fault_config=fault_config,
        )
        for _ in range(n_jobs):
            _run_workload(ctx, n_elements, n_partitions, with_shuffle)
        live = ctx.scheduler.job_history
        replayed = replay_job_metrics(ctx.obs.events())
        assert replayed == live
        live_json = json.dumps([j.to_dict() for j in live], sort_keys=True)
        replay_json = json.dumps([j.to_dict() for j in replayed], sort_keys=True)
        assert live_json == replay_json

    @SETTINGS
    @given(
        fault_config=fault_config_strategy(),
        seed=st.integers(0, 500),
    )
    def test_jsonl_round_trip_preserves_replay(self, tmp_path_factory, fault_config, seed):
        """Serialization to disk (float repr included) loses nothing."""
        path = tmp_path_factory.mktemp("obs") / f"run{seed}.jsonl"
        ctx = SparkletContext(
            max_task_retries=MAX_TASK_RETRIES,
            obs=ObsConfig(enabled=True, event_log_path=path),
            fault_config=fault_config,
        )
        _run_workload(ctx, 24, 4, with_shuffle=True)
        ctx.obs.close()
        from_memory = replay_job_metrics(ctx.obs.events())
        from_disk = replay_job_metrics(read_events(path))
        assert from_memory == from_disk == ctx.scheduler.job_history

    @SETTINGS
    @given(fault_config=fault_config_strategy())
    def test_event_log_is_deterministic_per_seed(self, fault_config):
        """Same config, same workload => same event sequence (structurally;
        wall-clock fields like ``t`` and task durations are excluded)."""

        def skeleton():
            ctx = SparkletContext(
                max_task_retries=MAX_TASK_RETRIES,
                obs=ObsConfig(enabled=True),
                fault_config=fault_config,
            )
            _run_workload(ctx, 30, 5, with_shuffle=True)
            return [
                (e["type"], e.get("stage_id"), e.get("partition"),
                 e.get("attempt"), e.get("kind"), e.get("executor_id"))
                for e in ctx.obs.events()
            ]

        assert skeleton() == skeleton()
