"""Property-based tests: Sparklet semantics against list/dict oracles."""

from collections import Counter, defaultdict

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.sparklet import HashPartitioner, SparkletContext
from repro.sparklet.partitioner import RangePartitioner, portable_hash

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

keys = st.one_of(st.integers(-50, 50), st.text(min_size=0, max_size=6))
pairs = st.lists(st.tuples(keys, st.integers(-100, 100)), max_size=60)
ints = st.lists(st.integers(-1000, 1000), max_size=80)
nparts = st.integers(1, 7)


def make_ctx() -> SparkletContext:
    return SparkletContext(default_parallelism=3)


class TestRDDOracles:
    @SETTINGS
    @given(data=ints, n=nparts)
    def test_collect_is_identity(self, data, n):
        assert make_ctx().parallelize(data, n).collect() == data

    @SETTINGS
    @given(data=ints, n=nparts)
    def test_map_matches_list_map(self, data, n):
        got = make_ctx().parallelize(data, n).map(lambda x: x * 3 - 1).collect()
        assert got == [x * 3 - 1 for x in data]

    @SETTINGS
    @given(data=ints, n=nparts)
    def test_filter_matches_list_filter(self, data, n):
        got = make_ctx().parallelize(data, n).filter(lambda x: x % 2 == 0).collect()
        assert got == [x for x in data if x % 2 == 0]

    @SETTINGS
    @given(data=ints, n=nparts)
    def test_count_matches_len(self, data, n):
        assert make_ctx().parallelize(data, n).count() == len(data)

    @SETTINGS
    @given(data=ints, n=nparts, k=st.integers(0, 100))
    def test_take_is_prefix(self, data, n, k):
        assert make_ctx().parallelize(data, n).take(k) == data[:k]

    @SETTINGS
    @given(data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=80), n=nparts)
    def test_reduce_matches_sum(self, data, n):
        assert make_ctx().parallelize(data, n).reduce(lambda a, b: a + b) == sum(data)

    @SETTINGS
    @given(data=ints, n=nparts)
    def test_distinct_matches_set(self, data, n):
        got = make_ctx().parallelize(data, n).distinct().collect()
        assert sorted(got) == sorted(set(data))

    @SETTINGS
    @given(a=ints, b=ints, n=nparts)
    def test_union_is_concatenation_multiset(self, a, b, n):
        ctx = make_ctx()
        got = ctx.parallelize(a, n).union(ctx.parallelize(b, n)).collect()
        assert Counter(got) == Counter(a + b)


class TestPairOracles:
    @SETTINGS
    @given(data=pairs, n=nparts)
    def test_reduce_by_key_matches_dict(self, data, n):
        oracle = defaultdict(int)
        for k, v in data:
            oracle[k] += v
        got = dict(make_ctx().parallelize(data, n).reduce_by_key(lambda a, b: a + b).collect())
        assert got == dict(oracle)

    @SETTINGS
    @given(data=pairs, n=nparts)
    def test_group_by_key_matches_dict(self, data, n):
        oracle = defaultdict(list)
        for k, v in data:
            oracle[k].append(v)
        got = dict(make_ctx().parallelize(data, n).group_by_key().collect())
        assert {k: sorted(v) for k, v in got.items()} == {
            k: sorted(v) for k, v in oracle.items()
        }

    @SETTINGS
    @given(data=pairs, n=nparts, parts=st.integers(1, 5))
    def test_partition_by_preserves_multiset(self, data, n, parts):
        part = HashPartitioner(parts)
        got = make_ctx().parallelize(data, n).partition_by(part).collect()
        assert Counter(got) == Counter(data)

    @SETTINGS
    @given(left=pairs, right=pairs)
    def test_left_outer_join_matches_oracle(self, left, right):
        ctx = make_ctx()
        got = ctx.parallelize(left, 3).left_outer_join(ctx.parallelize(right, 2)).collect()
        right_by_key = defaultdict(list)
        for k, v in right:
            right_by_key[k].append(v)
        oracle = Counter()
        for k, lv in left:
            if right_by_key.get(k):
                for rv in right_by_key[k]:
                    oracle[(k, (lv, rv))] += 1
            else:
                oracle[(k, (lv, None))] += 1
        assert Counter(got) == oracle

    @SETTINGS
    @given(data=pairs, parts=st.integers(1, 5))
    def test_copartitioned_join_equals_plain_join(self, data, parts):
        part = HashPartitioner(parts)
        ctx = make_ctx()
        a = ctx.parallelize(data, 2).partition_by(part)
        b = ctx.parallelize(data, 3).partition_by(part)
        fast = Counter(a.join(b, partitioner=part).collect())
        ctx2 = make_ctx()
        slow = Counter(
            ctx2.parallelize(data, 2).join(ctx2.parallelize(data, 3)).collect()
        )
        assert fast == slow


class TestPartitionerProperties:
    @SETTINGS
    @given(key=keys, parts=st.integers(1, 32))
    def test_hash_partition_in_range(self, key, parts):
        p = HashPartitioner(parts).partition_for(key)
        assert 0 <= p < parts

    @SETTINGS
    @given(key=keys)
    def test_equal_keys_same_partition(self, key):
        part = HashPartitioner(8)
        assert part.partition_for(key) == part.partition_for(key)

    @SETTINGS
    @given(sample=st.lists(st.integers(-1000, 1000), min_size=1, max_size=50),
           parts=st.integers(1, 6))
    def test_range_partitioner_monotone(self, sample, parts):
        part = RangePartitioner.from_sample(sample, parts)
        ordered = sorted(set(sample))
        assigned = [part.partition_for(k) for k in ordered]
        assert assigned == sorted(assigned)
        assert all(0 <= p < parts for p in assigned)

    @SETTINGS
    @given(key=st.one_of(keys, st.tuples(keys, keys)))
    def test_portable_hash_is_int(self, key):
        assert isinstance(portable_hash(key), int)
