"""Unit tests for the extended RDD API (coalesce, repartition, debug string,
zip_with_index, take_ordered) and malformed-input robustness in D-RAPID."""

import numpy as np
import pytest

from repro.sparklet import HashPartitioner


class TestCoalesce:
    def test_preserves_order_and_content(self, ctx):
        data = list(range(100))
        rdd = ctx.parallelize(data, 10).coalesce(3)
        assert rdd.num_partitions == 3
        assert rdd.collect() == data

    def test_is_narrow(self, ctx):
        rdd = ctx.parallelize(range(10), 5).coalesce(2)
        rdd.collect()
        job = ctx.last_job_metrics()
        assert len(job.stages) == 1  # no shuffle stage

    def test_noop_when_growing(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        assert rdd.coalesce(5) is rdd

    def test_invalid_count(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize(range(4), 2).coalesce(0)

    def test_single_partition(self, ctx):
        parts = ctx.parallelize(range(50), 7).coalesce(1).glom().collect()
        assert len(parts) == 1
        assert parts[0] == list(range(50))


class TestRepartition:
    def test_preserves_multiset(self, ctx):
        data = list(range(40))
        rdd = ctx.parallelize(data, 2).repartition(8)
        assert rdd.num_partitions == 8
        assert sorted(rdd.collect()) == data

    def test_spreads_data(self, ctx):
        rdd = ctx.parallelize(range(400), 1).repartition(8)
        sizes = [len(p) for p in rdd.glom().collect()]
        assert max(sizes) < 400  # actually split up


class TestZipWithIndex:
    def test_indices_sequential(self, ctx):
        data = ["a", "b", "c", "d", "e"]
        got = ctx.parallelize(data, 3).zip_with_index().collect()
        assert got == [(x, i) for i, x in enumerate(data)]

    def test_empty(self, ctx):
        assert ctx.parallelize([], 2).zip_with_index().collect() == []


class TestTakeOrdered:
    def test_smallest(self, ctx):
        rng = np.random.default_rng(0)
        data = rng.permutation(100).tolist()
        assert ctx.parallelize(data, 5).take_ordered(4) == [0, 1, 2, 3]

    def test_with_key(self, ctx):
        data = [(i, -i) for i in range(20)]
        got = ctx.parallelize(data, 3).take_ordered(2, key=lambda kv: kv[1])
        assert got == [(19, -19), (18, -18)]

    def test_nonpositive(self, ctx):
        assert ctx.parallelize([1], 1).take_ordered(0) == []


class TestDebugString:
    def test_shows_lineage_with_shuffle_markers(self, ctx):
        rdd = (
            ctx.parallelize([(1, 1)], 2)
            .map(lambda kv: kv)
            .reduce_by_key(lambda a, b: a + b)
            .filter(lambda kv: True)
        )
        text = rdd.to_debug_string()
        assert "+-" in text  # the shuffle edge
        assert "parallelize" in text
        assert text.count("\n") >= 3

    def test_copartitioned_join_shows_no_extra_shuffle(self, ctx):
        part = HashPartitioner(4)
        a = ctx.parallelize([(1, "a")], 2).partition_by(part)
        b = ctx.parallelize([(1, "b")], 2).partition_by(part)
        joined = a.join(b, partitioner=part)
        # Exactly two shuffle markers: the two partition_by edges.
        assert joined.to_debug_string().count("+-") == 2


class TestDRapidMalformedRows:
    def test_garbled_rows_cost_one_record_each(self, observation, dfs, ctx):
        from repro.core.drapid import DRapidDriver
        from repro.core.rapid import run_rapid_observation
        from repro.io.spe_files import build_cluster_file, build_data_file

        data_text = build_data_file([observation])
        lines = data_text.splitlines()
        # Inject garbage: truncated rows, non-numeric fields, stray header.
        key = observation.key.to_key()
        lines.insert(5, f"{key},garbled")
        lines.insert(9, f"{key},not,a,number,row,x")
        lines.insert(12, "# stray header fragment")
        dfs.put_text("/mal/data.csv", "\n".join(lines) + "\n")
        dfs.put_text("/mal/clusters.csv", build_cluster_file([observation]))

        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run("/mal/data.csv", "/mal/clusters.csv", ml_output_path="/mal/ml")
        serial = run_rapid_observation(observation)
        assert result.n_pulses == serial.n_pulses


class TestDRapidDroppedRowAccumulator:
    def test_malformed_cluster_rows_counted(self, observation, dfs, ctx):
        from repro.core.drapid import DRapidDriver
        from repro.io.spe_files import build_cluster_file, build_data_file

        dfs.put_text("/acc2/data.csv", build_data_file([observation]))
        cluster_text = build_cluster_file([observation]).splitlines()
        cluster_text.insert(3, "half,a,row")
        cluster_text.insert(7, "another,bad,row,entirely")
        dfs.put_text("/acc2/clusters.csv", "\n".join(cluster_text) + "\n")

        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run("/acc2/data.csv", "/acc2/clusters.csv",
                            ml_output_path="/acc2/ml")
        assert result.n_dropped_cluster_rows == 2
        assert result.n_clusters == len(observation.clusters)
