"""Scenario compilation, survey presets, and the RFI storm generator."""

import numpy as np
import pytest

from repro.astro import SurveyConfig
from repro.astro.population import synthesize_population
from repro.astro.rfi import RFIStormModel, generate_storm_rfi_spes
from repro.astro.survey import GBT350DRIFT, generate_observation
from repro.campaign.scenarios import (
    PhaseConfig,
    Scenario,
    TenantTimeline,
    compile_scenario,
    resolve_scenario,
    scenario_names,
    three_phase_scenario,
)


# ---------------------------------------------------------------------------
# Survey presets
# ---------------------------------------------------------------------------
def test_presets_cover_all_four_surveys():
    presets = SurveyConfig.presets()
    assert set(presets) == {"GBT350Drift", "PALFA", "CHIME", "FAST-CRAFTS"}
    for name, cfg in presets.items():
        assert cfg.name == name


@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("gbt", "GBT350Drift"),
        ("GBT350Drift", "GBT350Drift"),
        ("chime", "CHIME"),
        ("Chime", "CHIME"),
        ("fast", "FAST-CRAFTS"),
        ("crafts", "FAST-CRAFTS"),
        ("palfa", "PALFA"),
    ],
)
def test_preset_lookup_accepts_aliases(alias, canonical):
    assert SurveyConfig.preset(alias).name == canonical


def test_preset_lookup_rejects_unknown_survey():
    with pytest.raises(KeyError, match="SUPERB"):
        SurveyConfig.preset("SUPERB")


def test_preset_returns_the_module_singletons():
    assert SurveyConfig.preset("gbt350drift") is GBT350DRIFT


def test_new_presets_have_physical_parameters():
    chime = SurveyConfig.preset("CHIME")
    fast = SurveyConfig.preset("FAST-CRAFTS")
    assert chime.center_freq_mhz < GBT350DRIFT.center_freq_mhz * 3
    assert chime.max_dm > GBT350DRIFT.max_dm
    assert fast.n_beams == 19
    assert fast.max_dm > 0 and fast.bandwidth_mhz > 0


# ---------------------------------------------------------------------------
# Storm generator
# ---------------------------------------------------------------------------
def test_storm_generator_is_deterministic_for_a_seed():
    storm = RFIStormModel(p_on=0.4, p_off=0.2, interval_s=2.0,
                          quiet_rate_hz=0.3, storm_rate_multiplier=8.0)
    grid = GBT350DRIFT.dm_grid(coarsen=10.0)
    a_spes, a_win = generate_storm_rfi_spes(
        storm, 30.0, grid, rng=np.random.default_rng(42))
    b_spes, b_win = generate_storm_rfi_spes(
        storm, 30.0, grid, rng=np.random.default_rng(42))
    assert a_win == b_win
    assert [(s.dm, s.snr, s.time_s) for s in a_spes] == [
        (s.dm, s.snr, s.time_s) for s in b_spes]


def test_storm_windows_stay_inside_the_observation():
    storm = RFIStormModel(p_on=0.5, p_off=0.1, start_in_storm=True)
    windows = storm.windows(60.0, np.random.default_rng(3))
    assert windows, "a storm-biased chain should produce windows"
    for lo, hi in windows:
        assert 0.0 <= lo < hi <= 60.0


def test_storm_rate_multiplier_raises_burst_count():
    grid = GBT350DRIFT.dm_grid(coarsen=10.0)
    quiet = RFIStormModel(p_on=0.0, quiet_rate_hz=0.2,
                          storm_rate_multiplier=1.0)
    stormy = RFIStormModel(p_on=1.0, p_off=0.0, start_in_storm=True,
                           quiet_rate_hz=0.2, storm_rate_multiplier=10.0)
    n_quiet = len(generate_storm_rfi_spes(
        quiet, 120.0, grid, rng=np.random.default_rng(5))[0])
    n_storm = len(generate_storm_rfi_spes(
        stormy, 120.0, grid, rng=np.random.default_rng(5))[0])
    assert n_storm > 2 * max(1, n_quiet)


def test_generate_observation_old_signature_unchanged():
    """``gain=1.0, storm=None`` must be a byte-identical no-op — the new
    keywords cannot perturb pre-campaign callers."""
    pulsars = synthesize_population(2, max_dm=80.0, seed=1)
    kwargs = dict(mjd=55000.0, beam=0, n_noise_clusters=10,
                  n_rfi_bursts=1, seed=9, obs_length_s=10.0)
    old = generate_observation(GBT350DRIFT, pulsars, **kwargs)
    new = generate_observation(GBT350DRIFT, pulsars, gain=1.0, storm=None,
                               **kwargs)
    assert [(s.dm, s.snr, s.time_s, s.sample, s.downfact)
            for s in old.spes] == [
        (s.dm, s.snr, s.time_s, s.sample, s.downfact) for s in new.spes]
    assert np.array_equal(old.labels, new.labels)


def test_gain_scales_astrophysical_snr():
    pulsars = synthesize_population(2, max_dm=80.0, seed=1)
    kwargs = dict(mjd=55000.0, beam=0, n_noise_clusters=0,
                  n_rfi_bursts=0, seed=9, obs_length_s=10.0)
    full = generate_observation(GBT350DRIFT, pulsars, gain=1.0, **kwargs)
    half = generate_observation(GBT350DRIFT, pulsars, gain=0.5, **kwargs)
    # Same seed → same draws; the surviving half-gain events are weaker.
    full_by_t = {s.time_s: s.snr for s in full.spes}
    overlapping = [(full_by_t[s.time_s], s.snr) for s in half.spes
                   if s.time_s in full_by_t]
    assert overlapping and all(h <= f for f, h in overlapping)
    assert len(half.spes) <= len(full.spes)


# ---------------------------------------------------------------------------
# Scenario compilation
# ---------------------------------------------------------------------------
def test_scenario_registry_and_resolution():
    assert scenario_names() == ["three-phase"]
    s = resolve_scenario("three-phase")
    assert isinstance(s, Scenario) and s.name == "three-phase"
    assert resolve_scenario(s) is s
    with pytest.raises(ValueError, match="unknown scenario"):
        resolve_scenario("five-phase")


def test_three_phase_scenario_shape():
    s = three_phase_scenario()
    assert [p.name for p in s.phases] == [
        "baseline", "storm-season", "expansion"]
    assert s.phases[0].storm is None
    assert s.phases[1].storm is not None and s.phases[2].storm is not None
    gbt, chime = s.tenants
    assert gbt.joins_at_phase == 0 and chime.joins_at_phase == 2
    assert chime.survey == "CHIME" and chime.gain < 1.0


def test_compile_is_deterministic_and_keys_are_unique():
    s = three_phase_scenario()
    a = compile_scenario(s, seed=5)
    b = compile_scenario(s, seed=5)
    assert a.phase_of_key == b.phase_of_key
    assert a.tenant_of_key == b.tenant_of_key
    assert a.anchor_items_before_phase == b.anchor_items_before_phase
    for tid in a.observations:
        assert [o.key.to_key() for o in a.observations[tid]] == [
            o.key.to_key() for o in b.observations[tid]]
    # Keys are globally unique across tenants and phases.
    all_keys = [o.key.to_key() for obs in a.observations.values()
                for o in obs]
    assert len(set(all_keys)) == len(all_keys)


def test_compile_covers_every_active_tenant_phase():
    s = three_phase_scenario()
    compiled = compile_scenario(s, seed=0)
    assert compiled.anchor_tenant == "gbt"
    assert compiled.phases_of("gbt") == [0, 1, 2]
    assert compiled.phases_of("chime") == [2]
    # The anchor has observations in every phase, chime only in phase 2.
    gbt_phases = {compiled.phase_of_key[o.key.to_key()]
                  for o in compiled.observations["gbt"]}
    chime_phases = {compiled.phase_of_key[o.key.to_key()]
                    for o in compiled.observations["chime"]}
    assert gbt_phases == {0, 1, 2} and chime_phases == {2}
    # Join thresholds are monotone and start at zero.
    thresholds = [compiled.anchor_items_before_phase[p] for p in range(3)]
    assert thresholds[0] == 0
    assert thresholds == sorted(thresholds) and thresholds[1] > 0


def test_different_seeds_produce_different_campaigns():
    s = three_phase_scenario()
    a = compile_scenario(s, seed=0)
    b = compile_scenario(s, seed=1)
    a_spes = [x.snr for o in a.observations["gbt"] for x in o.spes]
    b_spes = [x.snr for o in b.observations["gbt"] for x in o.spes]
    assert a_spes != b_spes


def test_scenario_validation_rejects_bad_timelines():
    phase = PhaseConfig("only")
    with pytest.raises(ValueError, match="duplicate tenant"):
        Scenario("dup", (phase,),
                 (TenantTimeline("a"), TenantTimeline("a")))
    with pytest.raises(ValueError, match="anchor"):
        Scenario("late-anchor", (phase, PhaseConfig("second")),
                 (TenantTimeline("a", joins_at_phase=1),))
    with pytest.raises(ValueError, match="outside the timeline"):
        Scenario("oob", (phase,),
                 (TenantTimeline("a"), TenantTimeline("b", joins_at_phase=3)))
    with pytest.raises(ValueError, match="at least one phase"):
        Scenario("empty", (), (TenantTimeline("a"),))
    with pytest.raises(ValueError, match="gain must be positive"):
        PhaseConfig("bad", gain=0.0)
