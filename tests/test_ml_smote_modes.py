"""Unit tests for the multiclass SMOTE policy modes (RQ4/RQ5 protocol)."""

import numpy as np
import pytest

from repro.ml.smote import balance_with_smote


@pytest.fixture
def multiclass_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(1160, 4))
    y = np.array([0] * 1000 + [1] * 100 + [2] * 40 + [3] * 20)
    return X, y


class TestSubclassMode:
    def test_equalizes_to_largest_subclass(self, multiclass_data):
        X, y = multiclass_data
        _Xb, yb = balance_with_smote(X, y, non_pulsar_class=0, mode="subclass")
        counts = np.bincount(yb)
        assert counts[0] == 1000
        assert counts[1] == counts[2] == counts[3] == 100

    def test_much_smaller_than_binary_balance(self, multiclass_data):
        X, y = multiclass_data
        Xm, _ = balance_with_smote(X, y, non_pulsar_class=0, mode="subclass")
        y_bin = (y > 0).astype(int)
        Xb, _ = balance_with_smote(X, y_bin)
        assert Xm.shape[0] < Xb.shape[0] * 0.75  # the RQ5 size asymmetry


class TestEqualShareMode:
    def test_positive_side_matches_majority(self, multiclass_data):
        X, y = multiclass_data
        _Xb, yb = balance_with_smote(X, y, non_pulsar_class=0, mode="equal_share")
        counts = np.bincount(yb)
        assert counts[0] == 1000
        # Each subclass near 1000/3; totals match the majority.
        assert abs(int(counts[1:].sum()) - 1000) <= 3
        assert counts[1] == counts[2] == counts[3]

    def test_same_total_size_as_binary(self, multiclass_data):
        X, y = multiclass_data
        Xm, _ = balance_with_smote(X, y, non_pulsar_class=0, mode="equal_share")
        Xb, _ = balance_with_smote(X, (y > 0).astype(int))
        assert abs(Xm.shape[0] - Xb.shape[0]) <= 3

    def test_rare_subclass_boosted_most(self, multiclass_data):
        X, y = multiclass_data
        _Xb, yb = balance_with_smote(X, y, non_pulsar_class=0, mode="equal_share")
        counts = np.bincount(yb)
        boost = counts[1:] / np.bincount(y)[1:]
        assert boost[2] > boost[0]  # rarest subclass gets the biggest factor

    def test_never_removes_instances(self, multiclass_data):
        X, y = multiclass_data
        Xb, yb = balance_with_smote(X, y, non_pulsar_class=0, mode="equal_share")
        np.testing.assert_array_equal(Xb[: len(y)], X)
        np.testing.assert_array_equal(yb[: len(y)], y)


class TestModeValidation:
    def test_unknown_mode_rejected(self, multiclass_data):
        X, y = multiclass_data
        with pytest.raises(ValueError, match="mode"):
            balance_with_smote(X, y, non_pulsar_class=0, mode="everything")

    def test_binary_ignores_mode(self, multiclass_data):
        X, y = multiclass_data
        y_bin = (y > 0).astype(int)
        a = balance_with_smote(X, y_bin, mode="subclass")
        b = balance_with_smote(X, y_bin, mode="equal_share")
        assert a[0].shape == b[0].shape
