"""Kernel-layer equivalence: vectorized front end vs retained references.

Property tests (hypothesis) assert that the batch/subband dedispersion,
O(n) boxcar search, and grid-indexed DBSCAN kernels agree with the naive
``_reference_*`` implementations they replaced — bit-for-bit where the
kernels are exact, tolerance-bounded where they trade exactness for reuse
(subband).  A golden end-to-end test checks an injected pulse is recovered
at its true DM/time/width by the vectorized search.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.astro.clustering import Cluster, SinglePulseDBSCAN
from repro.astro.dispersion import DMGrid, smearing_snr_factor, smearing_snr_factors
from repro.astro.filterbank import (
    InjectedPulse,
    _reference_single_pulse_search,
    dedisperse,
    dedisperse_all,
    single_pulse_search,
    synthesize_filterbank,
)
from repro.astro.kernels import (
    _reference_boxcar_snr,
    _reference_dedisperse,
    _reference_find_peaks,
    _subband_edges,
    _tree_effective_shifts,
    _tree_plan,
    boxcar_snr,
    dedisperse_batch,
    dedisperse_grid,
    dedisperse_subband,
    dedisperse_tree,
    find_peaks,
    shift_table,
    single_pulse_block_search,
    tree_shift_bound,
)

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _filterbank_block(rng: np.random.Generator, n_chan: int, n_samples: int):
    data = rng.normal(0.0, 1.0, size=(n_chan, n_samples))
    edges = np.linspace(300.0, 400.0, n_chan + 1)
    freqs = 0.5 * (edges[:-1] + edges[1:])
    return data, freqs, 400.0


class TestBatchDedispersion:
    @SETTINGS
    @given(
        n_chan=st.integers(2, 24),
        n_samples=st.integers(8, 300),
        dms=st.lists(st.floats(0.0, 300.0), min_size=1, max_size=8),
        seed=st.integers(0, 2**31),
    )
    def test_batch_matches_reference(self, n_chan, n_samples, dms, seed):
        """Each batch row is the per-DM reference within 1e-9 (float64)."""
        rng = np.random.default_rng(seed)
        data, freqs, f_ref = _filterbank_block(rng, n_chan, n_samples)
        block = dedisperse_batch(data, freqs, f_ref, 1e-3, dms)
        for row, dm in zip(block, dms):
            ref = _reference_dedisperse(data, freqs, f_ref, 1e-3, float(dm))
            assert np.max(np.abs(row - ref)) <= 1e-9

    @SETTINGS
    @given(
        n_chan=st.integers(4, 32),
        n_samples=st.integers(64, 400),
        dm_lo=st.floats(0.0, 100.0),
        step=st.floats(0.01, 0.2),
        n_dms=st.integers(2, 30),
        seed=st.integers(0, 2**31),
    )
    def test_subband_within_shift_tolerance(
        self, n_chan, n_samples, dm_lo, step, n_dms, seed
    ):
        """Subband shifts differ from exact ones by ≤ tol_samples + 1.

        Checked structurally on a noiseless dispersed impulse: at the exact
        peak's (DM row, sample), all of the pulse's mass must land within
        ±(tol + 2) samples in the subband output — per-channel quantization
        may split the peak across neighbouring samples (especially with few
        channels) but cannot move mass out of that window.
        """
        dms = dm_lo + step * np.arange(n_dms)
        data = np.zeros((n_chan, n_samples))
        edges = np.linspace(300.0, 400.0, n_chan + 1)
        freqs = 0.5 * (edges[:-1] + edges[1:])
        # A dispersed impulse at the middle DM of the ladder.
        from repro.astro.dispersion import K_DM

        true_dm = float(dms[n_dms // 2])
        t0 = n_samples // 2
        for ch in range(n_chan):
            delay = K_DM * true_dm * (freqs[ch] ** -2 - 400.0**-2)
            s = t0 + int(round(delay / 1e-3))
            if s < n_samples:
                data[ch, s] = 1.0
        batch = dedisperse_batch(data, freqs, 400.0, 1e-3, dms)
        sub = dedisperse_subband(data, freqs, 400.0, 1e-3, dms, tol_samples=1.0)
        assert sub.shape == batch.shape
        d, i = np.unravel_index(batch.argmax(), batch.shape)
        window = sub[d, max(0, i - 3) : i + 4]
        assert window.sum() >= 0.95 * batch[d, i]

    def test_subband_falls_back_on_coarse_ladders(self):
        """Widely spaced DMs admit no partial-sum reuse: exact path used."""
        rng = np.random.default_rng(0)
        data, freqs, f_ref = _filterbank_block(rng, 16, 256)
        dms = [0.0, 150.0, 400.0, 900.0]
        sub = dedisperse_subband(data, freqs, f_ref, 1e-3, dms)
        batch = dedisperse_batch(data, freqs, f_ref, 1e-3, dms)
        assert np.array_equal(sub, batch)

    def test_single_dm_wrapper_matches_batch(self):
        fb = synthesize_filterbank(duration_s=0.5, n_channels=16, seed=5)
        one = dedisperse(fb, 42.0)
        block = dedisperse_all(fb, np.array([42.0]))
        assert np.array_equal(one, block[0])


class TestSubbandEdges:
    def test_prime_channel_count_distributes_remainder(self):
        """Satellite bug: the remainder used to pile into the last subband.

        13 channels over 4 subbands must split 4+3+3+3 (leading subbands
        take the extra channel), not 3+3+3+4-or-worse."""
        assert _subband_edges(13, 4) == [(0, 4), (4, 7), (7, 10), (10, 13)]

    @SETTINGS
    @given(
        n_chan=st.integers(1, 97),
        n_subbands=st.integers(1, 16),
    )
    def test_edges_are_contiguous_and_balanced(self, n_chan, n_subbands):
        n_subbands = min(n_subbands, n_chan)
        edges = _subband_edges(n_chan, n_subbands)
        assert edges[0][0] == 0 and edges[-1][1] == n_chan
        assert all(a[1] == b[0] for a, b in zip(edges, edges[1:]))
        sizes = [hi - lo for lo, hi in edges]
        assert max(sizes) - min(sizes) <= 1
        # Larger blocks lead (remainder distributed across leading subbands).
        assert sizes == sorted(sizes, reverse=True)


class TestTreeDedispersion:
    @SETTINGS
    @given(
        n_chan=st.integers(8, 48),
        n_samples=st.integers(64, 300),
        dm_lo=st.floats(0.0, 80.0),
        step=st.floats(0.01, 0.15),
        n_dms=st.integers(4, 40),
        tol=st.floats(0.5, 2.0),
        seed=st.integers(0, 2**31),
    )
    def test_tree_obeys_tolerance_law_and_reconstructs(
        self, n_chan, n_samples, dm_lo, step, n_dms, tol, seed
    ):
        """Two laws at once: the tree's effective per-channel shifts stay
        within :func:`tree_shift_bound` of the exact ones, and the tree
        output *equals* a direct shift-add with those effective shifts —
        i.e. the approximation is fully characterized by integer shifts,
        never by lost or double-counted samples."""
        rng = np.random.default_rng(seed)
        data, freqs, f_ref = _filterbank_block(rng, n_chan, n_samples)
        dms = dm_lo + step * np.arange(n_dms)
        eff = _tree_effective_shifts(freqs, f_ref, 1e-3, dms, tol_samples=tol)
        exact = shift_table(freqs, f_ref, dms, 1e-3)
        n_sub = max(1, int(round(np.sqrt(n_chan))))
        levels, _, _ = _tree_plan(freqs, 1e-3, np.unique(dms), n_sub, tol)
        assert np.max(np.abs(eff - exact)) <= tree_shift_bound(len(levels), tol)

        tree = dedisperse_tree(data, freqs, f_ref, 1e-3, dms, tol_samples=tol)
        norm = 1.0 / np.sqrt(n_chan)
        expect = np.zeros((n_dms, n_samples))
        for d in range(n_dms):
            for ch in range(n_chan):
                s = int(eff[d, ch])
                if s < n_samples:
                    expect[d, : n_samples - s] += data[ch, s:]
        expect *= norm
        np.testing.assert_allclose(tree, expect, atol=1e-9)

    def test_tree_falls_back_exactly_on_coarse_ladders(self):
        """No reuse to be had → the tree must take the exact batch path."""
        rng = np.random.default_rng(3)
        data, freqs, f_ref = _filterbank_block(rng, 16, 256)
        dms = [0.0, 200.0, 500.0, 900.0]
        assert np.array_equal(
            dedisperse_tree(data, freqs, f_ref, 1e-3, dms),
            dedisperse_batch(data, freqs, f_ref, 1e-3, dms),
        )

    def test_tree_falls_back_on_descending_frequencies(self):
        rng = np.random.default_rng(4)
        data, freqs, f_ref = _filterbank_block(rng, 12, 128)
        freqs = freqs[::-1].copy()
        dms = 20.0 + 0.05 * np.arange(32)
        assert np.array_equal(
            dedisperse_tree(data, freqs, f_ref, 1e-3, dms),
            dedisperse_batch(data, freqs, f_ref, 1e-3, dms),
        )

    def test_tree_recovers_impulse_near_exact_peak(self):
        """Structural equivalence tree ≈ subband ≈ direct on a noiseless
        dispersed impulse: each approximate method keeps the pulse's mass
        within the tolerance window around the exact peak."""
        from repro.astro.dispersion import K_DM

        n_chan, n_samples = 32, 512
        dms = 40.0 + 0.05 * np.arange(64)
        data = np.zeros((n_chan, n_samples))
        edges = np.linspace(300.0, 400.0, n_chan + 1)
        freqs = 0.5 * (edges[:-1] + edges[1:])
        true_dm = float(dms[32])
        t0 = n_samples // 2
        for ch in range(n_chan):
            delay = K_DM * true_dm * (freqs[ch] ** -2 - 400.0**-2)
            s = t0 + int(round(delay / 1e-3))
            if s < n_samples:
                data[ch, s] = 1.0
        batch = dedisperse_batch(data, freqs, 400.0, 1e-3, dms)
        d, i = np.unravel_index(batch.argmax(), batch.shape)
        for approx in (
            dedisperse_tree(data, freqs, 400.0, 1e-3, dms),
            dedisperse_subband(data, freqs, 400.0, 1e-3, dms),
        ):
            assert approx.shape == batch.shape
            window = approx[d, max(0, i - 8) : i + 9]
            assert window.sum() >= 0.95 * batch[d, i]

    def test_grid_dispatch_routes_methods(self):
        from repro.execution import KernelConfig

        rng = np.random.default_rng(9)
        data, freqs, f_ref = _filterbank_block(rng, 16, 200)
        dms = 10.0 + 0.05 * np.arange(24)
        direct = dedisperse_grid(data, freqs, f_ref, 1e-3, dms,
                                 kernel=KernelConfig(method="direct"))
        assert np.array_equal(direct, dedisperse_batch(data, freqs, f_ref, 1e-3, dms))
        tree = dedisperse_grid(data, freqs, f_ref, 1e-3, dms,
                               kernel=KernelConfig(method="tree"))
        assert np.array_equal(tree, dedisperse_tree(data, freqs, f_ref, 1e-3, dms))
        sub = dedisperse_grid(data, freqs, f_ref, 1e-3, dms,
                              kernel=KernelConfig(method="subband"))
        assert np.array_equal(sub, dedisperse_subband(data, freqs, f_ref, 1e-3, dms))


class TestBoxcarSearch:
    @SETTINGS
    @given(
        n=st.integers(1, 400),
        seed=st.integers(0, 2**31),
        widths=st.lists(
            st.sampled_from([1, 2, 3, 4, 8, 16, 32]), min_size=1, max_size=5, unique=True
        ),
    )
    def test_cumsum_boxcar_matches_reference(self, n, seed, widths):
        """O(n) cumulative-sum z-scores equal the O(n·w) convolution ones."""
        widths = tuple(sorted(widths))
        rng = np.random.default_rng(seed)
        series = rng.normal(0.0, 1.0, size=n)
        snr, width = boxcar_snr(series, widths)
        snr_ref, width_ref = _reference_boxcar_snr(series, widths)
        np.testing.assert_allclose(snr, snr_ref, rtol=1e-7, atol=1e-8)
        assert np.array_equal(width, width_ref)

    @SETTINGS
    @given(
        n=st.integers(1, 300),
        seed=st.integers(0, 2**31),
        threshold=st.floats(0.5, 6.0),
    )
    def test_vectorized_peaks_match_reference_scan(self, n, seed, threshold):
        rng = np.random.default_rng(seed)
        snr = rng.normal(0.0, 2.0, size=n)
        assert np.array_equal(
            find_peaks(snr, threshold), _reference_find_peaks(snr, threshold)
        )

    @SETTINGS
    @given(
        n_rows=st.integers(1, 4),
        n=st.integers(2, 300),
        seed=st.integers(0, 2**31),
    )
    def test_block_search_matches_per_series_kernels(self, n_rows, n, seed):
        """The fused block search is exactly per-row boxcar_snr + find_peaks."""
        rng = np.random.default_rng(seed)
        block = rng.normal(0.0, 1.0, size=(n_rows, n))
        widths = (1, 2, 4, 8)
        rows, samples, snrs, wid = single_pulse_block_search(block, 2.0, widths)
        got = {(int(r), int(s)): (float(v), int(w))
               for r, s, v, w in zip(rows, samples, snrs, wid)}
        expect = {}
        for r in range(n_rows):
            snr, width = boxcar_snr(block[r], widths)
            for s in find_peaks(snr, 2.0):
                expect[(r, int(s))] = (float(snr[s]), int(width[s]))
        assert got.keys() == expect.keys()
        for key, (v, w) in expect.items():
            assert got[key] == (pytest.approx(v), w)


class TestDecomposedBoxcar:
    @SETTINGS
    @given(
        n=st.integers(1, 400),
        seed=st.integers(0, 2**31),
        widths=st.lists(
            st.sampled_from([1, 2, 3, 4, 5, 7, 8, 16, 31, 32]),
            min_size=1, max_size=6, unique=True,
        ),
    )
    def test_decomposed_matches_cumsum(self, n, seed, widths):
        """Power-of-two decomposition reproduces the cumsum z-scores.

        The two paths differ only by float summation order, so agreement is
        to ~1e-12, and the best-width argmax must agree wherever the scores
        are not an exact tie."""
        widths = tuple(sorted(widths))
        rng = np.random.default_rng(seed)
        series = rng.normal(0.0, 1.0, size=n)
        snr_c, width_c = boxcar_snr(series, widths, mode="cumsum")
        snr_d, width_d = boxcar_snr(series, widths, mode="decomposed")
        np.testing.assert_allclose(snr_d, snr_c, rtol=1e-9, atol=1e-9)
        assert np.array_equal(width_d, width_c)

    @SETTINGS
    @given(
        n_rows=st.integers(1, 4),
        n=st.integers(2, 300),
        seed=st.integers(0, 2**31),
    )
    def test_block_search_decomposed_matches_cumsum(self, n_rows, n, seed):
        """Same peaks, same widths, z-scores to 1e-9 across boxcar modes."""
        rng = np.random.default_rng(seed)
        block = rng.normal(0.0, 1.0, size=(n_rows, n))
        widths = (1, 2, 4, 8, 16)
        rc, sc, zc, wc = single_pulse_block_search(block, 2.0, widths,
                                                   boxcar="cumsum")
        rd, sd, zd, wd = single_pulse_block_search(block, 2.0, widths,
                                                   boxcar="decomposed")
        assert np.array_equal(rc, rd) and np.array_equal(sc, sd)
        assert np.array_equal(wc, wd)
        np.testing.assert_allclose(zd, zc, rtol=1e-9, atol=1e-9)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            boxcar_snr(np.zeros(8), (1, 2), mode="fft")


class TestGoldenRecovery:
    def test_injected_pulse_recovered_at_truth(self):
        """End to end: the vectorized search finds the injected pulse at its
        true DM, time, and width."""
        true = InjectedPulse(time_s=4.0, dm=60.0, width_ms=16.0, amplitude=1.5)
        fb = synthesize_filterbank(
            duration_s=8.0, n_channels=64, f_low_mhz=300.0, f_high_mhz=400.0,
            sample_time_s=2e-3, pulses=[true], seed=11,
        )
        trials = np.arange(30.0, 90.0, 1.0)
        spes = single_pulse_search(fb, trials, snr_threshold=6.0)
        assert spes
        best = max(spes, key=lambda s: s.snr)
        assert abs(best.dm - true.dm) <= 2.0
        # Left-aligned convention: the window *starts* at best.time_s and
        # covers the pulse centroid.
        window_s = best.downfact * fb.sample_time_s
        assert best.time_s - window_s <= true.time_s <= best.time_s + 2 * window_s
        # Best-matching boxcar is within a factor ~2 of the true width.
        true_width_samples = true.width_ms / 1e3 / fb.sample_time_s
        assert true_width_samples / 4 <= best.downfact <= true_width_samples * 8

    def test_vectorized_and_reference_search_agree_on_detections(self):
        """Same pulse, both paths: peak DM agrees; SNRs within a few %.

        (Emitted sample positions deliberately differ: the reference centres
        windows, the kernel left-aligns them.)
        """
        true = InjectedPulse(time_s=2.0, dm=45.0, width_ms=10.0, amplitude=1.5)
        fb = synthesize_filterbank(
            duration_s=4.0, n_channels=32, sample_time_s=2e-3, pulses=[true], seed=2,
        )
        trials = np.arange(30.0, 60.0, 1.5)
        vec = single_pulse_search(fb, trials, snr_threshold=6.0, dtype=np.float64)
        ref = _reference_single_pulse_search(fb, trials, snr_threshold=6.0)
        assert vec and ref
        bv, br = max(vec, key=lambda s: s.snr), max(ref, key=lambda s: s.snr)
        assert bv.dm == br.dm
        assert abs(bv.snr - br.snr) / br.snr < 0.1


class TestGridDBSCAN:
    @SETTINGS
    @given(
        n=st.integers(0, 250),
        n_blobs=st.integers(1, 5),
        spread=st.floats(0.2, 3.0),
        seed=st.integers(0, 2**31),
    )
    def test_grid_labels_equal_reference_labels(self, n, n_blobs, spread, seed):
        """The lexsorted cell index yields *identical* labels to the dict
        version: neighbour sets are equal, and the expansion order is fixed
        by the outer loop, not the neighbour enumeration order."""
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-40.0, 40.0, size=(n_blobs, 2))
        pts = centers[rng.integers(0, n_blobs, size=n)]
        pts = pts + rng.normal(0.0, spread, size=(n, 2)) if n else pts
        x, y = (pts[:, 0], pts[:, 1]) if n else (np.empty(0), np.empty(0))
        db = SinglePulseDBSCAN()
        assert np.array_equal(db._dbscan(x, y), db._reference_dbscan(x, y))

    @SETTINGS
    @given(dms=st.lists(st.floats(0.0, 4000.0), min_size=1, max_size=50))
    def test_spacing_of_matches_spacing_at(self, dms):
        grid = DMGrid(max_dm=2000.0, coarsen=3.0)
        vec = grid.spacing_of(np.array(dms))
        assert np.array_equal(vec, np.array([grid.spacing_at(d) for d in dms]))

    @SETTINGS
    @given(
        deltas=st.lists(st.floats(-50.0, 50.0), min_size=1, max_size=20),
        width_ms=st.floats(0.5, 50.0),
    )
    def test_vectorized_smearing_factors_match_scalar(self, deltas, width_ms):
        vec = smearing_snr_factors(np.array(deltas), width_ms, 350.0, 100.0)
        ref = [smearing_snr_factor(d, width_ms, 350.0, 100.0) for d in deltas]
        np.testing.assert_allclose(vec, ref, rtol=1e-12)


class TestClusterPersistence:
    def test_csv_roundtrip_preserves_size(self):
        """Satellite bug: ``from_csv_row`` used to drop the size field."""
        c = Cluster(
            cluster_id=3, indices=[4, 9, 11], dm_lo=10.0, dm_hi=12.0,
            t_lo=1.0, t_hi=1.5, max_snr=9.5,
        )
        assert c.size == 3
        back = Cluster.from_csv_row(c.to_csv_row())
        assert back.indices == []
        assert back.n_spes == 3
        assert back.size == 3
        # And a second round trip keeps it.
        assert Cluster.from_csv_row(back.to_csv_row()).size == 3
