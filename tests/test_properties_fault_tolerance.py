"""Property-based tests for the fault-tolerance subsystem.

Three laws the simulator and DFS must satisfy for *any* input:

1. at zero faults, simulated makespan is monotone non-increasing in the
   executor count (more machines never hurt a FIFO list schedule);
2. speculative execution never increases makespan under straggler-only
   fault profiles (copies run only on cores that would otherwise idle);
3. datanode death followed by re-replication restores the replication
   factor whenever capacity allows.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.dfs import DataNode, DFSClient
from repro.sparklet.cluster import ClusterConfig
from repro.sparklet.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.sparklet.simulation import (
    SimFaultProfile,
    SpeculationConfig,
    StragglerModel,
    greedy_makespan,
    simulate_executor_sweep,
    simulate_job,
)

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

durations = st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=1, max_size=40)


def job_strategy():
    task = st.tuples(
        st.floats(0.001, 0.5),       # duration_s
        st.integers(0, 500_000_000), # bytes_in
        st.integers(0, 20_000_000),  # shuffle bytes
    )
    stage = st.lists(task, min_size=1, max_size=12)
    return st.lists(stage, min_size=1, max_size=3)


def build_job(stage_specs) -> JobMetrics:
    job = JobMetrics(job_id=0)
    n = len(stage_specs)
    for sid, tasks in enumerate(stage_specs):
        sm = StageMetrics(sid, f"s{sid}", is_shuffle_map=(sid < n - 1))
        for p, (dur, bytes_in, sbytes) in enumerate(tasks):
            sm.tasks.append(
                TaskMetrics(
                    stage_id=sid,
                    partition=p,
                    duration_s=dur,
                    bytes_in=bytes_in,
                    shuffle_read_bytes=sbytes if sid > 0 else 0,
                    shuffle_write_bytes=sbytes if sid < n - 1 else 0,
                )
            )
        job.stages.append(sm)
    return job


class TestMakespanMonotoneInExecutors:
    @SETTINGS
    @given(d=durations)
    def test_greedy_makespan_monotone_in_workers(self, d):
        spans = [greedy_makespan(d, w) for w in range(1, 9)]
        for wider, narrower in zip(spans[1:], spans):
            assert wider <= narrower + 1e-9

    @SETTINGS
    @given(specs=job_strategy())
    def test_simulated_job_monotone_in_executors(self, specs):
        job = build_job(specs)
        counts = [1, 2, 4, 8]
        sweep = simulate_executor_sweep(job, counts)
        elapsed = [sweep[n].elapsed_s for n in counts]
        for wider, narrower in zip(elapsed[1:], elapsed):
            assert wider <= narrower + 1e-9


class TestSpeculationNeverHurts:
    @SETTINGS
    @given(
        specs=job_strategy(),
        prob=st.floats(0.0, 0.6),
        factor=st.floats(1.0, 8.0),
        seed=st.integers(0, 1000),
        n_exec=st.integers(1, 6),
        quantile=st.floats(0.1, 0.95),
    )
    def test_speculation_never_increases_makespan(
        self, specs, prob, factor, seed, n_exec, quantile
    ):
        job = build_job(specs)
        cfg = ClusterConfig(num_executors=n_exec)
        stragglers = StragglerModel(prob=prob, factor=factor, seed=seed)
        off = simulate_job(job, cfg, faults=SimFaultProfile(stragglers=stragglers))
        on = simulate_job(
            job,
            cfg,
            faults=SimFaultProfile(
                stragglers=stragglers,
                speculation=SpeculationConfig(enabled=True, quantile=quantile),
            ),
        )
        assert on.elapsed_s <= off.elapsed_s + 1e-9
        # Metric sanity: wins never exceed launches.
        assert on.n_spec_wins <= on.n_speculative


class TestReReplicationRestoresFactor:
    @SETTINGS
    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=4000), min_size=1, max_size=5),
        n_nodes=st.integers(3, 8),
        replication=st.integers(2, 3),
        victim=st.integers(0, 7),
        seed=st.integers(0, 100),
    )
    def test_kill_then_rereplicate_restores_factor(
        self, payloads, n_nodes, replication, victim, seed
    ):
        # Unbounded capacity: restoration must always be possible as long as
        # enough live nodes remain.
        dfs = DFSClient(
            [DataNode(f"dn{i}") for i in range(n_nodes)],
            replication=replication,
            block_size=1024,
            seed=seed,
        )
        for i, payload in enumerate(payloads):
            dfs.put(f"/f{i}", payload)
        dfs.kill_datanode(f"dn{victim % n_nodes}")

        live = n_nodes - 1
        target = min(replication, live)
        assert dfs.namenode.under_replicated(target) == []
        for i, payload in enumerate(payloads):
            entry = dfs.namenode.get_file(f"/f{i}")
            for bid in entry.block_ids:
                assert len(dfs.namenode.replicas_of(bid)) >= target
            assert dfs.get(f"/f{i}") == payload  # data survived intact

    @SETTINGS
    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=4000), min_size=1, max_size=4),
        seed=st.integers(0, 100),
        timeout=st.floats(1.0, 60.0),
    )
    def test_heartbeat_expiry_triggers_rereplication(self, payloads, seed, timeout):
        dfs = DFSClient(
            [DataNode(f"dn{i}") for i in range(4)],
            replication=2,
            block_size=1024,
            seed=seed,
        )
        for i, payload in enumerate(payloads):
            dfs.put(f"/f{i}", payload)
        dfs.heartbeat_tick(0.0, timeout=timeout)
        # dn0 goes silent (no forgetting, no manual rereplicate call).
        dfs._nodes["dn0"].kill()
        report = dfs.heartbeat_tick(timeout + 1.0, timeout=timeout)
        assert report.declared_dead == ("dn0",)
        assert dfs.namenode.under_replicated(2) == []
        for i, payload in enumerate(payloads):
            assert dfs.get(f"/f{i}") == payload
