"""Unit tests for the discrete-event cluster simulation."""

import dataclasses

import pytest

from repro.sparklet.cluster import ClusterConfig, ExecutorSpec
from repro.sparklet.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.sparklet.simulation import greedy_makespan, simulate_executor_sweep, simulate_job


def make_job(durations, bytes_in=1000, shuffle_read=0, stage_id=0) -> JobMetrics:
    stage = StageMetrics(stage_id, "test")
    for i, d in enumerate(durations):
        stage.tasks.append(
            TaskMetrics(stage_id=stage_id, partition=i, duration_s=d,
                        bytes_in=bytes_in, shuffle_read_bytes=shuffle_read)
        )
    job = JobMetrics(job_id=0)
    job.stages.append(stage)
    return job


class TestGreedyMakespan:
    def test_single_worker_sums(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_workers_is_max(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_two_workers(self):
        # FIFO: w1=[1,3], w2=[2,4] → makespan 6
        assert greedy_makespan([1, 2, 3, 4], 2) == pytest.approx(6.0)

    def test_empty(self):
        assert greedy_makespan([], 5) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            greedy_makespan([1.0], 0)

    def test_monotone_in_workers(self):
        durations = [0.5] * 40 + [2.0] * 3
        spans = [greedy_makespan(durations, w) for w in (1, 2, 4, 8, 16)]
        assert spans == sorted(spans, reverse=True)


class TestSimulateJob:
    def test_more_executors_faster(self):
        job = make_job([0.1] * 64)
        runs = simulate_executor_sweep(job, [1, 5, 10, 20])
        elapsed = [runs[n].elapsed_s for n in (1, 5, 10, 20)]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_skew_limits_scaling(self):
        # One giant task: beyond enough-executors, elapsed flattens at it.
        job = make_job([5.0] + [0.01] * 50)
        runs = simulate_executor_sweep(job, [5, 20])
        assert runs[20].elapsed_s >= 5.0
        assert runs[20].elapsed_s == pytest.approx(runs[5].elapsed_s, rel=0.2)

    def test_memory_pressure_penalizes_few_executors(self):
        # Data far exceeding one executor's memory: the 1-executor run must
        # pay spill costs (the paper's RQ2 observation).
        big_bytes = int(6 * 1024**3)  # 6 GB across the stage
        job = make_job([0.05] * 32, bytes_in=big_bytes // 32)
        one = simulate_job(job, ClusterConfig(num_executors=1))
        five = simulate_job(job, ClusterConfig(num_executors=5))
        assert one.total_spilled_bytes > 0
        assert five.total_spilled_bytes == 0
        # Spill-adjusted slowdown exceeds the pure 5× core ratio.
        assert one.elapsed_s / five.elapsed_s > 5.0

    def test_shuffle_read_charged_to_network(self):
        job = make_job([0.01] * 8, shuffle_read=10**9)
        fast_net = simulate_job(job, ClusterConfig(network_bandwidth_mbps=10000))
        slow_net = simulate_job(job, ClusterConfig(network_bandwidth_mbps=100))
        assert slow_net.elapsed_s > fast_net.elapsed_s

    def test_data_scale_amplifies_bytes(self):
        job = make_job([0.01] * 8, bytes_in=10**6)
        base = simulate_job(job, ClusterConfig(num_executors=1))
        scaled = simulate_job(job, ClusterConfig(num_executors=1, data_scale=10000.0))
        assert scaled.total_spilled_bytes > base.total_spilled_bytes

    def test_stages_execute_sequentially(self):
        job = make_job([0.1] * 4)
        job2 = make_job([0.1] * 4, stage_id=1)
        job.stages.extend(job2.stages)
        run = simulate_job(job, ClusterConfig(num_executors=2))
        assert len(run.stages) == 2
        assert run.elapsed_s == pytest.approx(sum(s.makespan_s for s in run.stages))

    def test_task_overhead_floors_elapsed(self):
        job = make_job([0.0] * 100)
        cfg = ClusterConfig(num_executors=1, executor_spec=ExecutorSpec(vcores=1),
                            task_overhead_s=0.01)
        run = simulate_job(job, cfg)
        assert run.elapsed_s >= 1.0  # 100 tasks × 10 ms on one core

    def test_cpu_speed_factor(self):
        job = make_job([1.0] * 4)
        fast = simulate_job(job, dataclasses.replace(ClusterConfig(), cpu_speed_factor=0.5))
        slow = simulate_job(job, dataclasses.replace(ClusterConfig(), cpu_speed_factor=2.0))
        assert slow.elapsed_s > fast.elapsed_s
