"""Unit tests for the discrete-event cluster simulation."""

import dataclasses

import pytest

from repro.sparklet.cluster import ClusterConfig, ExecutorSpec
from repro.sparklet.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.sparklet.simulation import greedy_makespan, simulate_executor_sweep, simulate_job


def make_job(durations, bytes_in=1000, shuffle_read=0, stage_id=0) -> JobMetrics:
    stage = StageMetrics(stage_id, "test")
    for i, d in enumerate(durations):
        stage.tasks.append(
            TaskMetrics(stage_id=stage_id, partition=i, duration_s=d,
                        bytes_in=bytes_in, shuffle_read_bytes=shuffle_read)
        )
    job = JobMetrics(job_id=0)
    job.stages.append(stage)
    return job


class TestGreedyMakespan:
    def test_single_worker_sums(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_workers_is_max(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_two_workers(self):
        # FIFO: w1=[1,3], w2=[2,4] → makespan 6
        assert greedy_makespan([1, 2, 3, 4], 2) == pytest.approx(6.0)

    def test_empty(self):
        assert greedy_makespan([], 5) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            greedy_makespan([1.0], 0)

    def test_monotone_in_workers(self):
        durations = [0.5] * 40 + [2.0] * 3
        spans = [greedy_makespan(durations, w) for w in (1, 2, 4, 8, 16)]
        assert spans == sorted(spans, reverse=True)


class TestSimulateJob:
    def test_more_executors_faster(self):
        job = make_job([0.1] * 64)
        runs = simulate_executor_sweep(job, [1, 5, 10, 20])
        elapsed = [runs[n].elapsed_s for n in (1, 5, 10, 20)]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_skew_limits_scaling(self):
        # One giant task: beyond enough-executors, elapsed flattens at it.
        job = make_job([5.0] + [0.01] * 50)
        runs = simulate_executor_sweep(job, [5, 20])
        assert runs[20].elapsed_s >= 5.0
        assert runs[20].elapsed_s == pytest.approx(runs[5].elapsed_s, rel=0.2)

    def test_memory_pressure_penalizes_few_executors(self):
        # Data far exceeding one executor's memory: the 1-executor run must
        # pay spill costs (the paper's RQ2 observation).
        big_bytes = int(6 * 1024**3)  # 6 GB across the stage
        job = make_job([0.05] * 32, bytes_in=big_bytes // 32)
        one = simulate_job(job, ClusterConfig(num_executors=1))
        five = simulate_job(job, ClusterConfig(num_executors=5))
        assert one.total_spilled_bytes > 0
        assert five.total_spilled_bytes == 0
        # Spill-adjusted slowdown exceeds the pure 5× core ratio.
        assert one.elapsed_s / five.elapsed_s > 5.0

    def test_shuffle_read_charged_to_network(self):
        job = make_job([0.01] * 8, shuffle_read=10**9)
        fast_net = simulate_job(job, ClusterConfig(network_bandwidth_mbps=10000))
        slow_net = simulate_job(job, ClusterConfig(network_bandwidth_mbps=100))
        assert slow_net.elapsed_s > fast_net.elapsed_s

    def test_data_scale_amplifies_bytes(self):
        job = make_job([0.01] * 8, bytes_in=10**6)
        base = simulate_job(job, ClusterConfig(num_executors=1))
        scaled = simulate_job(job, ClusterConfig(num_executors=1, data_scale=10000.0))
        assert scaled.total_spilled_bytes > base.total_spilled_bytes

    def test_stages_execute_sequentially(self):
        job = make_job([0.1] * 4)
        job2 = make_job([0.1] * 4, stage_id=1)
        job.stages.extend(job2.stages)
        run = simulate_job(job, ClusterConfig(num_executors=2))
        assert len(run.stages) == 2
        assert run.elapsed_s == pytest.approx(sum(s.makespan_s for s in run.stages))

    def test_task_overhead_floors_elapsed(self):
        job = make_job([0.0] * 100)
        cfg = ClusterConfig(num_executors=1, executor_spec=ExecutorSpec(vcores=1),
                            task_overhead_s=0.01)
        run = simulate_job(job, cfg)
        assert run.elapsed_s >= 1.0  # 100 tasks × 10 ms on one core

    def test_cpu_speed_factor(self):
        job = make_job([1.0] * 4)
        fast = simulate_job(job, dataclasses.replace(ClusterConfig(), cpu_speed_factor=0.5))
        slow = simulate_job(job, dataclasses.replace(ClusterConfig(), cpu_speed_factor=2.0))
        assert slow.elapsed_s > fast.elapsed_s


class TestEmptyStages:
    def test_empty_job_has_zero_elapsed(self):
        # Regression: zero-task stages used to be charged scheduler_delay_s,
        # so an empty job reported nonzero simulated elapsed time.
        job = JobMetrics(job_id=0)
        job.stages.append(StageMetrics(0, "empty"))
        run = simulate_job(job, ClusterConfig())
        assert run.elapsed_s == 0.0

    def test_empty_stage_free_alongside_real_stages(self):
        job = make_job([0.1] * 4)
        job.stages.append(StageMetrics(1, "empty"))
        with_empty = simulate_job(job, ClusterConfig()).elapsed_s
        only_real = simulate_job(make_job([0.1] * 4), ClusterConfig()).elapsed_s
        assert with_empty == pytest.approx(only_real)


class TestFaultProfileSimulation:
    def _chain_job(self):
        """A map stage feeding a reduce stage, as D-RAPID's DAG does."""
        job = JobMetrics(job_id=0)
        m = StageMetrics(0, "map", is_shuffle_map=True)
        for i in range(16):
            m.tasks.append(TaskMetrics(stage_id=0, partition=i, duration_s=0.2,
                                       bytes_in=1000, shuffle_write_bytes=5000))
        r = StageMetrics(1, "reduce")
        for i in range(8):
            r.tasks.append(TaskMetrics(stage_id=1, partition=i, duration_s=0.1,
                                       bytes_in=1000, shuffle_read_bytes=5000))
        job.stages.extend([m, r])
        return job

    def test_zero_fault_profile_matches_legacy_path(self):
        from repro.sparklet.simulation import SimFaultProfile

        job = self._chain_job()
        cfg = ClusterConfig(num_executors=3)
        legacy = simulate_job(job, cfg)
        event = simulate_job(job, cfg, faults=SimFaultProfile())
        assert event.elapsed_s == pytest.approx(legacy.elapsed_s)
        assert event.n_failures == 0 and event.n_requeued == 0

    def test_failures_inflate_makespan_monotonically(self):
        from repro.sparklet.simulation import SimFaultProfile

        job = self._chain_job()
        cfg = ClusterConfig(num_executors=4)
        base = simulate_job(job, cfg, faults=SimFaultProfile()).elapsed_s
        prev = base
        for n_failures in (1, 2, 3):
            trace = tuple((0.05 * (k + 1), k) for k in range(n_failures))
            run = simulate_job(job, cfg, faults=SimFaultProfile(executor_failures=trace))
            assert run.n_failures == n_failures
            assert run.n_requeued > 0
            assert run.elapsed_s >= prev
            prev = run.elapsed_s
        assert prev > base

    def test_reduce_stage_death_charges_parent_recompute(self):
        from repro.sparklet.simulation import SimFaultProfile

        job = self._chain_job()
        cfg = ClusterConfig(num_executors=4)
        map_span = simulate_job(job, cfg, faults=SimFaultProfile()).stages[0].makespan_s
        # Kill an executor just after the reduce stage starts.
        trace = ((map_span + 0.01, 0),)
        run = simulate_job(job, cfg, faults=SimFaultProfile(executor_failures=trace))
        assert run.stages[1].recompute_task_s > 0.0

    def test_losing_every_executor_raises(self):
        from repro.sparklet.simulation import SimFaultProfile

        job = self._chain_job()
        cfg = ClusterConfig(num_executors=2)
        trace = ((0.01, 0), (0.02, 1))
        with pytest.raises(RuntimeError, match="lost all executors"):
            simulate_job(job, cfg, faults=SimFaultProfile(executor_failures=trace))

    def test_speculation_beats_stragglers(self):
        from repro.sparklet.simulation import (SimFaultProfile, SpeculationConfig,
                                               StragglerModel)

        job = self._chain_job()
        cfg = ClusterConfig(num_executors=4)
        stragglers = StragglerModel(prob=0.2, factor=6.0, seed=7)
        off = simulate_job(job, cfg, faults=SimFaultProfile(stragglers=stragglers))
        on = simulate_job(job, cfg, faults=SimFaultProfile(
            stragglers=stragglers, speculation=SpeculationConfig(enabled=True)))
        assert on.n_speculative > 0
        assert on.elapsed_s < off.elapsed_s

    def test_failure_trace_classmethod_is_seeded(self):
        from repro.sparklet.simulation import SimFaultProfile

        a = SimFaultProfile.failure_trace(0.5, 10.0, 4, seed=3)
        b = SimFaultProfile.failure_trace(0.5, 10.0, 4, seed=3)
        c = SimFaultProfile.failure_trace(0.5, 10.0, 4, seed=4)
        assert a.executor_failures == b.executor_failures
        assert a.executor_failures != c.executor_failures
