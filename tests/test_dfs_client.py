"""Unit tests for the DFS client: put/get, replication, failure recovery."""

import pytest

from repro.dfs import DataNode, DFSClient, DFSError, FileNotFoundInDFS


def make_client(n_nodes: int = 4, replication: int = 2, block_size: int = 64,
                capacity: int | None = 1_000_000) -> DFSClient:
    nodes = [DataNode(f"n{i}", capacity=capacity) for i in range(n_nodes)]
    return DFSClient(nodes, replication=replication, block_size=block_size, seed=1)


class TestPutGet:
    def test_roundtrip_small(self):
        dfs = make_client()
        dfs.put("/f", b"hello world")
        assert dfs.get("/f") == b"hello world"

    def test_roundtrip_multiblock(self):
        dfs = make_client(block_size=16)
        payload = bytes(range(256)) * 3
        dfs.put("/f", payload)
        assert dfs.get("/f") == payload

    def test_text_roundtrip(self):
        dfs = make_client()
        dfs.put_text("/t", "héllo\nwörld\n")
        assert dfs.get_text("/t") == "héllo\nwörld\n"

    def test_empty_file(self):
        dfs = make_client()
        dfs.put("/e", b"")
        assert dfs.get("/e") == b""

    def test_duplicate_path_rejected(self):
        dfs = make_client()
        dfs.put("/f", b"a")
        with pytest.raises(FileExistsError):
            dfs.put("/f", b"b")

    def test_missing_file_raises(self):
        dfs = make_client()
        with pytest.raises(FileNotFoundInDFS):
            dfs.get("/missing")

    def test_ls_and_exists(self):
        dfs = make_client()
        dfs.put("/data/a", b"1")
        dfs.put("/data/b", b"2")
        dfs.put("/other", b"3")
        assert dfs.ls("/data/") == ["/data/a", "/data/b"]
        assert dfs.exists("/data/a")
        assert not dfs.exists("/data/c")

    def test_delete_frees_space(self):
        dfs = make_client()
        dfs.put("/f", b"x" * 1000)
        before = dfs.total_stored_bytes()
        dfs.delete("/f")
        assert dfs.total_stored_bytes() < before
        assert not dfs.exists("/f")
        dfs.put("/f", b"again")  # path reusable after delete
        assert dfs.get("/f") == b"again"


class TestReplication:
    def test_each_block_has_replication_copies(self):
        dfs = make_client(n_nodes=4, replication=3, block_size=32)
        dfs.put("/f", b"y" * 100)
        for _bid, nodes in dfs.block_locations("/f"):
            assert len(nodes) == 3

    def test_total_bytes_accounts_replicas(self):
        dfs = make_client(replication=2, block_size=1000)
        dfs.put("/f", b"z" * 500)
        assert dfs.total_stored_bytes() == 1000  # 500 bytes × 2 replicas

    def test_replication_capped_by_node_count(self):
        dfs = make_client(n_nodes=2, replication=3)
        dfs.put("/f", b"q" * 10)
        for _bid, nodes in dfs.block_locations("/f"):
            assert len(nodes) == 2

    def test_put_fails_atomically_when_cluster_full(self):
        dfs = make_client(n_nodes=2, replication=2, block_size=64, capacity=100)
        with pytest.raises(DFSError):
            dfs.put("/big", b"x" * 1000)
        # No partial state left behind.
        assert not dfs.exists("/big")

    def test_placement_spreads_load(self):
        dfs = make_client(n_nodes=4, replication=1, block_size=10)
        dfs.put("/f", b"a" * 200)  # 20 blocks over 4 nodes
        used = [n.used_bytes for n in dfs._nodes.values()]
        assert max(used) - min(used) <= 20  # within two blocks of even


class TestFailureRecovery:
    def test_read_survives_single_node_failure(self):
        dfs = make_client(n_nodes=4, replication=2, block_size=16)
        payload = b"important data " * 20
        dfs.put("/f", payload)
        dfs.kill_datanode("n0")
        assert dfs.get("/f") == payload

    def test_rereplication_restores_replica_count(self):
        dfs = make_client(n_nodes=4, replication=2, block_size=16)
        dfs.put("/f", b"d" * 100)
        dfs.kill_datanode("n1")
        for _bid, nodes in dfs.block_locations("/f"):
            assert len(nodes) == 2
            assert "n1" not in nodes

    def test_data_survives_sequential_failures(self):
        dfs = make_client(n_nodes=5, replication=3, block_size=16)
        payload = b"p" * 300
        dfs.put("/f", payload)
        dfs.kill_datanode("n0")
        dfs.kill_datanode("n1")
        assert dfs.get("/f") == payload

    def test_losing_all_replicas_is_an_error(self):
        dfs = make_client(n_nodes=2, replication=1, block_size=8)
        dfs.put("/f", b"gone")
        for node_id in ("n0", "n1"):
            dfs.kill_datanode(node_id)
        with pytest.raises(DFSError):
            dfs.get("/f")


class TestConstruction:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            DFSClient([], replication=1)

    def test_rejects_duplicate_node_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            DFSClient([DataNode("a"), DataNode("a")])

    def test_rejects_bad_replication(self):
        with pytest.raises(ValueError, match="replication"):
            DFSClient([DataNode("a")], replication=0)


class TestHeartbeats:
    def test_first_tick_registers_all_live_nodes(self):
        dfs = make_client()
        report = dfs.heartbeat_tick(0.0)
        assert report.registered == ("n0", "n1", "n2", "n3")
        assert report.declared_dead == ()
        assert dfs.namenode.last_heartbeat("n0") == 0.0

    def test_silent_node_declared_dead_after_timeout(self):
        dfs = make_client(block_size=8)
        dfs.put("/f", b"heartbeat payload")
        dfs.heartbeat_tick(0.0, timeout=30.0)
        dfs._nodes["n1"].kill()
        # Within the timeout the node is still trusted.
        mid = dfs.heartbeat_tick(20.0, timeout=30.0)
        assert mid.declared_dead == ()
        late = dfs.heartbeat_tick(40.0, timeout=30.0)
        assert late.declared_dead == ("n1",)
        assert dfs.namenode.blocks_on("n1") == []
        assert dfs.namenode.under_replicated(2) == []
        assert dfs.get("/f") == b"heartbeat payload"

    def test_rereplication_count_reported(self):
        dfs = make_client(block_size=8)
        dfs.put("/f", b"0123456789abcdef")  # 2 blocks x 2 replicas
        dfs.heartbeat_tick(0.0, timeout=10.0)
        lost = len(dfs.namenode.blocks_on("n0"))
        dfs._nodes["n0"].kill()
        report = dfs.heartbeat_tick(11.0, timeout=10.0)
        assert report.replicas_restored == lost
        # Every block is back at factor 2 on surviving nodes only.
        for _bid, nodes in dfs.block_locations("/f"):
            assert len(nodes) == 2
            assert "n0" not in nodes

    def test_revived_node_reregisters_blocks(self):
        dfs = make_client(block_size=8)
        dfs.put("/f", b"revive me please")
        dfs.heartbeat_tick(0.0, timeout=10.0)
        victim = next(iter(dfs.namenode.replicas_of(dfs.namenode.get_file("/f").block_ids[0])))
        dfs._nodes[victim].kill()
        dfs.heartbeat_tick(11.0, timeout=10.0)
        # The node comes back with its blocks intact: its block report
        # re-registers replicas of still-known blocks.
        dfs._nodes[victim].revive()
        report = dfs.heartbeat_tick(12.0, timeout=10.0)
        assert victim in report.registered
        assert dfs.namenode.blocks_on(victim) != []

    def test_orphan_blocks_invalidated_on_reregistration(self):
        dfs = make_client(block_size=8)
        dfs.put("/f", b"soon deleted")
        dfs.heartbeat_tick(0.0, timeout=10.0)
        holder = next(iter(dfs.namenode.replicas_of(dfs.namenode.get_file("/f").block_ids[0])))
        dfs._nodes[holder].kill()
        dfs.heartbeat_tick(11.0, timeout=10.0)  # holder forgotten
        dfs.delete("/f")
        dfs._nodes[holder].revive()
        dfs.heartbeat_tick(12.0, timeout=10.0)
        # The revived node's copies of the deleted file were invalidated.
        assert list(dfs._nodes[holder].block_ids()) == []
