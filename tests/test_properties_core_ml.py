"""Property-based tests: core algorithm and ML invariants."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.astro.dispersion import dispersion_delay_s, smearing_snr_factor
from repro.core.bins import dynamic_bin_size
from repro.core.regression import bin_edges
from repro.core.search import SearchParams, find_single_pulses, find_single_pulses_recursive
from repro.ml._split import entropy_from_counts, gini_from_counts
from repro.ml.feature_selection import rank_symmetrical_uncertainty
from repro.ml.metrics import BinaryScores
from repro.ml.smote import smote
from repro.ml.validation import stratified_kfold

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def profile_strategy(min_size=2, max_size=150):
    return st.lists(
        st.tuples(
            st.floats(0.0, 500.0, allow_nan=False),
            st.floats(5.0, 40.0, allow_nan=False),
        ),
        min_size=min_size,
        max_size=max_size,
    )


class TestSearchProperties:
    @SETTINGS
    @given(points=profile_strategy(), threshold=st.floats(0.05, 2.0))
    def test_recursive_equals_iterative(self, points, threshold):
        dms = np.sort(np.array([p[0] for p in points]))
        snrs = np.array([p[1] for p in points])
        params = SearchParams(slope_threshold=threshold)
        a, _ = find_single_pulses(dms, snrs, params)
        b, _ = find_single_pulses_recursive(dms, snrs, params)
        assert a == b

    @SETTINGS
    @given(points=profile_strategy())
    def test_spans_are_well_formed(self, points):
        dms = np.sort(np.array([p[0] for p in points]))
        snrs = np.array([p[1] for p in points])
        spans, edges = find_single_pulses(dms, snrs)
        for span in spans:
            assert 0 <= span.start_bin <= span.peak_bin <= span.end_bin < max(len(edges), 1)

    @SETTINGS
    @given(points=profile_strategy(), shift=st.floats(-100.0, 100.0))
    def test_snr_shift_invariance(self, points, shift):
        """Adding a constant to all SNRs changes no slopes → same pulses."""
        dms = np.sort(np.array([p[0] for p in points]))
        snrs = np.array([p[1] for p in points])
        a, _ = find_single_pulses(dms, snrs)
        b, _ = find_single_pulses(dms, snrs + shift)
        assert a == b

    @SETTINGS
    @given(n=st.integers(0, 100_000), w=st.floats(0.1, 3.0))
    def test_bin_size_positive_and_bounded(self, n, w):
        b = dynamic_bin_size(n, w)
        assert 1 <= b
        assert b <= max(1, int(w * np.sqrt(max(n, 1))))

    @SETTINGS
    @given(n=st.integers(2, 500), b=st.integers(1, 60))
    def test_bin_edges_partition_points(self, n, b):
        edges = bin_edges(n, b)
        covered = set()
        for s, e in edges:
            assert 0 <= s < e <= n
            covered.update(range(s, e))
        assert covered == set(range(n))


class TestAstroProperties:
    @SETTINGS
    @given(dm=st.floats(0.0, 5000.0), f1=st.floats(100.0, 1000.0),
           df=st.floats(1.0, 1000.0))
    def test_delay_nonnegative_and_monotone_in_dm(self, dm, f1, df):
        d = dispersion_delay_s(dm, f1, f1 + df)
        assert d >= 0.0
        assert dispersion_delay_s(dm * 2, f1, f1 + df) >= d

    @SETTINGS
    @given(delta=st.floats(0.0, 1000.0), width=st.floats(0.1, 100.0))
    def test_smearing_factor_in_unit_interval(self, delta, width):
        f = smearing_snr_factor(delta, width, 350.0, 100.0)
        assert 0.0 <= f <= 1.0 + 1e-12


class TestMlProperties:
    @SETTINGS
    @given(counts=st.lists(st.integers(0, 1000), min_size=1, max_size=8))
    def test_entropy_gini_bounds(self, counts):
        counts = np.array(counts)
        h = entropy_from_counts(counts)
        g = gini_from_counts(counts)
        k = max((counts > 0).sum(), 1)
        assert 0.0 <= h <= np.log2(k) + 1e-9
        assert 0.0 <= g <= 1.0 - 1.0 / k + 1e-9

    @SETTINGS
    @given(tp=st.integers(0, 100), tn=st.integers(0, 100),
           fp=st.integers(0, 100), fn=st.integers(0, 100))
    def test_f_measure_between_min_and_max_of_p_r(self, tp, tn, fp, fn):
        s = BinaryScores(tp, tn, fp, fn)
        p, r, f = s.precision, s.recall, s.f_measure
        assert 0.0 <= f <= 1.0
        assert min(p, r) - 1e-9 <= f <= max(p, r) + 1e-9

    @SETTINGS
    @given(
        labels=st.lists(st.integers(0, 3), min_size=12, max_size=120),
        n_folds=st.integers(2, 4),
    )
    def test_kfold_partition_properties(self, labels, n_folds):
        y = np.array(labels)
        if y.size < n_folds:
            return
        folds = stratified_kfold(y, n_folds, seed=0)
        all_test = np.concatenate([t for _tr, t in folds])
        assert sorted(all_test.tolist()) == list(range(y.size))
        for train, test in folds:
            assert set(train.tolist()).isdisjoint(test.tolist())

    @SETTINGS
    @given(
        n_seed=st.integers(2, 12),
        n_synth=st.integers(1, 30),
        dims=st.integers(1, 5),
    )
    def test_smote_output_within_bounding_box(self, n_seed, n_synth, dims):
        """Convex combinations never leave the minority bounding box."""
        gen = np.random.default_rng(n_seed * 100 + n_synth)
        X = gen.normal(size=(n_seed, dims))
        synth = smote(X, n_synth, rng=gen)
        lo, hi = X.min(axis=0), X.max(axis=0)
        assert np.all(synth >= lo - 1e-9)
        assert np.all(synth <= hi + 1e-9)

    @SETTINGS
    @given(seed=st.integers(0, 1000))
    def test_su_symmetric_bounds_on_random_data(self, seed):
        gen = np.random.default_rng(seed)
        X = gen.normal(size=(60, 3))
        y = gen.integers(0, 2, 60)
        su = rank_symmetrical_uncertainty(X, y)
        assert np.all((su >= -1e-9) & (su <= 1.0 + 1e-9))
