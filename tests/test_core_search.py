"""Unit tests for Algorithm 1 (the peak-search state machine)."""

import numpy as np
import pytest

from repro.core.search import (
    DOWN,
    FLAT,
    UP,
    SearchParams,
    classify_trend,
    find_single_pulses,
    find_single_pulses_recursive,
    spans_to_spe_ranges,
)


def gaussian_profile(center, width, height, xs, floor=5.5):
    return floor + height * np.exp(-0.5 * ((xs - center) / width) ** 2)


class TestClassifyTrend:
    def test_thresholding(self):
        assert classify_trend(-1.0, 0.5) == DOWN
        assert classify_trend(0.0, 0.5) == FLAT
        assert classify_trend(0.4, 0.5) == FLAT
        assert classify_trend(0.9, 0.5) == UP

    def test_boundary_is_flat(self):
        assert classify_trend(0.5, 0.5) == FLAT
        assert classify_trend(-0.5, 0.5) == FLAT


class TestSearchParams:
    def test_defaults_are_paper_values(self):
        params = SearchParams()
        assert params.weight == 0.75
        assert params.slope_threshold == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchParams(weight=0.0)
        with pytest.raises(ValueError):
            SearchParams(slope_threshold=-0.1)


class TestFindSinglePulses:
    def test_single_peak_found(self):
        xs = np.linspace(0, 40, 80)
        ys = gaussian_profile(20.0, 4.0, 15.0, xs)
        spans, edges = find_single_pulses(xs, ys)
        assert len(spans) == 1
        a, b, peak_hint = spans_to_spe_ranges(spans, edges)[0]
        # The true peak index must fall inside the detected range.
        assert a <= int(np.argmax(ys)) < b

    def test_two_peaks_found(self):
        xs = np.linspace(0, 100, 200)
        ys = gaussian_profile(25.0, 4.0, 15.0, xs) + gaussian_profile(75.0, 4.0, 12.0, xs) - 5.5
        spans, _edges = find_single_pulses(xs, ys)
        assert len(spans) == 2

    def test_flat_profile_yields_nothing(self):
        xs = np.linspace(0, 10, 40)
        spans, _ = find_single_pulses(xs, np.full(40, 6.0))
        assert spans == []

    def test_monotone_rise_yields_nothing(self):
        xs = np.linspace(0, 10, 40)
        spans, _ = find_single_pulses(xs, 5.0 + 3.0 * xs)
        assert spans == []  # climbs forever, never confirms a peak via descent

    def test_rise_then_fall_at_end_is_emitted(self):
        xs = np.linspace(0, 10, 60)
        ys = gaussian_profile(7.0, 1.5, 12.0, xs)
        spans, _ = find_single_pulses(xs, ys)
        assert len(spans) == 1

    def test_tiny_cluster_connect_the_dots(self):
        # 4 points: up, peak, down — binsize 1 per Eq. 1.
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        ys = np.array([6.0, 12.0, 11.0, 6.0])
        spans, edges = find_single_pulses(xs, ys)
        assert len(spans) == 1

    def test_fewer_than_two_points(self):
        spans, edges = find_single_pulses(np.array([1.0]), np.array([5.0]))
        assert spans == [] and edges == []

    def test_unsorted_dms_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            find_single_pulses(np.array([2.0, 1.0]), np.array([5.0, 6.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            find_single_pulses(np.arange(3.0), np.arange(4.0))

    def test_slope_threshold_suppresses_weak_trends(self):
        xs = np.linspace(0, 40, 80)
        ys = gaussian_profile(20.0, 8.0, 2.0, xs)  # shallow bump
        strict, _ = find_single_pulses(xs, ys, SearchParams(slope_threshold=5.0))
        loose, _ = find_single_pulses(xs, ys, SearchParams(slope_threshold=0.05))
        assert len(strict) == 0
        assert len(loose) >= 1

    def test_spans_map_to_valid_ranges(self):
        rng = np.random.default_rng(0)
        xs = np.sort(rng.uniform(0, 100, 200))
        ys = rng.uniform(5, 20, 200)
        spans, edges = find_single_pulses(xs, ys)
        for a, b, peak in spans_to_spe_ranges(spans, edges):
            assert 0 <= a < b <= 200
            assert a <= peak < b


class TestRecursiveEquivalence:
    def test_equivalent_on_gaussians(self):
        xs = np.linspace(0, 100, 150)
        ys = gaussian_profile(30.0, 5.0, 14.0, xs) + gaussian_profile(70.0, 3.0, 9.0, xs) - 5.5
        it, _ = find_single_pulses(xs, ys)
        rec, _ = find_single_pulses_recursive(xs, ys)
        assert it == rec

    def test_equivalent_on_random_profiles(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(2, 200))
            xs = np.sort(rng.uniform(0, 50, n))
            ys = rng.uniform(5, 25, n)
            it, _ = find_single_pulses(xs, ys)
            rec, _ = find_single_pulses_recursive(xs, ys)
            assert it == rec

    def test_recursive_handles_deep_profiles(self):
        # Thousands of bins: the recursion-limit handling must hold.
        xs = np.linspace(0, 1000, 5000)
        rng = np.random.default_rng(1)
        ys = rng.uniform(5, 10, 5000)
        it, _ = find_single_pulses(xs, ys, binsize=1)
        rec, _ = find_single_pulses_recursive(xs, ys, binsize=1)
        assert it == rec
