"""Integration tests: the full Fig. 2 workflow across all subsystems."""

import numpy as np
import pytest

from repro.astro import GBT350DRIFT, PALFA, synthesize_population
from repro.core.alm import ALM_SCHEMES
from repro.core.drapid import DRapidDriver
from repro.core.multithreaded import ThreadedBoxModel
from repro.core.pipeline import SinglePulsePipeline
from repro.core.rapid import run_rapid_observation
from repro.dfs import DataNode, DFSClient
from repro.io.spe_files import read_ml_files, upload_observations
from repro.ml import RandomForest, cross_validate, rank_features, select_top_k
from repro.sparklet import ClusterConfig, SparkletContext, simulate_job
from repro.sparklet.scheduler import TaskFailure


@pytest.fixture(scope="module")
def pipeline_run():
    pipe = SinglePulsePipeline(survey=GBT350DRIFT, scheme="7", seed=11)
    pop = synthesize_population(6, rrat_fraction=0.2, max_dm=300.0, seed=4)
    return pipe, pipe.run(pop, n_observations=3, classify=True)


class TestFullPipeline:
    def test_all_stages_produce_artifacts(self, pipeline_run):
        _pipe, result = pipeline_run
        assert len(result.observations) == 3
        assert result.drapid.n_pulses > 0
        assert result.features.shape == (result.drapid.n_pulses, 22)
        assert result.report is not None

    def test_labels_consistent_with_truth(self, pipeline_run):
        _pipe, result = pipeline_run
        non_pulsar = result.labels == 0
        assert np.array_equal(non_pulsar, ~result.is_pulsar)

    def test_classification_beats_chance(self, pipeline_run):
        _pipe, result = pipeline_run
        assert result.report.recall > 0.5
        assert result.report.f_measure > 0.5

    def test_simulated_cluster_speedup_curve(self, pipeline_run):
        """RQ1 shape on the pipeline's own metrics: more executors, faster;
        knee behaviour beyond 5 executors."""
        _pipe, result = pipeline_run
        job = result.drapid.metrics
        elapsed = {
            n: simulate_job(job, ClusterConfig(num_executors=n)).elapsed_s
            for n in (1, 5, 10, 20)
        }
        assert elapsed[1] > elapsed[5] > elapsed[20]
        gain_1_5 = elapsed[1] / elapsed[5]
        gain_5_20 = elapsed[5] / elapsed[20]
        assert gain_1_5 > gain_5_20  # diminishing returns past the knee


class TestDistributedEqualsSerialAcrossSurveys:
    @pytest.mark.parametrize("survey", [GBT350DRIFT, PALFA], ids=lambda s: s.name)
    def test_drapid_equals_serial(self, survey):
        pop = synthesize_population(3, max_dm=min(300.0, survey.max_dm), seed=9)
        from repro.astro import generate_observation

        obs = generate_observation(survey, pop, seed=21, obs_length_s=40.0,
                                   n_noise_clusters=25, n_rfi_bursts=1)
        dfs = DFSClient([DataNode(f"d{i}") for i in range(3)], replication=2,
                        block_size=8192)
        ctx = SparkletContext(default_parallelism=3)
        data_path, cluster_path = upload_observations(dfs, [obs])
        driver = DRapidDriver(ctx=ctx, dfs=dfs, grids={survey.name: obs.grid},
                              num_partitions=5)
        result = driver.run(data_path, cluster_path)
        ctx.close()
        serial = run_rapid_observation(obs)
        assert result.n_pulses == serial.n_pulses
        # ML files on the DFS aggregate back to the same pulses (stage 4 input).
        assert len(read_ml_files(dfs, result.ml_output_path)) == serial.n_pulses


class TestFaultToleranceEndToEnd:
    def test_drapid_survives_task_failures(self, observation, dfs):
        ctx = SparkletContext(default_parallelism=3)
        fail_once: set = set()

        def injector(stage_id, partition, attempt):
            key = (stage_id, partition)
            if key not in fail_once and partition % 3 == 0:
                fail_once.add(key)
                raise TaskFailure("chaos")

        ctx.runtime.failure_injector = injector
        data_path, cluster_path = upload_observations(dfs, [observation],
                                                      data_path="/ft/data.csv",
                                                      cluster_path="/ft/clusters.csv")
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run(data_path, cluster_path, ml_output_path="/ft/ml")
        ctx.close()
        serial = run_rapid_observation(observation)
        assert result.n_pulses == serial.n_pulses

    def test_drapid_survives_datanode_loss_between_stages(self, observation):
        dfs = DFSClient([DataNode(f"d{i}") for i in range(4)], replication=2,
                        block_size=4096)
        ctx = SparkletContext(default_parallelism=3)
        data_path, cluster_path = upload_observations(dfs, [observation])
        dfs.kill_datanode("d0")  # inputs must survive via replicas
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run(data_path, cluster_path)
        ctx.close()
        assert result.n_pulses == run_rapid_observation(observation).n_pulses


class TestFeatureSelectionEndToEnd:
    def test_paper_protocol_fs_then_cv(self, small_benchmark):
        """Rank on the FS fold, train on the rest with the top-10 features."""
        from repro.ml.validation import paper_protocol_split

        scheme = ALM_SCHEMES["2"]
        y = small_benchmark.labels(scheme)
        fs_fold, rest = paper_protocol_split(y, seed=0)
        merits = rank_features("IG", small_benchmark.features[fs_fold], y[fs_fold])
        top10 = select_top_k(merits, 10)
        assert len(top10) == 10
        rep = cross_validate(
            lambda: RandomForest(n_trees=10, seed=0),
            small_benchmark.features[rest], y[rest],
            n_folds=3, positive_collapse=scheme, feature_subset=top10,
        )
        assert rep.recall > 0.7


class TestThreadedBaselineIntegration:
    def test_model_applies_to_real_measured_tasks(self, pipeline_run):
        _pipe, result = pipeline_run
        search_stage = result.drapid.metrics.stages[-1]
        durations = [t.duration_s for t in search_stage.tasks]
        model = ThreadedBoxModel()
        sweep = model.sweep(durations, [1, 5, 10, 20])
        assert sweep[1] >= sweep[20]
