"""Unit tests for exact and histogram split finding."""

import numpy as np
import pytest

from repro.ml._hist import best_hist_split, bin_matrix
from repro.ml._split import best_split, entropy_from_counts, gini_from_counts


class TestImpurities:
    def test_entropy_bounds(self):
        assert entropy_from_counts(np.array([10, 0])) == 0.0
        assert entropy_from_counts(np.array([5, 5])) == pytest.approx(1.0)
        assert entropy_from_counts(np.array([1, 1, 1, 1])) == pytest.approx(2.0)

    def test_gini_bounds(self):
        assert gini_from_counts(np.array([10, 0])) == 0.0
        assert gini_from_counts(np.array([5, 5])) == pytest.approx(0.5)

    def test_empty_counts(self):
        assert entropy_from_counts(np.array([0, 0])) == 0.0
        assert gini_from_counts(np.array([])) == 0.0


class TestBestSplit:
    def test_finds_perfect_threshold(self):
        X = np.array([[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        split = best_split(X, y, 2, np.array([0]), criterion="gini")
        assert split is not None
        assert 3.0 < split.threshold < 10.0
        assert split.n_left == 3 and split.n_right == 3

    def test_pure_node_returns_none(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.zeros(10, dtype=int)
        assert best_split(X, y, 1, np.array([0, 1])) is None

    def test_constant_feature_skipped(self):
        X = np.column_stack([np.ones(6), np.array([1, 2, 3, 10, 11, 12.0])])
        y = np.array([0, 0, 0, 1, 1, 1])
        split = best_split(X, y, 2, np.array([0, 1]))
        assert split is not None and split.feature == 1

    def test_min_leaf_respected(self):
        X = np.array([[1.0], [2.0], [3.0], [4.0]])
        y = np.array([0, 1, 1, 1])
        split = best_split(X, y, 2, np.array([0]), min_leaf=2)
        assert split is None or (split.n_left >= 2 and split.n_right >= 2)

    def test_gain_ratio_mode(self):
        X = np.array([[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        split = best_split(X, y, 2, np.array([0]), criterion="gain_ratio")
        assert split is not None
        assert split.score == pytest.approx(1.0)  # IG=1 bit, split info=1 bit

    def test_picks_most_informative_feature(self):
        rng = np.random.default_rng(1)
        n = 200
        informative = np.concatenate([rng.normal(0, 1, n // 2), rng.normal(6, 1, n // 2)])
        noise = rng.normal(0, 1, n)
        X = np.column_stack([noise, informative])
        y = np.repeat([0, 1], n // 2)
        split = best_split(X, y, 2, np.array([0, 1]))
        assert split.feature == 1


class TestBinMatrix:
    def test_codes_respect_edges(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        bm = bin_matrix(X, 16)
        for j in range(3):
            edges = bm.edges[j]
            for b in range(len(edges)):
                left = X[bm.codes[:, j] <= b, j]
                right = X[bm.codes[:, j] > b, j]
                # Training-time routing must agree with x <= edges[b].
                assert np.all(left <= edges[b])
                assert np.all(right > edges[b])

    def test_supervised_bins_include_class_boundary(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10, 600)
        y = (x > 4.2).astype(int)
        X = x[:, None]
        bm = bin_matrix(X, 8, y)
        # Some edge must sit within the data gap around the true boundary.
        assert np.any(np.abs(bm.edges[0] - 4.2) < 0.15)

    def test_invalid_bin_count(self):
        with pytest.raises(ValueError):
            bin_matrix(np.zeros((3, 1)), 1)

    def test_constant_column(self):
        bm = bin_matrix(np.ones((10, 1)), 8)
        assert bm.edges[0].size == 0
        assert np.all(bm.codes == 0)


class TestBestHistSplit:
    def test_finds_separating_split(self):
        X = np.concatenate([np.linspace(0, 1, 50), np.linspace(5, 6, 50)])[:, None]
        y = np.repeat([0, 1], 50)
        bm = bin_matrix(X, 16)
        split = best_hist_split(bm, np.arange(100), y, 2, np.array([0]))
        assert split is not None
        assert 1.0 <= split.threshold <= 5.0
        assert split.score == pytest.approx(0.5)  # full gini decrease

    def test_subset_indices_only(self):
        X = np.concatenate([np.linspace(0, 1, 50), np.linspace(5, 6, 50)])[:, None]
        y = np.repeat([0, 1], 50)
        bm = bin_matrix(X, 16)
        idx = np.arange(0, 100, 2)
        split = best_hist_split(bm, idx, y, 2, np.array([0]))
        assert split is not None
        assert split.n_left + split.n_right == idx.size

    def test_pure_subset_returns_none(self):
        X = np.linspace(0, 1, 20)[:, None]
        y = np.zeros(20, dtype=int)
        bm = bin_matrix(X, 8)
        assert best_hist_split(bm, np.arange(20), y, 1, np.array([0])) is None

    def test_min_leaf(self):
        X = np.linspace(0, 1, 10)[:, None]
        y = np.array([0] * 9 + [1])
        bm = bin_matrix(X, 8)
        split = best_hist_split(bm, np.arange(10), y, 2, np.array([0]), min_leaf=3)
        assert split is None or (split.n_left >= 3 and split.n_right >= 3)

    def test_agrees_with_exact_split_on_separable_data(self):
        rng = np.random.default_rng(3)
        X = np.concatenate([rng.normal(0, 1, 100), rng.normal(8, 1, 100)])[:, None]
        y = np.repeat([0, 1], 100)
        bm = bin_matrix(X, 64)
        hist = best_hist_split(bm, np.arange(200), y, 2, np.array([0]))
        exact = best_split(X, y, 2, np.array([0]))
        # Same partition sizes: both find the clean boundary.
        assert hist.n_left == exact.n_left
