"""Unit tests for ROC / PR curves and the inspection-budget helper."""

import numpy as np
import pytest

from repro.ml import RandomForest
from repro.ml.curves import candidates_to_inspect, pr_curve, roc_curve


class TestRocCurve:
    def test_perfect_classifier_auc_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_curve(y, scores).auc == pytest.approx(1.0)

    def test_inverted_classifier_auc_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_curve(y, scores).auc == pytest.approx(0.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert roc_curve(y, scores).auc == pytest.approx(0.5, abs=0.05)

    def test_monotone_axes(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        scores = rng.random(200)
        curve = roc_curve(y, scores)
        assert np.all(np.diff(curve.fpr) >= 0)
        assert np.all(np.diff(curve.tpr) >= 0)
        assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
        assert curve.fpr[-1] == pytest.approx(1.0)
        assert curve.tpr[-1] == pytest.approx(1.0)

    def test_tied_scores_grouped(self):
        y = np.array([1, 0, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        curve = roc_curve(y, scores)
        # One distinct threshold → exactly the (0,0) and (1,1) points.
        assert curve.fpr.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 2]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            roc_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.1]))


class TestPrCurve:
    def test_perfect_classifier_ap_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert pr_curve(y, scores).average_precision == pytest.approx(1.0)

    def test_recall_monotone(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 300)
        scores = rng.random(300)
        curve = pr_curve(y, scores)
        assert np.all(np.diff(curve.recall) >= 0)
        assert np.all((curve.precision >= 0) & (curve.precision <= 1))

    def test_prevalence_baseline(self):
        rng = np.random.default_rng(3)
        y = (rng.random(4000) < 0.1).astype(int)
        scores = rng.random(4000)
        ap = pr_curve(y, scores).average_precision
        assert ap == pytest.approx(0.1, abs=0.05)


class TestCandidatesToInspect:
    def test_perfect_ranking_needs_only_positives(self):
        y = np.array([1, 1, 0, 0, 0, 0])
        scores = np.array([0.9, 0.8, 0.4, 0.3, 0.2, 0.1])
        assert candidates_to_inspect(y, scores, target_recall=1.0) == 2

    def test_worst_ranking_needs_everything(self):
        y = np.array([0, 0, 0, 1])
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert candidates_to_inspect(y, scores, target_recall=1.0) == 4

    def test_partial_recall(self):
        y = np.array([1, 1, 1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1, 0.6, 0.5])
        # 75% recall = 3 positives; top 3 scores cover them.
        assert candidates_to_inspect(y, scores, target_recall=0.75) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            candidates_to_inspect(np.array([1]), np.array([0.5]), target_recall=0.0)


class TestWithRealClassifier:
    def test_rf_proba_gives_strong_auc(self, small_benchmark):
        y = small_benchmark.labels("2")
        rf = RandomForest(n_trees=15, seed=0).fit(small_benchmark.features, y)
        scores = rf.predict_proba(small_benchmark.features)[:, 1]
        assert roc_curve(y, scores).auc > 0.95
        budget = candidates_to_inspect(y, scores, target_recall=0.9)
        assert budget < small_benchmark.n_instances / 2
