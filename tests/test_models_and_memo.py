"""Unit tests for the box model memory factor, hash memoization and
small-node split path added during benchmark calibration."""

import numpy as np
import pytest

from repro.core.multithreaded import ThreadedBoxModel
from repro.ml._hist import best_hist_split, bin_matrix
from repro.sparklet.partitioner import HashPartitioner, portable_hash


class TestBoxMemoryModel:
    def test_no_pressure_below_memory(self):
        model = ThreadedBoxModel()
        assert model.memory_pressure_factor(1024**3) == 1.0

    def test_pressure_grows_with_working_set(self):
        model = ThreadedBoxModel()
        f1 = model.memory_pressure_factor(10 * 1024**3)
        f2 = model.memory_pressure_factor(20 * 1024**3)
        assert 1.0 < f1 < f2

    def test_elapsed_includes_io_and_pressure(self):
        model = ThreadedBoxModel()
        base = model.elapsed([1.0] * 12, 6)
        loaded = model.elapsed([1.0] * 12, 6, input_bytes=12 * 1024**3)
        assert loaded > base

    def test_io_time_matches_bandwidth(self):
        model = ThreadedBoxModel(disk_bandwidth_mbps=800.0, object_overhead=0.0)
        only_io = model.elapsed([], 1, input_bytes=100e6)
        assert only_io == pytest.approx(100e6 / (800e6 / 8), rel=1e-6)


class TestHashMemo:
    def test_memo_consistent_with_portable_hash(self):
        part = HashPartitioner(11)
        for key in ["a", "b", "a", ("x", 1), 42, "a"]:
            assert part.partition_for(key) == portable_hash(key) % 11

    def test_memo_does_not_leak_between_sizes(self):
        a = HashPartitioner(4)
        b = HashPartitioner(8)
        a.partition_for("k")
        assert b.partition_for("k") == portable_hash("k") % 8

    def test_equality_ignores_memo_contents(self):
        a = HashPartitioner(4)
        b = HashPartitioner(4)
        a.partition_for("warm")
        assert a == b


class TestSmallNodeSplit:
    def test_small_and_large_paths_agree_on_partition(self):
        rng = np.random.default_rng(0)
        X = np.concatenate([rng.normal(0, 1, 100), rng.normal(8, 1, 100)])[:, None]
        y = np.repeat([0, 1], 100)
        bm = bin_matrix(X, 32)
        # Large-path split over everything:
        big = best_hist_split(bm, np.arange(200), y, 2, np.array([0]))
        # Small path over a 40-point subset spanning both blobs:
        idx = np.concatenate([np.arange(20), np.arange(100, 120)])
        small = best_hist_split(bm, idx, y, 2, np.array([0]))
        assert big is not None and small is not None
        assert small.n_left + small.n_right == idx.size
        assert small.n_left == 20  # clean separation found

    def test_small_node_threshold_routing_consistent(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 1))
        y = (X[:, 0] > 0).astype(int)
        bm = bin_matrix(X, 16)
        split = best_hist_split(bm, np.arange(40), y, 2, np.array([0]))
        assert split is not None
        go_left_codes = bm.codes[np.arange(40), 0] <= split.bin_index
        go_left_real = X[:, 0] <= split.threshold
        np.testing.assert_array_equal(go_left_codes, go_left_real)

    def test_small_node_min_leaf(self):
        X = np.linspace(0, 1, 10)[:, None]
        y = np.array([0] * 9 + [1])
        bm = bin_matrix(X, 8)
        split = best_hist_split(bm, np.arange(10), y, 2, np.array([0]), min_leaf=3)
        assert split is None or min(split.n_left, split.n_right) >= 3

    def test_small_pure_node_none(self):
        X = np.linspace(0, 1, 10)[:, None]
        y = np.zeros(10, dtype=int)
        bm = bin_matrix(X, 8)
        assert best_hist_split(bm, np.arange(10), y, 1, np.array([0])) is None
