"""Unit tests for the fault-model primitives and their scheduler hookup."""

import pytest

from repro.sparklet import (
    EXECUTOR_LOSS,
    FETCH_FAILURE,
    TASK_CRASH,
    ExecutorLostFailure,
    FailureRule,
    FaultConfig,
    FaultInjector,
    FetchFailedException,
    SparkletContext,
    TaskFailure,
)
from repro.sparklet.faults import ExecutorPool


class TestFailureRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureRule("meteor_strike", 0.1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FailureRule(TASK_CRASH, 1.5)

    def test_rejects_negative_max_fires(self):
        with pytest.raises(ValueError, match="max_fires"):
            FailureRule(TASK_CRASH, 0.1, max_fires=-1)


class TestFaultInjector:
    def _drive(self, injector, n=200, shuffle_reads=(1,)):
        """Feed attempts through; collect which kinds were raised."""
        raised = []
        for i in range(n):
            try:
                injector.on_task_start(0, i, 1, "exec-0", shuffle_reads)
            except TaskFailure:
                raised.append(TASK_CRASH)
            except ExecutorLostFailure:
                raised.append(EXECUTOR_LOSS)
            except FetchFailedException:
                raised.append(FETCH_FAILURE)
        return raised

    def test_same_seed_same_fault_sequence(self):
        cfg = FaultConfig.chaos(seed=11, rate=0.2)
        a = FaultInjector(cfg)
        b = FaultInjector(cfg)
        assert self._drive(a) == self._drive(b)
        assert [e.__dict__ for e in a.events] == [e.__dict__ for e in b.events]

    def test_different_seed_differs(self):
        a = FaultInjector(FaultConfig.chaos(seed=1, rate=0.2))
        b = FaultInjector(FaultConfig.chaos(seed=2, rate=0.2))
        assert self._drive(a) != self._drive(b)

    def test_max_fires_bounds_each_rule(self):
        cfg = FaultConfig(
            seed=0, rules=(FailureRule(TASK_CRASH, probability=1.0, max_fires=4),)
        )
        inj = FaultInjector(cfg)
        assert self._drive(inj).count(TASK_CRASH) == 4
        assert inj.fired_by_kind()[TASK_CRASH] == 4

    def test_fetch_failure_skipped_without_shuffle_reads(self):
        cfg = FaultConfig(
            seed=0, rules=(FailureRule(FETCH_FAILURE, probability=1.0, max_fires=99),)
        )
        inj = FaultInjector(cfg)
        assert self._drive(inj, shuffle_reads=()) == []
        assert inj.total_fired == 0

    def test_fetch_failure_names_a_read_shuffle(self):
        cfg = FaultConfig(
            seed=0, rules=(FailureRule(FETCH_FAILURE, probability=1.0),)
        )
        inj = FaultInjector(cfg)
        with pytest.raises(FetchFailedException) as err:
            inj.on_task_start(0, 0, 1, "exec-0", (7, 3))
        assert err.value.shuffle_id == 3


class TestExecutorPool:
    def test_placement_is_deterministic(self):
        a = ExecutorPool(4)
        b = ExecutorPool(4)
        picks_a = [a.pick(p, att) for p in range(8) for att in (1, 2, 3)]
        picks_b = [b.pick(p, att) for p in range(8) for att in (1, 2, 3)]
        assert picks_a == picks_b

    def test_retry_rotates_to_a_different_executor(self):
        pool = ExecutorPool(4)
        assert pool.pick(0, 1) != pool.pick(0, 2)

    def test_blacklist_after_threshold(self):
        pool = ExecutorPool(3)
        assert not pool.record_failure("exec-0", threshold=2)
        assert pool.record_failure("exec-0", threshold=2)
        assert "exec-0" not in pool.healthy_ids()
        assert pool.n_blacklisted == 1

    def test_never_blacklists_last_healthy_executor(self):
        pool = ExecutorPool(1)
        for _ in range(10):
            assert not pool.record_failure("exec-0", threshold=1)
        assert pool.healthy_ids() == ["exec-0"]

    def test_loss_provisions_replacement(self):
        pool = ExecutorPool(2)
        replacement = pool.lose("exec-0")
        assert replacement == "exec-2"
        assert "exec-0" not in pool.healthy_ids()
        assert replacement in pool.healthy_ids()
        assert pool.n_lost == 1


class TestSchedulerIntegration:
    def test_executor_loss_reruns_lost_map_outputs(self):
        ctx = SparkletContext(default_parallelism=4, max_task_retries=6)
        # Lose an executor via the rule-driven injector: the map outputs it
        # held must be recomputed before the victim task retries.
        fc = FaultConfig(
            seed=2, rules=(FailureRule(EXECUTOR_LOSS, probability=0.3, max_fires=1),)
        )
        ctx.install_faults(fc)
        got = (
            ctx.parallelize([(i % 4, 1) for i in range(40)], 6)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert sorted(got) == [(0, 10), (1, 10), (2, 10), (3, 10)]
        assert ctx.runtime.fault_injector.fired_by_kind()[EXECUTOR_LOSS] == 1
        assert ctx.runtime.executors.n_lost == 1

    def test_fetch_failure_reruns_parent_stage(self):
        fc = FaultConfig(
            seed=1, rules=(FailureRule(FETCH_FAILURE, probability=0.5, max_fires=1),)
        )
        ctx = SparkletContext(default_parallelism=4, max_task_retries=6, fault_config=fc)
        got = (
            ctx.parallelize([(i % 3, 1) for i in range(30)], 5)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert sorted(got) == [(0, 10), (1, 10), (2, 10)]
        metrics = ctx.all_job_metrics()
        assert metrics.n_fetch_failures == 1
        # The parent map stage ran again as a recomputation wave.
        assert metrics.n_recomputed_stages >= 1

    def test_failure_metrics_counted_per_kind(self):
        fc = FaultConfig(
            seed=4,
            rules=(
                FailureRule(TASK_CRASH, probability=0.4, max_fires=2),
                FailureRule(EXECUTOR_LOSS, probability=0.2, max_fires=1),
            ),
        )
        ctx = SparkletContext(default_parallelism=4, max_task_retries=8, fault_config=fc)
        ctx.parallelize(range(50), 8).map(lambda x: (x % 5, x)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        metrics = ctx.all_job_metrics()
        by_kind = ctx.runtime.fault_injector.fired_by_kind()
        assert metrics.n_task_failures == by_kind[TASK_CRASH]
        assert metrics.n_executor_lost == by_kind[EXECUTOR_LOSS]
        assert metrics.total_failures == ctx.runtime.fault_injector.total_fired

    def test_blacklisted_executor_not_picked_again(self):
        fc = FaultConfig(
            seed=0,
            rules=(FailureRule(TASK_CRASH, probability=1.0, max_fires=2),),
            max_failures_per_executor=1,
        )
        ctx = SparkletContext(default_parallelism=2, max_task_retries=8, fault_config=fc)
        ctx.parallelize(range(8), 4).collect()
        pool = ctx.runtime.executors
        assert pool.n_blacklisted >= 1
        blacklisted = {e.executor_id for e in pool.executors if e.blacklisted}
        tasks = ctx.last_job_metrics().stages[-1].tasks
        assert all(t.executor_id not in blacklisted for t in tasks)
