"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.dfs import DataNode, DFSClient
from repro.obs import (
    NULL_OBS,
    EventLog,
    ObsConfig,
    ObsSession,
    ReplayError,
    Tracer,
    build_report,
    read_events,
    render_json,
    render_text,
    replay_all_job_metrics,
    replay_job_metrics,
)
from repro.obs.metrics import MetricsRegistry, get_registry, reset_registry
from repro.sparklet.cluster import NodeCapacity, ResourceManager
from repro.sparklet.context import SparkletContext
from repro.sparklet.faults import FaultConfig
from repro.sparklet.metrics import TaskMetrics


def _run_jobs(ctx):
    first = (
        ctx.parallelize(range(60), 6)
        .map(lambda x: (x % 5, x))
        .reduce_by_key(lambda a, b: a + b)
    )
    first.collect()
    ctx.parallelize(range(12), 3).map(lambda x: x * x).collect()


class TestEventLog:
    def test_emit_assigns_seq_and_type(self):
        log = EventLog()
        log.emit("job_start", job_id=1)
        log.emit("job_end", job_id=1)
        events = log.events
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["type"] == "job_start"
        assert events[0]["job_id"] == 1
        assert all("t" in e for e in events)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path=path) as log:
            log.emit("job_start", job_id=7, name="x")
            log.emit("job_end", job_id=7)
        events = read_events(path)
        assert len(events) == 2
        assert events[1]["job_id"] == 7

    def test_read_events_drops_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"seq": 0, "type": "job_start"}\n{"seq": 1, "ty')
        events = read_events(path)
        assert len(events) == 1

    def test_read_events_accepts_iterable(self):
        evs = [{"type": "job_start"}, {"type": "job_end"}]
        assert read_events(evs) == evs


class TestMetricsRegistry:
    def test_counter_gauge_histogram_timer(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(0.1)
        with reg.timer("t"):
            pass
        snap = reg.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 2.5
        assert snap["h"]["count"] == 1
        assert snap["t"]["count"] == 1

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_buckets_edge_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        d = h.to_dict()
        assert d["counts"] == [2, 1]  # 1.0 lands in the (.., 1.0] bucket
        assert d["overflow"] == 1
        assert d["min"] == 0.5 and d["max"] == 99.0

    def test_global_registry_reset(self):
        reset_registry()
        get_registry().counter("global.c").inc()
        assert get_registry().snapshot()["global.c"]["value"] == 1
        reset_registry()
        assert get_registry().snapshot() == {}


class TestTracer:
    def test_seeded_ids_are_deterministic(self):
        def spans_of(seed):
            tr = Tracer(seed=seed)
            with tr.span("a"):
                with tr.span("b"):
                    pass
            return [(s.span_id, s.parent_id, s.name) for s in tr.spans]

        assert spans_of(3) == spans_of(3)
        assert spans_of(3) != spans_of(4)

    def test_parent_child_nesting(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        outer = next(s for s in tr.spans if s.name == "outer")
        inner = next(s for s in tr.spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_s <= outer.duration_s

    def test_error_status_recorded(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert tr.spans[0].status == "error:ValueError"


class TestSession:
    def test_null_obs_is_disabled_noop(self):
        assert not NULL_OBS.enabled
        NULL_OBS.emit("job_start", job_id=0)  # must not raise
        with NULL_OBS.tracer.span("x"):
            pass
        assert NULL_OBS.events() == []

    def test_from_config_passthrough(self):
        session = ObsSession(ObsConfig(enabled=True))
        assert ObsSession.from_config(session) is session
        assert ObsSession.from_config(None) is NULL_OBS
        assert ObsSession.from_config(ObsConfig(enabled=False)) is NULL_OBS


class TestReplay:
    def test_clean_run_replays_byte_identically(self):
        ctx = SparkletContext(obs=ObsConfig(enabled=True))
        _run_jobs(ctx)
        live = json.dumps(
            [j.to_dict() for j in ctx.scheduler.job_history], sort_keys=True
        )
        replayed = json.dumps(
            [j.to_dict() for j in replay_job_metrics(ctx.obs.events())],
            sort_keys=True,
        )
        assert live == replayed

    def test_faulted_run_replays_byte_identically(self):
        ctx = SparkletContext(
            num_executors=4,
            obs=ObsConfig(enabled=True),
            fault_config=FaultConfig.chaos(seed=3, rate=0.25),
        )
        _run_jobs(ctx)
        live = ctx.scheduler.job_history
        assert any(j.total_failures for j in live), "chaos config never fired"
        replayed = replay_job_metrics(ctx.obs.events())
        assert live == replayed
        assert json.dumps([j.to_dict() for j in live]) == json.dumps(
            [j.to_dict() for j in replayed]
        )

    def test_replay_from_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ctx = SparkletContext(obs=ObsConfig(enabled=True, event_log_path=path))
        _run_jobs(ctx)
        ctx.obs.close()
        merged = replay_all_job_metrics(path)
        assert merged.to_dict() == ctx.all_job_metrics().to_dict()

    def test_truncated_log_raises(self):
        ctx = SparkletContext(obs=ObsConfig(enabled=True))
        _run_jobs(ctx)
        events = ctx.obs.events()
        with pytest.raises(ReplayError):
            replay_job_metrics(events[:-1])  # drop the final job_end

    def test_unknown_stage_raises(self):
        bad = [
            {"type": "job_start", "job_id": 0},
            {
                "type": "task_end",
                "stage_id": 9,
                "attempt": 0,
                "task": TaskMetrics(9, 0, 0.1).to_dict(),
            },
        ]
        with pytest.raises(ReplayError):
            replay_job_metrics(bad)


class TestInstrumentationCoverage:
    def test_dfs_events_emitted(self):
        session = ObsSession(ObsConfig(enabled=True))
        dfs = DFSClient(
            [DataNode(f"dn{i}") for i in range(3)], replication=2, obs=session
        )
        dfs.put_text("/a.txt", "hello world\n" * 50)
        dfs.heartbeat_tick(now=1.0)
        dfs.kill_datanode("dn0")
        dfs.delete("/a.txt")
        kinds = {e["type"] for e in session.events()}
        assert {"dfs_put", "dfs_heartbeat", "dfs_node_dead", "dfs_delete"} <= kinds
        assert dfs.namenode.summary()["n_files"] == 0

    def test_datanode_io_counters(self):
        node = DataNode("dn0")
        dfs = DFSClient([node], replication=1)
        dfs.put_text("/f", "data")
        dfs.get_text("/f")
        assert node.n_writes == 1
        assert node.n_reads == 1

    def test_resource_manager_events(self):
        session = ObsSession(ObsConfig(enabled=True))
        rm = ResourceManager(
            [NodeCapacity("n0", 4, 8192), NodeCapacity("n1", 4, 8192)], obs=session
        )
        from repro.sparklet.cluster import ExecutorSpec

        grants = rm.request_executors(2, ExecutorSpec())
        rm.release(grants[0])
        rm.decommission_node("n1")
        kinds = [e["type"] for e in session.events()]
        assert kinds.count("container_granted") == 2
        assert "container_released" in kinds
        assert "node_decommissioned" in kinds

    def test_fault_injector_events(self):
        ctx = SparkletContext(
            obs=ObsConfig(enabled=True),
            fault_config=FaultConfig.chaos(seed=3, rate=0.25),
        )
        _run_jobs(ctx)
        injected = [e for e in ctx.obs.events() if e["type"] == "fault_injected"]
        assert len(injected) == ctx.runtime.fault_injector.total_fired > 0

    def test_simulation_events(self):
        from repro.sparklet.cluster import ClusterConfig
        from repro.sparklet.simulation import simulate_job

        ctx = SparkletContext(obs=ObsConfig(enabled=True))
        _run_jobs(ctx)
        session = ctx.obs
        run = simulate_job(
            ctx.all_job_metrics(), ClusterConfig(num_executors=2), obs=session
        )
        sim_events = [e for e in session.events() if e["type"] == "sim_stage"]
        assert len(sim_events) == len(run.stages)


class TestReport:
    def test_report_and_renderers(self):
        ctx = SparkletContext(
            obs=ObsConfig(enabled=True),
            fault_config=FaultConfig.chaos(seed=3, rate=0.25),
        )
        _run_jobs(ctx)
        report = build_report(ctx.obs.events())
        assert report["summary"]["n_jobs"] == 2
        assert report["summary"]["n_tasks"] > 0
        assert report["stages"]
        hist = report["task_skew_histogram"]
        assert sum(hist["counts"]) + hist["overflow"] == report["summary"]["n_tasks"]
        text = render_text(report)
        assert "stage timeline" in text
        assert "injected faults" in text
        parsed = json.loads(render_json(report))
        assert parsed["summary"] == report["summary"]

    def test_span_tree_depths(self):
        session = ObsSession(ObsConfig(enabled=True))
        with session.tracer.span("outer"):
            with session.tracer.span("inner"):
                pass
        report = build_report(session.events())
        depths = {s["name"]: s["depth"] for s in report["spans"]}
        assert depths == {"outer": 0, "inner": 1}
