"""Unit tests for the D-RAPID file formats."""

import pytest

from repro.core.rapid import run_rapid_observation
from repro.io.spe_files import (
    ClusterRecord,
    build_cluster_file,
    build_data_file,
    parse_cluster_line,
    read_ml_files,
    upload_observations,
)


class TestClusterRecord:
    def test_roundtrip_with_truth(self):
        rec = ClusterRecord(
            key="GBT350Drift|55000.0000|J1856+0113|0", cluster_id=7, rank=2,
            n_spes=19, dm_lo=90.0, dm_hi=105.0, t_lo=1.25, t_hi=1.75,
            max_snr=14.3, source="B1853+01", is_rrat=False,
        )
        assert parse_cluster_line(rec.to_line()) == rec

    def test_roundtrip_without_truth(self):
        rec = ClusterRecord(key="K", cluster_id=0, rank=1, n_spes=5,
                            dm_lo=0, dm_hi=1, t_lo=0, t_hi=1, max_snr=6.0)
        parsed = parse_cluster_line(rec.to_line())
        assert parsed.source is None
        assert not parsed.is_rrat

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_cluster_line("a,b,c")


class TestFileBuilders:
    def test_data_file_structure(self, observation):
        text = build_data_file([observation])
        lines = text.strip().split("\n")
        assert lines[0].startswith("#")
        assert len(lines) == 1 + len(observation.spes)
        key = observation.key.to_key()
        assert all(line.startswith(key + ",") for line in lines[1:])

    def test_cluster_file_structure(self, observation):
        text = build_cluster_file([observation])
        lines = text.strip().split("\n")
        assert lines[0].startswith("#")
        assert len(lines) == 1 + len(observation.clusters)
        records = [parse_cluster_line(l) for l in lines[1:]]
        positive = {c.cluster_id for c in observation.positives()}
        assert {r.cluster_id for r in records if r.source} == positive

    def test_upload_roundtrip(self, observation, dfs):
        data_path, cluster_path = upload_observations(dfs, [observation])
        assert dfs.exists(data_path) and dfs.exists(cluster_path)
        assert dfs.get_text(data_path) == build_data_file([observation])


class TestReadMlFiles:
    def test_roundtrip_through_dfs(self, observation, dfs, ctx):
        pulses = run_rapid_observation(observation).pulses
        text = "".join(p.to_ml_row() + "\n" for p in pulses)
        dfs.put_text("/ml/part-00000", text)
        back = read_ml_files(dfs, "/ml/")
        assert len(back) == len(pulses)
        assert back[0].observation_key == pulses[0].observation_key

    def test_skips_comments_and_blanks(self, dfs, observation):
        pulse = run_rapid_observation(observation).pulses[0]
        dfs.put_text("/ml2/part-00000", f"# header\n\n{pulse.to_ml_row()}\n")
        assert len(read_ml_files(dfs, "/ml2/")) == 1
