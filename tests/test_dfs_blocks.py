"""Unit tests for DFS block primitives."""

import pytest

from repro.dfs.blocks import Block, BlockId, split_into_blocks


class TestBlockId:
    def test_ordering_by_path_then_index(self):
        assert BlockId("/a", 0) < BlockId("/a", 1) < BlockId("/b", 0)

    def test_equality_and_hash(self):
        assert BlockId("/a", 3) == BlockId("/a", 3)
        assert hash(BlockId("/a", 3)) == hash(BlockId("/a", 3))
        assert BlockId("/a", 3) != BlockId("/a", 4)


class TestBlock:
    def test_size_defaults_to_payload_length(self):
        block = Block(BlockId("/f", 0), b"hello")
        assert block.size == 5

    def test_explicit_size_preserved(self):
        block = Block(BlockId("/f", 0), b"hello", size=100)
        assert block.size == 100

    def test_checksum_deterministic_and_content_sensitive(self):
        a = Block(BlockId("/f", 0), b"abc")
        b = Block(BlockId("/f", 0), b"abc")
        c = Block(BlockId("/f", 0), b"abd")
        assert a.checksum() == b.checksum()
        assert a.checksum() != c.checksum()


class TestSplitIntoBlocks:
    def test_exact_multiple(self):
        blocks = split_into_blocks("/f", b"x" * 100, block_size=25)
        assert len(blocks) == 4
        assert all(b.size == 25 for b in blocks)

    def test_remainder_block(self):
        blocks = split_into_blocks("/f", b"x" * 30, block_size=25)
        assert [b.size for b in blocks] == [25, 5]

    def test_indices_are_consecutive(self):
        blocks = split_into_blocks("/f", b"x" * 100, block_size=10)
        assert [b.block_id.index for b in blocks] == list(range(10))

    def test_empty_payload_yields_one_empty_block(self):
        blocks = split_into_blocks("/f", b"")
        assert len(blocks) == 1
        assert blocks[0].size == 0

    def test_roundtrip_reassembly(self):
        payload = bytes(range(256)) * 7
        blocks = split_into_blocks("/f", payload, block_size=64)
        assert b"".join(b.data for b in blocks) == payload

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError, match="block_size"):
            split_into_blocks("/f", b"abc", block_size=0)
