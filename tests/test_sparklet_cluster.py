"""Unit tests for the YARN-style resource manager and cluster config."""

import pytest

from repro.sparklet.cluster import (
    ClusterConfig,
    ExecutorSpec,
    NodeCapacity,
    ResourceManager,
    paper_testbed,
)


class TestExecutorSpec:
    def test_defaults_match_paper(self):
        spec = ExecutorSpec()
        assert spec.vcores == 2
        assert spec.memory_mb == 2560

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ExecutorSpec(vcores=0)
        with pytest.raises(ValueError):
            ExecutorSpec(memory_mb=0)


class TestNodeCapacity:
    def test_allocate_release_cycle(self):
        node = NodeCapacity("n", vcores=4, memory_mb=8000)
        spec = ExecutorSpec()
        node.allocate(spec)
        assert node.used_vcores == 2
        node.release(spec)
        assert node.used_vcores == 0

    def test_cannot_overallocate(self):
        node = NodeCapacity("n", vcores=2, memory_mb=2560)
        spec = ExecutorSpec()
        node.allocate(spec)
        assert not node.can_fit(spec)
        with pytest.raises(RuntimeError):
            node.allocate(spec)


class TestResourceManager:
    def test_paper_testbed_supports_22_executors(self):
        rm = paper_testbed()
        assert rm.max_executors(ExecutorSpec()) == 22

    def test_grant_count_capped_by_capacity(self):
        rm = paper_testbed()
        grants = rm.request_executors(30, ExecutorSpec())
        assert len(grants) == 22

    def test_grants_spread_over_nodes(self):
        rm = paper_testbed()
        grants = rm.request_executors(15, ExecutorSpec())
        # 15 nodes, least-loaded placement → every node hosts one executor.
        assert len({g.node_id for g in grants}) == 15

    def test_release_all_restores_capacity(self):
        rm = paper_testbed()
        rm.request_executors(22, ExecutorSpec())
        assert rm.max_executors(ExecutorSpec()) == 0
        rm.release_all()
        assert rm.max_executors(ExecutorSpec()) == 22

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ResourceManager([])

    def test_rejects_duplicate_nodes(self):
        nodes = [NodeCapacity("a", 2, 1000), NodeCapacity("a", 2, 1000)]
        with pytest.raises(ValueError):
            ResourceManager(nodes)

    def test_container_ids_unique(self):
        rm = paper_testbed()
        grants = rm.request_executors(10, ExecutorSpec())
        assert len({g.container_id for g in grants}) == 10


class TestClusterConfig:
    def test_total_cores(self):
        cfg = ClusterConfig(num_executors=5)
        assert cfg.total_cores == 10

    def test_executor_memory_respects_fraction(self):
        cfg = ClusterConfig(memory_fraction=0.5)
        assert cfg.executor_memory_bytes == 2560 * 1024 * 1024 * 0.5


class TestReleaseAndDecommission:
    def test_release_restores_node_capacity(self):
        rm = paper_testbed()
        (container,) = rm.request_executors(1, ExecutorSpec())
        before = rm.max_executors(ExecutorSpec())
        rm.release(container)
        assert rm.max_executors(ExecutorSpec()) == before + 1
        assert rm.granted == []

    def test_double_release_is_an_error(self):
        rm = paper_testbed()
        (container,) = rm.request_executors(1, ExecutorSpec())
        rm.release(container)
        with pytest.raises(KeyError, match="double release"):
            rm.release(container)
        # The failed release must not have corrupted node accounting.
        assert rm.max_executors(ExecutorSpec()) == 22

    def test_release_unknown_container_is_an_error(self):
        from repro.sparklet.cluster import Container

        rm = paper_testbed()
        with pytest.raises(KeyError):
            rm.release(Container(999, "i5-0", ExecutorSpec()))

    def test_granted_keyed_by_container_id(self):
        rm = paper_testbed()
        grants = rm.request_executors(5, ExecutorSpec())
        rm.release(grants[2])
        remaining = [c.container_id for c in rm.granted]
        assert remaining == [g.container_id for g in grants if g is not grants[2]]

    def test_decommission_releases_node_containers(self):
        rm = paper_testbed()
        grants = rm.request_executors(15, ExecutorSpec())
        node_id = grants[0].node_id
        evicted = rm.decommission_node(node_id)
        assert all(c.node_id == node_id for c in evicted)
        assert all(c.node_id != node_id for c in rm.granted)
        node = rm.nodes[node_id]
        assert node.used_vcores == 0 and node.used_memory_mb == 0

    def test_decommissioned_node_gets_no_new_containers(self):
        rm = paper_testbed()
        rm.decommission_node("i5-0")
        grants = rm.request_executors(30, ExecutorSpec())
        assert all(c.node_id != "i5-0" for c in grants)
        # The testbed loses i5-0's 2 executor slots: 22 - 2 = 20.
        assert len(grants) == 20

    def test_decommission_unknown_node_is_an_error(self):
        rm = paper_testbed()
        with pytest.raises(KeyError, match="no such node"):
            rm.decommission_node("ghost")
