"""Tests for the repro.api facade: parity with the legacy path, the
deprecation shim, and the public-surface contract (__all__ hygiene)."""

import dataclasses
import importlib
import warnings

import numpy as np
import pytest

import repro
from repro.api import PipelineConfig, resolve_survey, run_drapid, run_pipeline
from repro.astro import GBT350DRIFT, PALFA, generate_observation, synthesize_population
from repro.core.pipeline import SinglePulsePipeline


def _population(seed=7, n=4):
    return synthesize_population(n, seed=seed)


class TestResolveSurvey:
    def test_by_name(self):
        assert resolve_survey("GBT350Drift") is GBT350DRIFT
        assert resolve_survey("PALFA") is PALFA

    def test_passthrough(self):
        assert resolve_survey(GBT350DRIFT) is GBT350DRIFT

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown survey"):
            resolve_survey("SUPERB")


class TestPipelineConfig:
    def test_frozen(self):
        config = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 1

    def test_defaults(self):
        config = PipelineConfig()
        assert config.survey == "GBT350Drift"
        assert config.scheme == "2"
        assert config.classify is False
        assert config.fault_config is None
        assert config.obs_config is None


class TestFacadeParity:
    def test_run_pipeline_matches_legacy_output(self):
        """The facade adds no behaviour: same seed => identical artifacts."""
        population = _population(seed=7)
        config = PipelineConfig(survey="GBT350Drift", scheme="2", seed=7,
                                n_observations=2, classify=False)
        facade = run_pipeline(config, pulsars=population)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SinglePulsePipeline(
                survey=GBT350DRIFT, scheme="2", seed=7
            ).run(list(population), n_observations=2, classify=False)
        assert facade.drapid.n_pulses == legacy.drapid.n_pulses
        assert facade.drapid.n_clusters == legacy.drapid.n_clusters
        np.testing.assert_array_equal(facade.features, legacy.features)
        np.testing.assert_array_equal(facade.is_pulsar, legacy.is_pulsar)
        np.testing.assert_array_equal(facade.labels, legacy.labels)

    def test_run_pipeline_synthesizes_population_from_config(self):
        config = PipelineConfig(seed=3, n_pulsars=4, n_observations=2)
        explicit = run_pipeline(config, pulsars=synthesize_population(4, seed=3))
        implicit = run_pipeline(config)
        np.testing.assert_array_equal(explicit.labels, implicit.labels)

    def test_run_drapid_on_prebuilt_observations(self):
        population = _population(seed=5)
        observations = [
            generate_observation(GBT350DRIFT, [population[i]], mjd=55100.0 + i,
                                 seed=5 + i, obs_length_s=20.0)
            for i in range(2)
        ]
        result = run_drapid(PipelineConfig(seed=5), observations)
        assert result.n_pulses > 0

    def test_run_drapid_rejects_empty_observations(self):
        with pytest.raises(ValueError, match="at least one observation"):
            run_drapid(PipelineConfig(), [])


class TestDeprecationShim:
    def test_direct_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api.run_pipeline"):
            SinglePulsePipeline(survey=GBT350DRIFT)

    def test_from_config_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SinglePulsePipeline.from_config(survey=GBT350DRIFT)

    def test_api_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_pipeline(PipelineConfig(n_pulsars=3, n_observations=1))

    def test_streaming_path_does_not_warn(self):
        from repro.api import StreamingConfig, run_streaming

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_streaming(StreamingConfig(
                pipeline=PipelineConfig(n_pulsars=3, n_observations=1),
                batch_interval_s=0.5, arrival_rate=2000.0,
            ))


class TestPublicSurface:
    def test_top_level_lazy_exports(self):
        from repro import api

        assert repro.run_pipeline is api.run_pipeline
        assert repro.PipelineConfig is api.PipelineConfig
        with pytest.raises(AttributeError):
            repro.no_such_name

    @pytest.mark.parametrize("module", [
        "repro", "repro.api", "repro.astro", "repro.core", "repro.dataplane",
        "repro.dfs", "repro.io", "repro.ml", "repro.obs", "repro.sparklet",
        "repro.streaming",
    ])
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        exported = mod.__all__
        assert exported and len(exported) == len(set(exported))
        for name in exported:
            assert getattr(mod, name) is not None
