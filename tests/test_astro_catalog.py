"""Unit tests for catalog construction and vicinity matching."""

import pytest

from repro.astro import GBT350DRIFT, generate_observation, synthesize_population
from repro.astro.catalog import Catalog, CatalogEntry, label_pulses_by_catalog, match_pulse
from repro.astro.spe import ObservationKey
from repro.core.rapid import run_rapid_observation


@pytest.fixture(scope="module")
def population():
    return synthesize_population(8, rrat_fraction=0.25, max_dm=300.0, seed=13)


@pytest.fixture(scope="module")
def catalog(population):
    return Catalog.from_population(population)


class TestCatalog:
    def test_from_population_complete(self, population, catalog):
        assert len(catalog) == len(population)
        assert {e.name for e in catalog} == {p.name for p in population}

    def test_pulsars_and_rrats_partition(self, catalog):
        assert len(catalog.pulsars) + len(catalog.rrats) == len(catalog)
        assert all(e.is_rrat for e in catalog.rrats)

    def test_lookup(self, population, catalog):
        entry = catalog.lookup(population[0].name)
        assert entry.dm == pytest.approx(population[0].dm)
        with pytest.raises(KeyError):
            catalog.lookup("PSR-NOPE")

    def test_sources_at_position(self, population, catalog):
        pos = population[0].sky_position
        assert population[0].name in {e.name for e in catalog.sources_at(pos)}
        assert catalog.sources_at("J0000-9999") == []

    def test_duplicate_names_rejected(self):
        e = CatalogEntry("X", "J0000+0000", 10.0, 1.0, False)
        with pytest.raises(ValueError):
            Catalog([e, e])


class TestVicinityMatching:
    def test_match_within_tolerance(self):
        entries = [
            CatalogEntry("A", "J", 50.0, 1.0, False),
            CatalogEntry("B", "J", 120.0, 1.0, False),
        ]

        class FakeFeatures:
            SNRPeakDM = 52.0

        class FakePulse:
            features = FakeFeatures()

        assert match_pulse(FakePulse(), entries, dm_tolerance=10.0).name == "A"

    def test_no_match_outside_tolerance(self):
        entries = [CatalogEntry("A", "J", 50.0, 1.0, False)]

        class FakeFeatures:
            SNRPeakDM = 80.0

        class FakePulse:
            features = FakeFeatures()

        assert match_pulse(FakePulse(), entries, dm_tolerance=10.0) is None

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            match_pulse(None, [], dm_tolerance=0.0)


class TestEndToEndLabeling:
    def test_catalog_labels_agree_with_ground_truth(self, population, catalog):
        """The paper's PALFA labeling: positives found via catalogue vicinity
        should match the generator's ground truth for most pulses."""
        source = population[0]
        obs = generate_observation(GBT350DRIFT, [source], seed=23,
                                   n_noise_clusters=30, obs_length_s=45.0)
        result = run_rapid_observation(obs)
        labels = label_pulses_by_catalog(
            result.pulses, catalog,
            beam_position_of=lambda key: ObservationKey.from_key(key).sky_position,
            dm_tolerance=15.0,
        )
        truth_pos = [p.source_name is not None for p in result.pulses]
        matched_pos = [lab is not None for lab in labels]
        agree = sum(t == m for t, m in zip(truth_pos, matched_pos))
        assert agree / len(labels) > 0.8
        # Matched names are the in-beam source.
        assert {lab.name for lab in labels if lab} <= {source.name}
