"""Unit tests for the D-RAPID driver, multithreaded baseline and pipeline."""

import pytest

from repro.astro import GBT350DRIFT
from repro.core.drapid import DRapidDriver
from repro.core.multithreaded import MultithreadedRapid, ThreadedBoxModel
from repro.core.pipeline import SinglePulsePipeline
from repro.core.rapid import run_rapid_observation
from repro.io.spe_files import upload_observations


@pytest.fixture
def uploaded(observation, dfs):
    data_path, cluster_path = upload_observations(dfs, [observation])
    return data_path, cluster_path


class TestDRapidDriver:
    def test_matches_serial_rapid(self, observation, dfs, ctx, uploaded):
        data_path, cluster_path = uploaded
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=6)
        result = driver.run(data_path, cluster_path)
        serial = run_rapid_observation(observation)
        assert result.n_pulses == serial.n_pulses
        # Same peak DMs, independent of distribution order.
        got = sorted(round(p.features.SNRPeakDM, 2) for p in result.pulses)
        want = sorted(round(p.features.SNRPeakDM, 2) for p in serial.pulses)
        assert got == want

    def test_ml_files_written_to_dfs(self, observation, dfs, ctx, uploaded):
        data_path, cluster_path = uploaded
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run(data_path, cluster_path, ml_output_path="/ml/run1")
        parts = dfs.ls("/ml/run1/")
        assert len(parts) == 4
        rows = [l for p in parts for l in dfs.get_text(p).splitlines() if l]
        assert len(rows) == result.n_pulses

    def test_cluster_count_and_no_null_joins(self, observation, dfs, ctx, uploaded):
        data_path, cluster_path = uploaded
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run(data_path, cluster_path)
        assert result.n_clusters == len(observation.clusters)
        assert result.n_null_joins == 0

    def test_metrics_cover_load_and_search_stages(self, observation, dfs, ctx, uploaded):
        data_path, cluster_path = uploaded
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run(data_path, cluster_path)
        assert len(result.metrics.stages) >= 3  # two shuffle maps + result
        assert result.metrics.total_task_seconds > 0

    def test_paper_partitioning_constructor(self, dfs, ctx):
        driver = DRapidDriver.with_paper_partitioning(ctx, dfs, {}, total_cores=28)
        assert driver.num_partitions == 896

    def test_labels_survive_distribution(self, observation, dfs, ctx, uploaded):
        data_path, cluster_path = uploaded
        driver = DRapidDriver(ctx=ctx, dfs=dfs,
                              grids={"GBT350Drift": observation.grid}, num_partitions=4)
        result = driver.run(data_path, cluster_path)
        serial = run_rapid_observation(observation)
        assert sum(1 for p in result.pulses if p.source_name) == sum(
            1 for p in serial.pulses if p.source_name
        )


class TestMultithreadedRapid:
    def test_runs_tasks_and_returns_in_order(self):
        runner = MultithreadedRapid(n_threads=3)
        results = runner.run([lambda i=i: i * i for i in range(10)])
        assert results == [i * i for i in range(10)]
        assert len(runner.durations) == 10

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            MultithreadedRapid(n_threads=0).run([lambda: 1])


class TestThreadedBoxModel:
    def test_capacity_saturates_at_smt_limit(self):
        model = ThreadedBoxModel(cores=6, smt_yield=0.25)
        assert model.capacity(1) == 1
        assert model.capacity(6) == 6
        assert model.capacity(12) == pytest.approx(7.5)
        assert model.capacity(20) == pytest.approx(7.5)  # beyond 2×cores: flat

    def test_elapsed_decreases_then_flattens(self):
        model = ThreadedBoxModel(cores=6)
        durations = [0.01] * 200
        sweep = model.sweep(durations, [1, 5, 10, 15, 20])
        assert sweep[1] > sweep[5] > sweep[10]
        assert sweep[15] == pytest.approx(sweep[20], rel=0.05)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadedBoxModel().capacity(0)


class TestPipeline:
    def test_end_to_end_without_classification(self, small_population):
        pipe = SinglePulsePipeline(survey=GBT350DRIFT, scheme="4", seed=2)
        result = pipe.run(small_population[:4], n_observations=2, classify=False)
        assert result.drapid.n_pulses == len(result.pulses) > 0
        assert result.features.shape[1] == 22
        assert result.labels.max() < 4
        assert result.report is None

    def test_end_to_end_with_classification(self, small_population):
        pipe = SinglePulsePipeline(survey=GBT350DRIFT, scheme="2", seed=3)
        result = pipe.run(small_population[:4], n_observations=2, classify=True)
        assert result.report is not None
        assert 0.0 <= result.report.recall <= 1.0
        assert result.report.train_time_s > 0
