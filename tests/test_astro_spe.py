"""Unit tests for SPE records, observation keys and csv formats."""

import numpy as np
import pytest

from repro.astro.spe import (
    SPE,
    ObservationKey,
    SPEBlock,
    parse_spe_line,
    spes_to_csv,
)


@pytest.fixture
def key():
    return ObservationKey(dataset="PALFA", mjd=55123.25, sky_position="J1853+0101", beam=3)


@pytest.fixture
def spes():
    return [
        SPE(dm=96.7, snr=12.3, time_s=10.5, sample=164062, downfact=30),
        SPE(dm=97.0, snr=9.1, time_s=10.500123, sample=164064, downfact=30),
    ]


class TestObservationKey:
    def test_roundtrip(self, key):
        assert ObservationKey.from_key(key.to_key()) == key

    def test_key_fields_pipe_separated(self, key):
        assert key.to_key() == "PALFA|55123.2500|J1853+0101|3"

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            ObservationKey.from_key("only|three|parts")


class TestSPE:
    def test_csv_roundtrip(self, spes):
        for spe in spes:
            assert SPE.from_csv_row(spe.to_csv_row()) == spe

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError):
            SPE.from_csv_row("1.0,2.0,3.0")

    def test_parse_spe_line(self, key, spes):
        line = f"{key.to_key()},{spes[0].to_csv_row()}"
        parsed_key, spe = parse_spe_line(line)
        assert parsed_key == key.to_key()
        assert spe == spes[0]

    def test_parse_empty_line_rejected(self):
        with pytest.raises(ValueError):
            parse_spe_line("nocomma")


class TestSPEBlock:
    def test_column_views(self, key, spes):
        block = SPEBlock(key, spes)
        assert np.allclose(block.dms, [96.7, 97.0])
        assert np.allclose(block.snrs, [12.3, 9.1])
        assert len(block) == 2

    def test_sorted_by_dm(self, key):
        block = SPEBlock(key, [SPE(5.0, 1, 0, 0), SPE(2.0, 1, 0, 0), SPE(9.0, 1, 0, 0)])
        assert list(block.sorted_by_dm().dms) == [2.0, 5.0, 9.0]

    def test_sorted_by_time(self, key):
        block = SPEBlock(key, [SPE(1, 1, 5.0, 0), SPE(1, 1, 1.0, 0)])
        assert list(block.sorted_by_time().times) == [1.0, 5.0]

    def test_subset(self, key, spes):
        block = SPEBlock(key, spes)
        sub = block.subset([1])
        assert len(sub) == 1
        assert sub.spes[0] == spes[1]


class TestCsvRendering:
    def test_spes_to_csv_prefixes_key(self, key, spes):
        text = spes_to_csv(key, spes)
        lines = text.strip().split("\n")
        assert len(lines) == 2
        assert all(line.startswith(key.to_key() + ",") for line in lines)

    def test_header_included_when_requested(self, key, spes):
        text = spes_to_csv(key, spes, include_header=True)
        assert text.startswith("#")

    def test_empty_spes_empty_output(self, key):
        assert spes_to_csv(key, []) == ""

    def test_rows_parse_back(self, key, spes):
        text = spes_to_csv(key, spes)
        parsed = [parse_spe_line(line) for line in text.strip().split("\n")]
        assert [spe for _k, spe in parsed] == spes
