"""Unit tests for dispersion physics and trial-DM grids."""

import numpy as np
import pytest

from repro.astro.dispersion import (
    DEFAULT_BANDS,
    DMGrid,
    dispersion_delay_s,
    dm_from_distance_kpc,
    dm_spacing_bands,
    smearing_snr_factor,
)


class TestDispersionDelay:
    def test_zero_dm_zero_delay(self):
        assert dispersion_delay_s(0.0, 300.0, 400.0) == 0.0

    def test_linear_in_dm(self):
        d1 = dispersion_delay_s(10.0, 300.0, 400.0)
        d2 = dispersion_delay_s(20.0, 300.0, 400.0)
        assert d2 == pytest.approx(2.0 * d1)

    def test_lower_frequency_larger_delay(self):
        low = dispersion_delay_s(50.0, 300.0, 400.0)
        high = dispersion_delay_s(50.0, 1300.0, 1400.0)
        assert low > high

    def test_known_value(self):
        # DM=100 across 350±50 MHz: K_DM·100·(300^-2 − 400^-2) ≈ 2.016 s.
        delay = dispersion_delay_s(100.0, 300.0, 400.0)
        assert delay == pytest.approx(2.016, rel=0.01)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            dispersion_delay_s(-1.0, 300.0, 400.0)
        with pytest.raises(ValueError):
            dispersion_delay_s(1.0, 0.0, 400.0)


class TestSmearingFactor:
    def test_perfect_dm_is_unity(self):
        assert smearing_snr_factor(0.0, 5.0, 1400.0, 300.0) == pytest.approx(1.0)

    def test_monotone_decreasing_in_offset(self):
        factors = [smearing_snr_factor(d, 5.0, 1400.0, 300.0) for d in (0, 1, 5, 20, 100)]
        assert factors == sorted(factors, reverse=True)

    def test_bounded_in_unit_interval(self):
        for d in np.linspace(0, 500, 50):
            f = smearing_snr_factor(float(d), 5.0, 350.0, 100.0)
            assert 0.0 <= f <= 1.0

    def test_wider_pulses_tolerate_more_offset(self):
        narrow = smearing_snr_factor(5.0, 1.0, 350.0, 100.0)
        wide = smearing_snr_factor(5.0, 30.0, 350.0, 100.0)
        assert wide > narrow

    def test_low_frequency_more_sensitive(self):
        gbt = smearing_snr_factor(2.0, 5.0, 350.0, 100.0)
        palfa = smearing_snr_factor(2.0, 5.0, 1400.0, 300.0)
        assert gbt < palfa

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            smearing_snr_factor(1.0, 0.0, 350.0, 100.0)


class TestDMGrid:
    def test_trials_ascending_unique(self):
        grid = DMGrid(max_dm=500.0, coarsen=5.0)
        trials = grid.trial_dms()
        assert np.all(np.diff(trials) > 0)

    def test_spacing_increases_with_dm(self):
        grid = DMGrid(max_dm=2000.0)
        spacings = [grid.spacing_at(dm) for dm in (5.0, 50.0, 150.0, 500.0, 1500.0)]
        assert spacings == sorted(spacings)
        assert spacings[0] == pytest.approx(0.01)
        assert spacings[-1] == pytest.approx(2.0)

    def test_coarsen_scales_spacing(self):
        fine = DMGrid(max_dm=100.0, coarsen=1.0)
        coarse = DMGrid(max_dm=100.0, coarsen=10.0)
        assert coarse.spacing_at(10.0) == pytest.approx(10.0 * fine.spacing_at(10.0))
        assert coarse.trial_dms().size < fine.trial_dms().size

    def test_trials_near_window(self):
        grid = DMGrid(max_dm=300.0, coarsen=10.0)
        near = grid.trials_near(100.0, 5.0)
        assert near.size > 0
        assert np.all(np.abs(near - 100.0) <= 5.0)

    def test_nearest_trial(self):
        grid = DMGrid(max_dm=100.0, coarsen=10.0)
        t = grid.nearest_trial(33.33)
        trials = grid.trial_dms()
        assert t in trials
        assert abs(t - 33.33) == np.min(np.abs(trials - 33.33))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DMGrid(max_dm=0.0)
        with pytest.raises(ValueError):
            DMGrid(max_dm=10.0, coarsen=0.5)

    def test_bands_exposed(self):
        assert dm_spacing_bands() == DEFAULT_BANDS


class TestDMFromDistance:
    def test_proportional(self):
        assert dm_from_distance_kpc(2.0) == pytest.approx(2 * dm_from_distance_kpc(1.0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dm_from_distance_kpc(-1.0)
