"""Equivalence gates for the columnar data plane.

The refactor's contract is *byte identity*: every batch-built artifact
(data file, cluster file, D-RAPID ML part files) must equal what the
retained record-oriented reference code produces, bit for bit.  These
tests are the gate — if one fails, the columnar path has drifted.
"""

import numpy as np
import pytest

from repro.astro import GBT350DRIFT, generate_observation
from repro.astro.population import b1853_like
from repro.core.drapid import DRapidDriver
from repro.core.features import FEATURE_NAMES
from repro.core.rapid import (
    SinglePulse,
    run_rapid_observation,
    run_rapid_observation_batch,
)
from repro.dataplane import (
    N_FEATURES,
    ClusterBatch,
    MalformedRowError,
    PulseBatch,
    SPEBatch,
)
from repro.io.spe_files import (
    _reference_build_cluster_file,
    _reference_build_data_file,
    build_cluster_file,
    build_data_file,
    parse_cluster_file,
    parse_data_file,
    read_ml_batch,
    upload_observations,
)


@pytest.fixture(scope="module")
def observations():
    """Two small observations with pulsar + noise + RFI clusters."""
    return [
        generate_observation(
            GBT350DRIFT, [b1853_like()], mjd=55000.0 + i, beam=i, seed=40 + i,
            n_noise_clusters=25, n_rfi_bursts=2, n_pulse_mimics=6,
            obs_length_s=45.0,
        )
        for i in range(2)
    ]


class TestLayerConsistency:
    def test_n_features_matches_feature_names(self):
        # The data plane holds this as a literal to stay import-cycle-free;
        # this is the cross-check ISSUE requires.
        assert N_FEATURES == len(FEATURE_NAMES) == 22


class TestFileBuilders:
    def test_data_file_byte_identical(self, observations):
        assert build_data_file(observations) == _reference_build_data_file(
            observations
        )

    def test_cluster_file_byte_identical(self, observations):
        assert build_cluster_file(observations) == _reference_build_cluster_file(
            observations
        )

    def test_data_file_parses_back(self, observations):
        text = build_data_file(observations)
        by_key = parse_data_file(text, source="data.csv")
        assert list(by_key) == [o.key.to_key() for o in observations]
        for obs in observations:
            batch = by_key[obs.key.to_key()]
            assert len(batch) == len(obs.spes)
            # Written with %.3f/%.6f, so parse-back is quantized, not exact.
            np.testing.assert_allclose(batch.dm, obs.spe_batch.dm, atol=5e-4)
            np.testing.assert_allclose(
                batch.time_s, obs.spe_batch.time_s, atol=5e-7
            )
            assert np.array_equal(batch.downfact, obs.spe_batch.downfact)

    def test_cluster_file_parses_back(self, observations):
        text = build_cluster_file(observations)
        batch = parse_cluster_file(text, source="clusters.csv")
        assert len(batch) == sum(len(o.clusters) for o in observations)
        # Re-serializing the parsed batch reproduces the file exactly.
        header, *lines = text.rstrip("\n").split("\n")
        assert batch.to_lines() == lines


class TestRapidBatchEquivalence:
    def test_observation_search_matches_record_path(self, observation):
        serial = run_rapid_observation(observation)
        batched = run_rapid_observation_batch(observation)
        assert batched.n_clusters_searched == serial.n_clusters_searched
        assert batched.n_clusters_skipped == serial.n_clusters_skipped
        assert len(batched.pulse_batch) == len(serial.pulses)
        reference = PulseBatch.from_records(serial.pulses)
        assert batched.pulse_batch == reference  # bitwise column equality


class TestDRapidEquivalence:
    """The ISSUE acceptance gate: run() vs run_reference(), byte for byte."""

    @pytest.fixture(scope="class")
    def uploaded(self, observations):
        from repro.dfs import DataNode, DFSClient

        dfs = DFSClient(
            [DataNode(f"dn{i}", capacity=50_000_000) for i in range(4)],
            replication=2, block_size=4096, seed=0,
        )
        data_path, cluster_path = upload_observations(dfs, observations)
        return dfs, data_path, cluster_path

    @pytest.fixture(scope="class")
    def both_runs(self, observations, uploaded):
        from repro.sparklet import SparkletContext

        dfs, data_path, cluster_path = uploaded
        grids = {"GBT350Drift": observations[0].grid}
        ctx = SparkletContext(app_name="equiv", default_parallelism=4)
        driver = DRapidDriver(ctx=ctx, dfs=dfs, grids=grids, num_partitions=6)
        columnar = driver.run(data_path, cluster_path, ml_output_path="/ml/col")
        reference = driver.run_reference(
            data_path, cluster_path, ml_output_path="/ml/ref"
        )
        ctx.close()
        return dfs, columnar, reference

    def test_ml_part_files_byte_identical(self, both_runs):
        dfs, columnar, reference = both_runs
        col_parts = dfs.ls("/ml/col/")
        ref_parts = dfs.ls("/ml/ref/")
        assert len(col_parts) == len(ref_parts) > 0
        for cp, rp in zip(sorted(col_parts), sorted(ref_parts)):
            assert dfs.get_text(cp) == dfs.get_text(rp)

    def test_result_bookkeeping_identical(self, both_runs):
        _dfs, columnar, reference = both_runs
        assert columnar.n_pulses == reference.n_pulses > 0
        assert columnar.n_clusters == reference.n_clusters
        assert columnar.n_null_joins == reference.n_null_joins == 0
        assert (
            columnar.n_dropped_cluster_rows
            == reference.n_dropped_cluster_rows
            == 0
        )
        assert columnar.pulse_batch == reference.pulse_batch

    def test_read_ml_batch_round_trips(self, both_runs):
        dfs, columnar, _reference = both_runs
        assert read_ml_batch(dfs, "/ml/col") == columnar.pulse_batch

    def test_classification_report_identical(self, both_runs):
        from repro.core.alm import ALM_SCHEMES, label_instances
        from repro.ml.forest import RandomForest
        from repro.ml.validation import cross_validate

        _dfs, columnar, reference = both_runs
        scheme = ALM_SCHEMES["2"]
        reports = []
        for result in (columnar, reference):
            pb = result.pulse_batch
            labels = label_instances(
                scheme, pb.features, pb.is_pulsar, np.asarray(pb.is_rrat)
            )
            reports.append(
                cross_validate(
                    lambda: RandomForest(n_trees=5, seed=0),
                    pb.features, labels, n_folds=2,
                    positive_collapse=scheme, seed=0,
                )
            )
        got, want = reports
        assert np.array_equal(got.confusion, want.confusion)
        assert got.recalls == want.recalls
        assert got.precisions == want.precisions
        assert got.f_measures == want.f_measures
        assert got.instance_correct == want.instance_correct


class TestMlRowExactRoundTrip:
    """Satellite 1: repr-based floats make the ML row round-trip exact."""

    def test_awkward_floats_survive(self):
        from repro.core.features import PulseFeatures

        vec = np.array(
            [0.1, 1 / 3, np.pi, 1e-17, 6.02e23, -0.0, 5.0, 123456.789012345,
             np.nextafter(1.0, 2.0)] + [float(i) / 7 for i in range(13)]
        )
        p = SinglePulse(
            observation_key="GBT350Drift|55000.0|g10.0+0.0|0",
            cluster_id=3, spe_start=10, spe_stop=25,
            features=PulseFeatures.from_vector(vec),
            source_name="J1234+56", is_rrat=True,
        )
        q = SinglePulse.from_ml_row(p.to_ml_row())
        assert q == p
        assert np.array_equal(q.features.to_vector(), vec)  # bitwise

    def test_batch_ml_lines_match_record_rows(self, observation):
        result = run_rapid_observation_batch(observation)
        pb = result.pulse_batch
        assert pb.to_ml_lines() == [p.to_ml_row() for p in pb.to_records()]
        assert PulseBatch.from_ml_lines(pb.to_ml_lines()) == pb


class TestMalformedDiagnostics:
    """Satellite 2: parse errors name the file and the 1-based line."""

    def test_data_file_bad_float(self):
        text = "# header\n" + "k|55000|sky|0,10.0,8.0,1.5,3,2\n" \
            + "k|55000|sky|0,10.0,oops,1.6,4,2\n"
        with pytest.raises(MalformedRowError) as err:
            parse_data_file(text, source="/surveys/data.csv")
        assert err.value.source == "/surveys/data.csv"
        assert err.value.lineno == 3
        assert str(err.value).startswith("/surveys/data.csv:3: ")

    def test_data_file_missing_key(self):
        with pytest.raises(MalformedRowError) as err:
            parse_data_file("# h\nnocommas\n", source="d.csv")
        assert (err.value.source, err.value.lineno) == ("d.csv", 2)

    def test_cluster_file_wrong_field_count(self):
        good = "k|55000|sky|0,1,2,5,10.0,12.0,0.5,0.9,8.0,,0"
        text = "# h\n" + good + "\nshort,row\n"
        with pytest.raises(MalformedRowError) as err:
            parse_cluster_file(text, source="clusters.csv")
        assert err.value.lineno == 3
        assert "clusters.csv:3:" in str(err.value)

    def test_ml_part_file_bad_int(self, dfs):
        row = ",".join(
            ["k|55000|sky|0", "1", "x", "9", "", "0"] + ["0.0"] * 22
        )
        dfs.put_text("/ml/bad/part-00000", row + "\n")
        with pytest.raises(MalformedRowError) as err:
            read_ml_batch(dfs, "/ml/bad")
        assert err.value.source == "/ml/bad/part-00000"
        assert err.value.lineno == 1

    def test_error_is_a_value_error(self):
        # Drapid's per-row fallback catches ValueError; the subclass must
        # keep that contract.
        assert issubclass(MalformedRowError, ValueError)

    def test_blank_and_comment_lines_do_not_shift_numbering(self):
        text = "# c\n\nk,1,2,5,1.0,2.0,0.5,0.9,8.0,,0\n\nbad\n"
        with pytest.raises(MalformedRowError) as err:
            parse_cluster_file(text, source="c.csv")
        assert err.value.lineno == 5


class TestBatchAdapters:
    def test_spe_batch_record_round_trip(self, observation):
        batch = observation.spe_batch
        assert SPEBatch.from_records(batch.to_records()) == batch

    def test_cluster_batch_record_round_trip(self, observations):
        text = build_cluster_file(observations)
        batch = parse_cluster_file(text)
        assert ClusterBatch.from_records(batch.to_records()) == batch

    def test_pulse_batch_record_round_trip(self, observation):
        pb = run_rapid_observation_batch(observation).pulse_batch
        assert PulseBatch.from_records(pb.to_records()) == pb

    def test_slices_are_views(self, observation):
        batch = observation.spe_batch
        view = batch.slice(2, 8)
        assert view.dm.base is batch.dm or view.dm.base is batch.dm.base
        assert len(view) == 6

    def test_dataset_from_pulse_batch(self, observation):
        from repro.ml.dataset import Dataset

        pb = run_rapid_observation_batch(observation).pulse_batch
        y = pb.is_pulsar.astype(int)
        ds = Dataset.from_pulse_batch(pb, y)
        assert ds.X is pb.features  # zero-copy
        assert ds.feature_names == FEATURE_NAMES
