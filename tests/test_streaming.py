"""Unit tests for the micro-batch streaming engine's components.

The streamed≡offline equivalence law has its own suites
(``test_streaming_equivalence.py`` for the engineered cases,
``test_properties_streaming.py`` for the hypothesis sweep); this file
covers the pieces in isolation: receiver replay and rate credit, watermark
state, the PID estimator, checkpoint round-trips, the serving scorer, and
the observability events the engine emits.
"""

import json

import numpy as np
import pytest

from repro.api import PipelineConfig, StreamingConfig, run_streaming
from repro.obs import ObsConfig
from repro.streaming import (
    LinearCostModel,
    PIDConfig,
    PIDRateEstimator,
    ReplayReceiver,
    StreamScorer,
    StreamState,
    build_stream,
)
from repro.streaming.checkpoint import (
    CheckpointError,
    put_replace,
    read_checkpoint,
    write_checkpoint,
)
from repro.streaming.receiver import CLOSE, CLUSTER, DATA, StreamItem


def _item(kind, key, t):
    if kind == DATA:
        return StreamItem(DATA, key, f"1.000,5.000,{t:.6f},0,1", t)
    if kind == CLUSTER:
        line = f"{key},0,1,3,0.000,2.000,0.000000,{t:.6f},9.000,,0"
        return StreamItem(CLUSTER, key, line, t)
    return StreamItem(CLOSE, key, None, None)


class TestReplayReceiver:
    def test_build_stream_is_time_ordered_per_key(self, observation):
        items = build_stream([observation])
        times = [it.time_s for it in items if it.kind != CLOSE]
        assert times == sorted(times)
        assert items[-1].kind == CLOSE

    def test_stable_order_on_equal_times(self, observation):
        """Rows sharing an event time keep their data-file order — the
        property the per-cluster byte-identity proof leans on."""
        rows = observation.spe_batch.to_csv_rows()
        items = [it.payload for it in build_stream([observation]) if it.kind == DATA]
        by_time: dict[float, list[int]] = {}
        for payload in items:
            by_time.setdefault(float(payload.split(",")[2]), []).append(
                rows.index(payload)
            )
        # within every equal-time run, data-file positions must increase
        for positions in by_time.values():
            assert positions == sorted(positions)

    def test_rate_credit_carries_fractions(self):
        items = [_item(DATA, "k", i / 10.0) for i in range(10)]
        rx = ReplayReceiver(items)
        sizes = [
            rx.poll(time_s=j * 1.0, interval_s=1.0, rate_rows_per_s=2.5).n_rows
            for j in range(4)
        ]
        assert sizes == [2, 3, 2, 3]  # 2.5 rows/s alternates deterministically

    def test_close_items_ride_free(self):
        items = [_item(DATA, "k", 0.0), _item(CLOSE, "k", None)]
        rx = ReplayReceiver(items)
        block = rx.poll(time_s=1.0, interval_s=1.0, rate_rows_per_s=1.0)
        kinds = [it.kind for it in block.items]
        assert kinds == [DATA, CLOSE]
        assert block.n_rows == 1  # the close didn't bill against the rate
        assert rx.exhausted

    def test_snapshot_restore_resumes_identically(self):
        items = [_item(DATA, "k", i / 5.0) for i in range(20)]
        a = ReplayReceiver(items)
        for j in range(3):
            a.poll(time_s=j, interval_s=1.0, rate_rows_per_s=3.3)
        snap = json.loads(json.dumps(a.snapshot()))  # through JSON, as the DFS would
        b = ReplayReceiver(items)
        b.restore(snap)
        for j in range(3, 6):
            ba = a.poll(time_s=j, interval_s=1.0, rate_rows_per_s=3.3)
            bb = b.poll(time_s=j, interval_s=1.0, rate_rows_per_s=3.3)
            assert ba.items == bb.items


class TestStreamState:
    def test_watermark_must_strictly_pass_t_hi(self):
        state = StreamState()
        state.ingest(1, [_item(DATA, "k", 1.0), _item(CLUSTER, "k", 1.0)])
        # watermark == t_hi: rows with that exact timestamp may still arrive
        assert state.finalize(1) == []
        state.ingest(2, [_item(DATA, "k", 1.5)])
        units = state.finalize(2)
        assert len(units) == 1
        assert units[0].n_batches_spanned == 2

    def test_key_close_finalizes_and_frees(self):
        state = StreamState()
        state.ingest(1, [_item(DATA, "k", 1.0), _item(CLUSTER, "k", 1.0)])
        state.ingest(2, [_item(CLOSE, "k", None)])
        units = state.finalize(2)
        assert len(units) == 1 and units[0].key == "k"
        assert state.empty  # row buffer freed at key close

    def test_rows_not_consumed_by_overlapping_boxes(self):
        """A row inside two clusters' boxes must feed both finalizations."""
        state = StreamState()
        row = _item(DATA, "k", 1.0)
        c1 = StreamItem(CLUSTER, "k", "k,0,1,3,0.000,2.000,0.000000,1.000000,9.000,,0", 1.0)
        c2 = StreamItem(CLUSTER, "k", "k,1,2,3,0.000,2.000,0.500000,2.000000,9.000,,0", 2.0)
        state.ingest(1, [row, c1])
        state.ingest(2, [StreamItem(DATA, "k", "1.000,5.000,1.500000,0,1", 1.5), c2])
        u1 = state.finalize(2)  # c1 due (watermark 2.0 > 1.0)
        state.ingest(3, [_item(CLOSE, "k", None)])
        u2 = state.finalize(3)  # c2 due at close
        assert row.payload in {ln.split(",", 1)[1] for ln in u1[0].data_lines}
        assert row.payload in {ln.split(",", 1)[1] for ln in u2[0].data_lines}

    def test_snapshot_restore_round_trip(self):
        state = StreamState()
        state.ingest(1, [_item(DATA, "k", 1.0), _item(CLUSTER, "k", 1.0)])
        snap = json.loads(json.dumps(state.snapshot()))
        restored = StreamState.restore(snap)
        assert restored.n_pending_clusters == 1
        assert restored.n_buffered_rows == 1
        assert restored.watermarks() == state.watermarks()


class TestPIDRateEstimator:
    def test_converges_on_processing_rate_under_overload(self):
        est = PIDRateEstimator(PIDConfig(), batch_interval_s=1.0, initial_rate=400.0)
        capacity = 200.0  # rows/s the (linear) pipeline can actually do
        t, sched = 0.0, 0.0
        for _ in range(30):
            rows = int(est.rate)
            proc = rows / capacity
            t = max(t + 1.0, t + proc)
            sched = max(0.0, sched + proc - 1.0)
            est.compute(t, rows, proc, sched)
        assert est.rate == pytest.approx(capacity, rel=0.05)

    def test_rejects_unusable_updates(self):
        est = PIDRateEstimator(PIDConfig(), batch_interval_s=1.0, initial_rate=100.0)
        assert est.compute(1.0, 0, 1.0, 0.0) is None      # empty batch
        assert est.compute(1.0, 10, 0.0, 0.0) is None     # zero delay
        est.compute(1.0, 10, 0.1, 0.0)
        assert est.compute(0.5, 10, 0.1, 0.0) is None     # stale time

    def test_rate_floor(self):
        cfg = PIDConfig(min_rate=25.0)
        est = PIDRateEstimator(cfg, batch_interval_s=1.0, initial_rate=1000.0)
        est.compute(10.0, 1000, 100.0, 50.0)  # catastrophic overload
        assert est.rate == 25.0

    def test_snapshot_restore(self):
        est = PIDRateEstimator(PIDConfig(), batch_interval_s=1.0, initial_rate=300.0)
        est.compute(1.0, 100, 0.8, 0.2)
        snap = json.loads(json.dumps(est.snapshot()))
        other = PIDRateEstimator(PIDConfig(), batch_interval_s=1.0, initial_rate=300.0)
        other.restore(snap)
        assert other.compute(2.0, 100, 0.8, 0.2) == est.compute(2.0, 100, 0.8, 0.2)


class TestCheckpointIO:
    def test_round_trip(self, dfs):
        n = write_checkpoint(dfs, "/ck/state.json", {"batch_index": 3, "x": [1, 2]})
        assert n > 0
        snap = read_checkpoint(dfs, "/ck/state.json")
        assert snap["batch_index"] == 3 and snap["x"] == [1, 2]

    def test_missing_checkpoint_is_none(self, dfs):
        assert read_checkpoint(dfs, "/nope.json") is None

    def test_overwrite_replaces(self, dfs):
        write_checkpoint(dfs, "/ck.json", {"batch_index": 1})
        write_checkpoint(dfs, "/ck.json", {"batch_index": 2})
        assert read_checkpoint(dfs, "/ck.json")["batch_index"] == 2

    def test_version_gate(self, dfs):
        put_replace(dfs, "/ck.json", json.dumps({"checkpoint_version": 99}))
        with pytest.raises(CheckpointError, match="version 99"):
            read_checkpoint(dfs, "/ck.json")

    def test_corrupt_checkpoint_raises(self, dfs):
        put_replace(dfs, "/ck.json", "{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_checkpoint(dfs, "/ck.json")


class TestStreamScorer:
    def test_scores_with_any_predictor(self):
        class Constant:
            def predict(self, X):
                return np.zeros(len(X), dtype=np.int64)

        from repro.dataplane import PulseBatch

        scorer = StreamScorer(Constant())
        assert scorer.score(PulseBatch.empty()).size == 0

    def test_rejects_models_without_predict(self):
        with pytest.raises(TypeError, match="no predict"):
            StreamScorer(object())

    def test_from_path_uses_hardened_loader(self, tmp_path):
        import pickle

        class Evil:
            def __reduce__(self):
                import os

                return (os.system, ("true",))

        path = tmp_path / "evil.pkl"
        path.write_bytes(pickle.dumps(Evil()))
        with pytest.raises(pickle.UnpicklingError, match="refusing to unpickle"):
            StreamScorer.from_path(path)


class TestEngineObservability:
    @pytest.fixture(scope="class")
    def traced_run(self):
        config = StreamingConfig(
            pipeline=PipelineConfig(n_pulsars=3, n_observations=1, seed=11,
                                    obs_config=ObsConfig(enabled=True)),
            batch_interval_s=0.25, arrival_rate=600.0, checkpoint_interval=3,
        )
        return run_streaming(config)

    def test_streaming_event_vocabulary_emitted(self, traced_run):
        types = {ev["type"] for ev in traced_run.obs.events()}
        assert {"block_received", "batch_submitted", "batch_completed",
                "watermark_advanced", "rate_updated",
                "checkpoint_written"} <= types

    def test_batch_events_pair_up(self, traced_run):
        events = traced_run.obs.events()
        submitted = [e["batch_id"] for e in events if e["type"] == "batch_submitted"]
        completed = [e["batch_id"] for e in events if e["type"] == "batch_completed"]
        assert submitted == completed == sorted(submitted)

    def test_watermarks_are_monotone_per_key(self, traced_run):
        marks: dict[str, list[float]] = {}
        for ev in traced_run.obs.events():
            if ev["type"] == "watermark_advanced":
                marks.setdefault(ev["key"], []).append(ev["watermark"])
        assert marks
        for series in marks.values():
            assert series == sorted(series)

    def test_counters_recorded(self, traced_run):
        counters = traced_run.obs.registry
        assert counters.counter("streaming.batches").value == traced_run.n_batches
        assert counters.counter("streaming.pulses").value == traced_run.n_pulses

    def test_sparklet_job_events_present_per_batch(self, traced_run):
        """Each batch's D-RAPID job runs through Sparklet, so scheduler
        lifecycle events must interleave with the streaming events."""
        types = {ev["type"] for ev in traced_run.obs.events()}
        assert "job_start" in types and "task_end" in types


class TestEngineGuards:
    def test_max_batches_guard(self):
        config = StreamingConfig(
            pipeline=PipelineConfig(n_pulsars=3, n_observations=1, seed=0),
            arrival_rate=50.0, max_batches=3,
        )
        with pytest.raises(RuntimeError, match="max_batches"):
            run_streaming(config)

    def test_empty_observations_drain_immediately(self):
        from repro.streaming import stream_observations

        config = StreamingConfig(pipeline=PipelineConfig(n_pulsars=3))
        result = stream_observations([], config)
        assert result.n_batches == 0 and result.n_pulses == 0

    def test_cost_model_is_deterministic(self):
        model = LinearCostModel(rows_per_s=100.0, fixed_s=0.5)
        assert model.batch_seconds(50, None) == pytest.approx(1.0)
