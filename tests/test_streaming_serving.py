"""Direct unit tests for the in-stream serving path (StreamScorer).

The scorer is the last hop before a pulse leaves the engine labeled; it
must validate its model eagerly (a predict-less object fails at
construction, not mid-stream), load persisted models only through the
hardened unpickler, and treat an empty batch as a no-op.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataplane import PulseBatch
from repro.dataplane.pulse_batch import N_FEATURES
from repro.ml import J48
from repro.ml.persistence import save_model
from repro.streaming.serving import StreamScorer


def _batch(n: int, seed: int = 0) -> PulseBatch:
    rng = np.random.default_rng(seed)
    return PulseBatch(
        observation_key=np.array([f"obs|{i}" for i in range(n)], dtype=object),
        cluster_id=np.arange(n),
        spe_start=np.zeros(n, dtype=np.int64),
        spe_stop=np.full(n, 5, dtype=np.int64),
        source_name=np.array([None] * n, dtype=object),
        is_rrat=np.zeros(n, dtype=bool),
        features=rng.normal(size=(n, N_FEATURES)),
    )


@pytest.fixture(scope="module")
def trained_model(toy_classification):
    X, y = toy_classification
    # Train on N_FEATURES-wide data so the model accepts real batches.
    rng = np.random.default_rng(1)
    X22 = np.hstack([X, rng.normal(size=(len(X), N_FEATURES - X.shape[1]))])
    return J48().fit(X22, y)


def test_rejects_model_without_predict():
    with pytest.raises(TypeError, match="predict"):
        StreamScorer(object())


def test_rejects_none_model():
    with pytest.raises(TypeError, match="predict"):
        StreamScorer(None)


def test_scores_match_direct_prediction(trained_model):
    batch = _batch(12)
    scorer = StreamScorer(trained_model)
    out = scorer.score(batch)
    np.testing.assert_array_equal(out, trained_model.predict(batch.features))
    assert len(out) == len(batch)


def test_empty_batch_scores_to_empty_int64(trained_model):
    out = StreamScorer(trained_model).score(PulseBatch.empty())
    assert out.shape == (0,)
    assert out.dtype == np.int64


def test_from_path_round_trips_through_hardened_unpickler(trained_model, tmp_path):
    path = tmp_path / "model.pkl"
    save_model(trained_model, path)
    scorer = StreamScorer.from_path(path)
    batch = _batch(8, seed=3)
    np.testing.assert_array_equal(
        scorer.score(batch), trained_model.predict(batch.features)
    )


def test_from_path_rejects_hostile_payload(tmp_path):
    import pickle

    class Evil:
        def __reduce__(self):
            import os

            return (os.system, ("echo pwned > /dev/null",))

    path = tmp_path / "evil.pkl"
    path.write_bytes(pickle.dumps(
        {"format_version": 1, "class_name": "J48", "model": Evil()}
    ))
    with pytest.raises(Exception):
        StreamScorer.from_path(path)
