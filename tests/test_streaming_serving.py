"""Direct unit tests for the in-stream serving path (StreamScorer).

The scorer is the last hop before a pulse leaves the engine labeled; it
must validate its model eagerly (a predict-less object fails at
construction, not mid-stream), load persisted models only through the
hardened unpickler, and treat an empty batch as a no-op.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.dataplane import PulseBatch
from repro.dataplane.pulse_batch import N_FEATURES
from repro.ml import J48
from repro.ml.persistence import save_model
from repro.streaming.serving import ModelCache, StreamScorer


def _batch(n: int, seed: int = 0) -> PulseBatch:
    rng = np.random.default_rng(seed)
    return PulseBatch(
        observation_key=np.array([f"obs|{i}" for i in range(n)], dtype=object),
        cluster_id=np.arange(n),
        spe_start=np.zeros(n, dtype=np.int64),
        spe_stop=np.full(n, 5, dtype=np.int64),
        source_name=np.array([None] * n, dtype=object),
        is_rrat=np.zeros(n, dtype=bool),
        features=rng.normal(size=(n, N_FEATURES)),
    )


@pytest.fixture(scope="module")
def trained_model(toy_classification):
    X, y = toy_classification
    # Train on N_FEATURES-wide data so the model accepts real batches.
    rng = np.random.default_rng(1)
    X22 = np.hstack([X, rng.normal(size=(len(X), N_FEATURES - X.shape[1]))])
    return J48().fit(X22, y)


def test_rejects_model_without_predict():
    with pytest.raises(TypeError, match="predict"):
        StreamScorer(object())


def test_rejects_none_model():
    with pytest.raises(TypeError, match="predict"):
        StreamScorer(None)


def test_scores_match_direct_prediction(trained_model):
    batch = _batch(12)
    scorer = StreamScorer(trained_model)
    out = scorer.score(batch)
    np.testing.assert_array_equal(out, trained_model.predict(batch.features))
    assert len(out) == len(batch)


def test_empty_batch_scores_to_empty_int64(trained_model):
    out = StreamScorer(trained_model).score(PulseBatch.empty())
    assert out.shape == (0,)
    assert out.dtype == np.int64


def test_from_path_round_trips_through_hardened_unpickler(trained_model, tmp_path):
    path = tmp_path / "model.pkl"
    save_model(trained_model, path)
    scorer = StreamScorer.from_path(path)
    batch = _batch(8, seed=3)
    np.testing.assert_array_equal(
        scorer.score(batch), trained_model.predict(batch.features)
    )


def test_from_path_rejects_hostile_payload(tmp_path):
    class Evil:
        def __reduce__(self):
            import os

            return (os.system, ("echo pwned > /dev/null",))

    path = tmp_path / "evil.pkl"
    path.write_bytes(pickle.dumps(
        {"format_version": 1, "class_name": "J48", "model": Evil()}
    ))
    with pytest.raises(pickle.UnpicklingError, match="refusing to unpickle"):
        StreamScorer.from_path(path)


def test_from_path_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        StreamScorer.from_path(tmp_path / "nope.pkl")


def test_from_path_corrupt_file(tmp_path):
    path = tmp_path / "garbage.pkl"
    path.write_bytes(b"\x00\x01not a pickle at all\xff")
    with pytest.raises(pickle.UnpicklingError):
        StreamScorer.from_path(path)


def test_from_path_truncated_artifact(tmp_path, trained_model):
    path = tmp_path / "model.pkl"
    save_model(trained_model, path)
    truncated = tmp_path / "truncated.pkl"
    truncated.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(pickle.UnpicklingError, match="truncated"):
        StreamScorer.from_path(truncated)


def test_from_path_wrong_payload_shape(tmp_path):
    path = tmp_path / "notmodel.pkl"
    path.write_bytes(pickle.dumps({"format_version": 1}))
    with pytest.raises(ValueError, match="not a saved model"):
        StreamScorer.from_path(path)


class _WrongLengthModel:
    """A broken learner whose predict() drops rows."""

    def predict(self, X):
        return np.zeros(max(0, len(X) - 1), dtype=np.int64)


def test_score_rejects_wrong_length_predictions():
    scorer = StreamScorer(_WrongLengthModel())
    with pytest.raises(ValueError, match="one label per row"):
        scorer.score(_batch(6))


def test_score_rejects_scalar_predictions():
    class Scalar:
        def predict(self, X):
            return np.zeros((1,), dtype=np.int64)

    with pytest.raises(ValueError, match="one label per row"):
        StreamScorer(Scalar()).score(_batch(4))


class TestModelCache:
    def test_publish_bumps_version(self, trained_model):
        cache = ModelCache()
        assert cache.version_of("m") == 0
        assert cache.publish("m", trained_model) == 1
        assert cache.publish("m", trained_model) == 2
        version, model = cache.get("m")
        assert version == 2 and model is trained_model

    def test_get_unknown_key_raises(self):
        with pytest.raises(KeyError, match="no model published"):
            ModelCache().get("absent")

    def test_publish_validates_model(self):
        with pytest.raises(TypeError, match="predict"):
            ModelCache().publish("m", object())

    def test_load_shares_one_object_across_keys(self, trained_model, tmp_path):
        path = tmp_path / "model.pkl"
        save_model(trained_model, path)
        cache = ModelCache()
        cache.load("a", path)
        cache.load("b", path)
        assert cache.n_loads == 1
        assert cache.get("a")[1] is cache.get("b")[1]
        assert cache.keys == ["a", "b"]

    def test_from_cache_pins_and_refresh_swaps(self, trained_model):
        cache = ModelCache()
        cache.publish("m", trained_model)
        scorer = StreamScorer.from_cache(cache, "m")
        assert scorer.version == 1
        assert scorer.refresh() is False  # nothing new
        cache.publish("m", trained_model)
        assert scorer.refresh() is True
        assert scorer.version == 2
        assert scorer.refresh() is False

    def test_plain_scorer_refresh_is_noop(self, trained_model):
        assert StreamScorer(trained_model).refresh() is False
