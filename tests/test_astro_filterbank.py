"""Unit tests for the filterbank front end (collection → dedispersion →
single pulse search, the paper's Section 3 phases 1-3)."""

import numpy as np
import pytest

from repro.astro.dispersion import K_DM
from repro.astro.filterbank import (
    Filterbank,
    InjectedPulse,
    dedisperse,
    single_pulse_search,
    synthesize_filterbank,
)
from repro.core.rapid import run_rapid_on_cluster


@pytest.fixture(scope="module")
def fb_with_pulse():
    pulse = InjectedPulse(time_s=2.0, dm=60.0, width_ms=20.0, amplitude=3.0)
    fb = synthesize_filterbank(
        duration_s=6.0, n_channels=32, f_low_mhz=300.0, f_high_mhz=400.0,
        sample_time_s=2e-3, pulses=[pulse], seed=1,
    )
    return fb, pulse


class TestSynthesize:
    def test_shapes_and_metadata(self):
        fb = synthesize_filterbank(1.0, n_channels=16, sample_time_s=1e-3, seed=0)
        assert fb.data.shape == (16, 1000)
        assert fb.n_channels == 16
        assert fb.duration_s == pytest.approx(1.0)
        assert fb.channel_freqs_mhz.shape == (16,)
        assert np.all(np.diff(fb.channel_freqs_mhz) > 0)

    def test_noise_statistics(self):
        fb = synthesize_filterbank(2.0, n_channels=8, noise_sigma=1.0, seed=2)
        assert fb.data.std() == pytest.approx(1.0, rel=0.05)
        assert abs(fb.data.mean()) < 0.05

    def test_pulse_is_dispersed_across_band(self, fb_with_pulse):
        fb, pulse = fb_with_pulse
        # The lowest channel peaks later than the highest channel by the
        # cold-plasma delay.
        lo_peak = int(np.argmax(fb.data[0])) * fb.sample_time_s
        hi_peak = int(np.argmax(fb.data[-1])) * fb.sample_time_s
        f = fb.channel_freqs_mhz
        expected = K_DM * pulse.dm * (f[0] ** -2 - f[-1] ** -2)
        assert lo_peak - hi_peak == pytest.approx(expected, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_filterbank(0.0)
        with pytest.raises(ValueError):
            Filterbank(np.zeros(5), 300.0, 400.0, 1e-3)
        with pytest.raises(ValueError):
            Filterbank(np.zeros((2, 5)), 400.0, 300.0, 1e-3)


class TestDedisperse:
    def test_correct_dm_concentrates_power(self, fb_with_pulse):
        fb, pulse = fb_with_pulse
        at_true = dedisperse(fb, pulse.dm).max()
        at_zero = dedisperse(fb, 0.0).max()
        at_far = dedisperse(fb, 300.0).max()
        assert at_true > at_zero
        assert at_true > at_far

    def test_peak_time_matches_injection(self, fb_with_pulse):
        fb, pulse = fb_with_pulse
        series = dedisperse(fb, pulse.dm)
        t_peak = int(np.argmax(series)) * fb.sample_time_s
        assert t_peak == pytest.approx(pulse.time_s, abs=0.05)

    def test_rejects_negative_dm(self, fb_with_pulse):
        fb, _ = fb_with_pulse
        with pytest.raises(ValueError):
            dedisperse(fb, -1.0)


class TestSinglePulseSearch:
    def test_finds_injected_pulse_cluster(self, fb_with_pulse):
        fb, pulse = fb_with_pulse
        trials = np.arange(0.0, 150.0, 5.0)
        spes = single_pulse_search(fb, trials, snr_threshold=6.0)
        assert spes, "the injected pulse must be detected"
        best = max(spes, key=lambda s: s.snr)
        assert best.dm == pytest.approx(pulse.dm, abs=5.0)
        assert best.time_s == pytest.approx(pulse.time_s, abs=0.1)

    def test_pure_noise_yields_few_events(self):
        fb = synthesize_filterbank(3.0, n_channels=16, sample_time_s=2e-3, seed=5)
        spes = single_pulse_search(fb, np.arange(0, 100, 10.0), snr_threshold=7.0)
        assert len(spes) < 5

    def test_validation(self, fb_with_pulse):
        fb, _ = fb_with_pulse
        with pytest.raises(ValueError):
            single_pulse_search(fb, np.array([1.0]), snr_threshold=0.0)


class TestEndToEndChain:
    def test_filterbank_spes_feed_rapid(self, fb_with_pulse):
        """Phases 1-3 → stage 3: the detected SPE cluster runs through the
        Algorithm 1 search and yields a single pulse near the true DM."""
        fb, pulse = fb_with_pulse
        trials = np.arange(20.0, 110.0, 2.5)
        spes = single_pulse_search(fb, trials, snr_threshold=5.5)
        times = np.array([s.time_s for s in spes])
        dms = np.array([s.dm for s in spes])
        snrs = np.array([s.snr for s in spes])
        window = np.abs(times - pulse.time_s) < 0.3
        assert window.sum() >= 4
        pulses = run_rapid_on_cluster(
            times[window], dms[window], snrs[window],
            cluster_rank=1, dm_spacing_of=lambda _d: 2.5,
        )
        assert pulses
        assert min(
            abs(p.features.SNRPeakDM - pulse.dm) for p in pulses
        ) < 10.0
