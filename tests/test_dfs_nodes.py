"""Unit tests for DataNode and NameNode."""

import pytest

from repro.dfs.blocks import Block, BlockId
from repro.dfs.datanode import DataNode, DataNodeFullError
from repro.dfs.namenode import NameNode


def _block(path: str = "/f", idx: int = 0, size: int = 10) -> Block:
    return Block(BlockId(path, idx), b"z" * size)


class TestDataNode:
    def test_store_and_read(self):
        node = DataNode("n0")
        blk = _block()
        node.store(blk)
        assert node.read(blk.block_id).data == blk.data

    def test_capacity_enforced(self):
        node = DataNode("n0", capacity=15)
        node.store(_block(idx=0, size=10))
        with pytest.raises(DataNodeFullError):
            node.store(_block(idx=1, size=10))

    def test_store_is_idempotent(self):
        node = DataNode("n0", capacity=10)
        blk = _block(size=10)
        node.store(blk)
        node.store(blk)  # same replica again: no error, no double count
        assert node.used_bytes == 10

    def test_drop_frees_capacity(self):
        node = DataNode("n0", capacity=10)
        blk = _block(size=10)
        node.store(blk)
        node.drop(blk.block_id)
        assert node.used_bytes == 0
        node.store(_block(idx=1, size=10))

    def test_dead_node_refuses_io(self):
        node = DataNode("n0")
        blk = _block()
        node.store(blk)
        node.kill()
        assert not node.has(blk.block_id)
        with pytest.raises(RuntimeError):
            node.read(blk.block_id)
        with pytest.raises(RuntimeError):
            node.store(_block(idx=1))

    def test_revive_reexposes_blocks(self):
        node = DataNode("n0")
        blk = _block()
        node.store(blk)
        node.kill()
        node.revive()
        assert node.has(blk.block_id)

    def test_missing_block_raises_keyerror(self):
        node = DataNode("n0")
        with pytest.raises(KeyError):
            node.read(BlockId("/nope", 0))


class TestNameNode:
    def test_create_and_get(self):
        nn = NameNode()
        bids = [BlockId("/f", i) for i in range(3)]
        nn.create_file("/f", 300, bids)
        entry = nn.get_file("/f")
        assert entry.size == 300
        assert entry.block_ids == bids

    def test_duplicate_create_rejected(self):
        nn = NameNode()
        nn.create_file("/f", 1, [BlockId("/f", 0)])
        with pytest.raises(FileExistsError):
            nn.create_file("/f", 1, [BlockId("/f", 0)])

    def test_delete_removes_locations(self):
        nn = NameNode()
        bid = BlockId("/f", 0)
        nn.create_file("/f", 1, [bid])
        nn.add_replica(bid, "n0")
        nn.delete_file("/f")
        assert not nn.exists("/f")
        assert nn.replicas_of(bid) == set()

    def test_missing_file_raises(self):
        nn = NameNode()
        with pytest.raises(FileNotFoundError):
            nn.get_file("/missing")

    def test_replica_tracking(self):
        nn = NameNode()
        bid = BlockId("/f", 0)
        nn.create_file("/f", 1, [bid])
        nn.add_replica(bid, "n0")
        nn.add_replica(bid, "n1")
        assert nn.replicas_of(bid) == {"n0", "n1"}
        nn.remove_replica(bid, "n0")
        assert nn.replicas_of(bid) == {"n1"}

    def test_forget_node_reports_affected_blocks(self):
        nn = NameNode()
        bids = [BlockId("/f", i) for i in range(2)]
        nn.create_file("/f", 2, bids)
        for bid in bids:
            nn.add_replica(bid, "n0")
        affected = nn.forget_node("n0")
        assert sorted(affected) == sorted(bids)
        assert all(nn.replicas_of(b) == set() for b in bids)

    def test_under_replicated(self):
        nn = NameNode()
        bid = BlockId("/f", 0)
        nn.create_file("/f", 1, [bid])
        nn.add_replica(bid, "n0")
        assert nn.under_replicated(target=2) == [bid]
        nn.add_replica(bid, "n1")
        assert nn.under_replicated(target=2) == []

    def test_list_files_prefix(self):
        nn = NameNode()
        for path in ("/a/x", "/a/y", "/b/z"):
            nn.create_file(path, 0, [BlockId(path, 0)])
        assert nn.list_files("/a/") == ["/a/x", "/a/y"]
        assert nn.list_files() == ["/a/x", "/a/y", "/b/z"]

    def test_blocks_on_node(self):
        nn = NameNode()
        b0, b1 = BlockId("/f", 0), BlockId("/g", 0)
        nn.create_file("/f", 1, [b0])
        nn.create_file("/g", 1, [b1])
        nn.add_replica(b0, "n0")
        nn.add_replica(b1, "n0")
        assert sorted(nn.blocks_on("n0")) == sorted([b0, b1])
