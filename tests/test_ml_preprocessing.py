"""Unit tests for SMOTE, MDL discretization and feature selection."""

import numpy as np
import pytest

from repro.ml.discretize import discretize_column, mdl_cut_points, mdl_discretize
from repro.ml.feature_selection import (
    FS_METHODS,
    rank_correlation,
    rank_features,
    rank_gain_ratio,
    rank_info_gain,
    rank_oner,
    rank_symmetrical_uncertainty,
    select_top_k,
)
from repro.ml.smote import balance_with_smote, smote


@pytest.fixture
def informative_data():
    """Feature 0 determines the class; features 1-3 are noise."""
    rng = np.random.default_rng(0)
    n = 400
    x0 = np.concatenate([rng.uniform(0, 1, n // 2), rng.uniform(2, 3, n // 2)])
    X = np.column_stack([x0, rng.normal(0, 1, n), rng.normal(0, 1, n), rng.normal(0, 1, n)])
    y = np.repeat([0, 1], n // 2)
    return X, y


class TestSmote:
    def test_generates_requested_count(self):
        X = np.random.default_rng(0).normal(size=(20, 4))
        synth = smote(X, 35, rng=np.random.default_rng(1))
        assert synth.shape == (35, 4)

    def test_zero_synthetic(self):
        assert smote(np.zeros((5, 2)), 0).shape == (0, 2)

    def test_synthetics_on_segments(self):
        """Every synthetic point lies between two real minority points —
        SMOTE's defining convexity property."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(15, 3))
        synth = smote(X, 50, k=5, rng=np.random.default_rng(3))
        for s in synth:
            # s = a + g(b - a) for some pair (a, b) and g in [0,1]: check the
            # best pair reconstructs it.
            found = False
            for i in range(15):
                for j in range(15):
                    if i == j:
                        continue
                    d = X[j] - X[i]
                    denom = float(d @ d)
                    if denom == 0:
                        continue
                    g = float((s - X[i]) @ d) / denom
                    if -1e-9 <= g <= 1 + 1e-9 and np.allclose(X[i] + g * d, s, atol=1e-8):
                        found = True
                        break
                if found:
                    break
            assert found

    def test_single_seed_jitters(self):
        X = np.array([[1.0, 2.0]])
        synth = smote(X, 5, rng=np.random.default_rng(4))
        assert synth.shape == (5, 2)
        assert np.allclose(synth, X[0], atol=1e-4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            smote(np.zeros((3, 2)), -1)


class TestBalanceWithSmote:
    def test_binary_balances_to_majority(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(110, 3))
        y = np.array([0] * 100 + [1] * 10)
        Xb, yb = balance_with_smote(X, y)
        counts = np.bincount(yb)
        assert counts[0] == counts[1] == 100

    def test_multiclass_equalizes_positive_subclasses(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(160, 3))
        y = np.array([0] * 100 + [1] * 40 + [2] * 15 + [3] * 5)
        Xb, yb = balance_with_smote(X, y, non_pulsar_class=0)
        counts = np.bincount(yb)
        assert counts[0] == 100  # the majority is untouched
        assert counts[1] == counts[2] == counts[3] == 40

    def test_multiclass_inflation_much_smaller_than_binary(self):
        """The RQ5 mechanism: balanced binary sets are far larger."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(1050, 3))
        y_bin = np.array([0] * 1000 + [1] * 50)
        y_multi = np.array([0] * 1000 + [1] * 20 + [2] * 20 + [3] * 10)
        Xb, _ = balance_with_smote(X, y_bin)
        Xm, _ = balance_with_smote(X, y_multi, non_pulsar_class=0)
        assert Xb.shape[0] == 2000
        assert Xm.shape[0] < 1200

    def test_target_ratio(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(110, 2))
        y = np.array([0] * 100 + [1] * 10)
        _Xb, yb = balance_with_smote(X, y, target_ratio=0.5)
        assert np.bincount(yb)[1] == 50

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            balance_with_smote(np.zeros((2, 1)), np.array([0, 1]), target_ratio=0.0)

    def test_originals_preserved(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(30, 2))
        y = np.array([0] * 25 + [1] * 5)
        Xb, yb = balance_with_smote(X, y)
        np.testing.assert_array_equal(Xb[:30], X)
        np.testing.assert_array_equal(yb[:30], y)


class TestMdlDiscretize:
    def test_finds_clean_boundary(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.uniform(0, 1, 200), rng.uniform(2, 3, 200)])
        y = np.repeat([0, 1], 200)
        cuts = mdl_cut_points(x, y, 2)
        assert len(cuts) >= 1
        assert any(1.0 <= c <= 2.0 for c in cuts)

    def test_no_cuts_for_uninformative_feature(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 300)
        y = rng.integers(0, 2, 300)
        assert mdl_cut_points(x, y, 2) == []

    def test_cuts_sorted(self):
        rng = np.random.default_rng(2)
        x = np.concatenate([rng.uniform(i * 2, i * 2 + 1, 100) for i in range(3)])
        y = np.repeat([0, 1, 2], 100)
        cuts = mdl_cut_points(x, y, 3)
        assert cuts == sorted(cuts)
        assert len(cuts) >= 2

    def test_discretize_column_bins(self):
        x = np.array([0.5, 1.5, 2.5, 3.5])
        assert list(discretize_column(x, [1.0, 3.0])) == [0, 1, 1, 2]

    def test_discretize_column_no_cuts(self):
        assert np.all(discretize_column(np.arange(5.0), []) == 0)

    def test_mdl_discretize_matrix(self, informative_data):
        X, y = informative_data
        binned, cuts = mdl_discretize(X, y)
        assert binned.shape == X.shape
        assert len(cuts[0]) >= 1  # informative column gets cut
        assert all(len(c) == 0 for c in cuts[1:])  # noise columns collapse

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mdl_cut_points(np.zeros(3), np.zeros(4, dtype=int), 1)


class TestFeatureSelection:
    @pytest.mark.parametrize("method", sorted(FS_METHODS))
    def test_informative_feature_ranked_first(self, method, informative_data):
        X, y = informative_data
        merits = rank_features(method, X, y)
        assert merits.shape == (4,)
        assert int(np.argmax(merits)) == 0

    def test_info_gain_nonnegative(self, informative_data):
        X, y = informative_data
        assert np.all(rank_info_gain(X, y) >= 0)

    def test_su_bounded_unit_interval(self, informative_data):
        X, y = informative_data
        su = rank_symmetrical_uncertainty(X, y)
        assert np.all((su >= 0) & (su <= 1 + 1e-9))

    def test_gain_ratio_zero_for_unbinned(self, informative_data):
        X, y = informative_data
        gr = rank_gain_ratio(X, y)
        assert gr[1] == 0.0  # noise columns have no cuts → zero merit

    def test_correlation_bounded(self, informative_data):
        X, y = informative_data
        cor = rank_correlation(X, y)
        assert np.all((cor >= 0) & (cor <= 1 + 1e-9))

    def test_oner_at_least_majority_rate(self, informative_data):
        X, y = informative_data
        merits = rank_oner(X, y)
        majority = max(np.bincount(y)) / y.size
        assert np.all(merits >= majority - 1e-9)

    def test_unknown_method_rejected(self, informative_data):
        X, y = informative_data
        with pytest.raises(ValueError, match="unknown"):
            rank_features("PCA", X, y)

    def test_select_top_k(self):
        merits = np.array([0.1, 0.9, 0.5, 0.7])
        assert select_top_k(merits, 2) == [1, 3]
        assert select_top_k(merits, 10) == [1, 3, 2, 0]
        with pytest.raises(ValueError):
            select_top_k(merits, 0)

    def test_table4_method_names(self):
        assert set(FS_METHODS) == {"IG", "GR", "SU", "Cor", "1R"}
