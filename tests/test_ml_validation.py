"""Unit tests for stratified CV and the trial protocol."""

import numpy as np
import pytest

from repro.core.alm import ALM_SCHEMES
from repro.ml import J48, RandomForest
from repro.ml.validation import (
    cross_validate,
    most_misclassified,
    paper_protocol_split,
    stratified_kfold,
)


class TestStratifiedKFold:
    def test_partitions_all_instances(self):
        y = np.array([0] * 40 + [1] * 10)
        folds = stratified_kfold(y, 5, seed=0)
        all_test = np.concatenate([test for _tr, test in folds])
        assert sorted(all_test) == list(range(50))

    def test_train_test_disjoint(self):
        y = np.repeat([0, 1, 2], 20)
        for train, test in stratified_kfold(y, 4, seed=1):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 60

    def test_class_proportions_preserved(self):
        y = np.array([0] * 80 + [1] * 20)
        for _train, test in stratified_kfold(y, 5, seed=2):
            pos_frac = (y[test] == 1).mean()
            assert 0.1 <= pos_frac <= 0.3

    def test_rare_class_spread(self):
        y = np.array([0] * 97 + [1] * 3)
        folds = stratified_kfold(y, 3, seed=3)
        per_fold = [(y[test] == 1).sum() for _tr, test in folds]
        assert all(c == 1 for c in per_fold)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            stratified_kfold(np.array([0, 1]), 1)
        with pytest.raises(ValueError):
            stratified_kfold(np.array([0, 1]), 5)

    def test_paper_protocol_six_way(self):
        y = np.repeat([0, 1], 60)
        fs_fold, rest = paper_protocol_split(y, seed=0)
        assert len(fs_fold) + len(rest) == 120
        assert 15 <= len(fs_fold) <= 25  # ~1/6 of the data


class TestCrossValidate:
    def test_reasonable_scores_on_separable_data(self, toy_classification):
        X, y = toy_classification
        rep = cross_validate(lambda: J48(), X, (y > 0).astype(int), n_folds=3)
        assert rep.recall > 0.9
        assert rep.f_measure > 0.9
        assert len(rep.recalls) == 3

    def test_train_times_recorded(self, toy_classification):
        X, y = toy_classification
        rep = cross_validate(lambda: RandomForest(n_trees=3, seed=0), X, y, n_folds=3)
        assert len(rep.train_times_s) == 3
        assert all(t > 0 for t in rep.train_times_s)

    def test_positive_collapse_with_scheme(self, small_benchmark):
        scheme = ALM_SCHEMES["7"]
        y = small_benchmark.labels(scheme)
        rep = cross_validate(
            lambda: J48(), small_benchmark.features, y, n_folds=3,
            positive_collapse=scheme,
        )
        assert 0.0 <= rep.recall <= 1.0
        assert rep.confusion.shape == (7, 7)

    def test_feature_subset_applied(self, toy_classification):
        X, y = toy_classification
        rep = cross_validate(lambda: J48(), X, y, n_folds=3, feature_subset=[0, 1])
        assert rep.recall > 0.8  # informative features kept

    def test_smote_only_touches_training(self, small_benchmark):
        scheme = ALM_SCHEMES["2"]
        y = small_benchmark.labels(scheme)
        rep = cross_validate(
            lambda: J48(), small_benchmark.features, y, n_folds=3,
            positive_collapse=scheme, apply_smote=True,
        )
        # Every original instance appears exactly once in instance_correct —
        # synthetic instances never leak into scoring.
        assert len(rep.instance_correct) == small_benchmark.n_instances

    def test_instance_correctness_tracked(self, toy_classification):
        X, y = toy_classification
        rep = cross_validate(lambda: J48(), X, y, n_folds=3)
        assert len(rep.instance_correct) == len(y)
        assert all(isinstance(v, bool) for v in rep.instance_correct.values())


class TestMostMisclassified:
    def test_selects_instances_in_miss_band(self):
        reports = {}
        for name, wrong in (("a", {0, 1}), ("b", {0, 1}), ("c", {0}), ("d", set())):
            rep = cross_validate.__new__(type(None)) if False else None
            from repro.ml.metrics import ClassificationReport

            rep = ClassificationReport()
            rep.instance_correct = {i: (i not in wrong) for i in range(4)}
            reports[name] = rep
        positives = np.array([True, True, True, False])
        # Instance 0 missed by 3/4 (75%), instance 1 by 2/4 (50%).
        hard = most_misclassified(reports, positives, miss_range=(0.75, 0.99))
        assert hard == [0]

    def test_empty_reports(self):
        assert most_misclassified({}, np.array([True])) == []
