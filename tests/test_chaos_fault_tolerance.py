"""Chaos suite: seeded fault injection must not change any result, ever.

The invariant under test is the heart of Spark's lineage fault-tolerance
story, reproduced by the Sparklet scheduler: for ANY seeded mix of task
crashes, executor losses and shuffle-fetch failures, a job's results —
collected values, DFS output bytes, accumulator totals — are byte-identical
to the fault-free run, while the metrics show that retries and stage
recomputations really happened.

``REPRO_CHAOS_SEED`` narrows the seed sweep to one value (CI runs the suite
twice with two fixed seeds on top of the default sweep).
"""

import os

import pytest

from repro.astro.population import b1853_like
from repro.astro.survey import GBT350DRIFT, generate_observation
from repro.core.drapid import DRapidDriver
from repro.dfs import DataNode, DFSClient
from repro.io.spe_files import build_cluster_file, build_data_file
from repro.sparklet import (
    EXECUTOR_LOSS,
    FETCH_FAILURE,
    TASK_CRASH,
    FailureRule,
    FaultConfig,
    SparkletContext,
)

# -- sweep configuration ----------------------------------------------------
_ENV_SEED = os.environ.get("REPRO_CHAOS_SEED")
SEEDS = [int(_ENV_SEED)] if _ENV_SEED else [1, 2, 3]

RULE_MIXES = {
    "crashes": (FailureRule(TASK_CRASH, probability=0.3, max_fires=4),),
    "losses": (
        FailureRule(TASK_CRASH, probability=0.15, max_fires=3),
        FailureRule(EXECUTOR_LOSS, probability=0.12, max_fires=2),
    ),
    "fetch": (
        FailureRule(FETCH_FAILURE, probability=0.3, max_fires=3),
        FailureRule(TASK_CRASH, probability=0.1, max_fires=2),
    ),
    "all": (
        FailureRule(TASK_CRASH, probability=0.2, max_fires=3),
        FailureRule(EXECUTOR_LOSS, probability=0.1, max_fires=2),
        FailureRule(FETCH_FAILURE, probability=0.2, max_fires=3),
    ),
}

GRID = [
    pytest.param(seed, mix, id=f"seed{seed}-{mix}")
    for seed in SEEDS
    for mix in RULE_MIXES
]


def chaos_config(seed: int, mix: str) -> FaultConfig:
    return FaultConfig(seed=seed, rules=RULE_MIXES[mix])


# -- generic Sparklet jobs --------------------------------------------------
def _wordcount_job(fault_config):
    """A shuffle job with an accumulator counting malformed records."""
    ctx = SparkletContext(
        default_parallelism=4, max_task_retries=8, fault_config=fault_config
    )
    rows = [f"k{i % 7},{i}" if i % 11 else f"bad-row-{i}" for i in range(300)]
    dropped = ctx.accumulator(0)

    def parse(row):
        if "," not in row:
            dropped.add(1)
            return None
        k, v = row.split(",")
        return (k, int(v))

    result = (
        ctx.parallelize(rows, 8)
        .map(parse)
        .filter(lambda kv: kv is not None)
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    return result, dropped.value, ctx


def _join_job(fault_config):
    """Two shuffles + a cogroup: exercises multi-parent lineage recovery."""
    ctx = SparkletContext(
        default_parallelism=4, max_task_retries=8, fault_config=fault_config
    )
    left = ctx.parallelize([(i % 13, i) for i in range(150)], 6).reduce_by_key(
        lambda a, b: a + b
    )
    right = ctx.parallelize([(i % 13, i * i) for i in range(100)], 5).reduce_by_key(
        lambda a, b: a + b
    )
    result = left.join(right).collect()
    return result, ctx


class TestSparkletChaosInvariant:
    @pytest.mark.parametrize("seed,mix", GRID)
    def test_wordcount_identical_under_faults(self, seed, mix):
        base, base_dropped, _ = _wordcount_job(None)
        got, got_dropped, ctx = _wordcount_job(chaos_config(seed, mix))
        assert got == base
        assert got_dropped == base_dropped > 0  # accumulator exactly-once
        assert ctx.runtime.fault_injector.total_fired > 0

    @pytest.mark.parametrize("seed,mix", GRID)
    def test_join_identical_under_faults(self, seed, mix):
        base, _ = _join_job(None)
        got, ctx = _join_job(chaos_config(seed, mix))
        assert got == base
        assert ctx.runtime.fault_injector.total_fired > 0

    def test_sweep_exercises_recovery_machinery(self):
        """Across the sweep, every fault kind fires and recovery really ran."""
        fired = {TASK_CRASH: 0, EXECUTOR_LOSS: 0, FETCH_FAILURE: 0}
        retries = recomputed = 0
        for seed in SEEDS:
            for mix in RULE_MIXES:
                _, _, ctx = _wordcount_job(chaos_config(seed, mix))
                for kind, count in ctx.runtime.fault_injector.fired_by_kind().items():
                    fired[kind] += count
                metrics = ctx.all_job_metrics()
                retries += metrics.total_retries
                recomputed += metrics.n_recomputed_stages
        assert all(count > 0 for count in fired.values()), fired
        assert retries > 0
        assert recomputed > 0

    def test_accumulator_exactly_once_under_forced_executor_loss(self):
        """An executor loss re-runs committed map tasks; adds count once."""
        fc = FaultConfig(
            seed=5, rules=(FailureRule(EXECUTOR_LOSS, probability=0.25, max_fires=2),)
        )
        ctx = SparkletContext(default_parallelism=4, max_task_retries=8, fault_config=fc)
        acc = ctx.accumulator(0)

        def tag(x):
            acc.add(1)
            return (x % 3, 1)

        counts = ctx.parallelize(range(120), 8).map(tag).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        assert ctx.runtime.fault_injector.fired_by_kind()[EXECUTOR_LOSS] > 0
        assert ctx.all_job_metrics().n_recomputed_tasks > 0
        assert sorted(counts) == [(0, 40), (1, 40), (2, 40)]
        assert acc.value == 120


# -- D-RAPID end-to-end ------------------------------------------------------
@pytest.fixture(scope="module")
def drapid_inputs():
    """One observation's data/cluster files, plus injected malformed rows."""
    obs = generate_observation(
        GBT350DRIFT, [b1853_like()], mjd=55000.0, beam=0,
        n_noise_clusters=10, n_rfi_bursts=1, grid_coarsen=10.0, seed=3,
    )
    data_text = build_data_file([obs])
    # Garbled rows make the dropped-row accumulator assertion non-trivial.
    cluster_text = build_cluster_file([obs]) + "garbled row\nnot,enough\n"
    return obs, data_text, cluster_text


def _run_drapid(drapid_inputs, fault_config):
    obs, data_text, cluster_text = drapid_inputs
    dfs = DFSClient(
        [DataNode(f"dn{i}") for i in range(4)],
        replication=2, block_size=4096, seed=0,
    )
    dfs.put_text("/surveys/data.csv", data_text)
    dfs.put_text("/surveys/clusters.csv", cluster_text)
    ctx = SparkletContext(
        default_parallelism=4, max_task_retries=8, fault_config=fault_config
    )
    driver = DRapidDriver(
        ctx=ctx, dfs=dfs, grids={GBT350DRIFT.name: obs.grid}, num_partitions=8
    )
    result = driver.run("/surveys/data.csv", "/surveys/clusters.csv")
    ml_bytes = b"".join(dfs.get(p) for p in dfs.ls(result.ml_output_path))
    # Close eagerly: under REPRO_BACKEND=parallel an open context pins its
    # shared-memory payload segments, which a later shm-hygiene test would
    # see as leaks.  Metrics and the fault injector stay readable.
    ctx.close()
    return result, ml_bytes, ctx


@pytest.fixture(scope="module")
def drapid_baseline(drapid_inputs):
    return _run_drapid(drapid_inputs, None)


class TestDRapidChaosInvariant:
    @pytest.mark.parametrize("seed,mix", GRID)
    def test_faulted_run_is_byte_identical(self, drapid_inputs, drapid_baseline, seed, mix):
        base, base_ml, _ = drapid_baseline
        got, got_ml, ctx = _run_drapid(drapid_inputs, chaos_config(seed, mix))

        assert got_ml == base_ml  # byte-identical DFS output
        assert [p.to_ml_row() for p in got.pulses] == [
            p.to_ml_row() for p in base.pulses
        ]
        assert got.n_clusters == base.n_clusters
        assert got.n_null_joins == base.n_null_joins
        assert got.n_dropped_cluster_rows == base.n_dropped_cluster_rows > 0
        assert ctx.runtime.fault_injector.total_fired > 0

    def test_faulted_run_records_recovery_metrics(self, drapid_inputs):
        _, _, ctx = _run_drapid(drapid_inputs, chaos_config(SEEDS[0], "all"))
        metrics = ctx.all_job_metrics()
        assert metrics.total_failures > 0
        assert metrics.total_retries > 0

    def test_fault_config_knob_on_driver(self, drapid_inputs, drapid_baseline):
        """DRapidDriver(fault_config=...) arms the context's injector."""
        obs, data_text, cluster_text = drapid_inputs
        base, base_ml, _ = drapid_baseline
        dfs = DFSClient(
            [DataNode(f"dn{i}") for i in range(4)],
            replication=2, block_size=4096, seed=0,
        )
        dfs.put_text("/surveys/data.csv", data_text)
        dfs.put_text("/surveys/clusters.csv", cluster_text)
        ctx = SparkletContext(default_parallelism=4, max_task_retries=8)
        driver = DRapidDriver(
            ctx=ctx, dfs=dfs, grids={GBT350DRIFT.name: obs.grid},
            num_partitions=8, fault_config=chaos_config(1, "all"),
        )
        assert ctx.runtime.fault_injector is not None
        result = driver.run("/surveys/data.csv", "/surveys/clusters.csv")
        ctx.close()
        ml_bytes = b"".join(dfs.get(p) for p in dfs.ls(result.ml_output_path))
        assert ml_bytes == base_ml
