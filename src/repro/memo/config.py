"""Memo configuration and session resolution.

Three ways memoization turns on, strongest first:

1. An explicit :class:`MemoConfig` on ``PipelineConfig.memo_config`` (or
   passed straight to ``SparkletContext``) — always honored, including
   under fault injection (the chaos-memo tests rely on this).
2. ``REPRO_MEMO=1`` in the environment, with ``REPRO_MEMO_DIR`` picking
   the cache directory — the CI-friendly switch.  Env-resolved memo is
   *bypassed* when the run carries a ``fault_config``: chaos tests assert
   exact failure/retry counts, and a cache hit would skip the faults.
3. Nothing — ``resolve_memo`` returns None and every run recomputes.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.memo.candidates import CandidateDB
    from repro.memo.store import MemoStore

__all__ = ["MemoConfig", "MemoSession", "env_memo_config", "resolve_memo"]


@dataclass(frozen=True)
class MemoConfig:
    """Knobs for the memoization subsystem (see module docstring)."""

    enabled: bool = True
    #: Cache directory; None picks ``$TMPDIR/repro-memo``.
    dir: str | None = None
    #: Candidate database path; None puts ``candidates.sqlite`` in ``dir``.
    db_path: str | None = None
    max_memory_entries: int = 64
    #: Record classified pulses into the candidate database.
    store_candidates: bool = True
    #: Isolation namespace: a sub-store under ``dir``.  The serving tier
    #: gives each tenant its own namespace so one tenant's entries are
    #: invisible to (and cannot be evicted by) another's.
    namespace: str | None = None

    def for_namespace(self, namespace: str) -> "MemoConfig":
        """This config scoped to an isolation namespace (e.g. a tenant id)."""
        import dataclasses

        return dataclasses.replace(self, namespace=namespace, db_path=None)

    def resolved_dir(self) -> str:
        base = self.dir or os.path.join(tempfile.gettempdir(), "repro-memo")
        if self.namespace:
            return os.path.join(base, "ns-" + self.namespace)
        return base

    def resolved_db_path(self) -> str:
        return self.db_path or os.path.join(self.resolved_dir(), "candidates.sqlite")


class MemoSession:
    """One store (+ lazily-opened candidate DB) bound to a resolved config."""

    def __init__(self, config: MemoConfig) -> None:
        from repro.memo.store import MemoStore

        self.config = config
        self.store: MemoStore = MemoStore(
            config.resolved_dir(), max_memory_entries=config.max_memory_entries
        )
        self._db: CandidateDB | None = None

    @property
    def db(self) -> "CandidateDB":
        if self._db is None:
            from repro.memo.candidates import CandidateDB

            self._db = CandidateDB(self.config.resolved_db_path())
        return self._db

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None


def env_memo_config() -> MemoConfig | None:
    """A MemoConfig from ``REPRO_MEMO``/``REPRO_MEMO_DIR``, or None."""
    if os.environ.get("REPRO_MEMO", "") not in ("1", "true", "yes", "on"):
        return None
    return MemoConfig(dir=os.environ.get("REPRO_MEMO_DIR") or None)


def resolve_memo(
    memo_config: MemoConfig | None,
    *,
    fault_config: object | None = None,
) -> MemoSession | None:
    """Resolve a config (explicit beats env) into a live session, or None.

    Env-derived memo is suppressed under fault injection so chaos suites
    observing failure counts see real recomputation; an *explicit* config
    is the caller saying "I know" and is honored regardless.
    """
    if memo_config is not None:
        if not memo_config.enabled:
            return None
        return MemoSession(memo_config)
    env_cfg = env_memo_config()
    if env_cfg is None or fault_config is not None:
        return None
    return MemoSession(env_cfg)
