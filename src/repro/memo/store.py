"""MemoStore: durable content-addressed entries + an in-memory LRU tier.

Layout under one base directory::

    <dir>/objects/<kk>/<key>     checksummed pickled memo entries
    <dir>/blobs/<ss>/<sha>       raw content-addressed byte blobs (inputs)
    <dir>/candidates.sqlite      the candidate database (see candidates.py)

Every object file carries a header with the payload's SHA-256; a mismatch
(truncated write, flipped bit, concurrent corruption) evicts the file and
reads as a miss — a corrupted entry is *never* served, it is recomputed.
The memory tier holds the pickled payload bytes, not live objects, so a
hit always unpickles fresh structures: callers can mutate results without
poisoning the cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MemoStats", "MemoStore"]

_MAGIC = b"RMEMO1\n"


@dataclass
class MemoStats:
    """Counters a store keeps about itself (asserted all over the tests)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    corrupt_evicted: int = 0
    uncacheable: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class MemoStore:
    """Two-tier (memory LRU over local-disk) content-addressed entry store."""

    path: str
    max_memory_entries: int = 64
    stats: MemoStats = field(default_factory=MemoStats)

    def __post_init__(self) -> None:
        self.path = os.path.abspath(self.path)
        os.makedirs(os.path.join(self.path, "objects"), exist_ok=True)
        os.makedirs(os.path.join(self.path, "blobs"), exist_ok=True)
        #: key -> payload bytes (already checksum-verified at admission).
        self._memory: OrderedDict[str, bytes] = OrderedDict()

    # -- entry API ----------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, "objects", key[:2], key)

    def get(self, key: str) -> Any | None:
        """The stored value for ``key``, or None on miss (values are always
        dict entries here, so None is an unambiguous miss sentinel)."""
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return pickle.loads(payload)
        fpath = self._entry_path(key)
        try:
            with open(fpath, "rb") as fh:
                magic = fh.read(len(_MAGIC))
                sha = fh.read(64)
                nl = fh.read(1)
                payload = fh.read()
        except OSError:
            self.stats.misses += 1
            return None
        if (magic != _MAGIC or nl != b"\n"
                or hashlib.sha256(payload).hexdigest().encode() != sha):
            self._evict_corrupt(fpath)
            self.stats.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._evict_corrupt(fpath)
            self.stats.misses += 1
            return None
        self._admit_memory(key, payload)
        self.stats.hits += 1
        self.stats.disk_hits += 1
        return value

    def put(self, key: str, value: Any) -> bool:
        """Persist ``value`` under ``key``; False if it cannot be pickled."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.stats.uncacheable += 1
            return False
        fpath = self._entry_path(key)
        os.makedirs(os.path.dirname(fpath), exist_ok=True)
        sha = hashlib.sha256(payload).hexdigest().encode()
        self._atomic_write(fpath, _MAGIC + sha + b"\n" + payload)
        self._admit_memory(key, payload)
        self.stats.stores += 1
        return True

    def _admit_memory(self, key: str, payload: bytes) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _evict_corrupt(self, fpath: str) -> None:
        try:
            os.unlink(fpath)
        except OSError:
            pass
        self.stats.corrupt_evicted += 1

    @staticmethod
    def _atomic_write(fpath: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(fpath), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, fpath)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- blob API (raw inputs for candidate reproduction) -------------------
    def _blob_path(self, sha: str) -> str:
        return os.path.join(self.path, "blobs", sha[:2], sha)

    def put_blob(self, data: bytes) -> str:
        """Store raw bytes content-addressed; returns their sha256 hex."""
        sha = hashlib.sha256(data).hexdigest()
        fpath = self._blob_path(sha)
        if not os.path.exists(fpath):
            os.makedirs(os.path.dirname(fpath), exist_ok=True)
            self._atomic_write(fpath, data)
        return sha

    def get_blob(self, sha: str) -> bytes:
        """Raw bytes for one content hash; verifies before returning."""
        fpath = self._blob_path(sha)
        with open(fpath, "rb") as fh:
            data = fh.read()
        if hashlib.sha256(data).hexdigest() != sha:
            self._evict_corrupt(fpath)
            raise ValueError(f"blob {sha} failed its checksum and was evicted")
        return data

    def has_blob(self, sha: str) -> bool:
        return os.path.exists(self._blob_path(sha))
