"""Persistent candidate database + end-to-end candidate reproduction.

Every classified pulse a memo-enabled D-RAPID run produces is recorded
with full provenance: the lineage hash and config digest of the run, the
model version, the obs event-sequence range it was produced under, and —
crucially — content-addressed blobs of the *raw inputs* (SPE data file,
cluster file) plus the driver parameters.  That is enough to replay the
exact lineage slice that produced any one candidate:

    reproduce(c):  slice both input files to c's observation key
                   → fresh serial context, no memo
                   → DRapidDriver(grids, params, num_partitions) from blob
                   → assert c's ML row is in the replayed output

which is the "re-find saved candidates from state" workflow of
rfpipe's ``reproduce.py`` and the GSP/CRAFTS candidate archive, built on
stdlib sqlite3 so it costs no new dependency.
"""

from __future__ import annotations

import io
import pickle
import sqlite3
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.memo.hashing import MEMO_FORMAT, canonical_json, digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.drapid import DRapidResult
    from repro.dataplane.pulse_batch import PulseBatch
    from repro.memo.config import MemoSession

__all__ = [
    "CandidateDB",
    "ReproduceResult",
    "record_run",
    "reproduce_candidate",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    created_utc   TEXT    NOT NULL DEFAULT (datetime('now')),
    kind          TEXT    NOT NULL,           -- 'drapid' | 'streaming'
    survey        TEXT,
    seed          INTEGER,
    config_digest TEXT    NOT NULL,
    config_json   TEXT    NOT NULL,
    lineage_hash  TEXT    NOT NULL,
    model_version TEXT,
    data_sha      TEXT,                       -- blob: raw SPE data file
    cluster_sha   TEXT,                       -- blob: raw cluster file
    driver_sha    TEXT,                       -- blob: pickled driver params
    ml_output_path TEXT,
    n_pulses      INTEGER NOT NULL,
    obs_seq_lo    INTEGER,
    obs_seq_hi    INTEGER,
    reproducible  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS candidates (
    candidate_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id          INTEGER NOT NULL REFERENCES runs(run_id),
    observation_key TEXT    NOT NULL,
    cluster_id      INTEGER NOT NULL,
    dm              REAL    NOT NULL,
    snr             REAL    NOT NULL,
    time_s          REAL    NOT NULL,
    is_pulsar       INTEGER,
    ml_row          TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_candidates_dm   ON candidates(dm);
CREATE INDEX IF NOT EXISTS idx_candidates_snr  ON candidates(snr);
CREATE INDEX IF NOT EXISTS idx_candidates_time ON candidates(time_s);
CREATE INDEX IF NOT EXISTS idx_candidates_obs  ON candidates(observation_key);
"""


class CandidateDB:
    """SQLite-backed pulse-candidate archive (schema above)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # -- writes --------------------------------------------------------------
    def insert_run(self, **cols: Any) -> int:
        names = ", ".join(cols)
        marks = ", ".join("?" for _ in cols)
        cur = self._conn.execute(
            f"INSERT INTO runs ({names}) VALUES ({marks})", tuple(cols.values())
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def insert_candidates(self, run_id: int, rows: Iterable[tuple]) -> list[int]:
        """Insert ``(obs_key, cluster_id, dm, snr, time_s, is_pulsar, ml_row)``
        tuples for one run; returns the new candidate ids in order."""
        ids: list[int] = []
        for row in rows:
            cur = self._conn.execute(
                "INSERT INTO candidates (run_id, observation_key, cluster_id,"
                " dm, snr, time_s, is_pulsar, ml_row)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (run_id, *row),
            )
            ids.append(int(cur.lastrowid))
        self._conn.commit()
        return ids

    # -- queries -------------------------------------------------------------
    def get_run(self, run_id: int) -> sqlite3.Row | None:
        return self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()

    def get_candidate(self, candidate_id: int) -> sqlite3.Row | None:
        return self._conn.execute(
            "SELECT * FROM candidates WHERE candidate_id = ?", (candidate_id,)
        ).fetchone()

    def query(
        self,
        *,
        dm_min: float | None = None,
        dm_max: float | None = None,
        snr_min: float | None = None,
        snr_max: float | None = None,
        time_min: float | None = None,
        time_max: float | None = None,
        observation_key: str | None = None,
        run_id: int | None = None,
        limit: int = 100,
    ) -> list[sqlite3.Row]:
        """Candidates filtered by DM / SNR / time windows (indexed columns)."""
        clauses: list[str] = []
        args: list[Any] = []
        for clause, value in (
            ("dm >= ?", dm_min), ("dm <= ?", dm_max),
            ("snr >= ?", snr_min), ("snr <= ?", snr_max),
            ("time_s >= ?", time_min), ("time_s <= ?", time_max),
            ("observation_key = ?", observation_key), ("run_id = ?", run_id),
        ):
            if value is not None:
                clauses.append(clause)
                args.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        args.append(limit)
        return self._conn.execute(
            "SELECT * FROM candidates" + where
            + " ORDER BY snr DESC, candidate_id LIMIT ?",
            args,
        ).fetchall()

    def recent(
        self, limit: int = 500, *, labeled_only: bool = True
    ) -> list[sqlite3.Row]:
        """Most recently stored candidates, newest first.

        The retraining controller's harvest window: ``labeled_only`` keeps
        rows whose ``is_pulsar`` verdict is recorded (every campaign run
        labels its candidates), so the harvest is a supervised sample of
        the *current* regime.
        """
        where = " WHERE is_pulsar IS NOT NULL" if labeled_only else ""
        return self._conn.execute(
            "SELECT * FROM candidates" + where
            + " ORDER BY candidate_id DESC LIMIT ?",
            (limit,),
        ).fetchall()

    def runs(self, limit: int = 50) -> list[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM runs ORDER BY run_id DESC LIMIT ?", (limit,)
        ).fetchall()

    def counts(self) -> tuple[int, int]:
        n_runs = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        n_cands = self._conn.execute("SELECT COUNT(*) FROM candidates").fetchone()[0]
        return int(n_runs), int(n_cands)


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------
def _candidate_rows(batch: "PulseBatch") -> list[tuple]:
    """Per-pulse DB rows from a columnar batch (features by name)."""
    dm = batch.feature("SNRPeakDM")
    snr = batch.feature("MaxSNR")
    time_s = batch.feature("StartTime")
    lines = batch.to_ml_lines()
    rows: list[tuple] = []
    for i in range(len(batch)):
        rows.append((
            batch.observation_key[i],
            int(batch.cluster_id[i]),
            float(dm[i]),
            float(snr[i]),
            float(time_s[i]),
            int(batch.is_pulsar[i]),
            lines[i],
        ))
    return rows


def record_run(
    session: "MemoSession",
    *,
    kind: str,
    batch: "PulseBatch",
    config: Any = None,
    survey: str | None = None,
    seed: int | None = None,
    model_version: str | None = None,
    ml_output_path: str | None = None,
    obs_seq_range: tuple[int, int] | None = None,
    data_text: str | None = None,
    cluster_text: str | None = None,
    driver_params: dict[str, Any] | None = None,
    obs: Any = None,
) -> int:
    """Record one run + its candidates; returns the ``run_id``.

    ``data_text``/``cluster_text``/``driver_params`` make the run
    end-to-end reproducible (``reproducible=1``); a streaming run that
    cannot ship its raw inputs records provenance only.
    """
    store = session.store
    data_sha = store.put_blob(data_text.encode()) if data_text is not None else None
    cluster_sha = (
        store.put_blob(cluster_text.encode()) if cluster_text is not None else None
    )
    driver_sha = None
    if driver_params is not None:
        driver_sha = store.put_blob(
            pickle.dumps(driver_params, protocol=pickle.HIGHEST_PROTOCOL)
        )
    reproducible = int(
        data_sha is not None and cluster_sha is not None and driver_sha is not None
    )
    cfg_json = canonical_json(config)
    cfg_digest = digest([f"cfg{MEMO_FORMAT}", cfg_json])
    lineage_hash = digest([
        f"m{MEMO_FORMAT}", "run", kind, cfg_digest,
        data_sha or "-", cluster_sha or "-", driver_sha or "-",
    ])
    run_id = session.db.insert_run(
        kind=kind,
        survey=survey,
        seed=seed,
        config_digest=cfg_digest,
        config_json=cfg_json,
        lineage_hash=lineage_hash,
        model_version=model_version,
        data_sha=data_sha,
        cluster_sha=cluster_sha,
        driver_sha=driver_sha,
        ml_output_path=ml_output_path,
        n_pulses=len(batch),
        obs_seq_lo=obs_seq_range[0] if obs_seq_range else None,
        obs_seq_hi=obs_seq_range[1] if obs_seq_range else None,
        reproducible=reproducible,
    )
    ids = session.db.insert_candidates(run_id, _candidate_rows(batch))
    if obs is not None and getattr(obs, "enabled", False):
        from repro.obs.events import CANDIDATE_STORED

        for cid in ids:
            obs.emit(
                CANDIDATE_STORED, run_id=run_id, candidate_id=cid,
                lineage_hash=lineage_hash,
            )
    return run_id


def record_drapid_run(
    session: "MemoSession",
    *,
    result: "DRapidResult",
    config: Any,
    dfs: Any,
    data_path: str,
    cluster_path: str,
    grids: dict[str, Any],
    params: Any,
    num_partitions: int,
    survey: str | None = None,
    seed: int | None = None,
    model_version: str | None = None,
    obs: Any = None,
) -> int:
    """Record a D-RAPID run with full raw inputs for later reproduction."""
    obs_range = None
    if obs is not None and getattr(obs, "enabled", False):
        obs_range = (0, obs.log.n_events)
    return record_run(
        session,
        kind="drapid",
        batch=result.pulse_batch,
        config=config,
        survey=survey,
        seed=seed,
        model_version=model_version,
        ml_output_path=result.ml_output_path,
        obs_seq_range=obs_range,
        data_text=dfs.get(data_path).decode(),
        cluster_text=dfs.get(cluster_path).decode(),
        driver_params={
            "grids": grids,
            "params": params,
            "num_partitions": num_partitions,
        },
        obs=obs,
    )


# ---------------------------------------------------------------------------
# Reproduction
# ---------------------------------------------------------------------------
@dataclass
class ReproduceResult:
    """Outcome of replaying the lineage slice behind one candidate."""

    ok: bool
    candidate_id: int
    run_id: int
    observation_key: str
    stored_row: str
    replayed_rows: list[str] = field(default_factory=list)
    reason: str = ""


def _slice_text(text: str, key: str) -> str:
    """Keep headers plus the rows of one observation key (the lineage slice)."""
    prefix = key + ","
    kept = [
        line
        for line in text.splitlines()
        if line.startswith("#") or line.startswith(prefix)
    ]
    return "\n".join(kept) + ("\n" if kept else "")


def _load_driver_params(blob: bytes) -> dict[str, Any]:
    """Unpickle driver params through the model allowlist — blobs travel
    between machines like model files do, and get the same hardening."""
    from repro.ml.persistence import _ModelUnpickler

    params = _ModelUnpickler(io.BytesIO(blob)).load()
    if not isinstance(params, dict) or "params" not in params:
        raise ValueError("driver blob is not a recorded parameter dict")
    return params


def reproduce_candidate(
    session: "MemoSession", candidate_id: int
) -> ReproduceResult:
    """Replay only the lineage slice that produced one stored candidate.

    Slices the archived raw input files down to the candidate's observation
    key, re-runs the full D-RAPID dataflow on a fresh serial context with
    memoization off, and checks the stored ML row re-appears byte-identical.
    """
    cand = session.db.get_candidate(candidate_id)
    if cand is None:
        return ReproduceResult(
            ok=False, candidate_id=candidate_id, run_id=-1,
            observation_key="", stored_row="", reason="no such candidate",
        )
    run = session.db.get_run(cand["run_id"])
    base = ReproduceResult(
        ok=False,
        candidate_id=candidate_id,
        run_id=cand["run_id"],
        observation_key=cand["observation_key"],
        stored_row=cand["ml_row"],
    )
    if run is None or not run["reproducible"]:
        base.reason = "run was not recorded with raw inputs"
        return base

    store = session.store
    try:
        data_text = store.get_blob(run["data_sha"]).decode()
        cluster_text = store.get_blob(run["cluster_sha"]).decode()
        driver_params = _load_driver_params(store.get_blob(run["driver_sha"]))
    except (OSError, ValueError) as exc:
        base.reason = f"input blobs unavailable: {exc}"
        return base

    from repro.core.drapid import DRapidDriver
    from repro.dfs import DataNode, DFSClient
    from repro.sparklet.context import SparkletContext

    key = cand["observation_key"]
    dfs = DFSClient([DataNode("repro-dn0"), DataNode("repro-dn1")], replication=1)
    dfs.put_text("/repro/data.csv", _slice_text(data_text, key))
    dfs.put_text("/repro/cluster.csv", _slice_text(cluster_text, key))
    ctx = SparkletContext(app_name="reproduce", default_parallelism=2)
    try:
        driver = DRapidDriver(
            ctx=ctx,
            dfs=dfs,
            grids=driver_params["grids"],
            params=driver_params["params"],
            num_partitions=int(driver_params["num_partitions"]),
        )
        result = driver.run("/repro/data.csv", "/repro/cluster.csv", "/repro/ml")
    finally:
        ctx.close()

    base.replayed_rows = result.pulse_batch.to_ml_lines()
    if cand["ml_row"] in base.replayed_rows:
        base.ok = True
    else:
        base.reason = "stored ML row not among replayed rows"
    return base
