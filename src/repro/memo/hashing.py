"""Canonical structural hashing: the lineage-hash recipe.

Memoization is only sound if the key captures *everything* a stage's output
depends on and *nothing* that varies between identical runs.  The recipe:

- **Values** serialize through :func:`token_for`: dict items are sorted by
  key token (insertion order is an accident of construction), floats use
  ``repr`` (shortest exact round-trip, stable across processes), NumPy
  arrays hash dtype + shape + raw bytes, dataclasses hash their class name
  plus field dict.  Nothing here consults ``hash()`` — Python's string
  hashing is ``PYTHONHASHSEED``-randomized and must not leak into keys.
- **Code** hashes structurally: bytecode, names, recursively-tokenized
  constants, defaults and closure cell contents.  Two processes compiling
  the same source produce the same token; editing a lambda changes it.
- **Lineage** folds an RDD's operator chain bottom-up: leaf inputs hash
  their *content* (a ``textFile`` hashes the file bytes, so regenerated
  input with one flipped byte invalidates every downstream key), narrow
  transformations hash their function, shuffle boundaries hash the
  partitioner and aggregator.  Process-variable identifiers — rdd ids,
  shuffle ids, context uids, executor names — are deliberately excluded,
  which is what makes keys stable across runs and processes.

``MEMO_FORMAT`` is folded into every key; bump it when the recipe or the
stored entry layout changes and every old cache entry silently misses.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import types
from typing import Any, Callable, Iterable

__all__ = [
    "MEMO_FORMAT",
    "callable_token",
    "canonical_json",
    "config_digest",
    "digest",
    "file_token",
    "job_key",
    "lineage_token",
    "stage_key",
    "token_for",
]

#: Cache format version; part of every key.
#: 2: JobMetrics gained a ``pool`` field (pickled inside stored job entries).
MEMO_FORMAT = 2


def digest(parts: Iterable[str]) -> str:
    """Fold string tokens into one hex digest."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Value tokens
# ---------------------------------------------------------------------------
def token_for(obj: Any) -> str:
    """Canonical token of a value, insensitive to dict order and process."""
    if obj is None:
        return "N"
    if obj is True:
        return "T"
    if obj is False:
        return "F"
    t = type(obj)
    if t is int:
        return f"i{obj}"
    if t is float:
        # repr is the shortest decimal that round-trips exactly; two floats
        # get equal tokens iff they are the same double.
        return f"f{obj!r}"
    if t is str:
        return f"s{obj}"
    if t is bytes:
        return "b" + hashlib.sha256(obj).hexdigest()
    if t is complex:
        return f"c{obj.real!r}:{obj.imag!r}"
    if t in (list, tuple):
        return digest([f"L{len(obj)}", *[token_for(x) for x in obj]])
    if t is dict:
        items = sorted((token_for(k), token_for(v)) for k, v in obj.items())
        return digest(["D", *[kt + "=" + vt for kt, vt in items]])
    if t in (set, frozenset):
        return digest(["S", *sorted(token_for(x) for x in obj)])
    return _token_for_object(obj)


def _token_for_object(obj: Any) -> str:
    import numpy as np

    # A class may opt into an explicit, minimal identity (used to strip
    # process-variable fields like accumulator context uids).
    memo_token = getattr(obj, "memo_token", None)
    if callable(memo_token):
        return memo_token()
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        if arr.dtype == object:
            return digest(["npo", str(arr.shape),
                           *[token_for(x) for x in arr.ravel().tolist()]])
        return digest(["np", str(arr.dtype), str(arr.shape),
                       hashlib.sha256(arr.tobytes()).hexdigest()])
    if isinstance(obj, np.generic):
        return digest(["nps", str(obj.dtype), token_for(obj.item())])
    if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType,
                        types.MethodType, functools.partial)):
        return callable_token(obj)
    if isinstance(obj, type):
        return f"cls:{obj.__module__}.{obj.__qualname__}"
    if dataclasses.is_dataclass(obj):
        fields = {f.name: getattr(obj, f.name)
                  for f in dataclasses.fields(obj) if f.compare}
        return digest([f"dc:{type(obj).__module__}.{type(obj).__qualname__}",
                       token_for(fields)])
    # Last resort: qualified class name + pickled state.  Reached only by
    # types the recipe has no structural rule for; cloudpickle output is
    # stable for a fixed interpreter and construction path.
    import cloudpickle

    return digest([f"pk:{type(obj).__module__}.{type(obj).__qualname__}",
                   token_for(hashlib.sha256(cloudpickle.dumps(obj)).hexdigest())])


# ---------------------------------------------------------------------------
# Code tokens
# ---------------------------------------------------------------------------
def _code_token(code: types.CodeType) -> str:
    parts = [
        "code",
        code.co_code.hex(),
        str(code.co_argcount),
        ",".join(code.co_names),
        ",".join(code.co_freevars),
    ]
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            parts.append(_code_token(const))  # nested lambdas/comprehensions
        else:
            parts.append(token_for(const))
    return digest(parts)


def callable_token(fn: Callable[..., Any]) -> str:
    """Structural token of a callable: code + defaults + closure contents."""
    if isinstance(fn, functools.partial):
        return digest(["partial", callable_token(fn.func),
                       token_for(list(fn.args)), token_for(fn.keywords)])
    if isinstance(fn, types.MethodType):
        return digest(["method", callable_token(fn.__func__),
                       token_for(fn.__self__)])
    if isinstance(fn, types.FunctionType):
        parts = [f"fn:{fn.__qualname__}", _code_token(fn.__code__)]
        if fn.__defaults__:
            parts.append(token_for(list(fn.__defaults__)))
        if fn.__closure__:
            for cell in fn.__closure__:
                try:
                    parts.append(token_for(cell.cell_contents))
                except ValueError:  # empty cell (recursive def mid-creation)
                    parts.append("cell:empty")
        return digest(parts)
    if isinstance(fn, types.BuiltinFunctionType):
        return f"builtin:{getattr(fn, '__module__', '')}.{fn.__qualname__}"
    if callable(fn):
        call = type(fn).__call__
        return digest(["callable", _token_for_object(fn),
                       callable_token(call) if isinstance(
                           call, types.FunctionType) else repr(call)])
    raise TypeError(f"not callable: {fn!r}")


# ---------------------------------------------------------------------------
# Canonical JSON (config digests, DB provenance columns)
# ---------------------------------------------------------------------------
def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, repr floats, dataclasses as dicts.

    Used for the candidate database's ``config_json`` column and for
    config digests — two configs serialize identically iff they would
    produce the same run.
    """
    import json

    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def _jsonable(obj: Any) -> Any:
    import numpy as np

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # exact round-trip; json.dumps floats match repr
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": str(obj.dtype), "shape": list(obj.shape),
                "sha256": hashlib.sha256(
                    np.ascontiguousarray(obj).tobytes()).hexdigest()}
    if isinstance(obj, np.generic):
        return _jsonable(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__class__": type(obj).__qualname__}
        for f in dataclasses.fields(obj):
            if f.compare:
                out[f.name] = _jsonable(getattr(obj, f.name))
        return out
    if callable(obj):
        return {"__callable__": callable_token(obj)}
    return {"__token__": token_for(obj)}


def config_digest(config: Any) -> str:
    """Stable digest of a config object (any dataclass / dict / scalar)."""
    return digest([f"cfg{MEMO_FORMAT}", token_for(config)])


# ---------------------------------------------------------------------------
# Lineage tokens
# ---------------------------------------------------------------------------
def file_token(dfs: Any, path: str) -> str:
    """Content hash of one DFS file (the leaf of every textFile lineage)."""
    return digest(["dfsfile", path,
                   hashlib.sha256(dfs.get(path)).hexdigest()])


def lineage_token(rdd: Any, cache: dict[int, str] | None = None) -> str:
    """Structural hash of an RDD's full lineage (operators + leaf content).

    ``cache`` memoizes per ``rdd_id`` within one scheduler call so diamond
    lineages (the D-RAPID join reads two chains off one file) hash each
    node once; it must not outlive the call — rdd ids are process-local.
    """
    from repro.sparklet import rdd as rdd_mod

    if cache is None:
        cache = {}
    hit = cache.get(rdd.rdd_id)
    if hit is not None:
        return hit

    parts = [type(rdd).__name__, str(rdd.num_partitions)]
    if rdd.partitioner is not None:
        parts.append(token_for(rdd.partitioner))
    if isinstance(rdd, rdd_mod.TextFileRDD):
        parts.append(file_token(rdd.dfs, rdd.path))
    elif isinstance(rdd, rdd_mod.ParallelCollectionRDD):
        parts.append(token_for(rdd._slices))
    elif isinstance(rdd, rdd_mod.MapPartitionsRDD):
        parts.append(callable_token(rdd.f))
    elif isinstance(rdd, rdd_mod.CoalescedRDD):
        parts.append(token_for(rdd._groups))
    for dep in rdd.deps:
        parts.append(_dep_token(dep, cache))
    token = digest(parts)
    cache[rdd.rdd_id] = token
    return token


def _dep_token(dep: Any, cache: dict[int, str]) -> str:
    from repro.sparklet import rdd as rdd_mod

    parts = [type(dep).__name__, lineage_token(dep.rdd, cache)]
    if isinstance(dep, rdd_mod.ShuffleDependency):
        parts.append(token_for(dep.partitioner))
        parts.append("msc" if dep.map_side_combine else "raw")
        agg = dep.aggregator
        if agg is not None:
            parts.append(callable_token(agg.create_combiner))
            parts.append(callable_token(agg.merge_value))
            parts.append(callable_token(agg.merge_combiners))
    elif isinstance(dep, rdd_mod.RangeDependency):
        parts.append(f"{dep.in_start}:{dep.out_start}:{dep.length}")
    return digest(parts)


def stage_key(dep: Any, cache: dict[int, str] | None = None) -> str:
    """Memo key of one shuffle-map stage: its output is fully determined by
    the parent lineage plus the shuffle's partitioner/aggregator."""
    return digest([f"m{MEMO_FORMAT}", "stage",
                   _dep_token(dep, cache if cache is not None else {})])


def job_key(
    rdd: Any,
    func: Callable[..., Any],
    partitions: list[int] | None,
    cache: dict[int, str] | None = None,
) -> str:
    """Memo key of one whole job (action): lineage + action body + splits."""
    return digest([
        f"m{MEMO_FORMAT}",
        "job",
        lineage_token(rdd, cache),
        callable_token(func),
        "all" if partitions is None else ",".join(map(str, partitions)),
    ])
