"""repro.memo: lineage-hash memoization + persistent candidate database.

See DESIGN.md "Memoization & candidate store" for the hash recipe, the
invalidation rules, and the SQLite schema.
"""

from repro.memo.candidates import (
    CandidateDB,
    ReproduceResult,
    record_drapid_run,
    record_run,
    reproduce_candidate,
)
from repro.memo.config import MemoConfig, MemoSession, env_memo_config, resolve_memo
from repro.memo.hashing import (
    MEMO_FORMAT,
    callable_token,
    canonical_json,
    config_digest,
    job_key,
    lineage_token,
    stage_key,
    token_for,
)
from repro.memo.store import MemoStats, MemoStore

__all__ = [
    "MEMO_FORMAT",
    "CandidateDB",
    "MemoConfig",
    "MemoSession",
    "MemoStats",
    "MemoStore",
    "ReproduceResult",
    "callable_token",
    "canonical_json",
    "config_digest",
    "env_memo_config",
    "job_key",
    "lineage_token",
    "record_drapid_run",
    "record_run",
    "reproduce_candidate",
    "resolve_memo",
    "stage_key",
    "token_for",
]
