"""A block-based distributed file system simulation (HDFS stand-in).

The paper stores SPE data files and cluster files on HDFS, where a single
file is split into chunks, replicated, and spread over data nodes.  D-RAPID's
central trick — partition-aware joins so that cluster metadata and the SPE
data it refers to are colocated — only makes sense against a file system with
a block/locality model, which this package provides.

Public API:

- :class:`~repro.dfs.namenode.NameNode` — metadata: file → blocks → replicas.
- :class:`~repro.dfs.datanode.DataNode` — block storage with capacity limits.
- :class:`~repro.dfs.client.DFSClient` — put/get/ls/delete, replication
  placement, datanode failure and re-replication.
- :class:`~repro.dfs.blocks.Block`, :class:`~repro.dfs.blocks.BlockId`.
"""

from repro.dfs.blocks import DEFAULT_BLOCK_SIZE, Block, BlockId
from repro.dfs.client import DFSClient, DFSError, FileNotFoundInDFS, HeartbeatReport
from repro.dfs.datanode import DataNode, DataNodeFullError
from repro.dfs.namenode import FileEntry, NameNode

__all__ = [
    "Block",
    "BlockId",
    "DEFAULT_BLOCK_SIZE",
    "DataNode",
    "DataNodeFullError",
    "DFSClient",
    "DFSError",
    "FileEntry",
    "FileNotFoundInDFS",
    "HeartbeatReport",
    "NameNode",
]
