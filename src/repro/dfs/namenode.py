"""Name node: file metadata and block→replica placement map."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfs.blocks import BlockId


@dataclass
class FileEntry:
    """Metadata for one file: ordered block ids and total size."""

    path: str
    size: int
    block_ids: list[BlockId] = field(default_factory=list)


class NameNode:
    """Tracks which files exist, their blocks, and where replicas live.

    The name node holds *no* payload — only the mapping used by clients (and
    by the Sparklet scheduler for locality-aware task placement).
    """

    def __init__(self) -> None:
        self._files: dict[str, FileEntry] = {}
        # block id -> set of datanode ids holding a replica
        self._locations: dict[BlockId, set[str]] = {}
        # datanode id -> timestamp of last heartbeat received
        self._heartbeats: dict[str, float] = {}

    # -- namespace ----------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def create_file(self, path: str, size: int, block_ids: list[BlockId]) -> FileEntry:
        if path in self._files:
            raise FileExistsError(f"DFS path already exists: {path}")
        entry = FileEntry(path=path, size=size, block_ids=list(block_ids))
        self._files[path] = entry
        for bid in block_ids:
            self._locations.setdefault(bid, set())
        return entry

    def delete_file(self, path: str) -> FileEntry:
        entry = self._files.pop(path, None)
        if entry is None:
            raise FileNotFoundError(f"no such DFS path: {path}")
        for bid in entry.block_ids:
            self._locations.pop(bid, None)
        return entry

    def get_file(self, path: str) -> FileEntry:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(f"no such DFS path: {path}") from None

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- replica tracking -----------------------------------------------------
    def add_replica(self, block_id: BlockId, node_id: str) -> None:
        self._locations.setdefault(block_id, set()).add(node_id)

    def remove_replica(self, block_id: BlockId, node_id: str) -> None:
        self._locations.get(block_id, set()).discard(node_id)

    def replicas_of(self, block_id: BlockId) -> set[str]:
        return set(self._locations.get(block_id, set()))

    def has_block(self, block_id: BlockId) -> bool:
        """Whether the block belongs to a live file (orphans are invalid)."""
        return block_id in self._locations

    def blocks_on(self, node_id: str) -> list[BlockId]:
        return [bid for bid, nodes in self._locations.items() if node_id in nodes]

    def forget_node(self, node_id: str) -> list[BlockId]:
        """Drop all replica records for a dead node; return affected blocks."""
        affected = []
        for bid, nodes in self._locations.items():
            if node_id in nodes:
                nodes.discard(node_id)
                affected.append(bid)
        return affected

    def under_replicated(self, target: int) -> list[BlockId]:
        """Blocks with fewer than ``target`` live replicas."""
        return [bid for bid, nodes in self._locations.items() if len(nodes) < target]

    # -- heartbeats ----------------------------------------------------------
    def record_heartbeat(self, node_id: str, now: float) -> None:
        """A datanode checked in at time ``now`` (monotonically increasing)."""
        self._heartbeats[node_id] = now

    def last_heartbeat(self, node_id: str) -> float | None:
        return self._heartbeats.get(node_id)

    def expired_nodes(self, now: float, timeout: float) -> list[str]:
        """Nodes whose last heartbeat is older than ``timeout`` seconds.

        Nodes that never heartbeated are not reported — they are unknown,
        not expired (HDFS only declares a datanode dead after it has
        registered and then gone silent).
        """
        return sorted(
            node_id
            for node_id, last in self._heartbeats.items()
            if now - last > timeout
        )

    def forget_heartbeat(self, node_id: str) -> None:
        """Stop tracking a node (declared dead or decommissioned)."""
        self._heartbeats.pop(node_id, None)

    # -- introspection -------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Namespace counts for observability reports (no payload data)."""
        return {
            "n_files": len(self._files),
            "n_blocks": len(self._locations),
            "n_replicas": sum(len(nodes) for nodes in self._locations.values()),
            "n_tracked_nodes": len(self._heartbeats),
        }
