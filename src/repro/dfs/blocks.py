"""Block primitives for the simulated distributed file system."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default block size in bytes.  Real HDFS defaults to 128 MiB; the simulated
#: surveys are far smaller, so a small default keeps files multi-block (the
#: property the locality experiments need) without wasting memory.
DEFAULT_BLOCK_SIZE = 64 * 1024


@dataclass(frozen=True, order=True)
class BlockId:
    """Globally unique identifier of one block of one file."""

    path: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.path}#{self.index}"


@dataclass
class Block:
    """One chunk of file payload.

    ``data`` is raw bytes; the DFS is content-agnostic.  ``size`` is kept
    explicitly so capacity accounting works even if a caller truncates
    ``data`` (tests exercise this).
    """

    block_id: BlockId
    data: bytes
    size: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.size < 0:
            self.size = len(self.data)

    def checksum(self) -> int:
        """Cheap rolling checksum used to detect corrupted replicas."""
        acc = 2166136261
        for b in self.data:
            acc = ((acc ^ b) * 16777619) & 0xFFFFFFFF
        return acc


def split_into_blocks(path: str, payload: bytes, block_size: int = DEFAULT_BLOCK_SIZE) -> list[Block]:
    """Chunk ``payload`` into consecutively indexed blocks.

    An empty payload still produces one (empty) block so that zero-byte files
    round-trip and have a location.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if not payload:
        return [Block(BlockId(path, 0), b"")]
    return [
        Block(BlockId(path, i), payload[off : off + block_size])
        for i, off in enumerate(range(0, len(payload), block_size))
    ]
