"""DFS client: the user-facing put/get API plus replication maintenance."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.dfs.blocks import DEFAULT_BLOCK_SIZE, Block, BlockId, split_into_blocks
from repro.dfs.datanode import DataNode, DataNodeFullError
from repro.dfs.namenode import NameNode
from repro.obs import events as obs_events
from repro.obs.session import ObsSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import ObsConfig


class DFSError(RuntimeError):
    """Generic DFS failure (placement impossible, block unreadable, ...)."""


class FileNotFoundInDFS(DFSError):
    """Requested path does not exist in the namespace."""


@dataclass(frozen=True)
class HeartbeatReport:
    """What one heartbeat sweep observed and repaired."""

    now: float
    #: Nodes declared dead this tick (heartbeat older than the timeout).
    declared_dead: tuple[str, ...]
    #: Replicas created by re-replication this tick.
    replicas_restored: int
    #: Nodes that (re)registered this tick and had their block reports
    #: processed (first contact, or a revival after being declared dead).
    registered: tuple[str, ...]


class DFSClient:
    """Front door to a simulated DFS cluster.

    Parameters
    ----------
    datanodes:
        The storage nodes.  At least ``replication`` many are needed to place
        every block at the requested replication factor.
    replication:
        Replica count per block (HDFS default is 3).
    block_size:
        Chunking granularity in bytes.
    seed:
        Seeds the placement RNG so tests are deterministic.
    obs:
        Optional :class:`~repro.obs.ObsConfig` or shared
        :class:`~repro.obs.ObsSession`; DFS activity (puts, deletes,
        heartbeats, node deaths, re-replication) lands in its event log.
    """

    def __init__(
        self,
        datanodes: Sequence[DataNode],
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed: int | None = 0,
        obs: "ObsConfig | ObsSession | None" = None,
    ) -> None:
        if not datanodes:
            raise ValueError("need at least one datanode")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.obs = ObsSession.from_config(obs)
        self.namenode = NameNode()
        self._nodes: dict[str, DataNode] = {}
        for node in datanodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate datanode id {node.node_id!r}")
            self._nodes[node.node_id] = node
        self.replication = replication
        self.block_size = block_size
        self._rng = random.Random(seed)

    # -- helpers --------------------------------------------------------------
    def _live_nodes(self) -> list[DataNode]:
        return [n for n in self._nodes.values() if n.alive]

    def _place_block(self, block: Block, exclude: set[str] | None = None) -> list[str]:
        """Choose replica targets: emptiest-first among live nodes that fit."""
        exclude = exclude or set()
        candidates = [
            n for n in self._live_nodes() if n.node_id not in exclude and n.can_fit(block.size)
        ]
        # Shuffle before the stable sort so capacity ties break randomly,
        # spreading blocks instead of piling onto the first node.
        self._rng.shuffle(candidates)
        candidates.sort(key=lambda n: n.used_bytes)
        return [n.node_id for n in candidates]

    # -- public API -------------------------------------------------------------
    def put(self, path: str, payload: bytes) -> None:
        """Write ``payload`` at ``path``, chunked and replicated."""
        if self.namenode.exists(path):
            raise FileExistsError(f"DFS path already exists: {path}")
        blocks = split_into_blocks(path, payload, self.block_size)
        effective = min(self.replication, len(self._live_nodes()))
        if effective == 0:
            raise DFSError("no live datanodes")
        # Store block by block; on any placement failure roll back every
        # replica written so far, so a failed put leaves no partial state.
        stored: list[tuple[Block, list[str]]] = []
        try:
            for block in blocks:
                targets = self._place_block(block)[:effective]
                if len(targets) < effective:
                    raise DFSError(
                        f"cannot place block {block.block_id} at replication {effective}: "
                        f"only {len(targets)} node(s) have space"
                    )
                for node_id in targets:
                    self._nodes[node_id].store(block)
                stored.append((block, targets))
        except (DFSError, DataNodeFullError):
            for block, targets in stored:
                for node_id in targets:
                    self._nodes[node_id].drop(block.block_id)
            raise DFSError(f"put of {path} failed; rolled back") from None
        self.namenode.create_file(path, len(payload), [b.block_id for b, _t in stored])
        for block, targets in stored:
            for node_id in targets:
                self.namenode.add_replica(block.block_id, node_id)
        if self.obs.enabled:
            self.obs.emit(obs_events.DFS_PUT, path=path, n_bytes=len(payload),
                          n_blocks=len(stored), replication=effective)
            self.obs.registry.counter("dfs.bytes_written").inc(len(payload))

    def put_text(self, path: str, text: str) -> None:
        self.put(path, text.encode("utf-8"))

    def get(self, path: str) -> bytes:
        """Read a whole file, trying each replica of each block in turn."""
        if not self.namenode.exists(path):
            raise FileNotFoundInDFS(path)
        entry = self.namenode.get_file(path)
        out = bytearray()
        for bid in entry.block_ids:
            out.extend(self._read_block(bid).data)
        return bytes(out)

    def get_text(self, path: str) -> str:
        return self.get(path).decode("utf-8")

    def _read_block(self, block_id: BlockId) -> Block:
        replicas = sorted(self.namenode.replicas_of(block_id))
        self._rng.shuffle(replicas)
        for node_id in replicas:
            node = self._nodes.get(node_id)
            if node is not None and node.has(block_id):
                return node.read(block_id)
        raise DFSError(f"all replicas of {block_id} unavailable")

    def read_block(self, block_id: BlockId) -> bytes:
        """Public single-block read (used by Sparklet input splits)."""
        return self._read_block(block_id).data

    def delete(self, path: str) -> None:
        entry = self.namenode.get_file(path)
        for bid in entry.block_ids:
            for node_id in self.namenode.replicas_of(bid):
                node = self._nodes.get(node_id)
                if node is not None:
                    node.drop(bid)
        self.namenode.delete_file(path)
        if self.obs.enabled:
            self.obs.emit(obs_events.DFS_DELETE, path=path,
                          n_blocks=len(entry.block_ids))

    def ls(self, prefix: str = "") -> list[str]:
        return self.namenode.list_files(prefix)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    # -- locality (consumed by the Sparklet scheduler) ----------------------
    def block_locations(self, path: str) -> list[tuple[BlockId, set[str]]]:
        entry = self.namenode.get_file(path)
        return [(bid, self.namenode.replicas_of(bid)) for bid in entry.block_ids]

    # -- failure handling --------------------------------------------------------
    def kill_datanode(self, node_id: str) -> None:
        """Simulate a datanode crash and trigger re-replication."""
        node = self._nodes[node_id]
        node.kill()
        self.namenode.forget_node(node_id)
        self.namenode.forget_heartbeat(node_id)
        if self.obs.enabled:
            self.obs.emit(obs_events.DFS_NODE_DEAD, node_id=node_id, cause="killed")
            self.obs.registry.counter("dfs.nodes_dead").inc()
        self.rereplicate()

    def heartbeat_tick(self, now: float, timeout: float = 30.0) -> HeartbeatReport:
        """One sweep of the namenode's heartbeat monitor at time ``now``.

        Live datanodes check in; a node whose last heartbeat is older than
        ``timeout`` is declared dead (its replica records dropped, its blocks
        re-replicated from surviving copies).  A node heartbeating with no
        tracked heartbeat — first contact, or a revival after expiry — has
        its block report processed: replicas of known blocks re-register,
        orphan blocks (deleted files) are invalidated on the node.

        Drive this with a monotonically increasing clock; the DFS has no
        clock of its own, so failure detection is deterministic.
        """
        registered: list[str] = []
        for node in self._live_nodes():
            if self.namenode.last_heartbeat(node.node_id) is None:
                for bid in node.block_ids():
                    if self.namenode.has_block(bid):
                        self.namenode.add_replica(bid, node.node_id)
                    else:
                        node.drop(bid)
                registered.append(node.node_id)
                if self.obs.enabled:
                    self.obs.emit(obs_events.DFS_BLOCK_REPORT, node_id=node.node_id,
                                  n_blocks=len(list(node.block_ids())))
            self.namenode.record_heartbeat(node.node_id, now)
        dead = self.namenode.expired_nodes(now, timeout)
        for node_id in dead:
            self.namenode.forget_node(node_id)
            self.namenode.forget_heartbeat(node_id)
            if self.obs.enabled:
                self.obs.emit(obs_events.DFS_NODE_DEAD, node_id=node_id,
                              cause="heartbeat_timeout")
                self.obs.registry.counter("dfs.nodes_dead").inc()
        fixed = self.rereplicate()
        if self.obs.enabled:
            self.obs.emit(obs_events.DFS_HEARTBEAT, now=now,
                          n_live=len(self._live_nodes()),
                          declared_dead=list(dead), replicas_restored=fixed)
        return HeartbeatReport(
            now=now,
            declared_dead=tuple(dead),
            replicas_restored=fixed,
            registered=tuple(registered),
        )

    def rereplicate(self) -> int:
        """Restore replication for under-replicated blocks; return count fixed."""
        fixed = 0
        effective = min(self.replication, len(self._live_nodes()))
        for bid in self.namenode.under_replicated(effective):
            holders = self.namenode.replicas_of(bid)
            if not holders:
                continue  # data lost; nothing to copy from
            try:
                block = self._read_block(bid)
            except DFSError:
                continue
            needed = effective - len(holders)
            for node_id in self._place_block(block, exclude=holders)[:needed]:
                try:
                    self._nodes[node_id].store(block)
                except DataNodeFullError:  # raced with other placements
                    continue
                self.namenode.add_replica(bid, node_id)
                fixed += 1
        if fixed and self.obs.enabled:
            self.obs.emit(obs_events.DFS_REREPLICATE, restored=fixed)
            self.obs.registry.counter("dfs.replicas_restored").inc(fixed)
        return fixed

    def total_stored_bytes(self) -> int:
        return sum(n.used_bytes for n in self._nodes.values())
