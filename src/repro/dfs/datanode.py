"""Data node: bounded block storage for the simulated DFS."""

from __future__ import annotations

from typing import Iterator

from repro.dfs.blocks import Block, BlockId


class DataNodeFullError(RuntimeError):
    """Raised when a block does not fit in the node's remaining capacity."""


class DataNode:
    """Stores block replicas, enforcing a byte-capacity limit.

    ``capacity`` of ``None`` means unbounded (handy for unit tests).  A node
    can be marked dead to simulate failure; a dead node refuses reads and
    writes but keeps its blocks so a "revived" node re-exposes them, matching
    how HDFS treats transient outages.
    """

    def __init__(self, node_id: str, capacity: int | None = None) -> None:
        self.node_id = node_id
        self.capacity = capacity
        self._blocks: dict[BlockId, Block] = {}
        self._used = 0
        self.alive = True
        #: Lifetime IO counters (surfaced in observability reports).
        self.n_reads = 0
        self.n_writes = 0

    # -- capacity ---------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> float:
        if self.capacity is None:
            return float("inf")
        return self.capacity - self._used

    def can_fit(self, size: int) -> bool:
        return self.alive and size <= self.free_bytes

    # -- block operations -------------------------------------------------
    def store(self, block: Block) -> None:
        if not self.alive:
            raise RuntimeError(f"datanode {self.node_id} is down")
        if block.block_id in self._blocks:
            return  # idempotent replica write
        if not self.can_fit(block.size):
            raise DataNodeFullError(
                f"datanode {self.node_id}: block {block.block_id} "
                f"({block.size} B) exceeds free capacity {self.free_bytes} B"
            )
        self._blocks[block.block_id] = block
        self._used += block.size
        self.n_writes += 1

    def read(self, block_id: BlockId) -> Block:
        if not self.alive:
            raise RuntimeError(f"datanode {self.node_id} is down")
        try:
            block = self._blocks[block_id]
        except KeyError:
            raise KeyError(f"datanode {self.node_id} has no block {block_id}") from None
        self.n_reads += 1
        return block

    def drop(self, block_id: BlockId) -> None:
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self._used -= block.size

    def has(self, block_id: BlockId) -> bool:
        return self.alive and block_id in self._blocks

    def block_ids(self) -> Iterator[BlockId]:
        return iter(list(self._blocks))

    # -- failure simulation -------------------------------------------------
    def kill(self) -> None:
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"DataNode({self.node_id!r}, blocks={len(self._blocks)}, used={self._used})"
