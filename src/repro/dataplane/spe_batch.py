"""Columnar batches of single pulse events (SPEs).

An :class:`SPEBatch` is the structure-of-arrays counterpart of a list of
:class:`repro.astro.spe.SPE` records: five parallel NumPy columns.  The
ownership rules are:

- the constructor and ``slice`` are **zero-copy** — columns are views over
  whatever the caller handed in;
- ``take``, ``concat`` and ``sort_by_dm`` allocate fresh columns and never
  mutate their inputs (a hard requirement for Sparklet lineage replay).

Serialization matches the record path byte for byte: data-file rows use the
same fixed ``%.3f``/``%.6f`` formats as :meth:`SPE.to_csv_row`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.dataplane._columns import (
    MalformedRowError,
    float_columns,
    int_columns,
    split_rows,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.astro.spe import SPE


class SPEBatch:
    """A batch of SPEs as five parallel columns."""

    __slots__ = ("dm", "snr", "time_s", "sample", "downfact")

    def __init__(
        self,
        dm: np.ndarray,
        snr: np.ndarray,
        time_s: np.ndarray,
        sample: np.ndarray | None = None,
        downfact: np.ndarray | None = None,
    ) -> None:
        self.dm = np.asarray(dm, dtype=np.float64)
        self.snr = np.asarray(snr, dtype=np.float64)
        self.time_s = np.asarray(time_s, dtype=np.float64)
        n = self.dm.size
        self.sample = (
            np.zeros(n, dtype=np.int64) if sample is None
            else np.asarray(sample, dtype=np.int64)
        )
        self.downfact = (
            np.ones(n, dtype=np.int64) if downfact is None
            else np.asarray(downfact, dtype=np.int64)
        )
        if not (self.snr.size == self.time_s.size == self.sample.size
                == self.downfact.size == n):
            raise ValueError("SPEBatch columns must have equal length")

    # -- basics ------------------------------------------------------------
    def __len__(self) -> int:
        return self.dm.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SPEBatch):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, c), getattr(other, c))
            for c in self.__slots__
        )

    def __repr__(self) -> str:
        return f"SPEBatch(n={len(self)})"

    @property
    def nbytes(self) -> int:
        """Payload size if shipped as raw column buffers."""
        return sum(getattr(self, c).nbytes for c in self.__slots__)

    @classmethod
    def empty(cls) -> "SPEBatch":
        z = np.empty(0, dtype=np.float64)
        return cls(z, z, z)

    # -- batch ops ---------------------------------------------------------
    def slice(self, start: int, stop: int) -> "SPEBatch":
        """Zero-copy contiguous row range (columns are views)."""
        return SPEBatch(
            self.dm[start:stop], self.snr[start:stop], self.time_s[start:stop],
            self.sample[start:stop], self.downfact[start:stop],
        )

    def take(self, indices: np.ndarray) -> "SPEBatch":
        idx = np.asarray(indices)
        return SPEBatch(
            self.dm[idx], self.snr[idx], self.time_s[idx],
            self.sample[idx], self.downfact[idx],
        )

    @classmethod
    def concat(cls, batches: Sequence["SPEBatch"]) -> "SPEBatch":
        batches = [b for b in batches if b is not None]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(*(
            np.concatenate([getattr(b, c) for b in batches])
            for c in cls.__slots__
        ))

    def sort_by_dm(self) -> "SPEBatch":
        """Rows sorted by (dm, time_s), stably — matches the record path's
        ``sorted(spes, key=lambda s: (s.dm, s.time_s))``."""
        return self.take(np.lexsort((self.time_s, self.dm)))

    def sort_by_time(self) -> "SPEBatch":
        return self.take(np.lexsort((self.dm, self.time_s)))

    # -- record adapters ---------------------------------------------------
    def record(self, i: int) -> "SPE":
        from repro.astro.spe import SPE

        return SPE(
            dm=float(self.dm[i]), snr=float(self.snr[i]),
            time_s=float(self.time_s[i]), sample=int(self.sample[i]),
            downfact=int(self.downfact[i]),
        )

    def to_records(self) -> list["SPE"]:
        from repro.astro.spe import SPE

        return [
            SPE(dm=d, snr=s, time_s=t, sample=a, downfact=f)
            for d, s, t, a, f in zip(
                self.dm.tolist(), self.snr.tolist(), self.time_s.tolist(),
                self.sample.tolist(), self.downfact.tolist(),
            )
        ]

    @classmethod
    def from_records(cls, spes: Iterable["SPE"]) -> "SPEBatch":
        spes = list(spes)
        if not spes:
            return cls.empty()
        return cls(
            np.array([s.dm for s in spes], dtype=np.float64),
            np.array([s.snr for s in spes], dtype=np.float64),
            np.array([s.time_s for s in spes], dtype=np.float64),
            np.array([s.sample for s in spes], dtype=np.int64),
            np.array([s.downfact for s in spes], dtype=np.int64),
        )

    # -- serialization -----------------------------------------------------
    def to_csv_rows(self) -> list[str]:
        """Value rows in the data-file format, identical to SPE.to_csv_row."""
        return [
            f"{d:.3f},{s:.3f},{t:.6f},{a},{f}"
            for d, s, t, a, f in zip(
                self.dm.tolist(), self.snr.tolist(), self.time_s.tolist(),
                self.sample.tolist(), self.downfact.tolist(),
            )
        ]

    def to_data_csv(self, key: str) -> str:
        """Key-prefixed data-file lines (no header), with trailing newline."""
        rows = self.to_csv_rows()
        if not rows:
            return ""
        return "\n".join(f"{key},{row}" for row in rows) + "\n"

    @classmethod
    def from_csv_rows(
        cls,
        rows: Sequence[str],
        *,
        source: str | None = None,
        linenos: Sequence[int] | None = None,
    ) -> "SPEBatch":
        """Strict parse of value rows ``dm,snr,time,sample,downfact``.

        Raises :class:`MalformedRowError` naming ``source`` and the 1-based
        line number of the first bad row.
        """
        if not rows:
            return cls.empty()
        parts = split_rows(rows, 5, source=source, linenos=linenos, what="SPE row")
        floats = float_columns(parts, slice(0, 3), source=source,
                               linenos=linenos, what="SPE row")
        ints = int_columns(parts, slice(3, 5), source=source,
                           linenos=linenos, what="SPE row")
        return cls(
            np.ascontiguousarray(floats[:, 0]),
            np.ascontiguousarray(floats[:, 1]),
            np.ascontiguousarray(floats[:, 2]),
            np.ascontiguousarray(ints[:, 0]),
            np.ascontiguousarray(ints[:, 1]),
        )

    @classmethod
    def from_data_rows(cls, rows: Sequence[str]) -> "SPEBatch":
        """Lenient parse of data-file value rows, as the D-RAPID search uses.

        Survey csvs accumulate truncated/garbled rows (interrupted
        transfers, header fragments); a bad row must cost one record, not
        the batch.  A row is kept iff its first three fields parse as
        floats — exactly the retained record path's rule.  The trailing
        integer fields are best-effort (the search never reads them).
        """
        if not rows:
            return cls.empty()
        parts = [row.split(",") for row in rows]
        try:
            arr = np.asarray(parts, dtype="U")
            if arr.ndim != 2 or arr.shape[1] < 3:
                raise ValueError("not a rectangular >=3-column table")
            floats = arr[:, :3].astype(np.float64)
        except ValueError:
            return cls._from_data_rows_slow(parts)
        sample = downfact = None
        if arr.shape[1] >= 5:
            try:
                sample = arr[:, 3].astype(np.int64)
                downfact = arr[:, 4].astype(np.int64)
            except (ValueError, OverflowError):
                pass  # garbled trailing fields: keep defaults
        return cls(
            np.ascontiguousarray(floats[:, 0]),
            np.ascontiguousarray(floats[:, 1]),
            np.ascontiguousarray(floats[:, 2]),
            sample, downfact,
        )

    @classmethod
    def _from_data_rows_slow(cls, parts: list[list[str]]) -> "SPEBatch":
        dms: list[float] = []
        snrs: list[float] = []
        times: list[float] = []
        samples: list[int] = []
        downfacts: list[int] = []
        for p in parts:
            if len(p) < 3:
                continue
            try:
                dm, snr, t = float(p[0]), float(p[1]), float(p[2])
            except ValueError:
                continue
            dms.append(dm)
            snrs.append(snr)
            times.append(t)
            try:
                samples.append(int(p[3]) if len(p) > 3 else 0)
            except ValueError:
                samples.append(0)
            try:
                downfacts.append(int(p[4]) if len(p) > 4 else 1)
            except ValueError:
                downfacts.append(1)
        return cls(
            np.array(dms, dtype=np.float64),
            np.array(snrs, dtype=np.float64),
            np.array(times, dtype=np.float64),
            np.array(samples, dtype=np.int64),
            np.array(downfacts, dtype=np.int64),
        )


__all__ = ["SPEBatch", "MalformedRowError"]
