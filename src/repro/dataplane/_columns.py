"""Shared helpers of the columnar data plane.

Float formatting and bulk string→number parsing used by every batch type,
plus :class:`MalformedRowError` which carries the *file name* and *1-based
line number* of a bad row so operators can find it in a multi-gigabyte csv.

Formatting convention: ML-file floats are written with :func:`fmt_float`
(Python ``repr`` — the shortest decimal string that parses back to exactly
the same IEEE double), so serialize→parse round-trips are bit-exact.  The
data/cluster files keep their fixed ``%.3f``/``%.6f`` formats for
compatibility with PRESTO-style tooling; those formats are intentionally
lossy and documented as such.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class MalformedRowError(ValueError):
    """A csv row failed to parse; names the source file and 1-based line."""

    def __init__(self, message: str, source: str | None = None,
                 lineno: int | None = None) -> None:
        self.source = source
        self.lineno = lineno
        if source is not None and lineno is not None:
            message = f"{source}:{lineno}: {message}"
        elif source is not None:
            message = f"{source}: {message}"
        elif lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


def fmt_float(v: float) -> str:
    """Shortest decimal string that round-trips to exactly ``v``."""
    return repr(float(v))


def _lineno(linenos: Sequence[int] | None, i: int) -> int:
    return linenos[i] if linenos is not None else i + 1


def split_rows(
    rows: Sequence[str],
    n_fields: int,
    *,
    source: str | None = None,
    linenos: Sequence[int] | None = None,
    what: str = "row",
) -> list[list[str]]:
    """Split csv rows and enforce an exact field count, with row diagnostics."""
    parts = [row.rstrip("\n").split(",") for row in rows]
    for i, p in enumerate(parts):
        if len(p) != n_fields:
            raise MalformedRowError(
                f"malformed {what} ({len(p)} fields, expected {n_fields}): {rows[i]!r}",
                source, _lineno(linenos, i),
            )
    return parts


def float_columns(
    parts: list[list[str]],
    col_slice: slice,
    *,
    source: str | None = None,
    linenos: Sequence[int] | None = None,
    what: str = "row",
) -> np.ndarray:
    """Parse a column slice of split rows into an (n, k) float64 matrix.

    The fast path hands the whole table to NumPy (one C-level parse, the
    same correctly-rounded strtod as Python's ``float``); on failure a slow
    per-value sweep pinpoints the offending row for the error message.
    """
    cols = [p[col_slice] for p in parts]
    try:
        return np.asarray(cols, dtype=np.float64)
    except ValueError:
        for i, row in enumerate(cols):
            for v in row:
                try:
                    float(v)
                except ValueError:
                    raise MalformedRowError(
                        f"malformed {what} (bad float {v!r})",
                        source, _lineno(linenos, i),
                    ) from None
        raise


def int_columns(
    parts: list[list[str]],
    col_slice: slice,
    *,
    source: str | None = None,
    linenos: Sequence[int] | None = None,
    what: str = "row",
) -> np.ndarray:
    """Parse a column slice of split rows into an (n, k) int64 matrix.

    Strict like ``int(...)``: ``"5.5"`` and ``"1e3"`` are rejected, not
    silently truncated.
    """
    cols = [p[col_slice] for p in parts]
    try:
        return np.asarray(cols, dtype="U").astype(np.int64)
    except (ValueError, OverflowError):
        for i, row in enumerate(cols):
            for v in row:
                try:
                    int(v)
                except ValueError:
                    raise MalformedRowError(
                        f"malformed {what} (bad int {v!r})",
                        source, _lineno(linenos, i),
                    ) from None
        raise


def data_lines(
    text: str, *, skip_comments: bool = True
) -> tuple[list[str], list[int]]:
    """Non-blank, non-comment lines of ``text`` with their 1-based numbers."""
    lines: list[str] = []
    linenos: list[int] = []
    for i, line in enumerate(text.splitlines(), start=1):
        if not line or (skip_comments and line.startswith("#")):
            continue
        lines.append(line)
        linenos.append(i)
    return lines, linenos
