"""Columnar batches of cluster-file rows.

:class:`ClusterBatch` holds the eleven cluster-file columns as parallel
arrays (strings as object columns).  Same ownership rules as
:class:`repro.dataplane.spe_batch.SPEBatch`: construction and ``slice`` are
zero-copy; ``take``/``concat`` allocate and never mutate inputs.
Serialization is byte-identical to :meth:`ClusterRecord.to_line`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.dataplane._columns import float_columns, int_columns, split_rows

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.spe_files import ClusterRecord

_COLUMNS = (
    "key", "cluster_id", "rank", "n_spes",
    "dm_lo", "dm_hi", "t_lo", "t_hi", "max_snr",
    "source", "is_rrat",
)


class ClusterBatch:
    """A batch of cluster-file rows as parallel columns."""

    __slots__ = _COLUMNS

    def __init__(
        self,
        key: np.ndarray,
        cluster_id: np.ndarray,
        rank: np.ndarray,
        n_spes: np.ndarray,
        dm_lo: np.ndarray,
        dm_hi: np.ndarray,
        t_lo: np.ndarray,
        t_hi: np.ndarray,
        max_snr: np.ndarray,
        source: np.ndarray | None = None,
        is_rrat: np.ndarray | None = None,
    ) -> None:
        self.key = np.asarray(key, dtype=object)
        self.cluster_id = np.asarray(cluster_id, dtype=np.int64)
        self.rank = np.asarray(rank, dtype=np.int64)
        self.n_spes = np.asarray(n_spes, dtype=np.int64)
        self.dm_lo = np.asarray(dm_lo, dtype=np.float64)
        self.dm_hi = np.asarray(dm_hi, dtype=np.float64)
        self.t_lo = np.asarray(t_lo, dtype=np.float64)
        self.t_hi = np.asarray(t_hi, dtype=np.float64)
        self.max_snr = np.asarray(max_snr, dtype=np.float64)
        n = self.key.size
        self.source = (
            np.full(n, None, dtype=object) if source is None
            else np.asarray(source, dtype=object)
        )
        self.is_rrat = (
            np.zeros(n, dtype=np.bool_) if is_rrat is None
            else np.asarray(is_rrat, dtype=np.bool_)
        )
        if not all(getattr(self, c).size == n for c in _COLUMNS):
            raise ValueError("ClusterBatch columns must have equal length")

    # -- basics ------------------------------------------------------------
    def __len__(self) -> int:
        return self.key.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterBatch):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, c), getattr(other, c))
            for c in _COLUMNS
        )

    def __repr__(self) -> str:
        return f"ClusterBatch(n={len(self)})"

    @property
    def nbytes(self) -> int:
        total = 0
        for c in _COLUMNS:
            col = getattr(self, c)
            if col.dtype == object:
                total += sum(len(v) + 49 if isinstance(v, str) else 16
                             for v in col)
            else:
                total += col.nbytes
        return total

    @classmethod
    def empty(cls) -> "ClusterBatch":
        zi = np.empty(0, dtype=np.int64)
        zf = np.empty(0, dtype=np.float64)
        zo = np.empty(0, dtype=object)
        return cls(zo, zi, zi, zi, zf, zf, zf, zf, zf, zo,
                   np.empty(0, dtype=np.bool_))

    # -- batch ops ---------------------------------------------------------
    def slice(self, start: int, stop: int) -> "ClusterBatch":
        return ClusterBatch(*(getattr(self, c)[start:stop] for c in _COLUMNS))

    def take(self, indices: np.ndarray) -> "ClusterBatch":
        idx = np.asarray(indices)
        return ClusterBatch(*(getattr(self, c)[idx] for c in _COLUMNS))

    @classmethod
    def concat(cls, batches: Sequence["ClusterBatch"]) -> "ClusterBatch":
        batches = [b for b in batches if b is not None]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(*(
            np.concatenate([getattr(b, c) for b in batches])
            for c in _COLUMNS
        ))

    def split_by_key(self) -> list[tuple[str, "ClusterBatch"]]:
        """Group rows by key, keys in first-seen order, row order preserved."""
        groups: dict[str, list[int]] = {}
        for i, k in enumerate(self.key.tolist()):
            groups.setdefault(k, []).append(i)
        return [
            (k, self.take(np.array(idx, dtype=np.intp)))
            for k, idx in groups.items()
        ]

    # -- record adapters ---------------------------------------------------
    def record(self, i: int) -> "ClusterRecord":
        from repro.io.spe_files import ClusterRecord

        return ClusterRecord(
            key=self.key[i],
            cluster_id=int(self.cluster_id[i]),
            rank=int(self.rank[i]),
            n_spes=int(self.n_spes[i]),
            dm_lo=float(self.dm_lo[i]),
            dm_hi=float(self.dm_hi[i]),
            t_lo=float(self.t_lo[i]),
            t_hi=float(self.t_hi[i]),
            max_snr=float(self.max_snr[i]),
            source=self.source[i],
            is_rrat=bool(self.is_rrat[i]),
        )

    def to_records(self) -> list["ClusterRecord"]:
        return [self.record(i) for i in range(len(self))]

    @classmethod
    def from_records(cls, records: Iterable["ClusterRecord"]) -> "ClusterBatch":
        records = list(records)
        if not records:
            return cls.empty()
        return cls(
            np.array([r.key for r in records], dtype=object),
            np.array([r.cluster_id for r in records], dtype=np.int64),
            np.array([r.rank for r in records], dtype=np.int64),
            np.array([r.n_spes for r in records], dtype=np.int64),
            np.array([r.dm_lo for r in records], dtype=np.float64),
            np.array([r.dm_hi for r in records], dtype=np.float64),
            np.array([r.t_lo for r in records], dtype=np.float64),
            np.array([r.t_hi for r in records], dtype=np.float64),
            np.array([r.max_snr for r in records], dtype=np.float64),
            np.array([r.source for r in records], dtype=object),
            np.array([r.is_rrat for r in records], dtype=np.bool_),
        )

    # -- serialization -----------------------------------------------------
    def to_lines(self) -> list[str]:
        """Cluster-file rows, byte-identical to ClusterRecord.to_line."""
        return [
            f"{k},{cid},{rk},{ns},{dlo:.3f},{dhi:.3f},{tlo:.6f},{thi:.6f},"
            f"{ms:.3f},{src or ''},{int(rr)}"
            for k, cid, rk, ns, dlo, dhi, tlo, thi, ms, src, rr in zip(
                self.key.tolist(), self.cluster_id.tolist(),
                self.rank.tolist(), self.n_spes.tolist(),
                self.dm_lo.tolist(), self.dm_hi.tolist(),
                self.t_lo.tolist(), self.t_hi.tolist(),
                self.max_snr.tolist(), self.source.tolist(),
                self.is_rrat.tolist(),
            )
        ]

    @classmethod
    def from_lines(
        cls,
        lines: Sequence[str],
        *,
        source: str | None = None,
        linenos: Sequence[int] | None = None,
    ) -> "ClusterBatch":
        """Strict parse of cluster-file rows with file:line diagnostics."""
        if not lines:
            return cls.empty()
        parts = split_rows(lines, 11, source=source, linenos=linenos,
                           what="cluster row")
        ints = int_columns(parts, slice(1, 4), source=source,
                           linenos=linenos, what="cluster row")
        floats = float_columns(parts, slice(4, 9), source=source,
                               linenos=linenos, what="cluster row")
        rrat = int_columns(parts, slice(10, 11), source=source,
                           linenos=linenos, what="cluster row")
        return cls(
            np.array([p[0] for p in parts], dtype=object),
            np.ascontiguousarray(ints[:, 0]),
            np.ascontiguousarray(ints[:, 1]),
            np.ascontiguousarray(ints[:, 2]),
            np.ascontiguousarray(floats[:, 0]),
            np.ascontiguousarray(floats[:, 1]),
            np.ascontiguousarray(floats[:, 2]),
            np.ascontiguousarray(floats[:, 3]),
            np.ascontiguousarray(floats[:, 4]),
            np.array([p[9] or None for p in parts], dtype=object),
            rrat[:, 0] != 0,
        )


__all__ = ["ClusterBatch"]
