"""The columnar data plane: batch-first SPE/cluster/pulse representation.

Every layer of the pipeline exchanges these batch types instead of lists of
per-record dataclasses; the record classes (``SPE``, ``ClusterRecord``,
``SinglePulse``) remain as thin adapters materialized on demand via
``batch.record(i)`` / ``batch.to_records()``.  See DESIGN.md § Data plane
for the ownership and zero-copy rules.
"""

from repro.dataplane._columns import MalformedRowError, fmt_float
from repro.dataplane.cluster_batch import ClusterBatch
from repro.dataplane.pulse_batch import N_FEATURES, PulseBatch
from repro.dataplane.spe_batch import SPEBatch

__all__ = [
    "SPEBatch",
    "ClusterBatch",
    "PulseBatch",
    "MalformedRowError",
    "fmt_float",
    "N_FEATURES",
]
