"""PID backpressure: keep processing time under the batch interval.

This is the shape of Spark's ``PIDRateEstimator`` (the default
``spark.streaming.backpressure`` implementation): after every completed
batch, compare the rate the pipeline *achieved* (elements / processing
delay) with the rate the receivers were *allowed*, and correct the limit
with proportional, integral and derivative terms.  The integral term is
the clever one — the backlog already sitting in the scheduler shows up as
scheduling delay, and ``scheduling_delay × processing_rate / batch_interval``
is exactly the rate headroom needed to drain it over one interval.

The estimator is pure arithmetic over its three floats of state, so it
checkpoints as JSON and replays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PIDConfig:
    """Gains and floor for the rate estimator (Spark's defaults)."""

    proportional: float = 1.0   # spark.streaming.backpressure.pid.proportional
    integral: float = 0.2       # ...pid.integral
    derivative: float = 0.0     # ...pid.derived
    min_rate: float = 10.0      # ...pid.minRate (rows per second)


class PIDRateEstimator:
    """Computes a new receiver rate limit from each batch's delays."""

    def __init__(
        self,
        config: PIDConfig,
        batch_interval_s: float,
        initial_rate: float,
    ) -> None:
        if batch_interval_s <= 0:
            raise ValueError("batch interval must be positive")
        self.config = config
        self.batch_interval_s = batch_interval_s
        self.latest_time_s = 0.0
        self.latest_rate = float(initial_rate)
        self.latest_error = 0.0

    @property
    def rate(self) -> float:
        """The current receiver rate limit (rows per second)."""
        return self.latest_rate

    def compute(
        self,
        time_s: float,
        n_elements: int,
        processing_delay_s: float,
        scheduling_delay_s: float,
    ) -> float | None:
        """Fold one completed batch in; returns the new rate, or None if the
        update is not computable (empty batch, zero delay, stale time)."""
        if (time_s <= self.latest_time_s or n_elements <= 0
                or processing_delay_s <= 0):
            return None
        cfg = self.config
        delay_since_update = time_s - self.latest_time_s
        processing_rate = n_elements / processing_delay_s
        error = self.latest_rate - processing_rate
        # Backlog expressed as a rate: what it takes to drain the queued
        # work within one batch interval.
        historical_error = (
            scheduling_delay_s * processing_rate / self.batch_interval_s
        )
        d_error = (error - self.latest_error) / delay_since_update
        new_rate = max(
            self.latest_rate
            - cfg.proportional * error
            - cfg.integral * historical_error
            - cfg.derivative * d_error,
            cfg.min_rate,
        )
        self.latest_time_s = time_s
        self.latest_rate = new_rate
        self.latest_error = error
        return new_rate

    # -- checkpoint ---------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "latest_time_s": self.latest_time_s,
            "latest_rate": self.latest_rate,
            "latest_error": self.latest_error,
        }

    def restore(self, snap: dict) -> None:
        self.latest_time_s = float(snap["latest_time_s"])
        self.latest_rate = float(snap["latest_rate"])
        self.latest_error = float(snap["latest_error"])


__all__ = ["PIDConfig", "PIDRateEstimator"]
