"""Multi-tenant serving: N streaming sessions multiplexed on one driver.

The GSP/CRAFTS systems (PAPERS.md) run the paper's pipeline *commensally*
— several surveys share one cluster, each with its own always-on stream.
This module reproduces that shape on the simulated clock:

- each tenant owns a full :class:`~repro.streaming.engine.MicroBatchEngine`
  (its own receiver, pending-cluster state, PID estimator, checkpoints and
  DFS namespace), so per-tenant semantics are *exactly* the solo engine's;
- all engines share one :class:`~repro.sparklet.context.SparkletContext`
  and one simulated driver clock, and the
  :class:`~repro.sparklet.pools.SchedulerPools` fair ordering decides whose
  due batch the driver picks up next — co-tenant contention shows up as
  scheduling delay, exactly like Spark's fair scheduler under one driver;
- admission control bounds aggregate demand *before* the queues collapse:
  ``reject`` turns away tenants that would oversubscribe the driver,
  ``degrade`` clamps every tenant's receiver rate to its weighted fair
  share of capacity (output-safe: block cutting never changes canonical
  output, see ``canonical_ml_text``).

The per-tenant byte-identity law — each tenant's canonical ML output under
concurrent serving equals its solo ``run_streaming`` output — follows from
two invariants the event loop maintains:

1. **Lazy cutting**: a tenant's batch is cut immediately before it
   executes, and a tenant's batches run strictly in order, so the tenant's
   rate timeline is always complete at cut time (same property the solo
   loop has).  Co-tenant contention changes *when* batches run, hence PID
   inputs, hence how the stream is cut into batches — but never what the
   finalized clusters contain.
2. **Per-tenant isolation** of everything stateful: receiver credit,
   stream state, estimator, DFS roots, checkpoints, memo namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.events import (
    SESSION_ADMITTED,
    SESSION_DEGRADED,
    SESSION_REJECTED,
)
from repro.obs.session import NULL_OBS, ObsSession
from repro.sparklet.pools import PoolConfig, SchedulerPools
from repro.streaming.engine import MicroBatchEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.streaming.engine import BatchStats

__all__ = [
    "AdmissionConfig",
    "SessionInfo",
    "SessionManager",
    "weighted_fair_shares",
]

_ADMISSION_MODES = ("degrade", "reject", "off")


@dataclass(frozen=True)
class AdmissionConfig:
    """How the serving tier reacts to aggregate demand above capacity.

    ``capacity_rows_per_s`` is the shared driver's sustainable throughput;
    when None it is derived from the engines' cost models (a
    ``LinearCostModel`` exposes ``rows_per_s``) and admission is disabled
    if no model can say.  ``headroom`` scales the derived capacity (0.8 =
    "plan to 80%").
    """

    mode: str = "degrade"
    capacity_rows_per_s: float | None = None
    headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in _ADMISSION_MODES:
            raise ValueError(
                f"admission mode must be one of {_ADMISSION_MODES}, got {self.mode!r}"
            )
        if self.headroom <= 0:
            raise ValueError("headroom must be > 0")
        if self.capacity_rows_per_s is not None and self.capacity_rows_per_s <= 0:
            raise ValueError("capacity_rows_per_s must be > 0")


@dataclass
class SessionInfo:
    """One tenant's session as the manager tracks it."""

    tenant_id: str
    engine: MicroBatchEngine
    weight: float = 1.0
    min_share: float = 0.0
    admitted: bool = True
    degraded: bool = False
    reject_reason: str | None = None

    @property
    def demand_rows_per_s(self) -> float:
        return self.engine.config.arrival_rate


def weighted_fair_shares(
    demands: dict[str, float], weights: dict[str, float], capacity: float
) -> dict[str, float]:
    """Max-min weighted water-filling of ``capacity`` over tenants.

    Tenants demanding less than their weighted share keep their demand;
    the surplus redistributes to the rest by weight.  Deterministic
    (iteration over sorted tenant ids).
    """
    shares: dict[str, float] = {}
    remaining = capacity
    active = dict(sorted(demands.items()))
    while active:
        total_w = sum(weights[t] for t in active)
        alloc = {t: remaining * weights[t] / total_w for t in active}
        satisfied = [t for t in sorted(active) if demands[t] <= alloc[t]]
        if not satisfied:
            shares.update(alloc)
            return shares
        for t in satisfied:
            shares[t] = demands[t]
            remaining -= demands[t]
            del active[t]
    return shares


class SessionManager:
    """The shared serving driver: one clock, N engines, fair pools.

    Build with :meth:`add_session` per tenant, then :meth:`run` — the
    event loop runs every admitted tenant's stream to completion on the
    shared simulated clock.
    """

    def __init__(self, *, pools: SchedulerPools | None = None,
                 admission: AdmissionConfig | None = None,
                 obs: ObsSession = NULL_OBS) -> None:
        self.pools = pools if pools is not None else SchedulerPools()
        self.admission = admission if admission is not None else AdmissionConfig()
        self.obs = obs
        self.sessions: dict[str, SessionInfo] = {}
        #: Per-tenant memo session installed on the shared context for the
        #: duration of that tenant's batches (namespace isolation).
        self.memos: dict[str, Any] = {}
        #: When the shared serial driver is next free (simulated seconds).
        self.t_free = 0.0
        self.n_batches = 0
        #: Tenant whose batch :meth:`run_next_batch` executed last — lets a
        #: caller driving the loop attribute the returned stats.
        self.last_tenant: str | None = None

    # -- registration --------------------------------------------------------
    def add_session(self, tenant_id: str, engine: MicroBatchEngine, *,
                    weight: float = 1.0, min_share: float = 0.0,
                    memo: Any | None = None) -> SessionInfo:
        if tenant_id in self.sessions:
            raise ValueError(f"tenant {tenant_id!r} already has a session")
        if engine.config.crash_at_batch is not None:
            raise ValueError(
                "crash_at_batch is a single-tenant chaos knob; the serving "
                "tier recovers tenants via run_streaming, not mid-fleet"
            )
        engine.tenant = tenant_id
        self.pools.register(PoolConfig(tenant_id, weight=weight,
                                       min_share=min_share))
        info = SessionInfo(tenant_id=tenant_id, engine=engine, weight=weight,
                           min_share=min_share)
        self.sessions[tenant_id] = info
        self.memos[tenant_id] = memo
        return info

    # -- admission control ---------------------------------------------------
    def _capacity(self) -> float | None:
        cfg = self.admission
        if cfg.capacity_rows_per_s is not None:
            return cfg.capacity_rows_per_s * cfg.headroom
        rates = [
            getattr(info.engine.config.cost_model, "rows_per_s", None)
            for info in self.sessions.values()
        ]
        known = [r for r in rates if r is not None]
        if len(known) != len(rates) or not known:
            return None  # a cost model we cannot size against
        # One serial driver: its sustainable row rate is the slowest model's.
        return min(known) * cfg.headroom

    def apply_admission(self) -> None:
        """Decide admit/degrade/reject per tenant; emits session events."""
        cfg = self.admission
        obs = self.obs
        capacity = self._capacity() if cfg.mode != "off" else None
        infos = [self.sessions[t] for t in sorted(self.sessions)]
        demands = {i.tenant_id: i.demand_rows_per_s for i in infos}
        total = sum(demands.values())

        if capacity is not None and cfg.mode == "reject" and total > capacity:
            # First-come order (registration): admit while demand fits.
            admitted_total = 0.0
            for info in infos:
                if admitted_total + info.demand_rows_per_s <= capacity:
                    admitted_total += info.demand_rows_per_s
                else:
                    info.admitted = False
                    info.reject_reason = (
                        f"aggregate demand {total:.0f} rows/s exceeds "
                        f"capacity {capacity:.0f} rows/s"
                    )
                    obs.emit(SESSION_REJECTED, tenant=info.tenant_id,
                             demand=round(info.demand_rows_per_s, 3),
                             capacity=round(capacity, 3))
        elif capacity is not None and cfg.mode == "degrade" and total > capacity:
            weights = {i.tenant_id: i.weight for i in infos}
            shares = weighted_fair_shares(demands, weights, capacity)
            for info in infos:
                share = shares[info.tenant_id]
                if share < info.demand_rows_per_s:
                    info.degraded = True
                    info.engine.rate_cap = share
                    obs.emit(SESSION_DEGRADED, tenant=info.tenant_id,
                             demand=round(info.demand_rows_per_s, 3),
                             rate_cap=round(share, 3),
                             capacity=round(capacity, 3))
        for info in infos:
            if info.admitted:
                obs.emit(SESSION_ADMITTED, tenant=info.tenant_id,
                         weight=info.weight, min_share=info.min_share,
                         demand=round(info.demand_rows_per_s, 3),
                         degraded=info.degraded)

    # -- the shared event loop ----------------------------------------------
    def _active(self) -> dict[str, MicroBatchEngine]:
        return {
            tid: info.engine
            for tid, info in sorted(self.sessions.items())
            if info.admitted and info.engine.active
        }

    def run_next_batch(self) -> "BatchStats | None":
        """Advance the shared clock by one batch (None when all drained).

        The driver becomes free at ``t_free``; every tenant whose next
        batch boundary has been reached by then is *ready*, and the fair
        ordering picks among them.  If no tenant is ready yet, the clock
        idles forward to the earliest boundary.
        """
        active = self._active()
        if not active:
            return None
        boundaries = {tid: e.next_boundary for tid, e in active.items()}
        now = max(self.t_free, min(boundaries.values()))
        ready = {tid for tid, b in boundaries.items() if b <= now}
        for tid in sorted(ready):
            if self.pools.queued_in(tid) == 0:
                self.pools.submit(tid, tid)
        picked = self.pools.next_entry(now, eligible=ready)
        assert picked is not None  # ready is non-empty by construction
        tenant_id, _token = picked
        engine = active[tenant_id]

        # Lazy cut: immediately before execution, so the tenant's rate
        # timeline is complete — the invariant the identity law needs.
        prepared = engine.cut_next_batch()
        ctx = engine.ctx
        previous_memo = ctx.runtime.memo
        ctx.runtime.memo = self.memos.get(tenant_id)
        try:
            stats = engine.execute_batch(
                prepared, start=max(prepared.boundary_s, self.t_free)
            )
        finally:
            ctx.runtime.memo = previous_memo
        self.t_free = stats.completed_s
        self.pools.charge(tenant_id, stats.processing_s)
        self.n_batches += 1
        self.last_tenant = tenant_id
        return stats

    def run(self) -> None:
        """Apply admission, then drain every admitted tenant's stream."""
        self.apply_admission()
        while self.run_next_batch() is not None:
            pass
        for tid in self.sessions:
            self.pools.clear_queue(tid)

    # -- results -------------------------------------------------------------
    def rejected(self) -> dict[str, str]:
        return {
            tid: info.reject_reason or "rejected"
            for tid, info in sorted(self.sessions.items())
            if not info.admitted
        }

    def pool_stats(self) -> dict[str, dict[str, float]]:
        return self.pools.stats()
