"""Checkpointing: the engine's durable state, as one JSON file on the DFS.

Spark Streaming checkpoints two things: *metadata* (the driver's position
in the stream) and *state* (updateStateByKey's per-key data).  We persist
both in a single JSON document because everything in this engine was
designed to be scalar-serializable:

- the receiver is three scalars (cursor, credit, block counter);
- the PID estimator is three floats;
- pending-cluster state is raw file rows plus small ints/floats;
- the driver clock is ``batch_index`` + ``free_at``.

Recovery = rebuild the item stream from the (deterministic, seeded)
source, restore these scalars, and rerun every batch after the checkpoint.
Batch outputs are written to deterministic per-batch DFS paths and replaced
on rewrite, so replayed batches are idempotent and the concatenated output
stays byte-identical — exactly-once semantics from at-least-once execution
plus deterministic, idempotent writes.

The checkpoint lives *on the DFS*, not in driver memory: an injected
driver crash loses the engine object, and recovery must work from what the
file system kept.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.dfs import DFSClient

#: Bump on any layout change; recovery refuses mismatched checkpoints.
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be decoded or has the wrong version."""


def put_replace(dfs: "DFSClient", path: str, text: str) -> None:
    """DFS put with overwrite semantics (the DFS itself refuses overwrites)."""
    if dfs.exists(path):
        dfs.delete(path)
    dfs.put_text(path, text)


def write_checkpoint(dfs: "DFSClient", path: str, snapshot: dict) -> int:
    """Serialize ``snapshot`` to ``path``; returns the byte size written."""
    payload = dict(snapshot)
    payload["checkpoint_version"] = CHECKPOINT_VERSION
    text = json.dumps(payload)
    put_replace(dfs, path, text)
    return len(text.encode("utf-8"))


def read_checkpoint(dfs: "DFSClient", path: str) -> dict | None:
    """Load the latest checkpoint, or None if none was ever written."""
    if not dfs.exists(path):
        return None
    try:
        snapshot = json.loads(dfs.get_text(path))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from None
    version = snapshot.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version}; "
            f"this build reads {CHECKPOINT_VERSION}"
        )
    return snapshot


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "put_replace",
    "read_checkpoint",
    "write_checkpoint",
]
