"""Deterministic replay receivers: an SPE source as timestamped blocks.

Spark Streaming's receivers pull records from an external source and chop
them into *blocks* (spark.streaming.blockInterval); the block queue is what
the batch scheduler drains.  Our source is a finished observation set, so
the receiver *replays* it on a simulated clock: every data-file row and
every cluster-file row becomes one stream item carrying an **event time**
(the SPE arrival time; for a cluster, the time its last member arrived —
the moment an upstream online clusterer would have closed it).

Two properties carry the streamed≡offline equivalence proof:

- items replay the *formatted* file rows (``%.3f``/``%.6f``), so the
  floats the streamed search parses are bit-identical to the offline ones;
- per key, items are sorted by event time with a **stable** sort, so rows
  sharing an event time keep their data-file order — and since the RAPID
  search lexsorts each cluster by (dm, time), per-cluster output is then
  independent of how the stream is cut into blocks and batches.

Ingestion is rate-limited: :meth:`ReplayReceiver.poll` grants
``rate × interval`` rows per block with fractional credit carried between
polls, so a rate limit produces the same block boundaries on every run —
and after a checkpoint restore (the cursor and credit are the entire
receiver state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.astro.survey import Observation

#: Stream item kinds, in tie-break order at equal event time: data rows
#: land before the cluster that closes on them, closes come last.
DATA, CLUSTER, CLOSE = "data", "cluster", "close"


@dataclass(frozen=True)
class StreamItem:
    """One replayed row: a data-file row, a cluster-file row, or a key close."""

    kind: str
    key: str
    payload: str | None
    #: Event time (seconds into the observation); None for key closes.
    time_s: float | None


@dataclass(frozen=True)
class Block:
    """One receiver block: what arrived during one block interval."""

    block_id: int
    #: Simulated arrival time of the block (end of its block interval).
    time_s: float
    items: tuple[StreamItem, ...]

    @property
    def n_rows(self) -> int:
        """Billable rows (data + cluster items; key closes are free)."""
        return sum(1 for it in self.items if it.kind != CLOSE)


def _parses_as_data_row(parts: list[str]) -> bool:
    """The lenient keep-rule of ``SPEBatch.from_data_rows``: a row survives
    iff its first three fields parse as floats.  Applying it here keeps the
    receiver's row list aligned with the parsed columns downstream."""
    if len(parts) < 3:
        return False
    try:
        float(parts[0]), float(parts[1]), float(parts[2])
    except ValueError:
        return False
    return True


def build_stream(observations: Iterable["Observation"]) -> list[StreamItem]:
    """Flatten observations into one replayable, time-ordered item list.

    Observations replay sequentially (a drift scan observes one pointing at
    a time); within each, data rows and cluster announcements merge by
    event time with the stable tie order data < cluster.  Each observation
    ends with a :data:`CLOSE` item — the signal that lets the state layer
    finalize stragglers and free the key's row buffer.
    """
    from repro.io.spe_files import observation_cluster_batch

    items: list[StreamItem] = []
    for obs in observations:
        key = obs.key.to_key()
        merged: list[tuple[float, int, StreamItem]] = []
        for row in obs.spe_batch.to_csv_rows():
            parts = row.split(",")
            if not _parses_as_data_row(parts):
                continue  # offline drops it at parse time; drop it here too
            t = float(parts[2])
            merged.append((t, 0, StreamItem(DATA, key, row, t)))
        for line in observation_cluster_batch(obs).to_lines():
            t_hi = float(line.split(",")[7])
            merged.append((t_hi, 1, StreamItem(CLUSTER, key, line, t_hi)))
        merged.sort(key=lambda e: (e[0], e[1]))  # stable: file order on ties
        items.extend(item for _, _, item in merged)
        items.append(StreamItem(CLOSE, key, None, None))
    return items


class ReplayReceiver:
    """Replays a prebuilt item stream as rate-limited blocks.

    The entire mutable state is ``(cursor, credit, n_blocks)`` — three
    scalars that checkpoint as JSON and restore a bit-identical replay.
    """

    def __init__(self, items: Sequence[StreamItem]) -> None:
        self._items = list(items)
        self.cursor = 0
        self.credit = 0.0
        self.n_blocks = 0

    @classmethod
    def from_observations(cls, observations: Iterable["Observation"]) -> "ReplayReceiver":
        return cls(build_stream(observations))

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self._items)

    @property
    def n_items(self) -> int:
        return len(self._items)

    def poll(self, *, time_s: float, interval_s: float, rate_rows_per_s: float) -> Block:
        """Cut the next block: up to ``rate × interval`` rows arrive.

        Fractional row credit carries over (a 7.5 rows/interval limit
        alternates 7- and 8-row blocks deterministically).  CLOSE items ride
        along for free right behind their observation's last row.
        """
        self.credit += max(0.0, rate_rows_per_s) * interval_s
        budget = int(self.credit)
        self.credit -= budget
        taken: list[StreamItem] = []
        while self.cursor < len(self._items):
            item = self._items[self.cursor]
            if item.kind == CLOSE:
                taken.append(item)
                self.cursor += 1
                continue
            if budget <= 0:
                break
            taken.append(item)
            budget -= 1
            self.cursor += 1
        block = Block(self.n_blocks, time_s, tuple(taken))
        self.n_blocks += 1
        return block

    # -- checkpoint ---------------------------------------------------------
    def snapshot(self) -> dict:
        return {"cursor": self.cursor, "credit": self.credit, "n_blocks": self.n_blocks}

    def restore(self, snap: dict) -> None:
        self.cursor = int(snap["cursor"])
        self.credit = float(snap["credit"])
        self.n_blocks = int(snap["n_blocks"])


__all__ = [
    "Block",
    "ReplayReceiver",
    "StreamItem",
    "build_stream",
    "CLOSE",
    "CLUSTER",
    "DATA",
]
