"""Stateful cross-batch clustering: pending clusters and watermarks.

A cluster's DM×time box routinely straddles micro-batch boundaries — its
rows arrive over several batches, and its announcement (the cluster-file
row, event-timed at its last member's arrival) may land batches after its
first row.  This module carries that in-flight work as **pending state**:

- per key, a buffer of raw data-file rows (in arrival order, which equals
  stable-by-time data-file order — the receiver guarantees it);
- per key, the pending cluster announcements;
- per key, a **watermark** = the event time of the last ingested item.
  The receiver replays items in non-decreasing event time, so once the
  watermark *strictly* exceeds a cluster's ``t_hi`` every row the cluster's
  box can select has arrived (strict, because more rows may share the
  watermark's exact timestamp).  A key close finalizes everything left and
  frees the buffer.

Finalization emits one :class:`FinalizedUnit` per key per batch: the due
cluster lines plus the buffered rows inside the union of their boxes.
Rows are *not* consumed — overlapping boxes may claim the same row in a
later batch — so buffers are only freed at key close.  The engine turns
units into mini D-RAPID input files; because each cluster's box selects
exactly the same row subset (same formatted text, same relative order) as
it would from the full offline data file, and the RAPID search canonicalizes
each cluster by a (dm, time) lexsort, per-cluster output is byte-identical
to the offline run's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.dataplane import SPEBatch
from repro.streaming.receiver import CLOSE, CLUSTER, DATA, StreamItem


@dataclass(frozen=True)
class FinalizedUnit:
    """One key's work finalized in one batch: clusters plus their rows."""

    key: str
    #: Cluster-file lines (with key prefix), in announcement order.
    cluster_lines: tuple[str, ...]
    #: Data-file lines (with key prefix) inside the union of the clusters'
    #: boxes, in buffer (= stable event-time) order.
    data_lines: tuple[str, ...]
    #: Batch that ingested the earliest selected row — ``finalized_batch -
    #: first_row_batch + 1`` is how many micro-batches the unit spanned.
    first_row_batch: int
    finalized_batch: int

    @property
    def n_batches_spanned(self) -> int:
        return self.finalized_batch - self.first_row_batch + 1


class _KeyState:
    """Pending state for one observation key."""

    __slots__ = ("rows", "batch_ids", "pending", "watermark", "closed")

    def __init__(self) -> None:
        self.rows: list[str] = []          # value rows (no key prefix)
        self.batch_ids: list[int] = []     # batch that ingested each row
        self.pending: list[tuple[float, str]] = []  # (t_hi, full cluster line)
        self.watermark = float("-inf")
        self.closed = False


class StreamState:
    """All keys' pending state; the unit the engine checkpoints."""

    def __init__(self) -> None:
        self._keys: dict[str, _KeyState] = {}

    # -- introspection ------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self._keys

    @property
    def n_pending_clusters(self) -> int:
        return sum(len(ks.pending) for ks in self._keys.values())

    @property
    def n_buffered_rows(self) -> int:
        return sum(len(ks.rows) for ks in self._keys.values())

    def watermarks(self) -> dict[str, float]:
        return {key: ks.watermark for key, ks in self._keys.items()}

    # -- ingest -------------------------------------------------------------
    def ingest(self, batch_id: int, items: Iterable[StreamItem]) -> dict[str, float]:
        """Fold one batch's items into the state.

        Returns the watermark per key touched by this batch (for the
        ``watermark_advanced`` events).
        """
        touched: dict[str, float] = {}
        for item in items:
            ks = self._keys.get(item.key)
            if ks is None:
                ks = self._keys[item.key] = _KeyState()
            if item.kind == DATA:
                ks.rows.append(item.payload)
                ks.batch_ids.append(batch_id)
                ks.watermark = item.time_s
                touched[item.key] = item.time_s
            elif item.kind == CLUSTER:
                ks.pending.append((item.time_s, item.payload))
                ks.watermark = item.time_s
                touched[item.key] = item.time_s
            elif item.kind == CLOSE:
                ks.closed = True
                touched.setdefault(item.key, ks.watermark)
            else:  # pragma: no cover - receiver only emits the three kinds
                raise ValueError(f"unknown stream item kind {item.kind!r}")
        return touched

    # -- finalize -----------------------------------------------------------
    def finalize(self, batch_id: int) -> list[FinalizedUnit]:
        """Seal every cluster the watermark (or a key close) has passed.

        A cluster is due when ``watermark > t_hi`` strictly — rows equal to
        the watermark's timestamp may still be in flight — or when its key
        closed.  Closed keys with nothing pending are dropped entirely,
        freeing their row buffers (per-key memory is bounded by one
        observation).
        """
        units: list[FinalizedUnit] = []
        done_keys: list[str] = []
        for key, ks in self._keys.items():
            due = [(t, line) for t, line in ks.pending
                   if ks.closed or ks.watermark > t]
            if due:
                ks.pending = [p for p in ks.pending if p not in due]
                units.append(self._build_unit(key, ks, due, batch_id))
            if ks.closed and not ks.pending:
                done_keys.append(key)
        for key in done_keys:
            del self._keys[key]
        return units

    @staticmethod
    def _build_unit(
        key: str, ks: _KeyState, due: list[tuple[float, str]], batch_id: int
    ) -> FinalizedUnit:
        spe = SPEBatch.from_data_rows(ks.rows)
        assert len(spe) == len(ks.rows), "receiver keep-rule drifted from parse"
        mask = np.zeros(len(spe), dtype=bool)
        for _t_hi, line in due:
            f = line.split(",")
            dm_lo, dm_hi = float(f[4]), float(f[5])
            t_lo, t_hi = float(f[6]), float(f[7])
            mask |= ((spe.dm >= dm_lo) & (spe.dm <= dm_hi)
                     & (spe.time_s >= t_lo) & (spe.time_s <= t_hi))
        idx = np.nonzero(mask)[0]
        data_lines = tuple(f"{key},{ks.rows[i]}" for i in idx.tolist())
        first_batch = (min(ks.batch_ids[i] for i in idx.tolist())
                       if idx.size else batch_id)
        return FinalizedUnit(
            key=key,
            cluster_lines=tuple(line for _t, line in due),
            data_lines=data_lines,
            first_row_batch=first_batch,
            finalized_batch=batch_id,
        )

    # -- checkpoint ---------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "keys": [
                {
                    "key": key,
                    "rows": list(ks.rows),
                    "batch_ids": list(ks.batch_ids),
                    "pending": [[t, line] for t, line in ks.pending],
                    "watermark": ks.watermark,
                    "closed": ks.closed,
                }
                for key, ks in self._keys.items()
            ]
        }

    @classmethod
    def restore(cls, snap: dict) -> "StreamState":
        state = cls()
        for entry in snap["keys"]:
            ks = _KeyState()
            ks.rows = [str(r) for r in entry["rows"]]
            ks.batch_ids = [int(b) for b in entry["batch_ids"]]
            ks.pending = [(float(t), str(line)) for t, line in entry["pending"]]
            ks.watermark = float(entry["watermark"])
            ks.closed = bool(entry["closed"])
            state._keys[entry["key"]] = ks
        return state


__all__ = ["FinalizedUnit", "StreamState"]
