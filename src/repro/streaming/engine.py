"""The micro-batch engine: Spark Streaming's driver loop on a simulated clock.

Every ``batch_interval_s`` the engine cuts the receiver's blocks into one
batch, ingests them into the pending-cluster state, finalizes every
cluster the watermark has passed, and runs the finalized work as a real
D-RAPID job through Sparklet — so fault injection, lineage recovery and
the discrete-event cluster simulator all apply per batch.  Time is
simulated: a pluggable **cost model** charges each batch a processing
duration, the driver is a single serial resource (batch *k* starts at
``max(boundary_k, free_at)``), and scheduling delay vs. processing time
fall out exactly as Spark's streaming UI defines them.

The loop is deliberately written so that everything affecting *output* is
deterministic given (observations, config): block cutting uses credit
arithmetic, rate updates are timestamped at batch completion and apply
only to blocks that arrive after them, and per-batch outputs go to
deterministic DFS paths with replace semantics.  That is what makes
checkpoint recovery exactly-once and the streamed output byte-identical to
the offline pipeline.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.drapid import DRapidDriver
from repro.dataplane import PulseBatch
from repro.obs.events import (
    BATCH_COMPLETED,
    BATCH_SUBMITTED,
    BLOCK_RECEIVED,
    CHECKPOINT_WRITTEN,
    DRIVER_RECOVERED,
    MODEL_SWAPPED,
    RATE_UPDATED,
    WATERMARK_ADVANCED,
)
from repro.obs.session import NULL_OBS, ObsSession
from repro.streaming.backpressure import PIDRateEstimator
from repro.streaming.checkpoint import put_replace, read_checkpoint, write_checkpoint
from repro.streaming.receiver import ReplayReceiver, StreamItem, build_stream
from repro.streaming.serving import StreamScorer
from repro.streaming.state import StreamState

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import StreamingConfig
    from repro.astro.survey import Observation
    from repro.dfs import DFSClient
    from repro.sparklet.context import SparkletContext
    from repro.sparklet.metrics import JobMetrics


class SimulatedDriverCrash(RuntimeError):
    """Injected driver failure: the engine object is lost mid-stream."""

    def __init__(self, batch_id: int) -> None:
        super().__init__(f"simulated driver crash after batch {batch_id}")
        self.batch_id = batch_id


# -- cost models -------------------------------------------------------------

@dataclass(frozen=True)
class LinearCostModel:
    """Deterministic processing cost: ``fixed + rows / throughput``.

    The default, because exact rate arithmetic is what lets tests and the
    benchmark engineer a precise 2× overload (arrival_rate = 2 ×
    rows_per_s) and observe backpressure converge.
    """

    rows_per_s: float = 50_000.0
    fixed_s: float = 0.02

    def batch_seconds(self, n_rows: int, metrics: "JobMetrics | None") -> float:
        return self.fixed_s + n_rows / self.rows_per_s


@dataclass(frozen=True)
class SimulatedCostModel:
    """Processing cost from the discrete-event cluster simulator.

    Replays each batch's measured Sparklet job on a configured cluster
    (:class:`repro.sparklet.ClusterConfig`) and charges its makespan.
    Realistic, but derived from wall-clock task timings — use
    :class:`LinearCostModel` when byte-level timing determinism matters.
    """

    cluster: object = None  # ClusterConfig; lazily defaulted to avoid import
    fixed_s: float = 0.005

    def batch_seconds(self, n_rows: int, metrics: "JobMetrics | None") -> float:
        if metrics is None:
            return self.fixed_s
        from repro.sparklet.cluster import ClusterConfig
        from repro.sparklet.simulation import simulate_job

        cluster = self.cluster if self.cluster is not None else ClusterConfig()
        return self.fixed_s + simulate_job(metrics, cluster).elapsed_s


# -- per-batch bookkeeping ---------------------------------------------------

@dataclass
class BatchStats:
    """One completed micro-batch, in Spark streaming-UI vocabulary."""

    batch_id: int
    boundary_s: float          # batch-interval boundary that cut it
    start_s: float             # when the (serial) driver picked it up
    completed_s: float
    scheduling_delay_s: float  # start - boundary
    processing_s: float        # cost-model charge for the batch job
    n_blocks: int
    n_rows: int
    queue_depth: int           # batches cut-but-not-started at the boundary
    rate_limit: float          # receiver rate in effect for its blocks
    n_clusters_finalized: int
    n_pulses: int
    n_scored: int
    max_batches_spanned: int   # widest cluster finalized in this batch
    #: Serving-model version pinned for this batch (0: no scorer, or a
    #: plain scorer outside any ModelCache).
    model_version: int = 0

    @property
    def total_delay_s(self) -> float:
        return self.completed_s - self.boundary_s

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, d: dict) -> "BatchStats":
        return cls(**d)


@dataclass
class StreamingResult:
    """Everything one streaming run produced."""

    observations: list
    #: All finalized pulses, concatenated in batch-emission order and read
    #: back from the per-batch DFS outputs (so recovery is kept honest).
    pulse_batch: PulseBatch
    #: In-stream predicted labels aligned with ``pulse_batch`` (None when
    #: no serving model was configured).
    predicted: np.ndarray | None
    batches: list[BatchStats]
    n_recoveries: int
    checkpoints_written: int
    obs: ObsSession | None = None

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def n_pulses(self) -> int:
        return len(self.pulse_batch)

    @property
    def max_batches_spanned(self) -> int:
        return max((b.max_batches_spanned for b in self.batches), default=0)

    @property
    def max_queue_depth(self) -> int:
        return max((b.queue_depth for b in self.batches), default=0)

    def canonical_ml_text(self) -> str:
        return canonical_ml_text(self.pulse_batch)


def canonical_ml_text(batch: PulseBatch) -> str:
    """ML rows under the canonical (observation_key, cluster_id) order.

    Offline D-RAPID emits clusters in hash-partition order; the stream
    emits them in finalization order.  Both orders are artifacts of *where*
    a cluster ran, not *what* it produced, so the equivalence law compares
    the two sides under one canonical stable sort — within a cluster, pulse
    order is load-bearing (RAPID emission order) and is preserved.
    """
    if not len(batch):
        return ""
    keys = batch.observation_key.tolist()
    cids = batch.cluster_id.tolist()
    order = sorted(range(len(batch)), key=lambda i: (keys[i], cids[i]))
    sorted_batch = batch.take(np.asarray(order, dtype=np.int64))
    return "\n".join(sorted_batch.to_ml_lines()) + "\n"


# -- the engine --------------------------------------------------------------

@dataclass(frozen=True)
class PreparedBatch:
    """One cut-but-not-yet-executed micro-batch (receiver step output)."""

    batch_id: int
    boundary_s: float
    blocks: list
    n_rows: int
    rate_limit: float


@dataclass
class MicroBatchEngine:
    """The streaming driver: receiver → batcher → state → job → serving."""

    config: "StreamingConfig"
    receiver: ReplayReceiver
    state: StreamState
    dfs: "DFSClient"
    ctx: "SparkletContext"
    grids: dict
    scorer: StreamScorer | None = None
    obs: ObsSession = NULL_OBS
    #: Disarmed on restored engines so the injected crash fires only once.
    crash_armed: bool = True
    #: Scheduler pool / tenant identity the engine's batch jobs run under
    #: (None: jobs use the context's current pool, i.e. "default").
    tenant: str | None = None
    #: Admission-control clamp on the receiver rate (rows/s); None means
    #: the configured ``arrival_rate``.  A degraded tenant gets a lower cap
    #: — output-safe, because block cutting never changes canonical output.
    rate_cap: float | None = None

    batch_index: int = 0
    free_at: float = 0.0
    stats: list[BatchStats] = field(default_factory=list)
    committed: list[int] = field(default_factory=list)
    n_checkpoints: int = 0

    def __post_init__(self) -> None:
        cfg = self.config
        self.estimator = (
            PIDRateEstimator(cfg.pid, cfg.batch_interval_s, cfg.arrival_rate)
            if cfg.backpressure else None
        )
        # Rate-limit timeline: (time, rate) changes, looked up per block.
        self._rate_times: list[float] = [0.0]
        self._rates: list[float] = [cfg.arrival_rate]

    # -- rate timeline ------------------------------------------------------
    def _rate_at(self, time_s: float) -> float:
        """The rate limit in effect at ``time_s``: the latest update whose
        (completion) timestamp is <= the block's arrival — rate updates do
        not travel back in time to blocks already received."""
        return self._rates[bisect_right(self._rate_times, time_s) - 1]

    def _push_rate(self, time_s: float, rate: float) -> None:
        self._rate_times.append(time_s)
        self._rates.append(rate)

    # -- batch job ----------------------------------------------------------
    def _batch_root(self, batch_id: int) -> str:
        return f"{self.config.batch_root}/batch-{batch_id:05d}"

    def _run_batch_job(
        self, batch_id: int, units: Sequence
    ) -> tuple[PulseBatch, "JobMetrics | None"]:
        """Run one batch's finalized units as a D-RAPID job via Sparklet."""
        if not units:
            return PulseBatch.empty(), None
        from repro.astro.spe import SPE_FILE_HEADER
        from repro.io.spe_files import CLUSTER_FILE_HEADER

        root = self._batch_root(batch_id)
        data_text = SPE_FILE_HEADER + "\n" + "".join(
            line + "\n" for u in units for line in u.data_lines
        )
        cluster_text = CLUSTER_FILE_HEADER + "\n" + "".join(
            line + "\n" for u in units for line in u.cluster_lines
        )
        # Replace semantics: a batch replayed after recovery rewrites its
        # inputs and outputs idempotently.
        put_replace(self.dfs, f"{root}/data.csv", data_text)
        put_replace(self.dfs, f"{root}/clusters.csv", cluster_text)
        pipe = self.config.pipeline
        driver = DRapidDriver(
            ctx=self.ctx, dfs=self.dfs, grids=self.grids, params=pipe.params,
            num_partitions=pipe.num_partitions, fault_config=pipe.fault_config,
        )
        pool_scope = (
            self.ctx.pool(self.tenant) if self.tenant is not None
            else nullcontext()
        )
        with pool_scope:
            result = driver.run(
                f"{root}/data.csv", f"{root}/clusters.csv",
                ml_output_path=f"{root}/ml",
            )
        if batch_id not in self.committed:
            self.committed.append(batch_id)
        return result.pulse_batch, result.metrics

    # -- the driver loop -----------------------------------------------------
    @property
    def active(self) -> bool:
        """More batches to run: the receiver or the pending state has work."""
        return not (self.receiver.exhausted and self.state.empty)

    @property
    def next_boundary(self) -> float:
        """The batch-interval boundary that will cut the next batch."""
        return (self.batch_index + 1) * self.config.batch_interval_s

    def cut_next_batch(self) -> PreparedBatch:
        """Step 1 — receive: cut the next interval's blocks under the rate
        limit in effect at each block's arrival time.

        Cutting is separated from execution so a :class:`SessionManager
        <repro.streaming.sessions.SessionManager>` can interleave several
        engines on one driver.  It must stay *lazy* — called immediately
        before :meth:`execute_batch`, never batched ahead — because the
        rate timeline only contains updates from batches that have already
        completed; cutting early would change which rate limits blocks see
        and break the solo-equivalence law.
        """
        cfg = self.config
        obs = self.obs
        interval = cfg.batch_interval_s
        n_blocks = max(1, int(cfg.blocks_per_batch))
        block_dt = interval / n_blocks
        batch_id = self.batch_index + 1
        if batch_id > cfg.max_batches:
            raise RuntimeError(
                f"stream did not drain within max_batches={cfg.max_batches}; "
                "arrival rate or PID min_rate may be too low"
            )
        boundary = batch_id * interval
        cap = self.rate_cap if self.rate_cap is not None else cfg.arrival_rate
        blocks = []
        rate_limit = cap
        for j in range(1, n_blocks + 1):
            arrival = (batch_id - 1) * interval + j * block_dt
            if cfg.backpressure:
                rate_limit = min(cap, self._rate_at(arrival))
            block = self.receiver.poll(
                time_s=arrival, interval_s=block_dt,
                rate_rows_per_s=rate_limit,
            )
            if block.items:
                blocks.append(block)
                obs.emit(BLOCK_RECEIVED, block_id=block.block_id,
                         batch_id=batch_id, time_s=round(arrival, 6),
                         n_rows=block.n_rows,
                         rate_limit=round(rate_limit, 3))
        return PreparedBatch(
            batch_id=batch_id, boundary_s=boundary, blocks=blocks,
            n_rows=sum(b.n_rows for b in blocks), rate_limit=rate_limit,
        )

    def execute_batch(self, prepared: PreparedBatch,
                      start: float | None = None) -> BatchStats:
        """Steps 2–8: submit, ingest, job, clock, backpressure, checkpoint.

        ``start`` is when the driver actually picked the batch up; the solo
        loop uses its own ``free_at``, the session manager passes the shared
        driver's availability (which is how co-tenant contention becomes
        scheduling delay).
        """
        cfg = self.config
        obs = self.obs
        batch_id = prepared.batch_id
        boundary = prepared.boundary_s
        blocks = prepared.blocks
        rows = prepared.n_rows

        # 2. Submit: the serial driver picks the batch up when free.
        if start is None:
            start = max(boundary, self.free_at)
        queue_depth = sum(1 for s in self.stats if s.start_s > boundary)
        obs.emit(BATCH_SUBMITTED, batch_id=batch_id,
                 boundary_s=round(boundary, 6), start_s=round(start, 6),
                 n_blocks=len(blocks), n_rows=rows,
                 queue_depth=queue_depth)

        # 3. State: ingest, advance watermarks, finalize due clusters.
        touched = self.state.ingest(
            batch_id, (it for b in blocks for it in b.items)
        )
        for key, wm in sorted(touched.items()):
            obs.emit(WATERMARK_ADVANCED, batch_id=batch_id, key=key,
                     watermark=round(wm, 6))
        units = self.state.finalize(batch_id)

        # 4. Job + serving: the finalized work as a real Sparklet job.  A
        # pending model swap takes effect here — at the batch boundary,
        # never mid-batch (see ModelCache).
        if self.scorer is not None:
            prev_version = self.scorer.version
            if self.scorer.refresh():
                obs.emit(MODEL_SWAPPED, batch_id=batch_id,
                         old_version=prev_version,
                         version=self.scorer.version)
        pulses, metrics = self._run_batch_job(batch_id, units)
        n_scored = 0
        if self.scorer is not None and len(pulses):
            n_scored = len(self.scorer.score(pulses))

        # 5. Clock: charge the cost model, record the batch.
        processing = self.cost_model.batch_seconds(rows, metrics)
        completed = start + processing
        stats = BatchStats(
            batch_id=batch_id, boundary_s=boundary, start_s=start,
            completed_s=completed, scheduling_delay_s=start - boundary,
            processing_s=processing, n_blocks=len(blocks), n_rows=rows,
            queue_depth=queue_depth, rate_limit=prepared.rate_limit,
            n_clusters_finalized=sum(len(u.cluster_lines) for u in units),
            n_pulses=len(pulses), n_scored=n_scored,
            max_batches_spanned=max(
                (u.n_batches_spanned for u in units), default=0
            ),
            model_version=(self.scorer.version if self.scorer is not None
                           else 0),
        )
        self.stats.append(stats)
        self.free_at = completed
        self.batch_index = batch_id
        obs.emit(BATCH_COMPLETED, batch_id=batch_id,
                 processing_s=round(processing, 6),
                 total_delay_s=round(completed - boundary, 6),
                 n_clusters=stats.n_clusters_finalized,
                 n_pulses=len(pulses), n_scored=n_scored)

        # 6. Backpressure: fold the batch into the PID estimator.
        if self.estimator is not None:
            new_rate = self.estimator.compute(
                completed, rows, processing, start - boundary
            )
            if new_rate is not None:
                self._push_rate(completed, new_rate)
                obs.emit(RATE_UPDATED, batch_id=batch_id,
                         rate=round(new_rate, 3),
                         time_s=round(completed, 6))

        # 7. Fault point: the injected crash fires *before* this batch's
        # checkpoint — the worst case, maximizing the replay window.
        if (self.crash_armed and cfg.crash_at_batch is not None
                and batch_id >= cfg.crash_at_batch):
            raise SimulatedDriverCrash(batch_id)

        # 8. Checkpoint: durable state to the DFS.
        if cfg.checkpoint_interval and batch_id % cfg.checkpoint_interval == 0:
            n_bytes = write_checkpoint(
                self.dfs, cfg.checkpoint_path, self.snapshot()
            )
            self.n_checkpoints += 1
            obs.emit(CHECKPOINT_WRITTEN, batch_id=batch_id,
                     path=cfg.checkpoint_path, n_bytes=n_bytes)
        return stats

    def run(self) -> None:
        while self.active:
            self.execute_batch(self.cut_next_batch())

    @property
    def cost_model(self):
        return self.config.cost_model

    # -- checkpoint ----------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "batch_index": self.batch_index,
            "free_at": self.free_at,
            "receiver": self.receiver.snapshot(),
            "estimator": (self.estimator.snapshot()
                          if self.estimator is not None else None),
            "state": self.state.snapshot(),
            "committed": list(self.committed),
            "stats": [s.to_dict() for s in self.stats],
            "n_checkpoints": self.n_checkpoints,
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict | None,
        config: "StreamingConfig",
        items: Sequence[StreamItem],
        *,
        dfs: "DFSClient",
        ctx: "SparkletContext",
        grids: dict,
        scorer: StreamScorer | None,
        obs: ObsSession,
    ) -> "MicroBatchEngine":
        """Rebuild an engine from a checkpoint (None → cold restart).

        The item stream is rebuilt from the deterministic source; the
        checkpoint only repositions the cursor within it.
        """
        engine = cls(
            config=config, receiver=ReplayReceiver(items), state=StreamState(),
            dfs=dfs, ctx=ctx, grids=grids, scorer=scorer, obs=obs,
            crash_armed=False,
        )
        if snapshot is None:
            return engine
        engine.batch_index = int(snapshot["batch_index"])
        engine.free_at = float(snapshot["free_at"])
        engine.receiver.restore(snapshot["receiver"])
        if engine.estimator is not None and snapshot["estimator"] is not None:
            engine.estimator.restore(snapshot["estimator"])
            engine._rate_times = [0.0]
            engine._rates = [engine.estimator.rate]
        engine.state = StreamState.restore(snapshot["state"])
        engine.committed = [int(b) for b in snapshot["committed"]]
        engine.stats = [BatchStats.from_dict(d) for d in snapshot["stats"]]
        engine.n_checkpoints = int(snapshot["n_checkpoints"])
        return engine


# -- orchestration -----------------------------------------------------------

def _cleanup_stale_batches(dfs: "DFSClient", root: str, last_committed: int) -> int:
    """Drop per-batch outputs beyond the checkpoint horizon.

    A crashed driver may have written batches after the last checkpoint;
    recovery re-cuts those batches (possibly differently, if the rate
    history differs), so any leftover files would double-count at assembly.
    """
    import re

    stale = set()
    pattern = re.compile(re.escape(root) + r"/batch-(\d+)/")
    for path in dfs.ls(root + "/batch-"):
        m = pattern.match(path)
        if m and int(m.group(1)) > last_committed:
            stale.add(path)
    for path in sorted(stale):
        dfs.delete(path)
    return len(stale)


def stream_observations(
    observations: list["Observation"],
    config: "StreamingConfig",
    *,
    dfs: "DFSClient | None" = None,
    ctx: "SparkletContext | None" = None,
    model: object | None = None,
    obs: "ObsSession | None" = None,
) -> StreamingResult:
    """Stream prebuilt observations through the micro-batch engine.

    Handles the full lifecycle: receiver construction, the driver loop,
    injected-crash recovery from the last DFS checkpoint, and final
    assembly of the output by reading every committed batch's ML files
    back from the DFS (driver memory is never trusted across a crash).
    """
    from repro.dfs import DataNode, DFSClient
    from repro.execution import resolve_execution
    from repro.io.spe_files import read_ml_batch
    from repro.memo.config import resolve_memo
    from repro.sparklet.context import SparkletContext

    session = ObsSession.from_config(obs) if not isinstance(obs, ObsSession) else obs
    if dfs is None:
        dfs = DFSClient([DataNode(f"dn{i}") for i in range(4)], replication=2,
                        obs=session)
    own_ctx = ctx is None
    memo = resolve_memo(config.pipeline.memo_config,
                        fault_config=config.pipeline.fault_config)
    execution = resolve_execution(
        getattr(config.pipeline, "execution", None)
    )
    if ctx is None:
        ctx = SparkletContext(app_name="streaming", default_parallelism=4,
                              obs=session, backend=execution.backend,
                              num_workers=execution.num_workers,
                              io_wait_s_per_mb=execution.io_wait_s_per_mb,
                              memo=memo)
    if model is not None:
        scorer = StreamScorer(model)
    elif config.model_path is not None:
        scorer = StreamScorer.from_path(config.model_path)
    else:
        scorer = None
    grids = ({observations[0].config.name: observations[0].grid}
             if observations else {})
    items = build_stream(observations)
    engine = MicroBatchEngine(
        config=config, receiver=ReplayReceiver(items), state=StreamState(),
        dfs=dfs, ctx=ctx, grids=grids, scorer=scorer, obs=session,
    )
    n_recoveries = 0
    while True:
        try:
            engine.run()
            break
        except SimulatedDriverCrash as crash:
            n_recoveries += 1
            snapshot = read_checkpoint(dfs, config.checkpoint_path)
            last_committed = snapshot["batch_index"] if snapshot else 0
            n_stale = _cleanup_stale_batches(dfs, config.batch_root, last_committed)
            session.emit(DRIVER_RECOVERED, crashed_at_batch=crash.batch_id,
                         restored_batch=last_committed,
                         cold_restart=snapshot is None,
                         n_stale_outputs=n_stale)
            engine = MicroBatchEngine.restore(
                snapshot, config, items, dfs=dfs, ctx=ctx, grids=grids,
                scorer=scorer, obs=session,
            )

    # Assembly reads the DFS, not driver memory: if recovery missed a batch
    # the output is visibly wrong, not silently patched from a dead object.
    pulse_batch = PulseBatch.concat([
        read_ml_batch(dfs, f"{engine._batch_root(b)}/ml")
        for b in engine.committed
    ])
    if memo is not None and memo.config.store_candidates:
        # Streaming runs record provenance only (kind="streaming",
        # reproducible=0): the per-batch inputs are re-cut from the live
        # receiver and there is no single raw input file to archive.
        from repro.memo.candidates import record_run

        pipe = config.pipeline
        record_run(
            memo, kind="streaming", batch=pulse_batch,
            config={
                "survey": getattr(observations[0].config, "name", None)
                if observations else None,
                "params": pipe.params,
                "num_partitions": pipe.num_partitions,
                "seed": pipe.seed,
                "batch_interval_s": config.batch_interval_s,
                "arrival_rate": config.arrival_rate,
                "kernel": execution.kernel,
            },
            survey=(observations[0].config.name if observations else None),
            seed=pipe.seed,
            obs_seq_range=(0, session.log.n_events) if session.enabled else None,
            obs=session,
        )
    if memo is not None:
        memo.close()
    if own_ctx:
        ctx.close()
    predicted = scorer.score(pulse_batch) if scorer is not None else None
    if session.enabled:
        session.registry.counter("streaming.batches").inc(len(engine.stats))
        session.registry.counter("streaming.pulses").inc(len(pulse_batch))
        session.registry.counter("streaming.recoveries").inc(n_recoveries)
        session.flush()
    return StreamingResult(
        observations=observations,
        pulse_batch=pulse_batch,
        predicted=predicted,
        batches=list(engine.stats),
        n_recoveries=n_recoveries,
        checkpoints_written=engine.n_checkpoints,
        obs=session if session.enabled else None,
    )


__all__ = [
    "BatchStats",
    "LinearCostModel",
    "MicroBatchEngine",
    "PreparedBatch",
    "SimulatedCostModel",
    "SimulatedDriverCrash",
    "StreamingResult",
    "canonical_ml_text",
    "stream_observations",
]
