"""Micro-batch streaming: D-RAPID as a continuously-fed, low-latency service.

The paper's end goal — survey-scale, real-time single pulse search — needs
more than a batch pipeline.  This subpackage layers a Spark-Streaming-style
engine over the existing stack:

- :mod:`~repro.streaming.receiver` — seeded deterministic replay of an
  observation set as timestamped, rate-limited blocks;
- :mod:`~repro.streaming.state` — pending clusters carried across batch
  boundaries, finalized by event-time watermarks;
- :mod:`~repro.streaming.engine` — the micro-batch driver loop (scheduling
  delay vs. processing time on a simulated clock, per-batch D-RAPID jobs
  through Sparklet);
- :mod:`~repro.streaming.backpressure` — Spark's PID rate estimator;
- :mod:`~repro.streaming.checkpoint` — durable engine state on the DFS and
  exactly-once crash recovery;
- :mod:`~repro.streaming.serving` — in-stream classification of finalized
  pulses, with a versioned :class:`~repro.streaming.serving.ModelCache`
  whose hot-swaps take effect at batch boundaries;
- :mod:`~repro.streaming.sessions` — the multi-tenant serving tier: N
  engines multiplexed on one driver under fair-share pools with admission
  control.

The governing invariant, asserted by tests and a hypothesis property
suite: concatenated streamed output is **byte-identical** to the offline
``run_pipeline`` output on the same data and seed (under the canonical
(key, cluster) order — see :func:`~repro.streaming.engine.canonical_ml_text`).

Use :func:`repro.api.run_streaming` rather than these pieces directly.
"""

from repro.streaming.backpressure import PIDConfig, PIDRateEstimator
from repro.streaming.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.streaming.engine import (
    BatchStats,
    LinearCostModel,
    MicroBatchEngine,
    SimulatedCostModel,
    SimulatedDriverCrash,
    StreamingResult,
    canonical_ml_text,
    stream_observations,
)
from repro.streaming.engine import PreparedBatch
from repro.streaming.receiver import Block, ReplayReceiver, StreamItem, build_stream
from repro.streaming.serving import ModelCache, StreamScorer
from repro.streaming.sessions import (
    AdmissionConfig,
    SessionInfo,
    SessionManager,
    weighted_fair_shares,
)
from repro.streaming.state import FinalizedUnit, StreamState

__all__ = [
    "AdmissionConfig",
    "BatchStats",
    "Block",
    "CheckpointError",
    "FinalizedUnit",
    "LinearCostModel",
    "MicroBatchEngine",
    "ModelCache",
    "PIDConfig",
    "PIDRateEstimator",
    "PreparedBatch",
    "ReplayReceiver",
    "SessionInfo",
    "SessionManager",
    "SimulatedCostModel",
    "SimulatedDriverCrash",
    "StreamScorer",
    "StreamingResult",
    "StreamItem",
    "StreamState",
    "build_stream",
    "canonical_ml_text",
    "read_checkpoint",
    "stream_observations",
    "weighted_fair_shares",
    "write_checkpoint",
]
