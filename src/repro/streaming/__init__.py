"""Micro-batch streaming: D-RAPID as a continuously-fed, low-latency service.

The paper's end goal — survey-scale, real-time single pulse search — needs
more than a batch pipeline.  This subpackage layers a Spark-Streaming-style
engine over the existing stack:

- :mod:`~repro.streaming.receiver` — seeded deterministic replay of an
  observation set as timestamped, rate-limited blocks;
- :mod:`~repro.streaming.state` — pending clusters carried across batch
  boundaries, finalized by event-time watermarks;
- :mod:`~repro.streaming.engine` — the micro-batch driver loop (scheduling
  delay vs. processing time on a simulated clock, per-batch D-RAPID jobs
  through Sparklet);
- :mod:`~repro.streaming.backpressure` — Spark's PID rate estimator;
- :mod:`~repro.streaming.checkpoint` — durable engine state on the DFS and
  exactly-once crash recovery;
- :mod:`~repro.streaming.serving` — in-stream classification of finalized
  pulses.

The governing invariant, asserted by tests and a hypothesis property
suite: concatenated streamed output is **byte-identical** to the offline
``run_pipeline`` output on the same data and seed (under the canonical
(key, cluster) order — see :func:`~repro.streaming.engine.canonical_ml_text`).

Use :func:`repro.api.run_streaming` rather than these pieces directly.
"""

from repro.streaming.backpressure import PIDConfig, PIDRateEstimator
from repro.streaming.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.streaming.engine import (
    BatchStats,
    LinearCostModel,
    MicroBatchEngine,
    SimulatedCostModel,
    SimulatedDriverCrash,
    StreamingResult,
    canonical_ml_text,
    stream_observations,
)
from repro.streaming.receiver import Block, ReplayReceiver, StreamItem, build_stream
from repro.streaming.serving import StreamScorer
from repro.streaming.state import FinalizedUnit, StreamState

__all__ = [
    "BatchStats",
    "Block",
    "CheckpointError",
    "FinalizedUnit",
    "LinearCostModel",
    "MicroBatchEngine",
    "PIDConfig",
    "PIDRateEstimator",
    "ReplayReceiver",
    "SimulatedCostModel",
    "SimulatedDriverCrash",
    "StreamScorer",
    "StreamingResult",
    "StreamItem",
    "StreamState",
    "build_stream",
    "canonical_ml_text",
    "read_checkpoint",
    "stream_observations",
    "write_checkpoint",
]
