"""In-stream serving: score finalized pulses as their batch completes.

The paper's end state is a pipeline where identification feeds
classification continuously (the GSP/CRAFTS systems run exactly this
shape).  Here the serving path is deliberately thin: a trained classifier
— loaded through :mod:`repro.ml.persistence`'s hardened unpickler — is
applied to each batch's finalized :class:`~repro.dataplane.PulseBatch`
feature matrix, so every pulse leaves the engine already labeled and the
per-batch end-to-end latency (arrival → labeled) is measurable.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane import PulseBatch


class StreamScorer:
    """Wraps any trained learner with a ``predict(X)`` method."""

    def __init__(self, model: Any) -> None:
        if not hasattr(model, "predict"):
            raise TypeError(
                f"serving model {type(model).__name__} has no predict() method"
            )
        self.model = model

    @classmethod
    def from_path(cls, path: str | Path) -> "StreamScorer":
        """Load a model saved by :func:`repro.ml.persistence.save_model`."""
        from repro.ml.persistence import load_model

        return cls(load_model(path))

    def score(self, batch: "PulseBatch") -> np.ndarray:
        """Predicted labels for one batch of finalized pulses."""
        if not len(batch):
            return np.empty(0, dtype=np.int64)
        return np.asarray(self.model.predict(batch.features))


__all__ = ["StreamScorer"]
