"""In-stream serving: score finalized pulses as their batch completes.

The paper's end state is a pipeline where identification feeds
classification continuously (the GSP/CRAFTS systems run exactly this
shape).  Two pieces:

- :class:`StreamScorer` — wraps a trained classifier (loaded through
  :mod:`repro.ml.persistence`'s hardened unpickler) and applies it to each
  batch's finalized :class:`~repro.dataplane.PulseBatch` feature matrix,
  so every pulse leaves the engine already labeled.
- :class:`ModelCache` — the multi-tenant extension: one shared store of
  loaded models, so N tenant sessions serving the same artifact hold one
  copy, with *versioned hot-swap*.  Publishing a new model under a key
  bumps its version; scorers bound to the cache pin (version, model) only
  at :meth:`StreamScorer.refresh`, which the engine calls at the start of
  each batch — a swap therefore takes effect at a batch boundary, never
  mid-batch, and each :class:`~repro.streaming.engine.BatchStats` records
  exactly which version labeled it.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane import PulseBatch


def _require_predict(model: Any) -> None:
    if not hasattr(model, "predict"):
        raise TypeError(
            f"serving model {type(model).__name__} has no predict() method"
        )


class ModelCache:
    """Shared, versioned store of loaded serving models.

    Keys are logical model names (one per tenant, or one shared by many).
    ``publish`` installs a model object and bumps the key's version;
    ``load`` goes through the hardened unpickler and shares the loaded
    object across keys that name the same path (tenants serving the same
    artifact do not pay for N copies).
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[int, Any]] = {}
        #: path → loaded model, so repeated loads of one artifact share.
        self._loaded_paths: dict[str, Any] = {}
        self.n_loads = 0

    def publish(self, key: str, model: Any) -> int:
        """Install ``model`` under ``key``; returns the new version (from 1).

        Scorers bound to ``key`` keep serving their pinned version until
        their next batch-boundary :meth:`StreamScorer.refresh`.
        """
        _require_predict(model)
        version = self.version_of(key) + 1
        self._entries[key] = (version, model)
        return version

    def load(self, key: str, path: str | Path) -> int:
        """Load a persisted model (hardened unpickler) and publish it."""
        from repro.ml.persistence import load_model

        path = str(path)
        model = self._loaded_paths.get(path)
        if model is None:
            model = load_model(path)
            self._loaded_paths[path] = model
            self.n_loads += 1
        return self.publish(key, model)

    def get(self, key: str) -> tuple[int, Any]:
        """Current ``(version, model)`` for a key; KeyError when absent."""
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"no model published under {key!r}")
        return entry

    def version_of(self, key: str) -> int:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else 0

    @property
    def keys(self) -> list[str]:
        return sorted(self._entries)


class StreamScorer:
    """Wraps any trained learner with a ``predict(X)`` method.

    A plain scorer is immutable (version 0).  A cache-bound scorer (see
    :meth:`from_cache`) pins the cache's current ``(version, model)`` and
    re-pins on :meth:`refresh` — the hot-swap point.
    """

    def __init__(self, model: Any) -> None:
        _require_predict(model)
        self.model = model
        #: Version of the pinned model (0 outside a ModelCache).
        self.version = 0
        self._cache: ModelCache | None = None
        self._key: str | None = None

    @classmethod
    def from_path(cls, path: str | Path) -> "StreamScorer":
        """Load a model saved by :func:`repro.ml.persistence.save_model`."""
        from repro.ml.persistence import load_model

        return cls(load_model(path))

    @classmethod
    def from_cache(cls, cache: ModelCache, key: str) -> "StreamScorer":
        """A scorer bound to a cache key, pinned at the key's current version."""
        version, model = cache.get(key)
        scorer = cls(model)
        scorer.version = version
        scorer._cache = cache
        scorer._key = key
        return scorer

    def refresh(self) -> bool:
        """Re-pin the cache's current model; True when a swap took effect.

        Called by the engine at the start of every batch, so a published
        model version becomes visible exactly at a batch boundary.  A
        no-op (False) for plain scorers.
        """
        if self._cache is None or self._key is None:
            return False
        version, model = self._cache.get(self._key)
        if version == self.version:
            return False
        self.model = model
        self.version = version
        return True

    def score(self, batch: "PulseBatch") -> np.ndarray:
        """Predicted labels for one batch of finalized pulses.

        A model whose predict() returns the wrong number of labels would
        silently misalign labels with pulses downstream; reject it here
        with a clear error instead.
        """
        if not len(batch):
            return np.empty(0, dtype=np.int64)
        out = np.asarray(self.model.predict(batch.features))
        if out.shape[0] != len(batch):
            raise ValueError(
                f"serving model {type(self.model).__name__} returned "
                f"{out.shape[0]} predictions for a batch of {len(batch)} "
                "pulses; predict() must return one label per row"
            )
        return out


__all__ = ["ModelCache", "StreamScorer"]
