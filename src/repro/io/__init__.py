"""File formats exchanged between pipeline stages (Fig. 2)."""

from repro.io.spe_files import (
    ClusterRecord,
    build_cluster_file,
    build_data_file,
    parse_cluster_line,
    read_ml_files,
    upload_observations,
)

__all__ = [
    "ClusterRecord",
    "build_cluster_file",
    "build_data_file",
    "parse_cluster_line",
    "read_ml_files",
    "upload_observations",
]
