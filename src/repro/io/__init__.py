"""File formats exchanged between pipeline stages (Fig. 2)."""

from repro.io.spe_files import (
    ClusterRecord,
    build_cluster_file,
    build_data_file,
    observation_cluster_batch,
    parse_cluster_file,
    parse_cluster_line,
    parse_data_file,
    read_ml_batch,
    read_ml_files,
    upload_observations,
)

__all__ = [
    "ClusterRecord",
    "build_cluster_file",
    "build_data_file",
    "observation_cluster_batch",
    "parse_cluster_file",
    "parse_cluster_line",
    "parse_data_file",
    "read_ml_batch",
    "read_ml_files",
    "upload_observations",
]
