"""The csv file formats D-RAPID exchanges through the DFS.

Two inputs (Section 5.1.1):

- **data file** — every SPE of the data set:
  ``key,DM,Sigma,Time_s,Sample,Downfact`` where ``key`` is the shared
  descriptive prefix ``dataset|MJD|sky|beam``;
- **cluster file** — one row per DBSCAN cluster to search:
  ``key,cluster_id,rank,n_spes,dm_lo,dm_hi,t_lo,t_hi,max_snr,source,is_rrat``.

The trailing ``source``/``is_rrat`` columns carry benchmark ground truth so
identified pulses can be labeled for supervised learning; production runs
leave them empty (D-RAPID itself never reads them during the search).

One output:

- **ML file** — one row per identified single pulse
  (:meth:`repro.core.rapid.SinglePulse.to_ml_row`), later aggregated into
  the classification benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.astro.spe import SPE_FILE_HEADER, spes_to_csv
from repro.core.rapid import SinglePulse

if TYPE_CHECKING:  # pragma: no cover
    from repro.astro.survey import Observation
    from repro.dfs import DFSClient

CLUSTER_FILE_HEADER = (
    "# key,cluster_id,rank,n_spes,dm_lo,dm_hi,t_lo,t_hi,max_snr,source,is_rrat"
)


@dataclass(frozen=True)
class ClusterRecord:
    """One cluster-file row (the unit of work D-RAPID distributes)."""

    key: str
    cluster_id: int
    rank: int
    n_spes: int
    dm_lo: float
    dm_hi: float
    t_lo: float
    t_hi: float
    max_snr: float
    source: str | None = None
    is_rrat: bool = False

    def to_line(self) -> str:
        return (
            f"{self.key},{self.cluster_id},{self.rank},{self.n_spes},"
            f"{self.dm_lo:.3f},{self.dm_hi:.3f},{self.t_lo:.6f},{self.t_hi:.6f},"
            f"{self.max_snr:.3f},{self.source or ''},{int(self.is_rrat)}"
        )


def parse_cluster_line(line: str) -> ClusterRecord:
    parts = line.rstrip("\n").split(",")
    if len(parts) != 11:
        raise ValueError(f"malformed cluster line ({len(parts)} fields): {line!r}")
    return ClusterRecord(
        key=parts[0],
        cluster_id=int(parts[1]),
        rank=int(parts[2]),
        n_spes=int(parts[3]),
        dm_lo=float(parts[4]),
        dm_hi=float(parts[5]),
        t_lo=float(parts[6]),
        t_hi=float(parts[7]),
        max_snr=float(parts[8]),
        source=parts[9] or None,
        is_rrat=bool(int(parts[10])),
    )


def build_data_file(observations: Iterable["Observation"]) -> str:
    """Concatenate every observation's SPEs into one data-file text."""
    chunks = [SPE_FILE_HEADER + "\n"]
    for obs in observations:
        chunks.append(spes_to_csv(obs.key, obs.spes))
    return "".join(chunks)


def build_cluster_file(observations: Iterable["Observation"]) -> str:
    """One row per cluster, with benchmark ground truth attached."""
    lines = [CLUSTER_FILE_HEADER]
    for obs in observations:
        key = obs.key.to_key()
        for cluster in obs.clusters:
            source, is_rrat = obs.cluster_truth.get(cluster.cluster_id, (None, False))
            lines.append(
                ClusterRecord(
                    key=key,
                    cluster_id=cluster.cluster_id,
                    rank=cluster.rank,
                    n_spes=cluster.size,
                    dm_lo=cluster.dm_lo,
                    dm_hi=cluster.dm_hi,
                    t_lo=cluster.t_lo,
                    t_hi=cluster.t_hi,
                    max_snr=cluster.max_snr,
                    source=source,
                    is_rrat=is_rrat,
                ).to_line()
            )
    return "\n".join(lines) + "\n"


def upload_observations(
    dfs: "DFSClient",
    observations: list["Observation"],
    data_path: str = "/surveys/data.csv",
    cluster_path: str = "/surveys/clusters.csv",
) -> tuple[str, str]:
    """Write both D-RAPID input files to the DFS; returns their paths."""
    dfs.put_text(data_path, build_data_file(observations))
    dfs.put_text(cluster_path, build_cluster_file(observations))
    return data_path, cluster_path


def read_ml_files(dfs: "DFSClient", prefix: str) -> list[SinglePulse]:
    """Aggregate stage-3 ML output files into SinglePulse records (stage 4)."""
    pulses: list[SinglePulse] = []
    for path in dfs.ls(prefix):
        for line in dfs.get_text(path).splitlines():
            if not line or line.startswith("#"):
                continue
            pulses.append(SinglePulse.from_ml_row(line))
    return pulses
