"""The csv file formats D-RAPID exchanges through the DFS.

Two inputs (Section 5.1.1):

- **data file** — every SPE of the data set:
  ``key,DM,Sigma,Time_s,Sample,Downfact`` where ``key`` is the shared
  descriptive prefix ``dataset|MJD|sky|beam``;
- **cluster file** — one row per DBSCAN cluster to search:
  ``key,cluster_id,rank,n_spes,dm_lo,dm_hi,t_lo,t_hi,max_snr,source,is_rrat``.

The trailing ``source``/``is_rrat`` columns carry benchmark ground truth so
identified pulses can be labeled for supervised learning; production runs
leave them empty (D-RAPID itself never reads them during the search).

One output:

- **ML file** — one row per identified single pulse
  (:meth:`repro.core.rapid.SinglePulse.to_ml_row`), later aggregated into
  the classification benchmark.

Since the columnar refactor, whole files are built and parsed through the
batch types (:class:`repro.dataplane.SPEBatch` /
:class:`~repro.dataplane.ClusterBatch` / :class:`~repro.dataplane.PulseBatch`)
rather than row at a time; the record-oriented builders are retained as
``_reference_*`` for the equivalence tests.  Parse errors raise
:class:`repro.dataplane.MalformedRowError` naming the file and 1-based
line number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.astro.spe import SPE_FILE_HEADER, spes_to_csv
from repro.dataplane import ClusterBatch, MalformedRowError, PulseBatch, SPEBatch
from repro.dataplane._columns import data_lines

if TYPE_CHECKING:  # pragma: no cover
    from repro.astro.survey import Observation
    # Annotation-only: a runtime import would close the cycle
    # repro.io -> repro.core -> repro.core.drapid -> repro.io.spe_files,
    # which breaks when a worker process first imports the package via
    # repro.io while unpickling a task payload.
    from repro.core.rapid import SinglePulse
    from repro.dfs import DFSClient

CLUSTER_FILE_HEADER = (
    "# key,cluster_id,rank,n_spes,dm_lo,dm_hi,t_lo,t_hi,max_snr,source,is_rrat"
)


@dataclass(frozen=True)
class ClusterRecord:
    """One cluster-file row (the unit of work D-RAPID distributes)."""

    key: str
    cluster_id: int
    rank: int
    n_spes: int
    dm_lo: float
    dm_hi: float
    t_lo: float
    t_hi: float
    max_snr: float
    source: str | None = None
    is_rrat: bool = False

    def to_line(self) -> str:
        return (
            f"{self.key},{self.cluster_id},{self.rank},{self.n_spes},"
            f"{self.dm_lo:.3f},{self.dm_hi:.3f},{self.t_lo:.6f},{self.t_hi:.6f},"
            f"{self.max_snr:.3f},{self.source or ''},{int(self.is_rrat)}"
        )


def parse_cluster_line(
    line: str, source: str | None = None, lineno: int | None = None
) -> ClusterRecord:
    """Parse one cluster-file row.

    ``source``/``lineno``, when given, are included in the error so a bad
    row can be located in the file it came from.
    """
    parts = line.rstrip("\n").split(",")
    if len(parts) != 11:
        raise MalformedRowError(
            f"malformed cluster line ({len(parts)} fields): {line!r}",
            source, lineno,
        )
    try:
        return ClusterRecord(
            key=parts[0],
            cluster_id=int(parts[1]),
            rank=int(parts[2]),
            n_spes=int(parts[3]),
            dm_lo=float(parts[4]),
            dm_hi=float(parts[5]),
            t_lo=float(parts[6]),
            t_hi=float(parts[7]),
            max_snr=float(parts[8]),
            source=parts[9] or None,
            is_rrat=bool(int(parts[10])),
        )
    except ValueError as exc:
        raise MalformedRowError(
            f"malformed cluster line ({exc}): {line!r}", source, lineno
        ) from None


def observation_cluster_batch(obs: "Observation") -> ClusterBatch:
    """One observation's clusters (with ground truth) as a ClusterBatch."""
    clusters = obs.clusters
    n = len(clusters)
    if n == 0:
        return ClusterBatch.empty()
    key = obs.key.to_key()
    truth = [obs.cluster_truth.get(c.cluster_id, (None, False)) for c in clusters]
    return ClusterBatch(
        np.full(n, key, dtype=object),
        np.array([c.cluster_id for c in clusters], dtype=np.int64),
        np.array([c.rank for c in clusters], dtype=np.int64),
        np.array([c.size for c in clusters], dtype=np.int64),
        np.array([c.dm_lo for c in clusters], dtype=np.float64),
        np.array([c.dm_hi for c in clusters], dtype=np.float64),
        np.array([c.t_lo for c in clusters], dtype=np.float64),
        np.array([c.t_hi for c in clusters], dtype=np.float64),
        np.array([c.max_snr for c in clusters], dtype=np.float64),
        np.array([name for name, _r in truth], dtype=object),
        np.array([r for _name, r in truth], dtype=np.bool_),
    )


def build_data_file(observations: Iterable["Observation"]) -> str:
    """Concatenate every observation's SPEs into one data-file text.

    Vectorized through each observation's :class:`SPEBatch`; byte-identical
    to :func:`_reference_build_data_file`.
    """
    chunks = [SPE_FILE_HEADER + "\n"]
    for obs in observations:
        chunks.append(obs.spe_batch.to_data_csv(obs.key.to_key()))
    return "".join(chunks)


def build_cluster_file(observations: Iterable["Observation"]) -> str:
    """One row per cluster, with benchmark ground truth attached.

    Serialized through :class:`ClusterBatch`; byte-identical to
    :func:`_reference_build_cluster_file`.
    """
    lines = [CLUSTER_FILE_HEADER]
    for obs in observations:
        lines.extend(observation_cluster_batch(obs).to_lines())
    return "\n".join(lines) + "\n"


def _reference_build_data_file(observations: Iterable["Observation"]) -> str:
    """The record-at-a-time data-file builder, retained for equivalence tests."""
    chunks = [SPE_FILE_HEADER + "\n"]
    for obs in observations:
        chunks.append(spes_to_csv(obs.key, obs.spes))
    return "".join(chunks)


def _reference_build_cluster_file(observations: Iterable["Observation"]) -> str:
    """The record-at-a-time cluster-file builder, retained for equivalence tests."""
    lines = [CLUSTER_FILE_HEADER]
    for obs in observations:
        key = obs.key.to_key()
        for cluster in obs.clusters:
            source, is_rrat = obs.cluster_truth.get(cluster.cluster_id, (None, False))
            lines.append(
                ClusterRecord(
                    key=key,
                    cluster_id=cluster.cluster_id,
                    rank=cluster.rank,
                    n_spes=cluster.size,
                    dm_lo=cluster.dm_lo,
                    dm_hi=cluster.dm_hi,
                    t_lo=cluster.t_lo,
                    t_hi=cluster.t_hi,
                    max_snr=cluster.max_snr,
                    source=source,
                    is_rrat=is_rrat,
                ).to_line()
            )
    return "\n".join(lines) + "\n"


def parse_data_file(text: str, source: str | None = None) -> dict[str, SPEBatch]:
    """Strictly parse a whole data file into per-key SPE batches.

    Keys appear in first-seen order.  Bad rows raise
    :class:`MalformedRowError` with ``source`` and the 1-based line number.
    """
    lines, linenos = data_lines(text)
    rows_by_key: dict[str, list[str]] = {}
    nums_by_key: dict[str, list[int]] = {}
    for line, num in zip(lines, linenos):
        key, sep, rest = line.partition(",")
        if not sep:
            raise MalformedRowError(
                f"malformed SPE line (no key prefix): {line!r}", source, num
            )
        rows_by_key.setdefault(key, []).append(rest)
        nums_by_key.setdefault(key, []).append(num)
    return {
        key: SPEBatch.from_csv_rows(rows, source=source, linenos=nums_by_key[key])
        for key, rows in rows_by_key.items()
    }


def parse_cluster_file(text: str, source: str | None = None) -> ClusterBatch:
    """Strictly parse a whole cluster file into one ClusterBatch."""
    lines, linenos = data_lines(text)
    return ClusterBatch.from_lines(lines, source=source, linenos=linenos)


def upload_observations(
    dfs: "DFSClient",
    observations: list["Observation"],
    data_path: str = "/surveys/data.csv",
    cluster_path: str = "/surveys/clusters.csv",
) -> tuple[str, str]:
    """Write both D-RAPID input files to the DFS; returns their paths."""
    dfs.put_text(data_path, build_data_file(observations))
    dfs.put_text(cluster_path, build_cluster_file(observations))
    return data_path, cluster_path


def read_ml_batch(dfs: "DFSClient", prefix: str) -> PulseBatch:
    """Aggregate stage-3 ML output files into one PulseBatch (stage 4).

    Each part file parses as one vectorized batch; a malformed row raises
    :class:`MalformedRowError` naming the part file and line number.
    """
    batches: list[PulseBatch] = []
    for path in dfs.ls(prefix):
        lines, linenos = data_lines(dfs.get_text(path))
        if lines:
            batches.append(
                PulseBatch.from_ml_lines(lines, source=path, linenos=linenos)
            )
    return PulseBatch.concat(batches)


def read_ml_files(dfs: "DFSClient", prefix: str) -> list[SinglePulse]:
    """Record-view adapter over :func:`read_ml_batch`."""
    return read_ml_batch(dfs, prefix).to_records()
