"""SMO: support vector machine trained by Sequential Minimal Optimization.

Weka's SMO (Platt 1998) with the simplifications appropriate to this
reproduction: the simplified SMO working-set heuristic (random second
index), linear or RBF kernel, internal feature standardization, and
one-vs-one pairwise decomposition for multiclass problems with majority
voting — Weka's exact multiclass strategy.

The one-vs-one decomposition is why the paper observes SMO training times
*growing* with the number of ALM classes (Fig. 5b): k classes mean
k(k-1)/2 binary machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _BinarySMO:
    """One binary soft-margin SVM trained with simplified SMO."""

    c: float
    tol: float
    max_passes: int
    kernel: str
    gamma: float
    seed: int
    alphas: np.ndarray | None = None
    b: float = 0.0
    X: np.ndarray | None = None
    y: np.ndarray | None = None

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        if self.kernel == "rbf":
            sq = (
                np.sum(A * A, axis=1)[:, None]
                + np.sum(B * B, axis=1)[None, :]
                - 2.0 * (A @ B.T)
            )
            return np.exp(-self.gamma * np.maximum(sq, 0.0))
        raise ValueError(f"unknown kernel {self.kernel!r}")

    def fit(self, X: np.ndarray, y_pm: np.ndarray) -> "_BinarySMO":
        """Train on labels in {-1, +1}."""
        n = X.shape[0]
        self.X, self.y = X, y_pm
        K = self._kernel_matrix(X, X)
        alphas = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)
        passes = 0
        while passes < self.max_passes:
            changed = 0
            # Decision values for all points under current (alphas, b).
            f = (alphas * y_pm) @ K + b
            errors = f - y_pm
            for i in range(n):
                e_i = float(errors[i])
                if (y_pm[i] * e_i < -self.tol and alphas[i] < self.c) or (
                    y_pm[i] * e_i > self.tol and alphas[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    e_j = float((alphas * y_pm) @ K[:, j] + b - y_pm[j])
                    a_i, a_j = alphas[i], alphas[j]
                    if y_pm[i] != y_pm[j]:
                        lo, hi = max(0.0, a_j - a_i), min(self.c, self.c + a_j - a_i)
                    else:
                        lo, hi = max(0.0, a_i + a_j - self.c), min(self.c, a_i + a_j)
                    if lo == hi:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    a_j_new = np.clip(a_j - y_pm[j] * (e_i - e_j) / eta, lo, hi)
                    if abs(a_j_new - a_j) < 1e-5:
                        continue
                    a_i_new = a_i + y_pm[i] * y_pm[j] * (a_j - a_j_new)
                    b1 = (
                        b - e_i
                        - y_pm[i] * (a_i_new - a_i) * K[i, i]
                        - y_pm[j] * (a_j_new - a_j) * K[i, j]
                    )
                    b2 = (
                        b - e_j
                        - y_pm[i] * (a_i_new - a_i) * K[i, j]
                        - y_pm[j] * (a_j_new - a_j) * K[j, j]
                    )
                    if 0 < a_i_new < self.c:
                        b = b1
                    elif 0 < a_j_new < self.c:
                        b = b2
                    else:
                        b = 0.5 * (b1 + b2)
                    alphas[i], alphas[j] = a_i_new, a_j_new
                    errors = (alphas * y_pm) @ K + b - y_pm
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        self.alphas, self.b = alphas, b
        return self

    def decision(self, X: np.ndarray) -> np.ndarray:
        assert self.alphas is not None and self.X is not None and self.y is not None
        sv = self.alphas > 1e-8
        if not sv.any():
            return np.full(X.shape[0], self.b)
        K = self._kernel_matrix(X, self.X[sv])
        return K @ (self.alphas[sv] * self.y[sv]) + self.b


@dataclass
class SMO:
    """Multiclass SVM: one-vs-one simplified SMO with voting."""

    c: float = 1.0
    tol: float = 1e-3
    max_passes: int = 3
    kernel: str = "rbf"
    gamma: float | None = None  # default: 1/d after standardization
    #: Cap on instances per binary problem; SMO is O(n²) in kernel evals and
    #: Weka-scale runs subsample internally for tractability.
    max_per_machine: int = 1500
    seed: int = 0
    _machines: list[tuple[int, int, _BinarySMO]] = field(default_factory=list, repr=False)
    _mu: np.ndarray | None = None
    _sigma: np.ndarray | None = None
    n_classes_: int = 0
    classes_seen_: tuple[int, ...] = ()

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SMO":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes_ = int(y.max()) + 1
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma < 1e-12] = 1.0
        self._sigma = sigma
        Xs = (X - self._mu) / self._sigma
        gamma = self.gamma if self.gamma is not None else 1.0 / X.shape[1]

        classes = [int(c) for c in np.unique(y)]
        self.classes_seen_ = tuple(classes)
        self._machines = []
        rng = np.random.default_rng(self.seed)
        for a_pos, cls_a in enumerate(classes):
            for cls_b in classes[a_pos + 1 :]:
                mask = (y == cls_a) | (y == cls_b)
                idx = np.nonzero(mask)[0]
                if idx.size > self.max_per_machine:
                    idx = rng.choice(idx, size=self.max_per_machine, replace=False)
                y_pm = np.where(y[idx] == cls_a, 1.0, -1.0)
                machine = _BinarySMO(
                    c=self.c, tol=self.tol, max_passes=self.max_passes,
                    kernel=self.kernel, gamma=gamma,
                    seed=int(rng.integers(0, 2**31)),
                )
                machine.fit(Xs[idx], y_pm)
                self._machines.append((cls_a, cls_b, machine))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._machines:
            if self.n_classes_ == 0:
                raise RuntimeError("fit() must be called before predict()")
            # Degenerate single-class training set.
            return np.full(np.asarray(X).shape[0], self.classes_seen_[0], dtype=int)
        X = np.asarray(X, dtype=float)
        Xs = (X - self._mu) / self._sigma
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=int)
        for cls_a, cls_b, machine in self._machines:
            dec = machine.decision(Xs)
            votes[dec >= 0, cls_a] += 1
            votes[dec < 0, cls_b] += 1
        return np.argmax(votes, axis=1)

    @property
    def n_machines(self) -> int:
        return len(self._machines)
