"""Filter feature selection: the five rankers of Table 4.

Every method maps ``(X, y)`` to one merit score per feature (higher =
better); :func:`select_top_k` keeps the paper's top-10.  The entropy
measures (IG, GR, SU) operate on MDL-discretized attributes, as Weka does.

==========================  ==================  ===========================
Method                      Type                Merit
==========================  ==================  ===========================
InfoGain (IG)               entropy             H(C) − H(C|A)
GainRatio (GR)              entropy             IG / H(A)
SymmetricalUncertainty (SU) entropy             2·IG / (H(A) + H(C))
Correlation (Cor)           linear correlation  mean |Pearson(A, 1[C=c])|
OneR (1R)                   machine learning    1R rule accuracy
==========================  ==================  ===========================
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml._split import entropy_from_counts
from repro.ml.discretize import mdl_discretize


def _joint_entropies(col: np.ndarray, y: np.ndarray, n_classes: int) -> tuple[float, float, float]:
    """(H(A), H(C), H(C|A)) for a discretized attribute column."""
    n = col.size
    n_bins = int(col.max()) + 1 if n else 1
    joint = np.zeros((n_bins, n_classes), dtype=np.int64)
    np.add.at(joint, (col, y), 1)
    h_a = entropy_from_counts(joint.sum(axis=1))
    h_c = entropy_from_counts(joint.sum(axis=0))
    h_c_given_a = 0.0
    for b in range(n_bins):
        nb = joint[b].sum()
        if nb:
            h_c_given_a += (nb / n) * entropy_from_counts(joint[b])
    return h_a, h_c, h_c_given_a


def rank_info_gain(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    binned, _cuts = mdl_discretize(X, y)
    y = np.asarray(y, dtype=int)
    n_classes = int(y.max()) + 1
    merits = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        _h_a, h_c, h_c_a = _joint_entropies(binned[:, j], y, n_classes)
        merits[j] = h_c - h_c_a
    return merits


def rank_gain_ratio(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    binned, _cuts = mdl_discretize(X, y)
    y = np.asarray(y, dtype=int)
    n_classes = int(y.max()) + 1
    merits = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        h_a, h_c, h_c_a = _joint_entropies(binned[:, j], y, n_classes)
        ig = h_c - h_c_a
        merits[j] = ig / h_a if h_a > 1e-12 else 0.0
    return merits


def rank_symmetrical_uncertainty(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    binned, _cuts = mdl_discretize(X, y)
    y = np.asarray(y, dtype=int)
    n_classes = int(y.max()) + 1
    merits = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        h_a, h_c, h_c_a = _joint_entropies(binned[:, j], y, n_classes)
        ig = h_c - h_c_a
        denom = h_a + h_c
        merits[j] = 2.0 * ig / denom if denom > 1e-12 else 0.0
    return merits


def rank_correlation(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Weka's CorrelationAttributeEval for a nominal class: the class-prior-
    weighted mean |Pearson correlation| between the attribute and each class
    indicator."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    n = y.size
    n_classes = int(y.max()) + 1
    merits = np.zeros(X.shape[1])
    xc = X - X.mean(axis=0)
    x_std = X.std(axis=0)
    for c in range(n_classes):
        ind = (y == c).astype(float)
        prior = ind.mean()
        if prior == 0.0 or prior == 1.0:
            continue
        ic = ind - prior
        i_std = ind.std()
        cov = xc.T @ ic / n
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(x_std > 1e-12, cov / (x_std * i_std), 0.0)
        merits += prior * np.abs(corr)
    return merits


def rank_oner(X: np.ndarray, y: np.ndarray, n_bins: int = 10) -> np.ndarray:
    """OneR merit: training accuracy of the best single-attribute rule.

    Each attribute is equal-frequency binned; the 1R rule predicts each
    bin's majority class (Holte 1993).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    n = y.size
    n_classes = int(y.max()) + 1
    merits = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        col = X[:, j]
        # Equal-frequency bin edges.
        qs = np.quantile(col, np.linspace(0, 1, n_bins + 1)[1:-1])
        binned = np.searchsorted(np.unique(qs), col, side="right")
        counts = np.zeros((int(binned.max()) + 1, n_classes), dtype=np.int64)
        np.add.at(counts, (binned, y), 1)
        merits[j] = counts.max(axis=1).sum() / n
    return merits


FS_METHODS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "IG": rank_info_gain,
    "GR": rank_gain_ratio,
    "SU": rank_symmetrical_uncertainty,
    "Cor": rank_correlation,
    "1R": rank_oner,
}


def rank_features(method: str, X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Merit score per feature under a Table 4 method name."""
    try:
        fn = FS_METHODS[method]
    except KeyError:
        raise ValueError(f"unknown feature selection method {method!r}; "
                         f"choose from {sorted(FS_METHODS)}") from None
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be (n, d) with one label per row")
    return fn(X, y)


def select_top_k(merits: np.ndarray, k: int = 10) -> list[int]:
    """Indices of the k best-ranked features (paper keeps the top ten)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    merits = np.asarray(merits, dtype=float)
    order = np.argsort(-merits, kind="stable")
    return [int(i) for i in order[:k]]
