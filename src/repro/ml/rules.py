"""Rule learners: JRip (RIPPER) and PART.

**JRip** follows RIPPER (Cohen 1995) as Weka implements it, simplified to
numeric attributes and without the global MDL-based optimization passes:
classes are processed from rarest to most common; for each class, rules are
grown condition-by-condition maximizing FOIL gain on a grow set, then
pruned suffix-wise on a prune set maximizing (p - n) / (p + n); rule
addition stops when a new rule's prune-set accuracy drops below 50%.

**PART** (Frank & Witten 1998) builds a C4.5 tree on the still-uncovered
instances, converts the leaf that covers the most of them into one rule,
removes the covered instances, and repeats — rules from repeated partial
trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ml.tree import J48


@dataclass(frozen=True)
class Condition:
    """One numeric test: feature <= threshold or feature > threshold."""

    feature: int
    threshold: float
    is_leq: bool

    def covers(self, X: np.ndarray) -> np.ndarray:
        col = X[:, self.feature]
        return col <= self.threshold if self.is_leq else col > self.threshold

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = "<=" if self.is_leq else ">"
        return f"f{self.feature} {op} {self.threshold:.4g}"


@dataclass
class Rule:
    """A conjunction of conditions predicting one class."""

    conditions: list[Condition]
    prediction: int

    def covers(self, X: np.ndarray) -> np.ndarray:
        mask = np.ones(X.shape[0], dtype=bool)
        for cond in self.conditions:
            mask &= cond.covers(X)
        return mask

    def __str__(self) -> str:  # pragma: no cover
        body = " and ".join(str(c) for c in self.conditions) or "true"
        return f"({body}) => class {self.prediction}"


def _foil_gain(p0: float, n0: float, p1: float, n1: float) -> float:
    """FOIL information gain of refining (p0, n0) coverage to (p1, n1)."""
    if p1 <= 0:
        return -math.inf
    before = math.log2(p0 / (p0 + n0)) if p0 > 0 else -1e9
    after = math.log2(p1 / (p1 + n1))
    return p1 * (after - before)


def _candidate_thresholds(col: np.ndarray, max_candidates: int = 32) -> np.ndarray:
    """Midpoints between distinct sorted values, subsampled for speed."""
    vals = np.unique(col)
    if vals.size < 2:
        return np.empty(0)
    mids = (vals[:-1] + vals[1:]) / 2.0
    if mids.size > max_candidates:
        step = mids.size / max_candidates
        mids = mids[(np.arange(max_candidates) * step).astype(int)]
    return mids


@dataclass
class JRip:
    """RIPPER rule learner (Weka's JRip, simplified; see module docstring)."""

    grow_fraction: float = 2.0 / 3.0
    max_conditions: int = 8
    max_rules_per_class: int = 32
    min_accuracy: float = 0.5
    seed: int = 0
    rules_: list[Rule] = field(default_factory=list, repr=False)
    default_class_: int = 0
    n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "JRip":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes_ = int(y.max()) + 1
        counts = np.bincount(y, minlength=self.n_classes_)
        self.default_class_ = int(np.argmax(counts))
        # Rarest classes first; the most common class becomes the default.
        order = [c for c in np.argsort(counts, kind="stable") if counts[c] > 0]
        order = [c for c in order if c != self.default_class_]

        rng = np.random.default_rng(self.seed)
        self.rules_ = []
        remaining = np.ones(X.shape[0], dtype=bool)
        for cls in order:
            self.rules_.extend(self._learn_class(X, y, remaining, int(cls), rng))
        return self

    def _learn_class(
        self, X: np.ndarray, y: np.ndarray, remaining: np.ndarray, cls: int,
        rng: np.random.Generator,
    ) -> list[Rule]:
        rules: list[Rule] = []
        for _ in range(self.max_rules_per_class):
            idx = np.nonzero(remaining)[0]
            if idx.size == 0 or not np.any(y[idx] == cls):
                break
            perm = rng.permutation(idx)
            cut = max(1, int(len(perm) * self.grow_fraction))
            grow, prune = perm[:cut], perm[cut:]
            rule = self._grow_rule(X[grow], (y[grow] == cls), cls)
            if rule is None:
                break
            if prune.size:
                rule = self._prune_rule(rule, X[prune], (y[prune] == cls))
            covered = rule.covers(X) & remaining
            n_cov = int(covered.sum())
            if n_cov == 0:
                break
            acc = float((y[covered] == cls).mean())
            if acc < self.min_accuracy:
                break
            rules.append(rule)
            remaining &= ~covered
        return rules

    def _grow_rule(self, X: np.ndarray, pos: np.ndarray, cls: int) -> Rule | None:
        mask = np.ones(X.shape[0], dtype=bool)
        conditions: list[Condition] = []
        p = float(pos.sum())
        n = float((~pos).sum())
        if p == 0:
            return None
        while len(conditions) < self.max_conditions and n > 0:
            best_gain = 0.0
            best_cond: Condition | None = None
            best_mask: np.ndarray | None = None
            sub = np.nonzero(mask)[0]
            for feat in range(X.shape[1]):
                for thr in _candidate_thresholds(X[sub, feat]):
                    for is_leq in (True, False):
                        cond = Condition(feat, float(thr), is_leq)
                        new_mask = mask & cond.covers(X)
                        p1 = float((pos & new_mask).sum())
                        n1 = float((~pos & new_mask).sum())
                        gain = _foil_gain(p, n, p1, n1)
                        if gain > best_gain:
                            best_gain, best_cond, best_mask = gain, cond, new_mask
            if best_cond is None:
                break
            conditions.append(best_cond)
            mask = best_mask  # type: ignore[assignment]
            p = float((pos & mask).sum())
            n = float((~pos & mask).sum())
        if not conditions:
            return None
        return Rule(conditions, cls)

    def _prune_rule(self, rule: Rule, X: np.ndarray, pos: np.ndarray) -> Rule:
        def value(conds: list[Condition]) -> float:
            r = Rule(conds, rule.prediction)
            m = r.covers(X)
            p = float((pos & m).sum())
            n = float((~pos & m).sum())
            return (p - n) / (p + n) if (p + n) > 0 else -1.0

        best = list(rule.conditions)
        best_v = value(best)
        # Drop suffixes (RIPPER prunes final conditions first).
        for cut in range(len(rule.conditions) - 1, 0, -1):
            cand = rule.conditions[:cut]
            v = value(cand)
            if v >= best_v:
                best, best_v = cand, v
        return Rule(best, rule.prediction)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.n_classes_ == 0:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        out = np.full(X.shape[0], self.default_class_, dtype=int)
        assigned = np.zeros(X.shape[0], dtype=bool)
        for rule in self.rules_:  # first matching rule wins
            hit = rule.covers(X) & ~assigned
            out[hit] = rule.prediction
            assigned |= hit
        return out

    @property
    def n_rules(self) -> int:
        return len(self.rules_)


@dataclass
class PART:
    """PART: rules extracted from repeated partial C4.5 trees."""

    max_rules: int = 64
    min_instances: int = 2
    tree_depth: int | None = 6
    rules_: list[Rule] = field(default_factory=list, repr=False)
    default_class_: int = 0
    n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PART":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes_ = int(y.max()) + 1
        self.default_class_ = int(np.argmax(np.bincount(y, minlength=self.n_classes_)))
        self.rules_ = []
        remaining = np.ones(X.shape[0], dtype=bool)
        for _ in range(self.max_rules):
            idx = np.nonzero(remaining)[0]
            if idx.size < 2 * self.min_instances:
                break
            ys = y[idx]
            if np.unique(ys).size == 1:
                # Pure remainder: one final catch-all rule.
                self.rules_.append(Rule([], int(ys[0])))
                remaining[idx] = False
                break
            tree = J48(min_instances=self.min_instances, prune=True, max_depth=self.tree_depth)
            tree.fit(X[idx], ys)
            rule = self._best_leaf_rule(tree, X[idx], ys)
            if rule is None:
                break
            covered = rule.covers(X) & remaining
            if not covered.any():
                break
            self.rules_.append(rule)
            remaining &= ~covered
        if remaining.any():
            leftover = y[remaining]
            self.default_class_ = int(np.argmax(np.bincount(leftover, minlength=self.n_classes_)))
        return self

    def _best_leaf_rule(self, tree: J48, X: np.ndarray, y: np.ndarray) -> Rule | None:
        """Turn the leaf covering the most instances into a rule."""
        best_count = 0
        best_rule: Rule | None = None
        # Enumerate leaves by following each instance's decision path; count
        # coverage per distinct path.
        paths: dict[tuple, tuple[int, int]] = {}
        for i in range(X.shape[0]):
            path = tuple(tree.decision_path(X[i]))
            count, _pred = paths.get(path, (0, 0))
            paths[path] = (count + 1, i)
        for path, (count, example_idx) in paths.items():
            if count > best_count:
                conditions = [
                    Condition(feat, thr, is_leq) for feat, thr, is_leq in path
                ]
                pred = int(tree.predict(X[example_idx : example_idx + 1])[0])
                best_rule = Rule(conditions, pred)
                best_count = count
        return best_rule

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.n_classes_ == 0:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        out = np.full(X.shape[0], self.default_class_, dtype=int)
        assigned = np.zeros(X.shape[0], dtype=bool)
        for rule in self.rules_:
            hit = rule.covers(X) & ~assigned
            out[hit] = rule.prediction
            assigned |= hit
        return out

    @property
    def n_rules(self) -> int:
        return len(self.rules_)
