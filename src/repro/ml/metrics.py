"""Classification performance measures (Section 5.2.4).

The paper scores every classifier — binary or multiclass — on its ability
to separate pulsars from non-pulsars: a pulsar instance predicted as *any*
pulsar subclass is a true positive.  ``scores_from_confusion`` therefore
operates on the 2×2 pulsar/non-pulsar collapse; use
:func:`repro.core.alm.binarize` to collapse multiclass labels first.

    Recall    = TP / (TP + FN)                      (Eq. 2)
    Precision = TP / (TP + FP)                      (Eq. 3)
    F-Measure = 2 P R / (P + R)                     (Eq. 4)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """(n_classes, n_classes) count matrix, rows = truth, cols = prediction."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if n_classes < 1:
        raise ValueError("n_classes must be >= 1")
    if y_true.size and (y_true.min() < 0 or y_true.max() >= n_classes):
        raise ValueError("labels out of range")
    if y_pred.size and (y_pred.min() < 0 or y_pred.max() >= n_classes):
        raise ValueError("predictions out of range")
    cm = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


@dataclass(frozen=True)
class BinaryScores:
    """Recall/Precision/F on the positive (pulsar) class."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def f_measure(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.tn + self.fp + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def binary_scores(y_true_bin: np.ndarray, y_pred_bin: np.ndarray) -> BinaryScores:
    """Scores from binarized (0/1) labels."""
    y_true_bin = np.asarray(y_true_bin, dtype=int)
    y_pred_bin = np.asarray(y_pred_bin, dtype=int)
    tp = int(np.sum((y_true_bin == 1) & (y_pred_bin == 1)))
    tn = int(np.sum((y_true_bin == 0) & (y_pred_bin == 0)))
    fp = int(np.sum((y_true_bin == 0) & (y_pred_bin == 1)))
    fn = int(np.sum((y_true_bin == 1) & (y_pred_bin == 0)))
    return BinaryScores(tp=tp, tn=tn, fp=fp, fn=fn)


def scores_from_confusion(cm: np.ndarray, positive_classes: list[int]) -> BinaryScores:
    """Collapse a multiclass confusion matrix to pulsar/non-pulsar scores."""
    cm = np.asarray(cm)
    pos = np.zeros(cm.shape[0], dtype=bool)
    pos[positive_classes] = True
    tp = int(cm[np.ix_(pos, pos)].sum())
    fn = int(cm[np.ix_(pos, ~pos)].sum())
    fp = int(cm[np.ix_(~pos, pos)].sum())
    tn = int(cm[np.ix_(~pos, ~pos)].sum())
    return BinaryScores(tp=tp, tn=tn, fp=fp, fn=fn)


def per_class_scores(cm: np.ndarray) -> list[dict[str, float]]:
    """One-vs-rest recall/precision/F for each class (reporting aid)."""
    cm = np.asarray(cm)
    out = []
    for c in range(cm.shape[0]):
        tp = int(cm[c, c])
        fn = int(cm[c].sum() - tp)
        fp = int(cm[:, c].sum() - tp)
        recall = tp / (tp + fn) if tp + fn else 0.0
        precision = tp / (tp + fp) if tp + fp else 0.0
        f = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        out.append({"recall": recall, "precision": precision, "f_measure": f})
    return out


@dataclass
class ClassificationReport:
    """Aggregated result of a set of classification trials (e.g. CV folds)."""

    recalls: list[float] = field(default_factory=list)
    precisions: list[float] = field(default_factory=list)
    f_measures: list[float] = field(default_factory=list)
    train_times_s: list[float] = field(default_factory=list)
    test_times_s: list[float] = field(default_factory=list)
    confusion: np.ndarray | None = None
    #: Per-instance correctness over all folds: instance index -> bool.
    instance_correct: dict[int, bool] = field(default_factory=dict)

    @property
    def recall(self) -> float:
        return float(np.mean(self.recalls)) if self.recalls else 0.0

    @property
    def precision(self) -> float:
        return float(np.mean(self.precisions)) if self.precisions else 0.0

    @property
    def f_measure(self) -> float:
        return float(np.mean(self.f_measures)) if self.f_measures else 0.0

    @property
    def train_time_s(self) -> float:
        return float(np.sum(self.train_times_s))

    @property
    def median_train_time_s(self) -> float:
        return float(np.median(self.train_times_s)) if self.train_times_s else 0.0

    def add_fold(
        self,
        scores: BinaryScores,
        train_time_s: float,
        test_time_s: float = 0.0,
        fold_confusion: np.ndarray | None = None,
    ) -> None:
        self.recalls.append(scores.recall)
        self.precisions.append(scores.precision)
        self.f_measures.append(scores.f_measure)
        self.train_times_s.append(train_time_s)
        self.test_times_s.append(test_time_s)
        if fold_confusion is not None:
            self.confusion = (
                fold_confusion.copy() if self.confusion is None else self.confusion + fold_confusion
            )

    def summary(self) -> str:
        return (
            f"Recall={self.recall:.3f} Precision={self.precision:.3f} "
            f"F-Measure={self.f_measure:.3f} train={self.train_time_s:.2f}s"
        )
