"""J48: a C4.5-style decision tree (gain-ratio splits, pessimistic pruning).

Matches the behaviour of Weka's J48 on all-numeric data: binary threshold
splits chosen by information gain ratio, minimum two instances per leaf,
and post-pruning by subtree replacement using C4.5's pessimistic
(Wilson upper-bound) error estimate with confidence factor 0.25.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ml._split import best_split

#: z-score of C4.5's default confidence factor CF = 0.25 (one-sided).
_Z_CF25 = 0.6744897501960817


@dataclass
class _Node:
    prediction: int
    counts: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def n_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.n_leaves() + self.right.n_leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())


def _pessimistic_errors(counts: np.ndarray, z: float = _Z_CF25) -> float:
    """C4.5's upper-bound error count for a leaf with these class counts."""
    n = float(counts.sum())
    if n <= 0:
        return 0.0
    e = float(n - counts.max())
    f = e / n
    # Wilson score upper bound on the error rate.
    z2 = z * z
    ub = (f + z2 / (2 * n) + z * math.sqrt(f / n - f * f / n + z2 / (4 * n * n))) / (1 + z2 / n)
    return ub * n


@dataclass
class J48:
    """C4.5 decision tree classifier.

    Parameters mirror Weka's defaults: ``min_instances=2`` (``-M 2``),
    ``prune=True`` with confidence 0.25 (``-C 0.25``).
    """

    min_instances: int = 2
    prune: bool = True
    max_depth: int | None = None
    _root: _Node | None = field(default=None, repr=False)
    n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "J48":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes_ = int(y.max()) + 1
        all_features = np.arange(X.shape[1])
        self._root = self._build(X, y, all_features, depth=0)
        if self.prune:
            self._prune_node(self._root)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, features: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=self.n_classes_)
        node = _Node(prediction=int(np.argmax(counts)), counts=counts)
        if (
            counts.max() == y.size
            or y.size < 2 * self.min_instances
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = best_split(X, y, self.n_classes_, features, criterion="gain_ratio",
                           min_leaf=self.min_instances)
        if split is None:
            return node
        mask = X[:, split.feature] <= split.threshold
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._build(X[mask], y[mask], features, depth + 1)
        node.right = self._build(X[~mask], y[~mask], features, depth + 1)
        return node

    def _prune_node(self, node: _Node) -> float:
        """Bottom-up subtree replacement; returns the node's error estimate."""
        if node.is_leaf:
            return _pessimistic_errors(node.counts)
        assert node.left is not None and node.right is not None
        subtree_err = self._prune_node(node.left) + self._prune_node(node.right)
        leaf_err = _pessimistic_errors(node.counts)
        if leaf_err <= subtree_err + 0.1:  # C4.5's bias toward the simpler tree
            node.left = node.right = None
            node.feature = -1
            return leaf_err
        return subtree_err

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape[0], dtype=int)
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        out = np.zeros((X.shape[0], self.n_classes_), dtype=float)
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            total = node.counts.sum()
            out[i] = node.counts / total if total else 1.0 / self.n_classes_
        return out

    # -- introspection (used by PART and tests) -----------------------------
    @property
    def n_leaves(self) -> int:
        return self._root.n_leaves() if self._root else 0

    @property
    def depth(self) -> int:
        return self._root.depth() if self._root else 0

    def decision_path(self, x: np.ndarray) -> list[tuple[int, float, bool]]:
        """(feature, threshold, went_left) conditions from root to leaf."""
        if self._root is None:
            raise RuntimeError("fit() must be called before decision_path()")
        node = self._root
        path = []
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            left = bool(x[node.feature] <= node.threshold)
            path.append((node.feature, node.threshold, left))
            node = node.left if left else node.right
        return path
