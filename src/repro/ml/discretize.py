"""Fayyad–Irani MDL supervised discretization.

The entropy-based feature rankers (InfoGain, GainRatio,
SymmetricalUncertainty) are defined on nominal attributes; Weka first
discretizes numeric attributes with the Fayyad & Irani (1993) method:
recursively split each attribute at the entropy-minimizing cut point and
accept the split only if its information gain passes the MDL criterion

    gain > [ log2(N - 1) + log2(3^k - 2) - k E + k1 E1 + k2 E2 ] / N

where k/k1/k2 count classes present in the parent/children and E/E1/E2 are
their entropies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml._split import entropy_from_counts


def _counts(y: np.ndarray, n_classes: int) -> np.ndarray:
    return np.bincount(y, minlength=n_classes)


def _best_cut(xs: np.ndarray, ys: np.ndarray, n_classes: int) -> tuple[int, float] | None:
    """Boundary index and weighted child entropy of the best cut, or None.

    ``xs`` must be sorted.  Candidate cuts are positions where the value
    changes (Fayyad & Irani showed optimal cuts lie on class boundaries; the
    value-change superset keeps the vectorization simple and is correct).
    """
    n = xs.size
    if n < 2:
        return None
    onehot = np.zeros((n, n_classes), dtype=np.int64)
    onehot[np.arange(n), ys] = 1
    prefix = np.cumsum(onehot, axis=0)[:-1]
    total = prefix[-1] + onehot[-1]
    left = prefix.astype(float)
    right = total.astype(float) - left
    nl = left.sum(axis=1)
    nr = right.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        pl = left / nl[:, None]
        pr = right / nr[:, None]
        el = -np.nansum(np.where(pl > 0, pl * np.log2(pl), 0.0), axis=1)
        er = -np.nansum(np.where(pr > 0, pr * np.log2(pr), 0.0), axis=1)
    weighted = (nl * el + nr * er) / n
    valid = xs[1:] != xs[:-1]
    if not valid.any():
        return None
    weighted = np.where(valid, weighted, np.inf)
    pos = int(np.argmin(weighted))
    return pos, float(weighted[pos])


def _mdl_accepts(
    ys: np.ndarray, ys_left: np.ndarray, ys_right: np.ndarray, n_classes: int, gain: float
) -> bool:
    n = ys.size
    e = entropy_from_counts(_counts(ys, n_classes))
    e1 = entropy_from_counts(_counts(ys_left, n_classes))
    e2 = entropy_from_counts(_counts(ys_right, n_classes))
    k = int(np.count_nonzero(_counts(ys, n_classes)))
    k1 = int(np.count_nonzero(_counts(ys_left, n_classes)))
    k2 = int(np.count_nonzero(_counts(ys_right, n_classes)))
    delta = math.log2(max(3.0**k - 2.0, 1.0)) - (k * e - k1 * e1 - k2 * e2)
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


def mdl_cut_points(
    x: np.ndarray, y: np.ndarray, n_classes: int, max_depth: int = 8
) -> list[float]:
    """All accepted cut points of one attribute, ascending."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=int)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    order = np.argsort(x, kind="stable")
    xs, ys = x[order], y[order]
    cuts: list[float] = []

    def recurse(lo: int, hi: int, depth: int) -> None:
        if depth >= max_depth or hi - lo < 4:
            return
        seg_x, seg_y = xs[lo:hi], ys[lo:hi]
        found = _best_cut(seg_x, seg_y, n_classes)
        if found is None:
            return
        pos, child_entropy = found
        parent_entropy = entropy_from_counts(_counts(seg_y, n_classes))
        gain = parent_entropy - child_entropy
        if gain <= 0:
            return
        if not _mdl_accepts(seg_y, seg_y[: pos + 1], seg_y[pos + 1 :], n_classes, gain):
            return
        cuts.append(0.5 * (seg_x[pos] + seg_x[pos + 1]))
        recurse(lo, lo + pos + 1, depth + 1)
        recurse(lo + pos + 1, hi, depth + 1)

    recurse(0, xs.size, 0)
    return sorted(cuts)


def discretize_column(x: np.ndarray, cuts: list[float]) -> np.ndarray:
    """Map values to bin indices given cut points (0..len(cuts))."""
    if not cuts:
        return np.zeros(np.asarray(x).shape[0], dtype=int)
    return np.searchsorted(np.asarray(cuts), np.asarray(x, dtype=float), side="right")


def mdl_discretize(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, list[list[float]]]:
    """Discretize every column; returns (binned X, per-column cut points).

    Columns where MDL accepts no cut collapse to a single bin — exactly how
    Weka marks an attribute as uninformative (its InfoGain becomes 0).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    n_classes = int(y.max()) + 1 if y.size else 1
    binned = np.empty(X.shape, dtype=int)
    all_cuts: list[list[float]] = []
    for j in range(X.shape[1]):
        cuts = mdl_cut_points(X[:, j], y, n_classes)
        all_cuts.append(cuts)
        binned[:, j] = discretize_column(X[:, j], cuts)
    return binned, all_cuts
