"""From-scratch machine learning library (the paper's Weka stand-in).

Learners (Table 5):

=============  =======================  ==============================
Paper name     Type                     Implementation
=============  =======================  ==============================
MPN            artificial neural net    :class:`repro.ml.mlp.MLP`
SMO            support vector machine   :class:`repro.ml.svm.SMO`
JRip           rule learner             :class:`repro.ml.rules.JRip`
J48            decision tree (C4.5)     :class:`repro.ml.tree.J48`
PART           rule + tree              :class:`repro.ml.rules.PART`
RandomForest   ensemble tree            :class:`repro.ml.forest.RandomForest`
=============  =======================  ==============================

Feature selection (Table 4): InfoGain, GainRatio, SymmetricalUncertainty,
Correlation, OneR — :mod:`repro.ml.feature_selection`, on top of
Fayyad–Irani MDL discretization (:mod:`repro.ml.discretize`).

Support: stratified cross-validation and trial running
(:mod:`repro.ml.validation`), SMOTE imbalance treatment
(:mod:`repro.ml.smote`), confusion-matrix metrics (:mod:`repro.ml.metrics`).
"""

from repro.ml.curves import PrCurve, RocCurve, candidates_to_inspect, pr_curve, roc_curve
from repro.ml.dataset import Dataset
from repro.ml.distributed import DistributedRandomForest
from repro.ml.feature_selection import FS_METHODS, rank_features, select_top_k
from repro.ml.forest import RandomForest
from repro.ml.metrics import ClassificationReport, confusion_matrix, scores_from_confusion
from repro.ml.mlp import MLP
from repro.ml.persistence import load_benchmark, load_model, save_benchmark, save_model
from repro.ml.rules import PART, JRip
from repro.ml.smote import balance_with_smote, smote
from repro.ml.svm import SMO
from repro.ml.tree import J48
from repro.ml.validation import cross_validate, stratified_kfold

LEARNERS = {
    "MPN": MLP,
    "SMO": SMO,
    "JRip": JRip,
    "J48": J48,
    "PART": PART,
    "RF": RandomForest,
}

__all__ = [
    "ClassificationReport",
    "DistributedRandomForest",
    "PrCurve",
    "RocCurve",
    "candidates_to_inspect",
    "load_benchmark",
    "load_model",
    "pr_curve",
    "roc_curve",
    "save_benchmark",
    "save_model",
    "Dataset",
    "FS_METHODS",
    "J48",
    "JRip",
    "LEARNERS",
    "MLP",
    "PART",
    "RandomForest",
    "SMO",
    "balance_with_smote",
    "confusion_matrix",
    "cross_validate",
    "rank_features",
    "scores_from_confusion",
    "select_top_k",
    "smote",
    "stratified_kfold",
]
