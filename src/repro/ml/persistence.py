"""Model and benchmark persistence.

Surveys run identification once and classification many times; persisting
trained classifiers and labeled benchmarks between sessions is what makes
that workflow practical.  Models serialize via pickle (they are plain
NumPy/dataclass object graphs); benchmarks serialize as ``.npz`` +
sidecar metadata so the (potentially large) feature matrix stays binary.

Loading is hardened: model files travel between machines (and, with the
streaming serving path, get loaded by long-running services), and a stock
``pickle.load`` executes whatever callable a hostile payload names.
:func:`load_model` therefore unpickles through an allowlisting
``Unpickler`` that only resolves ``repro.*``, NumPy, and the stdlib types
our dataclass graphs actually reference — anything else raises
:class:`pickle.UnpicklingError` naming the rejected class.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any

import numpy as np

#: Format version embedded in every artifact; bump on breaking layout change.
FORMAT_VERSION = 1

#: Modules a saved model may reference: our own types, NumPy's
#: reconstruction machinery, and the stdlib modules dataclass/namedtuple
#: graphs serialize through.
_ALLOWED_MODULES = {"repro", "numpy", "collections", "dataclasses", "copyreg"}
_ALLOWED_MODULE_PREFIXES = ("repro.", "numpy.", "collections.")
#: Plain builtins that appear in pickles of benign object graphs.  Notably
#: absent: ``eval``, ``exec``, ``getattr``, ``__import__`` — anything that
#: turns unpickling into code execution.
_ALLOWED_BUILTINS = frozenset({
    "bool", "bytearray", "bytes", "complex", "dict", "float", "frozenset",
    "int", "list", "object", "range", "set", "slice", "str", "tuple",
})


class _ModelUnpickler(pickle.Unpickler):
    """Unpickler whose ``find_class`` allowlists model-graph types only."""

    def find_class(self, module: str, name: str) -> Any:
        if module == "builtins" and name in _ALLOWED_BUILTINS:
            return super().find_class(module, name)
        if module in _ALLOWED_MODULES or module.startswith(_ALLOWED_MODULE_PREFIXES):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"refusing to unpickle {module}.{name}: saved models may only "
            "reference repro.*, NumPy, and basic stdlib container types"
        )


def save_model(model: Any, path: str | Path) -> None:
    """Persist a trained classifier to ``path`` (pickle, versioned header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "class_name": type(model).__name__,
        "model": model,
    }
    with path.open("wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_model(path: str | Path) -> Any:
    """Load a classifier saved by :func:`save_model`.

    Unpickles through an allowlist (``repro.*``, NumPy, stdlib container
    types); a payload referencing anything else — e.g. ``os.system`` — is
    rejected with :class:`pickle.UnpicklingError` before any code runs.
    """
    path = Path(path)
    with path.open("rb") as fh:
        payload = _ModelUnpickler(fh).load()
    if not isinstance(payload, dict) or "model" not in payload:
        raise ValueError(f"{path} is not a saved model artifact")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} has format version {version}; this build reads {FORMAT_VERSION}"
        )
    return payload["model"]


def save_benchmark(bench: "Any", path: str | Path) -> None:
    """Persist a :class:`repro.astro.benchmark.Benchmark` (features + labels).

    The pulse provenance objects are not stored — the persisted artifact is
    the classification benchmark (matrix, truth flags, source names), which
    is what downstream experiments consume.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path.with_suffix(".npz"),
        features=bench.features,
        is_pulsar=bench.is_pulsar,
        is_rrat=bench.is_rrat,
    )
    meta = {
        "format_version": FORMAT_VERSION,
        "survey_name": bench.survey_name,
        "source_names": [s or "" for s in bench.source_names],
    }
    path.with_suffix(".json").write_text(json.dumps(meta))


def load_benchmark(path: str | Path) -> "Any":
    """Load a benchmark saved by :func:`save_benchmark`."""
    from repro.astro.benchmark import Benchmark

    path = Path(path)
    meta = json.loads(path.with_suffix(".json").read_text())
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"{path} has format version {meta.get('format_version')}; "
            f"this build reads {FORMAT_VERSION}"
        )
    arrays = np.load(path.with_suffix(".npz"))
    return Benchmark(
        survey_name=meta["survey_name"],
        features=arrays["features"],
        is_pulsar=arrays["is_pulsar"],
        is_rrat=arrays["is_rrat"],
        source_names=[s or None for s in meta["source_names"]],
        pulses=[],
    )
