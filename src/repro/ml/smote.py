"""SMOTE: Synthetic Minority Oversampling TEchnique (Chawla et al. 2002).

For each minority instance, synthetic instances are placed uniformly at
random along the segments to its k nearest minority neighbours — small
random perturbations rather than duplicates, which is what lets SMOTE
oversample without the overfitting of plain replication (Section 5.2.1).
The paper applies SMOTE to training folds only, never to test folds;
:func:`repro.ml.validation.cross_validate` enforces that.
"""

from __future__ import annotations

import numpy as np


def _k_nearest(X: np.ndarray, k: int) -> np.ndarray:
    """Indices of each row's k nearest other rows (Euclidean, brute force)."""
    n = X.shape[0]
    sq = np.sum(X * X, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.fill_diagonal(d2, np.inf)
    k = min(k, n - 1)
    return np.argsort(d2, axis=1)[:, :k]


def smote(
    X_minority: np.ndarray,
    n_synthetic: int,
    k: int = 5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate ``n_synthetic`` synthetic minority instances."""
    X_minority = np.asarray(X_minority, dtype=float)
    if X_minority.ndim != 2:
        raise ValueError("X_minority must be 2-D")
    n = X_minority.shape[0]
    if n_synthetic < 0:
        raise ValueError(f"n_synthetic must be >= 0, got {n_synthetic}")
    if n_synthetic == 0:
        return np.empty((0, X_minority.shape[1]))
    rng = rng or np.random.default_rng(0)
    if n == 1:
        # A single seed instance has no neighbours: jitter it slightly.
        return X_minority[0] + rng.normal(0.0, 1e-6, size=(n_synthetic, X_minority.shape[1]))
    neigh = _k_nearest(X_minority, k)
    base = rng.integers(0, n, size=n_synthetic)
    pick = rng.integers(0, neigh.shape[1], size=n_synthetic)
    partner = neigh[base, pick]
    gap = rng.random((n_synthetic, 1))
    return X_minority[base] + gap * (X_minority[partner] - X_minority[base])


def balance_with_smote(
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    target_ratio: float = 1.0,
    seed: int = 0,
    non_pulsar_class: int | None = None,
    mode: str = "subclass",
) -> tuple[np.ndarray, np.ndarray]:
    """Oversample minority classes with SMOTE, scheme-aware.

    For binary labels (or ``non_pulsar_class is None``) every minority
    class is raised toward the global majority: the pulsar benchmarks gain
    ~n synthetic positives, roughly doubling the training set.

    For a multiclass scheme (``non_pulsar_class`` given, ≥ 2 positive
    classes) the paper does not pin down the policy, and the two natural
    readings drive different phenomena — so both are implemented:

    - ``mode="subclass"`` (default): pulsar subclasses are equalized *among
      themselves* (each raised to the largest subclass).  Inflation is
      marginal, so multiclass-balanced training sets are far smaller than
      binary-balanced ones — the execution-performance asymmetry behind
      ALM's training-time cuts (RQ5).
    - ``mode="equal_share"``: the positive side is raised to the majority
      count as a whole, split uniformly across subclasses.  Rare subclasses
      (Far-Weak, RRAT) receive concentrated synthetic support (SMOTE
      interpolates within the subclass rather than across the whole diffuse
      positive class), which is what lifts ALM on the rarely-classified-
      correctly instances (RQ4).  Total size matches the binary treatment.

    ``target_ratio`` scales the target count (1.0 = fully balanced).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must have equal length")
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError(f"target_ratio must be in (0, 1], got {target_ratio}")
    rng = np.random.default_rng(seed)
    counts = np.bincount(y)

    positive_classes = [
        c for c in range(counts.size)
        if counts[c] > 0 and (non_pulsar_class is None or c != non_pulsar_class)
    ]
    if mode not in ("subclass", "equal_share"):
        raise ValueError(f"mode must be 'subclass' or 'equal_share', got {mode!r}")
    if non_pulsar_class is not None and len(positive_classes) >= 2:
        if mode == "equal_share":
            # Positive side raised to the majority, split uniformly.
            majority = int(counts[non_pulsar_class])
            share = int(round(majority * target_ratio / len(positive_classes)))
            targets = {c: max(share, int(counts[c])) for c in positive_classes}
        else:
            # Subclasses equalized among themselves.
            target = int(round(max(counts[c] for c in positive_classes) * target_ratio))
            targets = {c: target for c in positive_classes}
    else:
        # Binary (or degenerate): minorities up to the global majority.
        target = int(round(counts.max() * target_ratio))
        targets = {c: target for c in range(counts.size) if counts[c] > 0}

    new_X = [X]
    new_y = [y]
    for cls, target in targets.items():
        count = int(counts[cls])
        if count >= target:
            continue
        synth = smote(X[y == cls], target - count, k=k, rng=rng)
        new_X.append(synth)
        new_y.append(np.full(synth.shape[0], cls, dtype=int))
    return np.vstack(new_X), np.concatenate(new_y)
