"""Threshold curves: ROC and precision–recall for probabilistic classifiers.

The paper reports fixed-threshold Recall/Precision/F, but a survey pipeline
tunes its operating point — how many candidates humans can inspect — along
these curves.  Works with any classifier exposing ``predict_proba``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RocCurve:
    """False-positive vs true-positive rates over score thresholds."""

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the ROC curve (trapezoidal)."""
        return float(np.trapezoid(self.tpr, self.fpr))


@dataclass(frozen=True)
class PrCurve:
    """Precision vs recall over score thresholds."""

    thresholds: np.ndarray
    precision: np.ndarray
    recall: np.ndarray

    @property
    def average_precision(self) -> float:
        """Step-interpolated area under the PR curve."""
        recall = np.concatenate([[0.0], self.recall])
        precision = np.concatenate([[1.0], self.precision])
        return float(np.sum((recall[1:] - recall[:-1]) * precision[1:]))


def _validate(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute a curve from zero instances")
    if not set(np.unique(y_true)) <= {0, 1}:
        raise ValueError("y_true must be binary 0/1")
    return y_true, scores


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> RocCurve:
    """ROC curve of positive-class scores (higher score = more positive)."""
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    y_sorted = y_true[order]
    s_sorted = scores[order]
    # Cumulative TP/FP as the threshold drops past each distinct score.
    tp = np.cumsum(y_sorted)
    fp = np.cumsum(1 - y_sorted)
    distinct = np.nonzero(np.diff(s_sorted, append=-np.inf))[0]
    tp, fp = tp[distinct], fp[distinct]
    n_pos = max(int(y_true.sum()), 1)
    n_neg = max(int((1 - y_true).sum()), 1)
    tpr = np.concatenate([[0.0], tp / n_pos])
    fpr = np.concatenate([[0.0], fp / n_neg])
    thresholds = np.concatenate([[np.inf], s_sorted[distinct]])
    return RocCurve(thresholds=thresholds, fpr=fpr, tpr=tpr)


def pr_curve(y_true: np.ndarray, scores: np.ndarray) -> PrCurve:
    """Precision–recall curve of positive-class scores."""
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    y_sorted = y_true[order]
    s_sorted = scores[order]
    tp = np.cumsum(y_sorted)
    fp = np.cumsum(1 - y_sorted)
    distinct = np.nonzero(np.diff(s_sorted, append=-np.inf))[0]
    tp, fp = tp[distinct], fp[distinct]
    n_pos = max(int(y_true.sum()), 1)
    precision = tp / np.maximum(tp + fp, 1)
    recall = tp / n_pos
    return PrCurve(thresholds=s_sorted[distinct], precision=precision, recall=recall)


def candidates_to_inspect(y_true: np.ndarray, scores: np.ndarray,
                          target_recall: float = 0.95) -> int:
    """How many top-scored candidates must be inspected to reach a recall.

    The operational quantity behind the paper's precision discussion: "a low
    precision ... results in a large number of instances requiring manual
    inspection".
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError(f"target_recall must be in (0, 1], got {target_recall}")
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    tp = np.cumsum(y_true[order])
    needed = int(np.ceil(target_recall * max(int(y_true.sum()), 1)))
    hits = np.nonzero(tp >= needed)[0]
    if hits.size == 0:
        return int(y_true.size)
    return int(hits[0]) + 1
