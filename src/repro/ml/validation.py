"""Stratified cross-validation and the paper's trial protocol.

The paper's protocol (Section 6.2): each benchmark is divided into six
folds — one reserved for feature selection, five for cross-validated
training/testing.  :func:`paper_protocol_split` reproduces that;
:func:`cross_validate` runs the five-fold part, timing training, applying
SMOTE to training folds only, and scoring on the binary pulsar/non-pulsar
collapse regardless of the labeling scheme.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.core.alm import AlmScheme, binarize
from repro.ml.metrics import BinaryScores, ClassificationReport, binary_scores, confusion_matrix


def stratified_kfold(
    y: np.ndarray, n_folds: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """(train_idx, test_idx) pairs with per-class proportional allocation."""
    y = np.asarray(y, dtype=int)
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if y.size < n_folds:
        raise ValueError(f"cannot make {n_folds} folds from {y.size} instances")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(y.size, dtype=int)
    for cls in np.unique(y):
        idx = np.nonzero(y == cls)[0]
        rng.shuffle(idx)
        # Round-robin assignment keeps every fold's class mix proportional.
        fold_of[idx] = np.arange(idx.size) % n_folds
    out = []
    for f in range(n_folds):
        test = np.nonzero(fold_of == f)[0]
        train = np.nonzero(fold_of != f)[0]
        out.append((train, test))
    return out


def paper_protocol_split(
    y: np.ndarray, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Six-way split: (feature-selection fold indices, remaining indices)."""
    y = np.asarray(y, dtype=int)
    folds = stratified_kfold(y, 6, seed=seed)
    fs_fold = folds[0][1]
    rest = folds[0][0]
    return fs_fold, rest


def cross_validate(
    factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    positive_collapse: AlmScheme | None = None,
    apply_smote: bool = False,
    smote_ratio: float = 1.0,
    smote_mode: str = "subclass",
    feature_subset: Sequence[int] | None = None,
    seed: int = 0,
) -> ClassificationReport:
    """Run one classification trial: k-fold CV with timing.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh (unfit) classifier.
    positive_collapse:
        The ALM scheme whose non-pulsar class defines the negative side of
        the binary scoring collapse.  ``None`` means labels are already
        binary 0/1.
    apply_smote:
        Balance *training* folds with SMOTE (test folds untouched).
    feature_subset:
        Column indices to keep (output of feature selection).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if feature_subset is not None:
        X = X[:, list(feature_subset)]
    n_classes = int(y.max()) + 1
    report = ClassificationReport()

    for train_idx, test_idx in stratified_kfold(y, n_folds, seed=seed):
        X_train, y_train = X[train_idx], y[train_idx]
        X_test, y_test = X[test_idx], y[test_idx]
        if apply_smote:
            from repro.core.alm import NON_PULSAR
            from repro.ml.smote import balance_with_smote

            non_pulsar = (
                positive_collapse.class_index(NON_PULSAR)
                if positive_collapse is not None
                else None
            )
            X_train, y_train = balance_with_smote(
                X_train, y_train, target_ratio=smote_ratio, seed=seed,
                non_pulsar_class=non_pulsar, mode=smote_mode,
            )
        clf = factory()
        t0 = time.perf_counter()
        clf.fit(X_train, y_train)  # type: ignore[attr-defined]
        train_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        y_pred = clf.predict(X_test)  # type: ignore[attr-defined]
        test_time = time.perf_counter() - t0

        if positive_collapse is not None:
            true_bin = binarize(positive_collapse, y_test)
            pred_bin = binarize(positive_collapse, y_pred)
        else:
            true_bin = (y_test != 0).astype(int)
            pred_bin = (y_pred != 0).astype(int)
        scores: BinaryScores = binary_scores(true_bin, pred_bin)
        cm = confusion_matrix(y_test, y_pred, n_classes)
        report.add_fold(scores, train_time, test_time, cm)

        # Per-instance correctness on the binary collapse — RQ4's raw data.
        correct = true_bin == pred_bin
        for local_i, global_i in enumerate(test_idx):
            report.instance_correct[int(global_i)] = bool(correct[local_i])
    return report


def most_misclassified(
    reports: dict[str, ClassificationReport],
    positive_mask: np.ndarray,
    miss_range: tuple[float, float] = (0.75, 0.99),
) -> list[int]:
    """Positive instances missed by a fraction of classifiers in the range.

    ``reports`` maps a classifier description to its CV report; an instance
    counts as missed by a classifier when ``instance_correct`` is False.
    Reproduces RQ4's "missed by 75–99% of all classifiers" population.
    """
    positive_mask = np.asarray(positive_mask, dtype=bool)
    lo, hi = miss_range
    out = []
    n_classifiers = len(reports)
    if n_classifiers == 0:
        return out
    for i in np.nonzero(positive_mask)[0]:
        missed = sum(
            1 for rep in reports.values() if rep.instance_correct.get(int(i)) is False
        )
        frac = missed / n_classifiers
        if lo <= frac <= hi:
            out.append(int(i))
    return out
