"""Distributed RandomForest training on Sparklet (the paper's future work).

Section 7: "In future work, we plan to leverage distributed systems and
parallel machine learning to further improve the execution performance of
pulsar classification."  This module implements that direction: a
RandomForest whose trees are trained as independent Sparklet tasks, so the
same measured-task/cluster-simulation machinery that produces Fig. 4 can
project classification-training speedups on the paper's testbed.

The ensemble is embarrassingly parallel (each tree = one bootstrap sample +
one training task), which makes it the natural first target — exactly the
reasoning behind Spark MLlib's forest implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.forest import RandomForest
from repro.sparklet.context import SparkletContext
from repro.sparklet.metrics import JobMetrics


@dataclass
class DistributedRandomForest:
    """RandomForest trained tree-by-tree across Sparklet tasks.

    Produces predictions identical in distribution to a local
    :class:`~repro.ml.forest.RandomForest` with the same parameters (each
    task trains a 1-tree forest on its own seed); records per-tree training
    costs in the context's job metrics so the cluster simulator can report
    the elapsed time a real cluster would achieve.
    """

    ctx: SparkletContext
    n_trees: int = 50
    n_features_per_split: int | None = None
    min_leaf: int = 1
    max_depth: int | None = None
    n_bins: int = 64
    seed: int = 0
    _forests: list[RandomForest] = field(default_factory=list, repr=False)
    n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DistributedRandomForest":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        if self.n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {self.n_trees}")
        self.n_classes_ = int(y.max()) + 1

        # One task per tree: broadcast-style closure over (X, y), distinct
        # seeds per partition.  In real Spark the data would be a broadcast
        # variable; Sparklet closures capture it the same way.
        params = dict(
            n_trees=1,
            n_features_per_split=self.n_features_per_split,
            min_leaf=self.min_leaf,
            max_depth=self.max_depth,
            n_bins=self.n_bins,
        )
        base_seed = self.seed

        def train_one(tree_seed: int) -> RandomForest:
            return RandomForest(seed=tree_seed, **params).fit(X, y)

        seeds = [base_seed + 1000003 * i for i in range(self.n_trees)]
        rdd = self.ctx.parallelize(seeds, num_partitions=self.n_trees)
        obs = self.ctx.obs
        if obs.enabled:
            with obs.tracer.span("ml.fit_forest", n_trees=self.n_trees,
                                 n_rows=int(X.shape[0])):
                self._forests = rdd.map(train_one).collect()
            obs.registry.counter("ml.trees_trained").inc(self.n_trees)
        else:
            self._forests = rdd.map(train_one).collect()
        # The collected single-tree forests may predict fewer classes if a
        # bootstrap missed the top label; normalize the class count.
        for forest in self._forests:
            forest.n_classes_ = max(forest.n_classes_, self.n_classes_)
        return self

    @property
    def training_metrics(self) -> JobMetrics:
        """Metrics of the most recent training job (one task per tree)."""
        return self.ctx.last_job_metrics()

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._forests:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=int)
        rows = np.arange(X.shape[0])
        for forest in self._forests:
            votes[rows, forest.predict(X)] += 1
        return np.argmax(votes, axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._forests:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=float)
        rows = np.arange(X.shape[0])
        for forest in self._forests:
            votes[rows, forest.predict(X)] += 1
        return votes / len(self._forests)
