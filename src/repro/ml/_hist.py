"""Histogram-based split finding for the forest's hot path.

Exact split search costs O(n·k) per feature per node in vectorized NumPy
(class-count prefix sums), which makes multiclass trees artificially
expensive relative to binary ones.  Histogram splitting — pre-bin each
feature into ≤64 quantile bins once per fit, then build a (bins × classes)
count table per node — costs O(n) + O(bins·k) per feature per node, so the
class count only touches the tiny histogram, not the instance dimension.
This matches the cost profile of classical learners (Weka's per-node scan)
and of modern gradient-boosting systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default number of histogram bins per feature.
N_BINS = 64


@dataclass
class BinnedMatrix:
    """Quantile-binned copy of a feature matrix.

    ``codes[i, j]`` is the bin index of instance i on feature j;
    ``edges[j][b]`` is the real-valued upper edge of bin b (a split "at bin
    b" means ``x <= edges[j][b]``).
    """

    codes: np.ndarray  # (n, d) uint8
    edges: list[np.ndarray]

    @property
    def n_features(self) -> int:
        return self.codes.shape[1]


def bin_matrix(X: np.ndarray, n_bins: int = N_BINS, y: np.ndarray | None = None) -> BinnedMatrix:
    """Quantile-bin every column of X.

    When ``y`` is given, each column's quantile cuts are augmented with its
    Fayyad–Irani MDL cut points (supervised binning, computed once per fit).
    Pure quantile bins can straddle a class boundary — e.g. the ALM labeling
    thresholds — leaving nodes that no split can purify; the MDL cuts land
    exactly on strong class boundaries and eliminate that thrashing.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if not 2 <= n_bins <= 256:
        raise ValueError(f"n_bins must be in [2, 256], got {n_bins}")
    n, d = X.shape
    codes = np.empty((n, d), dtype=np.uint8)
    edges: list[np.ndarray] = []
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    mdl_budget = 0
    y_sub: np.ndarray | None = None
    sub = slice(None)
    if y is not None:
        from repro.ml.discretize import mdl_cut_points

        y = np.asarray(y, dtype=int)
        n_classes = int(y.max()) + 1 if y.size else 1
        mdl_budget = max(0, min(32, 250 - n_bins))  # cap supervised cuts; stay in uint8
        # Cut-point *positions* stabilize with a couple thousand instances;
        # subsample deterministically so binning cost stays flat in n.
        step = max(1, n // 2000)
        sub = slice(None, None, step)
        y_sub = y[sub]
    for j in range(d):
        col = X[:, j]
        cuts = np.unique(np.quantile(col, qs))
        if y_sub is not None and mdl_budget:
            supervised = mdl_cut_points(col[sub], y_sub, n_classes)[:mdl_budget]
            if supervised:
                cuts = np.unique(np.concatenate([cuts, np.asarray(supervised)]))
        # Drop degenerate cuts equal to the max (they create empty top bins).
        cuts = cuts[cuts < col.max()] if col.size else cuts
        # side='left': code = #{cuts < x}, so "code <= b" ⟺ "x <= cuts[b]" —
        # the training-time routing must agree exactly with predict()'s
        # real-valued threshold test, including on tied values.
        codes[:, j] = np.searchsorted(cuts, col, side="left")
        edges.append(cuts)
    return BinnedMatrix(codes, edges)


@dataclass(frozen=True)
class HistSplit:
    feature: int
    bin_index: int  # go left when code <= bin_index
    threshold: float  # real-valued equivalent for predict()
    score: float
    n_left: int
    n_right: int


def best_hist_split(
    binned: BinnedMatrix,
    idx: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_leaf: int = 1,
) -> HistSplit | None:
    """Best gini split over the node's instances ``idx``.

    ``y`` is the full label vector; node labels are ``y[idx]``.
    """
    n = idx.size
    if n < 2 * min_leaf:
        return None
    y_node = y[idx]
    total = np.bincount(y_node, minlength=n_classes).astype(float)
    parent = 1.0 - float(((total / n) ** 2).sum())
    if parent <= 0.0:
        return None
    # Deep nodes usually contain a fraction of the classes; remapping to the
    # classes actually present keeps the O(bins × classes) histogram term
    # proportional to the node's own diversity, not the global class count.
    present = np.flatnonzero(total > 0)
    if present.size < n_classes:
        y_node = np.searchsorted(present, y_node)
        total = total[present]
        n_classes = present.size

    if n <= 48:
        # Small nodes: the O(bins × classes) histogram dwarfs the O(n) scan;
        # an exact sweep over the node's own code values is cheaper and
        # yields the identical split decision.
        return _small_node_split(binned, idx, y_node, total, n_classes,
                                 feature_indices, min_leaf, parent)

    best: HistSplit | None = None
    for feat in feature_indices:
        edges = binned.edges[feat]
        if edges.size == 0:
            continue
        codes = binned.codes[idx, feat].astype(np.int64)
        n_bins = edges.size + 1
        hist = np.bincount(codes * n_classes + y_node, minlength=n_bins * n_classes)
        hist = hist.reshape(n_bins, n_classes).astype(float)
        left = np.cumsum(hist, axis=0)[:-1]  # counts with code <= b
        right = total[None, :] - left
        nl = left.sum(axis=1)
        nr = n - nl
        valid = (nl >= min_leaf) & (nr >= min_leaf)
        if not valid.any():
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            gl = 1.0 - np.nansum((left / nl[:, None]) ** 2, axis=1)
            gr = 1.0 - np.nansum((right / nr[:, None]) ** 2, axis=1)
        child = (nl * gl + nr * gr) / n
        gain = np.where(valid, parent - child, -np.inf)
        pos = int(np.argmax(gain))
        if gain[pos] <= 1e-12:
            continue
        if best is None or gain[pos] > best.score:
            best = HistSplit(
                feature=int(feat),
                bin_index=pos,
                threshold=float(edges[pos]),
                score=float(gain[pos]),
                n_left=int(nl[pos]),
                n_right=int(nr[pos]),
            )
    return best


def _small_node_split(
    binned: BinnedMatrix,
    idx: np.ndarray,
    y_node: np.ndarray,
    total: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_leaf: int,
    parent: float,
) -> HistSplit | None:
    """Exact gini sweep over a small node's own sorted code values."""
    n = idx.size
    best: HistSplit | None = None
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), y_node] = 1.0
    for feat in feature_indices:
        edges = binned.edges[feat]
        if edges.size == 0:
            continue
        codes = binned.codes[idx, feat]
        order = np.argsort(codes, kind="stable")
        xs = codes[order]
        if xs[0] == xs[-1]:
            continue
        left = np.cumsum(onehot[order], axis=0)[:-1]
        right = total[None, :] - left
        nl = left.sum(axis=1)
        nr = n - nl
        valid = (xs[1:] != xs[:-1]) & (nl >= min_leaf) & (nr >= min_leaf)
        if not valid.any():
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            gl = 1.0 - np.nansum((left / nl[:, None]) ** 2, axis=1)
            gr = 1.0 - np.nansum((right / nr[:, None]) ** 2, axis=1)
        gain = np.where(valid, parent - (nl * gl + nr * gr) / n, -np.inf)
        pos = int(np.argmax(gain))
        if gain[pos] <= 1e-12:
            continue
        if best is None or gain[pos] > best.score:
            bin_index = int(xs[pos])  # go left when code <= this value
            best = HistSplit(
                feature=int(feat),
                bin_index=bin_index,
                threshold=float(edges[min(bin_index, edges.size - 1)]),
                score=float(gain[pos]),
                n_left=int(nl[pos]),
                n_right=int(nr[pos]),
            )
    return best
