"""MPN: a multilayer perceptron (Weka's MultilayerPerceptron analogue).

One sigmoid hidden layer sized ``(n_features + n_classes) / 2`` (Weka's
``-H a`` default), softmax output with cross-entropy loss, mini-batch
gradient descent with momentum (Weka defaults: learning rate 0.3, momentum
0.2).  Inputs are standardized internally.  Fully vectorized over the batch.

MPN's training time is dominated by ``epochs × n × hidden`` multiply-adds
and, unlike the tree learners, scales directly with the *input width* —
which is why feature selection helps MPN the most (Fig. 6b: IG cuts binary
MPN training ~64%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@dataclass
class MLP:
    """Single-hidden-layer neural network classifier."""

    hidden: int | None = None  # default: (d + k) // 2, Weka's "a"
    learning_rate: float = 0.3
    momentum: float = 0.2
    epochs: int = 120
    batch_size: int = 64
    seed: int = 0
    _params: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _mu: np.ndarray | None = None
    _sigma: np.ndarray | None = None
    n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLP":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        n, d = X.shape
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        self.n_classes_ = int(y.max()) + 1
        k = self.n_classes_
        h = self.hidden if self.hidden is not None else max(2, (d + k) // 2)

        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma < 1e-12] = 1.0
        self._sigma = sigma
        Xs = (X - self._mu) / self._sigma
        Y = np.zeros((n, k))
        Y[np.arange(n), y] = 1.0

        rng = np.random.default_rng(self.seed)
        w1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, h))
        b1 = np.zeros(h)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(h), size=(h, k))
        b2 = np.zeros(k)
        v = {name: 0.0 for name in ("w1", "b1", "w2", "b2")}

        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = Xs[idx], Y[idx]
                m = len(idx)
                # forward
                a1 = _sigmoid(xb @ w1 + b1)
                probs = _softmax(a1 @ w2 + b2)
                # backward (cross-entropy + softmax)
                dz2 = (probs - yb) / m
                dw2 = a1.T @ dz2
                db2 = dz2.sum(axis=0)
                dz1 = (dz2 @ w2.T) * a1 * (1.0 - a1)
                dw1 = xb.T @ dz1
                db1 = dz1.sum(axis=0)
                for name, grad in (("w1", dw1), ("b1", db1), ("w2", dw2), ("b2", db2)):
                    v[name] = self.momentum * v[name] - self.learning_rate * grad
                w1 += v["w1"]
                b1 += v["b1"]
                w2 += v["w2"]
                b2 += v["b2"]
        self._params = {"w1": w1, "b1": b1, "w2": w2, "b2": b2}
        return self

    def _forward(self, X: np.ndarray) -> np.ndarray:
        if not self._params:
            raise RuntimeError("fit() must be called before predict()")
        Xs = (np.asarray(X, dtype=float) - self._mu) / self._sigma
        a1 = _sigmoid(Xs @ self._params["w1"] + self._params["b1"])
        return _softmax(a1 @ self._params["w2"] + self._params["b2"])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self._forward(X), axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._forward(X)
