"""RandomForest: bagged random trees over histogram-binned features.

The paper's best classifier.  Weka-compatible choices: each tree trains on
a bootstrap sample, each split considers ``ceil(log2(d)+1)`` random features
(Weka's default) scored by gini impurity, and trees are unpruned.

Split finding is histogram-based (:mod:`repro.ml._hist`): features are
quantile-binned once per fit, and each node builds a (bins × classes) count
table per candidate feature.  Per-node cost is then O(instances) plus a
small O(bins × classes) term, so the number of classes barely affects
per-node cost — matching the cost profile of the classical learners the
paper timed (and of modern GBDT systems).  Nodes operate on *index arrays*
into the binned matrix; no per-node data copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ml._hist import BinnedMatrix, best_hist_split, bin_matrix


@dataclass
class _Node:
    prediction: int
    counts: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def size_depth(self) -> tuple[int, int]:
        if self.is_leaf:
            return 1, 0
        assert self.left is not None and self.right is not None
        ln, ld = self.left.size_depth()
        rn, rd = self.right.size_depth()
        return ln + rn + 1, 1 + max(ld, rd)


class _RandomTree:
    """One unpruned random tree trained on binned features."""

    def __init__(self, k_features: int, min_leaf: int, max_depth: int | None,
                 rng: np.random.Generator) -> None:
        self.k_features = k_features
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.rng = rng
        self.root: _Node | None = None

    def fit(self, binned: BinnedMatrix, y: np.ndarray, idx: np.ndarray, n_classes: int) -> None:
        self.n_classes = n_classes
        self.root = self._build(binned, y, idx, depth=0)

    def _build(self, binned: BinnedMatrix, y: np.ndarray, idx: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y[idx], minlength=self.n_classes)
        node = _Node(prediction=int(np.argmax(counts)), counts=counts)
        if (
            counts.max() == idx.size
            or idx.size < 2 * self.min_leaf
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        d = binned.n_features
        feats = self.rng.choice(d, size=min(self.k_features, d), replace=False)
        split = best_hist_split(binned, idx, y, self.n_classes, feats, self.min_leaf)
        if split is None:
            # Retry with all features before declaring a leaf, as Weka does.
            split = best_hist_split(binned, idx, y, self.n_classes, np.arange(d), self.min_leaf)
            if split is None:
                return node
        go_left = binned.codes[idx, split.feature] <= split.bin_index
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._build(binned, y, idx[go_left], depth + 1)
        node.right = self._build(binned, y, idx[~go_left], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root is not None
        n = X.shape[0]
        out = np.empty(n, dtype=int)
        # Vectorized routing: partition the index set level by level.
        stack: list[tuple[_Node, np.ndarray]] = [(self.root, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction
                continue
            assert node.left is not None and node.right is not None
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out


@dataclass
class RandomForest:
    """Ensemble of random trees with majority voting."""

    n_trees: int = 50
    n_features_per_split: int | None = None  # default: ceil(log2(d) + 1)
    min_leaf: int = 1
    max_depth: int | None = None
    n_bins: int = 64
    seed: int = 0
    _trees: list[_RandomTree] = field(default_factory=list, repr=False)
    n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) with one label per row")
        if self.n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {self.n_trees}")
        n, d = X.shape
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes_ = int(y.max()) + 1
        k = self.n_features_per_split or max(1, math.ceil(math.log2(max(d, 2)) + 1))
        binned = bin_matrix(X, self.n_bins, y)
        rng = np.random.default_rng(self.seed)
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample (indices)
            tree = _RandomTree(k, self.min_leaf, self.max_depth,
                               np.random.default_rng(int(rng.integers(0, 2**63))))
            tree.fit(binned, y, idx, self.n_classes_)
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=int)
        rows = np.arange(X.shape[0])
        for tree in self._trees:
            votes[rows, tree.predict(X)] += 1
        return np.argmax(votes, axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=float)
        rows = np.arange(X.shape[0])
        for tree in self._trees:
            votes[rows, tree.predict(X)] += 1
        return votes / len(self._trees)

    def stats(self) -> dict[str, float]:
        """Mean node count and depth across trees (ablation/diagnostics)."""
        if not self._trees:
            return {"nodes": 0.0, "depth": 0.0}
        sizes = [t.root.size_depth() for t in self._trees if t.root is not None]
        return {
            "nodes": float(np.mean([s for s, _ in sizes])),
            "depth": float(np.mean([d for _, d in sizes])),
        }
