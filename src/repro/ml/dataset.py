"""Lightweight labeled dataset container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane import PulseBatch


@dataclass
class Dataset:
    """A feature matrix with integer class labels and naming metadata.

    ``X`` is (n_instances, n_features) float; ``y`` is (n_instances,) int in
    ``[0, n_classes)``.  Most library functions accept raw arrays; Dataset
    carries the names for reporting and feature selection output.
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...] = ()
    class_names: tuple[str, ...] = ()
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}")
        if self.y.ndim != 1 or self.y.shape[0] != self.X.shape[0]:
            raise ValueError("y must be 1-D with one label per row of X")
        if not self.feature_names:
            self.feature_names = tuple(f"f{i}" for i in range(self.X.shape[1]))
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError("feature_names length must match X columns")
        if self.y.size and self.y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        n_classes = int(self.y.max()) + 1 if self.y.size else 0
        if not self.class_names:
            self.class_names = tuple(f"c{i}" for i in range(n_classes))
        elif len(self.class_names) < n_classes:
            raise ValueError("class_names shorter than the number of labels present")

    @classmethod
    def from_pulse_batch(
        cls,
        batch: "PulseBatch",
        y: np.ndarray,
        class_names: tuple[str, ...] = (),
        name: str = "pulses",
    ) -> "Dataset":
        """Build a dataset straight off a :class:`PulseBatch`.

        The batch's (n, 22) feature matrix is used as ``X`` directly — no
        intermediate ``SinglePulse`` list, no per-pulse ``to_vector``
        stacking.
        """
        from repro.core.features import FEATURE_NAMES

        return cls(
            X=batch.features,
            y=y,
            feature_names=FEATURE_NAMES,
            class_names=class_names,
            name=name,
        )

    @property
    def n_instances(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.y, minlength=self.n_classes)

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(
            self.X[indices],
            self.y[indices],
            self.feature_names,
            self.class_names,
            self.name,
        )

    def select_features(self, feature_indices: list[int]) -> "Dataset":
        return Dataset(
            self.X[:, feature_indices],
            self.y,
            tuple(self.feature_names[i] for i in feature_indices),
            self.class_names,
            self.name,
        )

    def imbalance_ratio(self) -> float:
        """Majority-class count over minority-class count (∞-safe)."""
        counts = self.class_counts()
        counts = counts[counts > 0]
        if counts.size < 2:
            return 1.0
        return float(counts.max() / counts.min())
