"""Vectorized numeric split search shared by the tree learners.

All of this repository's features are numeric, so a split is a
``(feature, threshold)`` pair sending ``x <= threshold`` left.  For each
candidate feature the column is sorted once and class counts are prefix-
summed, so every threshold's impurity is evaluated in one vectorized pass —
no per-threshold Python loop (see the optimization guide: vectorize the
inner loop, it runs millions of times across a forest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def entropy_from_counts(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def gini_from_counts(counts: np.ndarray) -> float:
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


@dataclass(frozen=True)
class Split:
    feature: int
    threshold: float
    score: float  # impurity decrease (gini) or gain ratio (entropy mode)
    n_left: int
    n_right: int


def _impurity_curve(prefix: np.ndarray, total: np.ndarray, criterion: str) -> np.ndarray:
    """Weighted child impurity for every split position.

    ``prefix`` is (n-1, n_classes): class counts of the left side after each
    of the n-1 split positions.  Returns the weighted sum of child
    impurities (lower is better) per position.
    """
    n = total.sum()
    left = prefix.astype(float)
    right = total.astype(float) - left
    nl = left.sum(axis=1)
    nr = right.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        if criterion == "gini":
            pl = left / nl[:, None]
            pr = right / nr[:, None]
            il = 1.0 - np.nansum(pl * pl, axis=1)
            ir = 1.0 - np.nansum(pr * pr, axis=1)
        else:  # entropy
            pl = left / nl[:, None]
            pr = right / nr[:, None]
            il = -np.nansum(np.where(pl > 0, pl * np.log2(pl), 0.0), axis=1)
            ir = -np.nansum(np.where(pr > 0, pr * np.log2(pr), 0.0), axis=1)
    return (nl * il + nr * ir) / n


def best_split(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    criterion: str = "gini",
    min_leaf: int = 1,
) -> Split | None:
    """Best (feature, threshold) over the candidate features, or None.

    ``criterion='gini'`` scores by impurity decrease (CART / RandomForest);
    ``criterion='gain_ratio'`` scores by C4.5's information gain ratio.
    """
    n = y.size
    if n < 2 * min_leaf:
        return None
    total = np.bincount(y, minlength=n_classes)
    if criterion == "gain_ratio":
        parent = entropy_from_counts(total)
        base_criterion = "entropy"
    else:
        parent = gini_from_counts(total)
        base_criterion = "gini"
    if parent <= 0.0:
        return None

    best: Split | None = None
    onehot = np.zeros((n, n_classes), dtype=np.int64)
    onehot[np.arange(n), y] = 1

    for feat in feature_indices:
        col = X[:, feat]
        order = np.argsort(col, kind="stable")
        xs = col[order]
        if xs[0] == xs[-1]:
            continue  # constant feature
        prefix = np.cumsum(onehot[order], axis=0)[:-1]  # counts left of each gap
        child = _impurity_curve(prefix, total, base_criterion)

        nl = np.arange(1, n)
        nr = n - nl
        valid = (xs[1:] != xs[:-1]) & (nl >= min_leaf) & (nr >= min_leaf)
        if not valid.any():
            continue
        gain = parent - child
        if criterion == "gain_ratio":
            with np.errstate(divide="ignore", invalid="ignore"):
                fl = nl / n
                fr = nr / n
                split_info = -(fl * np.log2(fl) + fr * np.log2(fr))
            score = np.where((split_info > 1e-12) & (gain > 1e-12), gain / split_info, -np.inf)
        else:
            score = gain
        score = np.where(valid, score, -np.inf)
        pos = int(np.argmax(score))
        if not np.isfinite(score[pos]) or score[pos] <= 0:
            continue
        if best is None or score[pos] > best.score:
            threshold = 0.5 * (xs[pos] + xs[pos + 1])
            best = Split(
                feature=int(feat),
                threshold=float(threshold),
                score=float(score[pos]),
                n_left=int(nl[pos]),
                n_right=int(nr[pos]),
            )
    return best
