"""Unified execution configuration: backend, workers and front-end kernels.

Before this module the knobs that decide *how* a run executes were scattered:
``backend``/``num_workers`` rode as loose keyword arguments on
``PipelineConfig``/``ServingConfig``/``SinglePulsePipeline``, the env vars
``REPRO_BACKEND``/``REPRO_WORKERS`` were resolved inside
``sparklet.executor``, and the front-end kernels had no knobs at all.  This
module folds all of them into two frozen dataclasses:

- :class:`KernelConfig` — which dedispersion algorithm (``direct`` /
  ``subband`` / ``tree``), which implementation (``numpy`` / ``numba`` /
  ``auto``) and which boxcar mode (``cumsum`` / ``decomposed``) the
  SPE-generating front end uses;
- :class:`ExecutionConfig` — the Sparklet backend + worker count +
  io model, carrying a :class:`KernelConfig`.

Resolution order (weakest to strongest): **env < config < CLI**.  ``None``
fields mean "not specified here"; :func:`resolve_execution` fills them from
the environment and finally from hard defaults, in one place
(:func:`env_execution_config`), so every entry point — facade, CLI,
streaming, serving — agrees on what a half-specified config means.  CLI
flags win simply because the CLI builds an explicit config from them.

The dataclasses are frozen and hashable on purpose: they participate in
memo lineage hashing (``repro.memo.hashing.token_for``), so two runs that
differ only in kernel method get distinct lineage hashes and cannot serve
each other's cached results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

__all__ = [
    "KernelConfig",
    "ExecutionConfig",
    "env_execution_config",
    "resolve_execution",
    "BACKEND_ENV",
    "WORKERS_ENV",
    "KERNEL_METHOD_ENV",
    "KERNEL_IMPL_ENV",
]

#: Environment variables — the single authoritative list.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"
KERNEL_METHOD_ENV = "REPRO_KERNEL_METHOD"
KERNEL_IMPL_ENV = "REPRO_KERNEL_IMPL"

BACKENDS = ("serial", "simulated", "parallel")
KERNEL_METHODS = ("direct", "subband", "tree")
KERNEL_IMPLS = ("numpy", "numba", "auto")
BOXCAR_MODES = ("cumsum", "decomposed")

DEFAULT_BACKEND = "serial"
DEFAULT_NUM_WORKERS = 2
DEFAULT_KERNEL_METHOD = "direct"
DEFAULT_KERNEL_IMPL = "auto"


def _check(name: str, value: str | None, allowed: tuple[str, ...]) -> None:
    if value is not None and value not in allowed:
        raise ValueError(f"{name} must be one of {allowed} or None, got {value!r}")


@dataclass(frozen=True)
class KernelConfig:
    """Front-end kernel selection (dedispersion + boxcar search).

    ``None`` fields defer to the environment and then to defaults — see
    :meth:`resolved`.  ``impl="auto"`` picks numba when importable, NumPy
    otherwise; ``impl="numba"`` on a numba-less host falls back cleanly to
    NumPy (the resolved choice is recorded in the ``kernel_selected`` obs
    event, so the fallback is observable, never silent data corruption).

    ``boxcar=None`` couples to the method: the exact ``direct`` path keeps
    the bit-stable ``cumsum`` boxcar, while the tolerance-bounded
    ``subband``/``tree`` paths default to the ``decomposed`` boxcar that
    reuses shorter-width window sums.
    """

    method: str | None = None
    impl: str | None = None
    boxcar: str | None = None
    n_subbands: int | None = None
    tol_samples: float = 1.0

    def __post_init__(self) -> None:
        _check("method", self.method, KERNEL_METHODS)
        _check("impl", self.impl, KERNEL_IMPLS)
        _check("boxcar", self.boxcar, BOXCAR_MODES)
        if self.n_subbands is not None and self.n_subbands < 1:
            raise ValueError(f"n_subbands must be >= 1, got {self.n_subbands}")
        if self.tol_samples <= 0:
            raise ValueError(f"tol_samples must be positive, got {self.tol_samples}")

    def resolved(self) -> "KernelConfig":
        """A copy with every ``None`` field made concrete (env, then default).

        ``impl`` resolves to ``"numpy"``/``"numba"``/``"auto"`` — the final
        auto → numba-or-numpy step needs an import probe and lives in
        :func:`repro.astro.kernels.resolve_impl`.
        """
        method = self.method or os.environ.get(KERNEL_METHOD_ENV) or DEFAULT_KERNEL_METHOD
        impl = self.impl or os.environ.get(KERNEL_IMPL_ENV) or DEFAULT_KERNEL_IMPL
        _check("method", method, KERNEL_METHODS)
        _check("impl", impl, KERNEL_IMPLS)
        boxcar = self.boxcar or ("cumsum" if method == "direct" else "decomposed")
        return replace(self, method=method, impl=impl, boxcar=boxcar)


@dataclass(frozen=True)
class ExecutionConfig:
    """How a run executes: Sparklet backend, worker pool and kernels.

    ``backend``/``num_workers`` accept ``None`` ("not specified"): the env
    vars ``REPRO_BACKEND``/``REPRO_WORKERS`` and then the hard defaults
    (``serial``, 2) fill them via :func:`resolve_execution`.
    """

    backend: str | None = None
    num_workers: int | None = None
    io_wait_s_per_mb: float = 0.0
    kernel: KernelConfig = field(default_factory=KernelConfig)

    def __post_init__(self) -> None:
        _check("backend", self.backend, BACKENDS)
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.io_wait_s_per_mb < 0:
            raise ValueError("io_wait_s_per_mb must be non-negative")


def env_execution_config() -> ExecutionConfig:
    """The execution config described by the environment alone.

    The only place the four ``REPRO_*`` execution env vars are read.
    Unset variables stay ``None`` (method/impl: unset falls through to the
    defaults at :meth:`KernelConfig.resolved` time).
    """
    workers = os.environ.get(WORKERS_ENV)
    return ExecutionConfig(
        backend=os.environ.get(BACKEND_ENV) or None,
        num_workers=max(1, int(workers)) if workers else None,
        kernel=KernelConfig(
            method=os.environ.get(KERNEL_METHOD_ENV) or None,
            impl=os.environ.get(KERNEL_IMPL_ENV) or None,
        ),
    )


def resolve_execution(config: ExecutionConfig | None = None) -> ExecutionConfig:
    """Fill every unspecified field: explicit config > env > default."""
    cfg = config or ExecutionConfig()
    env = env_execution_config()
    backend = cfg.backend or env.backend or DEFAULT_BACKEND
    num_workers = cfg.num_workers or env.num_workers or DEFAULT_NUM_WORKERS
    return replace(
        cfg,
        backend=backend,
        num_workers=num_workers,
        kernel=cfg.kernel.resolved(),
    )
