"""Declarative, seed-deterministic campaign scenarios.

A :class:`Scenario` is a timeline of :class:`PhaseConfig` regimes (RFI
storm seasons, sensitivity/gain steps) crossed with a set of
:class:`TenantTimeline` entries (which survey each tenant observes, when it
joins the shared driver).  :func:`compile_scenario` turns one into concrete
per-tenant observation lists plus the bookkeeping the campaign runner
needs: which phase every observation key belongs to, and the receiver-item
thresholds at which late tenants join.

Everything is derived from ``(scenario, seed)`` by pure arithmetic on
seeded generators — two compiles of the same pair are byte-identical,
which is what makes whole-campaign reports checksummable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.astro.population import synthesize_population
from repro.astro.rfi import RFIStormModel
from repro.astro.survey import Observation, SurveyConfig, generate_observation

__all__ = [
    "CompiledCampaign",
    "PhaseConfig",
    "Scenario",
    "TenantTimeline",
    "compile_scenario",
    "resolve_scenario",
    "scenario_names",
    "three_phase_scenario",
]


def _derive(seed: int, *parts: int) -> int:
    """Stable sub-seed derivation (FNV-style fold, no hashing randomness)."""
    h = int(seed) & 0x7FFFFFFF
    for p in parts:
        h = (h * 1000003 + int(p) + 1) & 0x7FFFFFFF
    return h


@dataclass(frozen=True)
class PhaseConfig:
    """One regime of the campaign timeline.

    Every tenant active during the phase observes ``n_observations``
    pointings under the phase's regime: ``gain`` scales astrophysical SNR
    (a sensitivity/calibration step), ``storm`` overlays time-correlated
    bursty interference (see :class:`~repro.astro.rfi.RFIStormModel`).
    """

    name: str
    n_observations: int = 2
    gain: float = 1.0
    storm: RFIStormModel | None = None

    def __post_init__(self) -> None:
        if self.n_observations < 1:
            raise ValueError("each phase needs at least one observation")
        if self.gain <= 0:
            raise ValueError("gain must be positive")


@dataclass(frozen=True)
class TenantTimeline:
    """One tenant's place in the campaign: survey, join point, fair share.

    ``joins_at_phase`` indexes into the scenario's phases — the tenant's
    stream contains observations for that phase onward, and its session is
    added to the shared driver when the campaign reaches the phase.
    ``gain`` is a persistent per-tenant sensitivity factor (an uncalibrated
    newcomer), multiplied with each phase's gain.
    """

    tenant_id: str
    survey: str = "GBT350Drift"
    joins_at_phase: int = 0
    n_pulsars: int = 3
    weight: float = 1.0
    gain: float = 1.0

    def survey_config(self) -> SurveyConfig:
        return SurveyConfig.preset(self.survey)


@dataclass(frozen=True)
class Scenario:
    """A full campaign timeline: phases × tenants + workload knobs."""

    name: str
    phases: tuple[PhaseConfig, ...]
    tenants: tuple[TenantTimeline, ...]
    obs_length_s: float = 12.0
    n_noise_clusters: int = 40
    n_rfi_bursts: int = 2
    grid_coarsen: float = 10.0
    #: Receiver rate and batch cadence: ~150 rows per batch by default, so
    #: a phase spans enough micro-batches for the drift windows to slide.
    arrival_rate: float = 600.0
    batch_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("scenario needs at least one phase")
        if not self.tenants:
            raise ValueError("scenario needs at least one tenant")
        ids = [t.tenant_id for t in self.tenants]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate tenant ids: {sorted(ids)}")
        if self.tenants[0].joins_at_phase != 0:
            raise ValueError("the first (anchor) tenant must join at phase 0")
        for t in self.tenants:
            if not 0 <= t.joins_at_phase < len(self.phases):
                raise ValueError(
                    f"tenant {t.tenant_id!r} joins at phase "
                    f"{t.joins_at_phase}, outside the timeline"
                )


@dataclass
class CompiledCampaign:
    """A scenario made concrete for one seed (see :func:`compile_scenario`)."""

    scenario: Scenario
    seed: int
    #: Per-tenant observation list, in stream order (phase-major).
    observations: dict[str, list[Observation]] = field(default_factory=dict)
    #: Observation key string → phase index (keys are globally unique).
    phase_of_key: dict[str, int] = field(default_factory=dict)
    #: Observation key string → tenant id.
    tenant_of_key: dict[str, str] = field(default_factory=dict)
    #: Anchor-tenant receiver-item counts marking each phase's start:
    #: ``anchor_items_before_phase[p]`` items of the anchor stream precede
    #: phase ``p`` — the join trigger for tenants with ``joins_at_phase=p``.
    anchor_items_before_phase: dict[int, int] = field(default_factory=dict)

    @property
    def anchor_tenant(self) -> str:
        return self.scenario.tenants[0].tenant_id

    def phases_of(self, tenant_id: str) -> list[int]:
        """Phase indices the tenant is active in, in order."""
        timeline = next(
            t for t in self.scenario.tenants if t.tenant_id == tenant_id
        )
        return list(range(timeline.joins_at_phase, len(self.scenario.phases)))


def compile_scenario(scenario: Scenario, seed: int) -> CompiledCampaign:
    """Generate every tenant's observations for one seeded campaign run.

    Sub-seeds fold the tenant index, phase index and observation index into
    the campaign seed, so adding a tenant or phase never perturbs the
    others' draws.  Observation keys are globally unique (beam = tenant
    index, MJD strides per phase/observation) so the runner can attribute
    any pulse back to its (tenant, phase).
    """
    compiled = CompiledCampaign(scenario=scenario, seed=seed)
    for t_idx, timeline in enumerate(scenario.tenants):
        survey = timeline.survey_config()
        pulsars = synthesize_population(
            timeline.n_pulsars,
            max_dm=survey.max_dm * 0.8,
            seed=_derive(seed, t_idx),
        )
        obs_list: list[Observation] = []
        for p_idx in range(timeline.joins_at_phase, len(scenario.phases)):
            phase = scenario.phases[p_idx]
            for o_idx in range(phase.n_observations):
                obs = generate_observation(
                    survey,
                    pulsars,
                    mjd=55000.0 + p_idx * 100.0 + o_idx,
                    beam=t_idx,
                    n_noise_clusters=scenario.n_noise_clusters,
                    n_rfi_bursts=scenario.n_rfi_bursts,
                    grid_coarsen=scenario.grid_coarsen,
                    seed=_derive(seed, t_idx, p_idx, o_idx),
                    obs_length_s=scenario.obs_length_s,
                    gain=phase.gain * timeline.gain,
                    storm=phase.storm,
                )
                key = obs.key.to_key()
                if key in compiled.phase_of_key:
                    raise ValueError(f"observation key collision: {key}")
                compiled.phase_of_key[key] = p_idx
                compiled.tenant_of_key[key] = timeline.tenant_id
                obs_list.append(obs)
        compiled.observations[timeline.tenant_id] = obs_list

    # Receiver-item thresholds on the anchor stream, one per phase start.
    from repro.streaming.receiver import build_stream

    anchor = scenario.tenants[0]
    anchor_obs = compiled.observations[anchor.tenant_id]
    per_phase = [scenario.phases[p].n_observations
                 for p in range(len(scenario.phases))]
    cum = 0
    n_before = 0
    for p_idx, n_obs in enumerate(per_phase):
        compiled.anchor_items_before_phase[p_idx] = n_before
        cum += n_obs
        n_before = len(build_stream(anchor_obs[:cum]))
    return compiled


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
def three_phase_scenario(
    *,
    n_observations: int = 2,
    obs_length_s: float = 12.0,
) -> Scenario:
    """The canonical gate scenario: baseline → RFI storm season → expansion.

    Phase 0 is a quiet GBT350Drift baseline.  Phase 1 turns on a heavy
    storm season (Markov chain biased toward storms, 10× burst rate, noise
    floor suppressing co-temporal SNR to 55%) — the regime Pang et al.
    identify as the classifier's first failure mode.  Phase 2 keeps a
    milder storm tail while a CHIME-like tenant joins the shared driver at
    reduced gain (an uncalibrated newcomer).
    """
    heavy = RFIStormModel(
        p_on=0.45, p_off=0.10, interval_s=3.0,
        quiet_rate_hz=0.3, storm_rate_multiplier=8.0,
        snr_suppression=0.55, start_in_storm=True,
    )
    mild = RFIStormModel(
        p_on=0.25, p_off=0.30, interval_s=3.0,
        quiet_rate_hz=0.2, storm_rate_multiplier=5.0,
        snr_suppression=0.65,
    )
    return Scenario(
        name="three-phase",
        phases=(
            PhaseConfig("baseline", n_observations=n_observations),
            PhaseConfig("storm-season", n_observations=n_observations,
                        storm=heavy),
            PhaseConfig("expansion", n_observations=n_observations,
                        storm=mild),
        ),
        tenants=(
            TenantTimeline("gbt", survey="GBT350Drift", n_pulsars=3),
            TenantTimeline("chime", survey="CHIME", joins_at_phase=2,
                           n_pulsars=3, gain=0.5),
        ),
        obs_length_s=obs_length_s,
    )


_SCENARIOS = {
    "three-phase": three_phase_scenario,
}


def scenario_names() -> list[str]:
    return sorted(_SCENARIOS)


def resolve_scenario(scenario: "str | Scenario") -> Scenario:
    """Map a scenario name to its built-in builder, or pass one through."""
    if isinstance(scenario, Scenario):
        return scenario
    try:
        return _SCENARIOS[scenario]()
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; expected one of "
            f"{scenario_names()} or a Scenario"
        ) from None
