"""In-stream drift monitors over the serving score distribution.

Two complementary detectors, both windowed over recent micro-batches:

- **Score-distribution shift**: the population stability index (PSI) and
  the two-sample Kolmogorov–Smirnov statistic between a *reference* window
  (older batches) and a *current* window (newest batches) of serving
  scores (the model's pulsar-probability per finalized pulse).  PSI is the
  credit-scoring industry's standard drift measure; KS catches shape
  changes PSI's fixed binning can miss.
- **Cluster-rate alarm**: the paper's own RFI heuristic — "many objects
  detected in a short time interval are suspected to be RFIs" — applied to
  the per-batch finalized-cluster rate: the current window's mean rate
  exceeding ``rate_ratio`` × the reference window's mean is an alarm even
  when scores look stable (a storm floods the stream with negatives the
  model may confidently reject).

An alarm must *sustain* for ``sustain`` consecutive batches before the
monitor declares drift (``drifted_now``), and the monitor then latches
until :meth:`DriftMonitor.rebase` (called after a model swap, which moves
the score distribution by construction) or until the stream measures calm
again.  All state is a few numbers and two bounded deques — checkpoint and
restore round-trip exactly (:meth:`snapshot` / :meth:`restore`).

Everything here is pure arithmetic on the inputs — no RNG, no wall clock —
so drift timelines are byte-deterministic for a fixed campaign seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["DriftConfig", "DriftMonitor", "DriftSignal"]

_EPS = 1e-4


@dataclass(frozen=True)
class DriftConfig:
    """Window sizes and thresholds for :class:`DriftMonitor`."""

    #: Batches in the reference (older) window.
    ref_window: int = 12
    #: Batches in the current (newest) window.
    cur_window: int = 6
    #: Histogram bins over [0, 1] for PSI.
    n_bins: int = 8
    psi_threshold: float = 0.25
    ks_threshold: float = 0.35
    #: Minimum scores on *each* side before PSI/KS are evaluated — the
    #: distribution tests are pure noise on a handful of samples.
    min_scores: int = 12
    #: Batches the reference window must hold before any detector may
    #: alarm (a 2-batch reference is not a baseline).
    min_ref_batches: int = 4
    #: Current/reference cluster-rate ratio that flags an RFI flood.
    rate_ratio: float = 3.0
    #: Minimum clusters across the reference window before the rate alarm
    #: can fire (tiny baselines make ratios meaningless).
    min_rate_events: int = 8
    #: Consecutive alarming batches required to declare drift.
    sustain: int = 2
    #: Consecutive calm batches required to re-arm after a declaration.
    recover: int = 4

    def __post_init__(self) -> None:
        if self.ref_window < 2 or self.cur_window < 1:
            raise ValueError("windows must hold at least 2/1 batches")
        if self.n_bins < 2:
            raise ValueError("PSI needs at least 2 bins")
        if self.sustain < 1 or self.recover < 1:
            raise ValueError("sustain and recover must be >= 1")


@dataclass(frozen=True)
class DriftSignal:
    """One batch's drift measurement."""

    batch_id: int
    psi: float
    ks: float
    rate_ratio: float
    #: Which detectors exceeded their threshold this batch.
    reasons: tuple[str, ...]
    #: This batch exceeded at least one threshold (pre-sustain).
    alarming: bool
    #: Drift declared *on this batch* (alarm sustained, monitor armed).
    drifted: bool


def _psi(ref: np.ndarray, cur: np.ndarray, n_bins: int) -> float:
    """Population stability index between two score samples on [0, 1]."""
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    ref_frac = np.histogram(ref, bins=edges)[0] / max(1, ref.size)
    cur_frac = np.histogram(cur, bins=edges)[0] / max(1, cur.size)
    ref_frac = np.clip(ref_frac, _EPS, None)
    cur_frac = np.clip(cur_frac, _EPS, None)
    return float(np.sum((cur_frac - ref_frac) * np.log(cur_frac / ref_frac)))


def _ks(ref: np.ndarray, cur: np.ndarray) -> float:
    """Two-sample KS statistic (max ECDF gap), no scipy needed."""
    if ref.size == 0 or cur.size == 0:
        return 0.0
    grid = np.sort(np.concatenate([ref, cur]))
    ref_cdf = np.searchsorted(np.sort(ref), grid, side="right") / ref.size
    cur_cdf = np.searchsorted(np.sort(cur), grid, side="right") / cur.size
    return float(np.max(np.abs(ref_cdf - cur_cdf)))


@dataclass
class DriftMonitor:
    """Windowed drift detection over one tenant's serving stream.

    Feed it every completed batch via :meth:`update` — scores may be empty
    (a batch that finalized no pulses still carries rate information).
    """

    config: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        cap = self.config.ref_window + self.config.cur_window
        #: Per-batch score arrays, oldest first.
        self._scores: deque[list[float]] = deque(maxlen=cap)
        #: Per-batch finalized-cluster counts, oldest first.
        self._rates: deque[int] = deque(maxlen=cap)
        self._alarm_streak = 0
        self._calm_streak = 0
        self._latched = False
        self.n_detections = 0

    # -- the measurement ----------------------------------------------------
    def update(self, batch_id: int, scores: Any, n_clusters: int) -> DriftSignal:
        """Ingest one batch; returns this batch's :class:`DriftSignal`."""
        cfg = self.config
        scores = [float(s) for s in np.asarray(scores, dtype=float).ravel()]
        self._scores.append(scores)
        self._rates.append(int(n_clusters))

        psi = ks = 0.0
        rate_ratio = 1.0
        reasons: list[str] = []
        if len(self._scores) >= cfg.cur_window + cfg.min_ref_batches:
            ref_batches = list(self._scores)[:-cfg.cur_window]
            cur_batches = list(self._scores)[-cfg.cur_window:]
            ref = np.array([s for b in ref_batches for s in b], dtype=float)
            cur = np.array([s for b in cur_batches for s in b], dtype=float)
            if ref.size >= cfg.min_scores and cur.size >= cfg.min_scores:
                psi = _psi(ref, cur, cfg.n_bins)
                ks = _ks(ref, cur)
                if psi > cfg.psi_threshold:
                    reasons.append("psi")
                if ks > cfg.ks_threshold:
                    reasons.append("ks")
            ref_rates = list(self._rates)[:-cfg.cur_window]
            cur_rates = list(self._rates)[-cfg.cur_window:]
            ref_mean = sum(ref_rates) / len(ref_rates)
            cur_mean = sum(cur_rates) / len(cur_rates)
            if ref_mean > 0:
                rate_ratio = cur_mean / ref_mean
            elif cur_mean > 0:
                rate_ratio = float(cfg.rate_ratio) + 1.0
            if (sum(ref_rates) >= cfg.min_rate_events
                    and rate_ratio > cfg.rate_ratio):
                reasons.append("cluster_rate")

        alarming = bool(reasons)
        if alarming:
            self._alarm_streak += 1
            self._calm_streak = 0
        else:
            self._alarm_streak = 0
            self._calm_streak += 1
            if self._latched and self._calm_streak >= cfg.recover:
                self._latched = False

        drifted = (not self._latched) and self._alarm_streak >= cfg.sustain
        if drifted:
            self._latched = True
            self.n_detections += 1
        return DriftSignal(
            batch_id=batch_id, psi=round(psi, 6), ks=round(ks, 6),
            rate_ratio=round(rate_ratio, 6), reasons=tuple(reasons),
            alarming=alarming, drifted=drifted,
        )

    # -- lifecycle -----------------------------------------------------------
    def rebase(self) -> None:
        """Forget history and re-arm — called after a model hot-swap, which
        moves the score distribution by construction (comparing across the
        swap would re-detect the swap itself as drift)."""
        self._scores.clear()
        self._rates.clear()
        self._alarm_streak = 0
        self._calm_streak = 0
        self._latched = False

    # -- checkpoint/restore --------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able state; :meth:`restore` round-trips it exactly."""
        return {
            "scores": [list(b) for b in self._scores],
            "rates": list(self._rates),
            "alarm_streak": self._alarm_streak,
            "calm_streak": self._calm_streak,
            "latched": self._latched,
            "n_detections": self.n_detections,
        }

    def restore(self, state: dict[str, Any]) -> None:
        cap = self.config.ref_window + self.config.cur_window
        self._scores = deque(
            [[float(s) for s in b] for b in state["scores"]], maxlen=cap
        )
        self._rates = deque([int(r) for r in state["rates"]], maxlen=cap)
        self._alarm_streak = int(state["alarm_streak"])
        self._calm_streak = int(state["calm_streak"])
        self._latched = bool(state["latched"])
        self.n_detections = int(state["n_detections"])
