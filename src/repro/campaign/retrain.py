"""Drift-triggered online retraining over the memo candidate database.

When a :class:`~repro.campaign.drift.DriftMonitor` declares sustained
drift, the :class:`RetrainController` closes the loop the paper leaves as
future work ("leverage distributed systems and parallel machine learning"):

1. **Harvest** — pull the most recent labeled candidates from the shared
   :class:`~repro.memo.candidates.CandidateDB` (the persistent store every
   campaign batch appends to), reconstruct their feature rows with
   :meth:`~repro.dataplane.PulseBatch.from_ml_lines`.  The harvest window
   is a supervised sample of the *current* regime — storms and all.
2. **Fit** — train a fresh
   :class:`~repro.ml.distributed.DistributedRandomForest` on the shared
   Sparklet cluster inside a dedicated low-weight scheduler pool, so
   retraining steals only its fair trickle of the serving driver.
3. **Hot-swap** — publish the model into the
   :class:`~repro.streaming.serving.ModelCache` under the campaign's
   shared key; every tenant's scorer re-pins it at its next batch boundary
   (the engine's ``refresh()`` point), never mid-batch.

A cooldown keeps one regime change from triggering a retrain stampede, and
every retrain folds its ordinal into the seed, so run N of a campaign
always trains on the same harvest with the same trees — campaign reports
stay byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.obs.events import RETRAIN_COMPLETED, RETRAIN_STARTED
from repro.obs.session import NULL_OBS, ObsSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparklet.context import SparkletContext
    from repro.streaming.serving import ModelCache

__all__ = ["RetrainConfig", "RetrainController", "RetrainEvent"]


@dataclass(frozen=True)
class RetrainConfig:
    """Policy knobs for the online-retraining controller."""

    enabled: bool = True
    #: Newest labeled candidates harvested from the candidate DB per retrain.
    harvest_limit: int = 600
    #: Skip (and stay armed) below this many harvested samples — forests
    #: fit on a few dozen rows generalize worse than the model they would
    #: replace.
    min_samples: int = 120
    #: Trees in the replacement forest (small: retrains ride a busy driver).
    n_trees: int = 12
    max_depth: int | None = 10
    #: Batches to wait after a retrain before another may trigger.
    cooldown_batches: int = 10
    #: Simulated driver seconds one retrain occupies (charged to the pool).
    retrain_cost_s: float = 2.0
    #: Dedicated fair-scheduler pool for training jobs.
    pool: str = "campaign-retrain"
    pool_weight: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.harvest_limit < 1 or self.min_samples < 1:
            raise ValueError("harvest_limit and min_samples must be >= 1")
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if self.cooldown_batches < 0:
            raise ValueError("cooldown_batches must be >= 0")
        if self.retrain_cost_s < 0:
            raise ValueError("retrain_cost_s must be >= 0")


@dataclass
class RetrainEvent:
    """One completed retrain, as recorded in the campaign report."""

    batch_index: int
    tenant: str
    version: int
    n_samples: int
    n_positive: int
    cost_s: float


class RetrainController:
    """State machine: sustained drift → harvest → fit → hot-swap.

    ``on_drift`` is the single entry point; the runner calls it whenever a
    monitor fires.  Returns the :class:`RetrainEvent` when a retrain
    actually ran (the caller charges the simulated clock and rebases the
    monitors), or None when suppressed (disabled, cooling down, or the
    harvest was too thin/one-sided to fit a classifier).
    """

    def __init__(self, config: RetrainConfig, *, ctx: "SparkletContext",
                 cache: "ModelCache", model_key: str, memo: Any,
                 obs: ObsSession = NULL_OBS) -> None:
        self.config = config
        self.ctx = ctx
        self.cache = cache
        self.model_key = model_key
        self.memo = memo
        self.obs = obs
        self.history: list[RetrainEvent] = []
        self.n_suppressed = 0
        self._last_retrain_batch: int | None = None
        ctx.register_pool(config.pool, weight=config.pool_weight)

    # -- predicates ----------------------------------------------------------
    def cooling_down(self, batch_index: int) -> bool:
        return (
            self._last_retrain_batch is not None
            and batch_index - self._last_retrain_batch
            < self.config.cooldown_batches
        )

    # -- the loop closure -----------------------------------------------------
    def on_drift(self, batch_index: int, tenant: str) -> RetrainEvent | None:
        """React to a drift declaration at a batch boundary."""
        cfg = self.config
        if not cfg.enabled or self.cooling_down(batch_index):
            self.n_suppressed += 1
            return None

        from repro.dataplane import PulseBatch

        rows = self.memo.db.recent(cfg.harvest_limit, labeled_only=True)
        if len(rows) < cfg.min_samples:
            self.n_suppressed += 1
            return None
        batch = PulseBatch.from_ml_lines([r["ml_row"] for r in rows])
        X = batch.features
        y = np.asarray(batch.is_pulsar, dtype=int)
        if y.min() == y.max():
            # One-sided harvest (e.g. a storm window with zero pulsars):
            # a single-class forest cannot serve, keep the current model.
            self.n_suppressed += 1
            return None

        self.obs.emit(RETRAIN_STARTED, batch_id=batch_index, tenant=tenant,
                      n_samples=int(len(batch)), n_positive=int(y.sum()))
        from repro.ml.distributed import DistributedRandomForest

        model = DistributedRandomForest(
            ctx=self.ctx, n_trees=cfg.n_trees, max_depth=cfg.max_depth,
            seed=(cfg.seed * 1000003 + len(self.history) + 1) & 0x7FFFFFFF,
        )
        with self.ctx.pool(cfg.pool):
            model.fit(X, y)
        version = self.cache.publish(self.model_key, model)
        event = RetrainEvent(
            batch_index=batch_index, tenant=tenant, version=version,
            n_samples=int(len(batch)), n_positive=int(y.sum()),
            cost_s=cfg.retrain_cost_s,
        )
        self.history.append(event)
        self._last_retrain_batch = batch_index
        self.obs.emit(RETRAIN_COMPLETED, batch_id=batch_index, tenant=tenant,
                      version=version, n_samples=event.n_samples,
                      n_positive=event.n_positive,
                      cost_s=round(cfg.retrain_cost_s, 3))
        return event
