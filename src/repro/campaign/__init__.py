"""Long-horizon observing campaigns with regime changes and self-healing.

The paper's evaluation assumes two surveys and stationary noise.  Real
single-pulse pipelines (the GSP/CRAFTS commensal systems of PAPERS.md) run
for weeks against a drifting sky: RFI arrives in storms, surveys join and
leave the shared cluster, sensitivity steps after recalibration — and
classifier quality is the first casualty when the negative population
shifts (Pang et al.).  This package drives the existing serving tier
through exactly those regimes:

- :mod:`repro.campaign.scenarios` — declarative, seed-deterministic
  scenario timelines (phases with RFI storms / gain steps, tenants with
  join schedules) compiled into per-tenant observation streams;
- :mod:`repro.campaign.drift` — windowed PSI/KS monitors over the serving
  score distribution plus the "many objects in a short interval ⇒ suspect
  RFI" cluster-rate alarm;
- :mod:`repro.campaign.retrain` — the retraining controller: on sustained
  drift it harvests recent labeled candidates from the memo candidate
  database, fits a fresh :class:`~repro.ml.distributed.DistributedRandomForest`
  on the shared Sparklet cluster in a low-weight pool, and hot-swaps it
  through the :class:`~repro.streaming.serving.ModelCache` at a batch
  boundary;
- :mod:`repro.campaign.runner` — ties it together into
  :func:`run_campaign`, producing a byte-deterministic campaign report.
"""

from repro.campaign.drift import DriftConfig, DriftMonitor, DriftSignal
from repro.campaign.retrain import RetrainConfig, RetrainController
from repro.campaign.scenarios import (
    CompiledCampaign,
    PhaseConfig,
    Scenario,
    TenantTimeline,
    compile_scenario,
    resolve_scenario,
    scenario_names,
    three_phase_scenario,
)
from repro.campaign.runner import CampaignConfig, CampaignResult, run_campaign

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CompiledCampaign",
    "DriftConfig",
    "DriftMonitor",
    "DriftSignal",
    "PhaseConfig",
    "RetrainConfig",
    "RetrainController",
    "Scenario",
    "TenantTimeline",
    "compile_scenario",
    "resolve_scenario",
    "run_campaign",
    "scenario_names",
    "three_phase_scenario",
]
