"""The campaign loop: scenario → serving fleet → drift → retrain → report.

:func:`run_campaign` compiles a :class:`~repro.campaign.scenarios.Scenario`
for one seed, trains a baseline classifier offline (the paper's stage 4),
then drives the multi-tenant serving tier batch by batch on the shared
simulated clock:

- tenants join mid-campaign when the anchor tenant's receiver crosses their
  phase threshold (a survey joining the commensal cluster);
- every completed batch's finalized pulses are read back from the DFS,
  scored, appended to the shared candidate database, and fed to the
  tenant's :class:`~repro.campaign.drift.DriftMonitor`;
- sustained drift hands control to the
  :class:`~repro.campaign.retrain.RetrainController`, which harvests the
  candidate DB, fits a replacement forest on the shared cluster in its
  low-weight pool, and hot-swaps it through the
  :class:`~repro.streaming.serving.ModelCache` — visible to every tenant at
  its next batch boundary;
- the result is a JSON-able campaign report (per-phase recall/precision on
  injected pulses, the drift timeline, swap and retrain points) that is
  byte-identical across repeated runs and across execution backends for the
  same seed — :meth:`CampaignResult.checksum` is the regression handle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.campaign.drift import DriftConfig, DriftMonitor
from repro.campaign.retrain import RetrainConfig, RetrainController
from repro.campaign.scenarios import (
    CompiledCampaign,
    Scenario,
    _derive,
    compile_scenario,
    resolve_scenario,
)
from repro.execution import ExecutionConfig, resolve_execution
from repro.obs.events import CAMPAIGN_PHASE, DRIFT_DETECTED
from repro.sparklet.pools import PoolConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import ObsConfig, ObsSession

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run depends on, in one immutable record."""

    scenario: "str | Scenario" = "three-phase"
    seed: int = 0
    drift: DriftConfig = field(default_factory=DriftConfig)
    retrain: RetrainConfig = field(default_factory=RetrainConfig)
    #: Execution knobs for the shared context (backend/workers/kernels).
    execution: ExecutionConfig | None = None
    obs_config: "ObsConfig | ObsSession | None" = None
    #: Trees in the offline baseline classifier.
    initial_n_trees: int = 16
    #: Offline observations the baseline classifier trains on.
    n_training_observations: int = 2
    #: Shared ModelCache key every tenant's scorer binds to.
    model_key: str = "campaign"
    #: DFS prefix for per-tenant batch namespaces.
    campaign_root: str = "/campaign"
    #: Safety valve: abort if the fleet hasn't drained by then.
    max_batches: int = 20_000


@dataclass
class CampaignResult:
    """Everything one campaign produced; ``report`` is the canonical part."""

    config: CampaignConfig
    #: JSON-able, deterministically ordered campaign report.
    report: dict[str, Any]
    obs: "ObsSession | None" = None

    @property
    def n_batches(self) -> int:
        return self.report["n_batches"]

    @property
    def drift_timeline(self) -> list[dict[str, Any]]:
        return self.report["drift_timeline"]

    @property
    def retrains(self) -> list[dict[str, Any]]:
        return self.report["retrains"]

    @property
    def swaps(self) -> list[dict[str, Any]]:
        return self.report["swaps"]

    def to_json(self) -> str:
        """The canonical report encoding (sorted keys, no whitespace)."""
        return json.dumps(self.report, sort_keys=True, separators=(",", ":"))

    def checksum(self) -> str:
        """SHA-256 of the canonical encoding — the determinism handle."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def phase_metrics(self, tenant_id: str, phase: int) -> dict[str, Any]:
        return self.report["phases"][phase]["tenants"][tenant_id]


def _metrics(rows: list[tuple[int, int, int]]) -> dict[str, Any]:
    """Recall/precision over (y_true, y_pred, model_version) triples."""
    n = len(rows)
    n_true = sum(t for t, _, _ in rows)
    tp = sum(1 for t, p, _ in rows if t and p)
    fp = sum(1 for t, p, _ in rows if p and not t)
    out: dict[str, Any] = {
        "n_pulses": n,
        "n_true": n_true,
        "n_predicted": tp + fp,
        "recall": round(tp / n_true, 6) if n_true else None,
        "precision": round(tp / (tp + fp), 6) if tp + fp else None,
    }
    # The same numbers restricted to the newest model version serving in
    # this phase — what the hot-swap gate measures (pre-swap batches in a
    # drifted phase would otherwise dilute the recovered recall).
    if rows:
        last_ver = max(v for _, _, v in rows)
        tail = [(t, p, v) for t, p, v in rows if v == last_ver]
        t_true = sum(t for t, _, _ in tail)
        t_tp = sum(1 for t, p, _ in tail if t and p)
        out["final_model_version"] = last_ver
        out["n_true_final_model"] = t_true
        out["recall_final_model"] = (
            round(t_tp / t_true, 6) if t_true else None
        )
    return out


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run one seeded observing campaign end to end (see module docstring)."""
    from repro.api import PipelineConfig, run_drapid
    from repro.astro.survey import generate_observation
    from repro.dataplane import PulseBatch
    from repro.dfs import DataNode, DFSClient
    from repro.io.spe_files import read_ml_batch
    from repro.memo.candidates import _candidate_rows
    from repro.memo.config import MemoConfig, resolve_memo
    from repro.ml.distributed import DistributedRandomForest
    from repro.obs.session import ObsSession
    from repro.sparklet.context import SparkletContext
    from repro.streaming.engine import MicroBatchEngine
    from repro.streaming.receiver import ReplayReceiver, build_stream
    from repro.streaming.serving import ModelCache, StreamScorer
    from repro.streaming.sessions import AdmissionConfig, SessionManager
    from repro.streaming.state import StreamState

    scenario = resolve_scenario(config.scenario)
    seed = config.seed
    compiled: CompiledCampaign = compile_scenario(scenario, seed)
    timelines = {t.tenant_id: t for t in scenario.tenants}

    session = ObsSession.from_config(config.obs_config)
    execution = resolve_execution(config.execution)
    dfs = DFSClient([DataNode(f"dn{i}") for i in range(4)], replication=2,
                    obs=session)
    ctx = SparkletContext(app_name="campaign", default_parallelism=4,
                          obs=session, backend=execution.backend,
                          num_workers=execution.num_workers,
                          io_wait_s_per_mb=execution.io_wait_s_per_mb)
    cache = ModelCache()
    manager = SessionManager(admission=AdmissionConfig(mode="off"),
                             obs=session)
    scratch = tempfile.mkdtemp(prefix="repro-campaign-")
    memo = resolve_memo(MemoConfig(enabled=True, dir=scratch))
    views: dict[str, ObsSession] = {}
    try:
        # -- baseline classifier: offline training, published as version 1 --
        anchor = scenario.tenants[0]
        anchor_survey = anchor.survey_config()
        from repro.astro.population import synthesize_population

        train_pulsars = synthesize_population(
            anchor.n_pulsars, max_dm=anchor_survey.max_dm * 0.8,
            seed=_derive(seed, 0),
        )
        train_obs = [
            generate_observation(
                anchor_survey, train_pulsars, mjd=54000.0 + i, beam=0,
                n_noise_clusters=scenario.n_noise_clusters,
                n_rfi_bursts=scenario.n_rfi_bursts,
                grid_coarsen=scenario.grid_coarsen,
                seed=_derive(seed, 555, i),
                obs_length_s=scenario.obs_length_s,
            )
            for i in range(config.n_training_observations)
        ]
        train_dfs = DFSClient([DataNode(f"tn{i}") for i in range(4)],
                              replication=2, obs=session)
        with session.tracer.span("campaign.train_baseline"):
            train_result = run_drapid(
                PipelineConfig(survey=anchor_survey, seed=seed,
                               memo_config=MemoConfig(enabled=False)),
                train_obs, dfs=train_dfs, ctx=ctx,
                ml_output_path=f"{config.campaign_root}-train/ml",
            )
        X = train_result.pulse_batch.features
        y = np.asarray(train_result.pulse_batch.is_pulsar, dtype=int)
        if y.min() == y.max():
            raise RuntimeError(
                "baseline training set is single-class; enlarge "
                "n_training_observations or the scenario's noise workload"
            )
        baseline = DistributedRandomForest(
            ctx=ctx, n_trees=config.initial_n_trees,
            max_depth=config.retrain.max_depth, seed=_derive(seed, 777),
        ).fit(X, y)
        cache.publish(config.model_key, baseline)

        retrain_cfg = dataclasses.replace(
            config.retrain, seed=_derive(seed, 888, config.retrain.seed)
        )
        controller = RetrainController(
            retrain_cfg, ctx=ctx, cache=cache, model_key=config.model_key,
            memo=memo, obs=session,
        )
        manager.pools.register(PoolConfig(retrain_cfg.pool,
                                          weight=retrain_cfg.pool_weight))
        run_id = memo.db.insert_run(
            kind="campaign", survey=scenario.name, seed=seed,
            config_digest="campaign", config_json="{}",
            lineage_hash="campaign", n_pulses=0,
        )

        # -- the serving fleet (tenants join as the campaign reaches them) --
        engines: dict[str, MicroBatchEngine] = {}
        monitors: dict[str, DriftMonitor] = {}
        last_version: dict[str, int] = {}

        def join(tenant_id: str) -> None:
            timeline = timelines[tenant_id]
            observations = compiled.observations[tenant_id]
            root = f"{config.campaign_root}/{tenant_id}"
            from repro.api import StreamingConfig

            scfg = StreamingConfig(
                pipeline=PipelineConfig(survey=timeline.survey, seed=seed),
                batch_interval_s=scenario.batch_interval_s,
                arrival_rate=scenario.arrival_rate,
                batch_root=root, checkpoint_path=f"{root}/checkpoint.json",
            )
            view = session.for_tenant(tenant_id)
            views[tenant_id] = view
            engine = MicroBatchEngine(
                config=scfg,
                receiver=ReplayReceiver(build_stream(observations)),
                state=StreamState(), dfs=dfs, ctx=ctx,
                grids={observations[0].config.name: observations[0].grid},
                scorer=StreamScorer.from_cache(cache, config.model_key),
                obs=view,
            )
            manager.add_session(tenant_id, engine, weight=timeline.weight,
                                memo=None)
            ctx.register_pool(tenant_id, weight=timeline.weight)
            engines[tenant_id] = engine
            monitors[tenant_id] = DriftMonitor(config.drift)
            last_version[tenant_id] = engine.scorer.version

        pending = [t.tenant_id for t in scenario.tenants
                   if t.joins_at_phase > 0]
        for timeline in scenario.tenants:
            if timeline.joins_at_phase == 0:
                join(timeline.tenant_id)

        anchor_engine = engines[compiled.anchor_tenant]
        current_phase = 0
        phase_started_at: dict[int, int] = {0: 0}
        session.emit(CAMPAIGN_PHASE, phase=0, name=scenario.phases[0].name,
                     global_batch=0)
        records: dict[tuple[str, int], list[tuple[int, int, int]]] = {}
        drift_timeline: list[dict[str, Any]] = []
        swaps: list[dict[str, Any]] = []
        retrains: list[dict[str, Any]] = []

        with session.tracer.span("campaign.run"):
            while True:
                stats = manager.run_next_batch()
                if stats is None:
                    break
                if manager.n_batches > config.max_batches:
                    raise RuntimeError(
                        f"campaign exceeded max_batches={config.max_batches}"
                    )
                gb = manager.n_batches
                tid = manager.last_tenant
                engine = engines[tid]

                # Phase advance: the anchor receiver crossing a threshold
                # IS the regime change; late tenants join here.
                cursor = anchor_engine.receiver.cursor
                for p in range(current_phase + 1, len(scenario.phases)):
                    if cursor >= compiled.anchor_items_before_phase[p]:
                        current_phase = p
                        phase_started_at[p] = gb
                        session.emit(CAMPAIGN_PHASE, phase=p,
                                     name=scenario.phases[p].name,
                                     global_batch=gb)
                        for tenant_id in list(pending):
                            if timelines[tenant_id].joins_at_phase == p:
                                join(tenant_id)
                                pending.remove(tenant_id)

                # Hot-swap visibility: the engine re-pinned at this batch's
                # boundary; rebase the monitor before scoring under the new
                # distribution.
                version = engine.scorer.version
                if version != last_version[tid]:
                    swaps.append({
                        "global_batch": gb, "tenant": tid,
                        "batch_id": stats.batch_id,
                        "old_version": last_version[tid],
                        "version": version,
                    })
                    monitors[tid].rebase()
                    last_version[tid] = version

                # Read the batch's finalized pulses back from the DFS,
                # score, archive, attribute to (tenant, phase).
                probs: list[float] = []
                if stats.n_clusters_finalized > 0:
                    batch = read_ml_batch(
                        dfs, f"{engine._batch_root(stats.batch_id)}/ml"
                    )
                    if len(batch):
                        preds = engine.scorer.score(batch)
                        model = engine.scorer.model
                        if hasattr(model, "predict_proba"):
                            proba = np.asarray(
                                model.predict_proba(batch.features)
                            )
                            probs = (proba[:, 1] if proba.shape[1] > 1
                                     else np.zeros(len(batch))).tolist()
                        else:
                            probs = [float(p) for p in preds]
                        memo.db.insert_candidates(
                            run_id, _candidate_rows(batch)
                        )
                        truth = np.asarray(batch.is_pulsar, dtype=int)
                        keys = batch.observation_key.tolist()
                        for i in range(len(batch)):
                            phase = compiled.phase_of_key[keys[i]]
                            records.setdefault((tid, phase), []).append(
                                (int(truth[i]), int(preds[i]), version)
                            )

                # Drift detection and (maybe) the retrain response.
                signal = monitors[tid].update(
                    stats.batch_id, probs, stats.n_clusters_finalized
                )
                if signal.drifted:
                    session.emit(
                        DRIFT_DETECTED, batch_id=stats.batch_id, tenant=tid,
                        psi=signal.psi, ks=signal.ks,
                        rate_ratio=signal.rate_ratio,
                        reasons=list(signal.reasons), global_batch=gb,
                        phase=current_phase,
                    )
                    drift_timeline.append({
                        "global_batch": gb, "batch_id": stats.batch_id,
                        "tenant": tid, "phase": current_phase,
                        "psi": signal.psi, "ks": signal.ks,
                        "rate_ratio": signal.rate_ratio,
                        "reasons": list(signal.reasons),
                    })
                    event = controller.on_drift(gb, tid)
                    if event is not None:
                        # Training occupies the shared driver for its
                        # (simulated) duration, billed to the retrain pool.
                        manager.t_free += event.cost_s
                        manager.pools.charge(retrain_cfg.pool, event.cost_s)
                        retrains.append({
                            "global_batch": gb, "tenant": tid,
                            "version": event.version,
                            "n_samples": event.n_samples,
                            "n_positive": event.n_positive,
                            "cost_s": round(event.cost_s, 6),
                        })

        # -- the report ------------------------------------------------------
        phases_report = []
        for p, phase in enumerate(scenario.phases):
            tenants_report = {
                tenant_id: _metrics(records.get((tenant_id, p), []))
                for tenant_id in sorted(engines)
                if p >= timelines[tenant_id].joins_at_phase
            }
            phases_report.append({
                "index": p,
                "name": phase.name,
                "started_at_global_batch": phase_started_at.get(p),
                "storm": phase.storm is not None,
                "gain": phase.gain,
                "tenants": tenants_report,
            })
        report: dict[str, Any] = {
            "scenario": scenario.name,
            "seed": seed,
            "retrain_enabled": retrain_cfg.enabled,
            "n_batches": manager.n_batches,
            "n_tenants": len(engines),
            "n_drift_detections": len(drift_timeline),
            "n_retrains": len(retrains),
            "n_swaps": len(swaps),
            "phases": phases_report,
            "drift_timeline": drift_timeline,
            "swaps": swaps,
            "retrains": retrains,
        }
        if session.enabled:
            session.registry.counter("campaign.batches").inc(manager.n_batches)
            session.registry.counter("campaign.drift_detections").inc(
                len(drift_timeline)
            )
            session.registry.counter("campaign.retrains").inc(len(retrains))
        return CampaignResult(config=config, report=report,
                              obs=session if session.enabled else None)
    finally:
        memo.close()
        for view in views.values():
            view.close()
        ctx.close()
        shutil.rmtree(scratch, ignore_errors=True)
