"""Observability configuration: one frozen knob object for the whole stack.

Every subsystem that can observe itself (Sparklet scheduler, DFS client,
pipeline stages, the cluster simulator) takes an :class:`ObsConfig` — or an
already-constructed :class:`~repro.obs.session.ObsSession` — and does
*nothing* when observability is disabled, which is the default.  The
``bench_observability`` benchmark asserts the disabled path costs < 2%
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ObsConfig:
    """What to capture and where to put it.

    Parameters
    ----------
    enabled:
        Master switch.  When False (the default) every emit/span/metric call
        is a no-op behind a single attribute check.
    event_log_path:
        If set, events are appended to this file as JSONL (one JSON object
        per line, Spark-event-log style).  Replayable via
        :func:`repro.obs.replay.replay_job_metrics`.
    keep_events:
        Retain emitted events in memory (``session.log.events``) so tests
        and the report renderer can read them without a file round-trip.
    trace_seed:
        Seeds span-id generation so traces of seeded chaos runs are
        reproducible token for token.
    use_global_registry:
        Publish metrics into the process-wide registry
        (:func:`repro.obs.metrics.get_registry`) instead of a private one.
    """

    enabled: bool = False
    event_log_path: str | None = None
    keep_events: bool = True
    trace_seed: int = 0
    use_global_registry: bool = False


#: The default configuration: everything off.
DISABLED = ObsConfig(enabled=False)
