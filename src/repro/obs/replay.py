"""Replay reader: reconstruct Job/Stage/Task metrics from the event log.

This is the Spark-history-server property: everything the live
:class:`~repro.sparklet.scheduler.DAGScheduler` accumulates in
``job_history`` can be rebuilt from the JSONL event stream alone,
*byte-identically* (the test suite compares JSON serializations of the live
and replayed metrics, and a hypothesis property sweeps random fault
configurations).

Reconstruction rules, mirroring how the scheduler builds its records:

- ``job_start``/``job_end`` frame one job; stages belong to the innermost
  open job.
- ``stage_start`` opens one *stage execution* (a ``StageMetrics`` record),
  uniquely keyed by ``(stage_id, attempt)`` — recomputation waves re-run a
  stage with a bumped attempt, and waves can nest inside another stage's
  task (lineage recovery), so events interleave.
- ``task_end`` appends a completed task to its stage execution.
- ``task_failure`` increments the failure counter named by its ``kind`` on
  the stage execution whose task was running.
- ``stage_end`` seals the stage execution and appends it to the current
  job, preserving the scheduler's completion-order semantics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.obs.events import (
    JOB_END,
    JOB_START,
    STAGE_END,
    STAGE_START,
    TASK_END,
    TASK_FAILURE,
    read_events,
)
from repro.sparklet.metrics import JobMetrics, StageMetrics, TaskMetrics

#: task_failure ``kind`` → StageMetrics counter attribute.
_FAILURE_COUNTERS = {
    "task_crash": "n_task_failures",
    "executor_loss": "n_executor_lost",
    "fetch_failure": "n_fetch_failures",
}


class ReplayError(ValueError):
    """The event stream is inconsistent (missing frame, unknown stage, ...)."""


def replay_job_metrics(source: str | Path | Iterable[dict]) -> list[JobMetrics]:
    """Rebuild the scheduler's ``job_history`` from an event log.

    ``source`` is a JSONL path or an iterable of event dicts.  Events not in
    the job/stage/task vocabulary (spans, DFS, simulator, faults) are
    ignored, so one unified log replays cleanly.
    """
    events = read_events(source)
    jobs: list[JobMetrics] = []
    open_jobs: list[JobMetrics] = []
    open_stages: dict[tuple[int, int], StageMetrics] = {}

    for ev in events:
        etype = ev.get("type")
        if etype == JOB_START:
            open_jobs.append(JobMetrics(job_id=ev["job_id"],
                                        pool=ev.get("pool", "default")))
        elif etype == JOB_END:
            if not open_jobs:
                raise ReplayError(f"job_end without job_start: {ev}")
            jobs.append(open_jobs.pop())
        elif etype == STAGE_START:
            key = (ev["stage_id"], ev["attempt"])
            if key in open_stages:
                raise ReplayError(f"stage execution {key} opened twice")
            open_stages[key] = StageMetrics(
                stage_id=ev["stage_id"],
                name=ev["name"],
                is_shuffle_map=ev["is_shuffle_map"],
                attempt=ev["attempt"],
            )
        elif etype == TASK_END:
            sm = _stage_of(open_stages, ev)
            sm.tasks.append(TaskMetrics.from_dict(ev["task"]))
        elif etype == TASK_FAILURE:
            sm = _stage_of(open_stages, ev)
            counter = _FAILURE_COUNTERS.get(ev["kind"])
            if counter is None:
                raise ReplayError(f"unknown failure kind {ev['kind']!r}")
            setattr(sm, counter, getattr(sm, counter) + 1)
        elif etype == STAGE_END:
            key = (ev["stage_id"], ev["attempt"])
            sm = open_stages.pop(key, None)
            if sm is None:
                raise ReplayError(f"stage_end for unopened stage execution {key}")
            if not open_jobs:
                raise ReplayError(f"stage_end outside any job: {ev}")
            open_jobs[-1].stages.append(sm)

    if open_jobs or open_stages:
        raise ReplayError(
            f"truncated log: {len(open_jobs)} open job(s), "
            f"{len(open_stages)} open stage execution(s)"
        )
    return jobs


def _stage_of(open_stages: dict, ev: dict) -> StageMetrics:
    key = (ev["stage_id"], ev["attempt"])
    sm = open_stages.get(key)
    if sm is None:
        raise ReplayError(f"event for unopened stage execution {key}: {ev}")
    return sm


def replay_all_job_metrics(source: str | Path | Iterable[dict]) -> JobMetrics:
    """All replayed stages merged into one record, mirroring
    :meth:`~repro.sparklet.context.SparkletContext.all_job_metrics`."""
    merged = JobMetrics(job_id=-1)
    for job in replay_job_metrics(source):
        merged.stages.extend(job.stages)
    return merged
