"""Structured event log: append-only JSONL, Spark-event-log style.

Spark's UI and history server are both fed by a replayable event log of
job/stage/task lifecycle events; this module is the Sparklet analogue.  The
scheduler, the DFS, the fault injector, the cluster simulator and the span
tracer all publish here.  The log is the *source of truth* for the replay
reader (:mod:`repro.obs.replay`), which reconstructs
:class:`~repro.sparklet.metrics.JobMetrics` byte-identically from the JSONL
alone — asserted in tests and swept by a hypothesis property suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Iterable

# -- event type vocabulary ---------------------------------------------------
# Sparklet job/stage/task lifecycle (consumed by the replay reader).
JOB_START = "job_start"
JOB_END = "job_end"
STAGE_START = "stage_start"
STAGE_END = "stage_end"
TASK_START = "task_start"
TASK_END = "task_end"
TASK_FAILURE = "task_failure"

# Executor lifecycle and recovery.
EXECUTOR_ADDED = "executor_added"
EXECUTOR_LOST = "executor_lost"
EXECUTOR_BLACKLISTED = "executor_blacklisted"
SHUFFLE_RECOVER = "shuffle_recover"
FAULT_INJECTED = "fault_injected"

# Parallel backend: worker-process lifecycle and shared-memory segments.
WORKER_SPAWNED = "worker_spawned"
WORKER_EXITED = "worker_exited"
SHM_SEGMENT_CREATED = "shm_segment_created"
SHM_SEGMENT_RELEASED = "shm_segment_released"

# Span tracer.
SPAN_START = "span_start"
SPAN_END = "span_end"

# Front-end kernel selection (repro.execution.KernelConfig resolution).
KERNEL_SELECTED = "kernel_selected"

# Memoization subsystem (repro.memo).
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
CANDIDATE_STORED = "candidate_stored"

# DFS.
DFS_PUT = "dfs_put"
DFS_DELETE = "dfs_delete"
DFS_NODE_DEAD = "dfs_node_dead"
DFS_HEARTBEAT = "dfs_heartbeat"
DFS_REREPLICATE = "dfs_rereplicate"
DFS_BLOCK_REPORT = "dfs_block_report"

# YARN-style resource manager.
CONTAINER_GRANTED = "container_granted"
CONTAINER_RELEASED = "container_released"
NODE_DECOMMISSIONED = "node_decommissioned"

# Cluster simulator.
SIM_STAGE = "sim_stage"
SIM_SPILL = "sim_spill"

# Micro-batch streaming engine (repro.streaming).
BLOCK_RECEIVED = "block_received"
BATCH_SUBMITTED = "batch_submitted"
BATCH_COMPLETED = "batch_completed"
WATERMARK_ADVANCED = "watermark_advanced"
RATE_UPDATED = "rate_updated"
CHECKPOINT_WRITTEN = "checkpoint_written"
DRIVER_RECOVERED = "driver_recovered"

# Multi-tenant serving tier (repro.streaming.sessions / serving).
SESSION_ADMITTED = "session_admitted"
SESSION_REJECTED = "session_rejected"
SESSION_DEGRADED = "session_degraded"
MODEL_SWAPPED = "model_swapped"

# Campaign subsystem (repro.campaign): drift monitors and online retraining.
CAMPAIGN_PHASE = "campaign_phase"
DRIFT_DETECTED = "drift_detected"
RETRAIN_STARTED = "retrain_started"
RETRAIN_COMPLETED = "retrain_completed"


class EventLog:
    """Append-only structured event sink.

    Events are plain dicts with ``seq`` (dense, per-log ordering), ``t``
    (seconds since the log was opened, monotonic clock) and ``type`` keys
    plus event-specific fields.  When ``path`` is given every event is also
    written as one compact JSON line; ``flush()``/``close()`` make the file
    durable.  Payloads must be JSON-serializable — the emitting sites only
    pass scalars, strings and flat lists.
    """

    def __init__(self, path: str | Path | None = None, keep: bool = True) -> None:
        self.path = Path(path) if path is not None else None
        self.keep = keep
        self.events: list[dict[str, Any]] = []
        self._seq = 0
        self._t0 = time.perf_counter()
        self._fh: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, etype: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the event dict."""
        event = {"seq": self._seq, "t": round(time.perf_counter() - self._t0, 9),
                 "type": etype}
        event.update(fields)
        self._seq += 1
        if self.keep:
            self.events.append(event)
        if self._fh is not None:
            self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        return event

    @property
    def n_events(self) -> int:
        return self._seq

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_events(source: str | Path | Iterable[dict]) -> list[dict[str, Any]]:
    """Load events from a JSONL file path or pass a dict iterable through.

    Blank lines are skipped so hand-truncated logs stay readable; a torn
    final line (crash mid-write) is dropped rather than failing the whole
    replay, mirroring how Spark's history server treats in-progress logs.
    """
    if not isinstance(source, (str, Path)):
        return list(source)
    out: list[dict[str, Any]] = []
    with open(source, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail from an interrupted run
    return out
