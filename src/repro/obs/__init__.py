"""Observability: structured event log, span tracer, metrics registry.

The layer Spark builds its UI/history server on — a replayable event log —
plus the cross-stage tracing and process-wide metrics this reproduction
needs to make its RQ1/RQ2 scalability claims inspectable:

- :class:`~repro.obs.events.EventLog` — append-only JSONL event stream
  (job/stage/task lifecycle, executor loss/blacklist, DFS activity, fault
  injections, spans).
- :func:`~repro.obs.replay.replay_job_metrics` — rebuild
  ``JobMetrics``/``StageMetrics`` byte-identically from the log alone.
- :class:`~repro.obs.trace.Tracer` — nested spans with seeded-deterministic
  ids and monotonic-clock durations.
- :class:`~repro.obs.metrics.MetricsRegistry` — counters/gauges/timers/
  fixed-bucket histograms; :func:`~repro.obs.metrics.get_registry` is the
  process-wide instance.
- :mod:`repro.obs.report` — per-stage timelines, task-skew histograms and
  straggler/blacklist summaries (``python -m repro trace-report``).

Everything hangs off an :class:`~repro.obs.session.ObsSession` built from
an :class:`~repro.obs.config.ObsConfig`; disabled (the default) is a no-op.
"""

from repro.obs.config import ObsConfig
from repro.obs.events import EventLog, read_events
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    reset_registry,
)
from repro.obs.replay import ReplayError, replay_all_job_metrics, replay_job_metrics
from repro.obs.report import build_report, render_json, render_text
from repro.obs.session import NULL_OBS, ObsSession, TenantObsSession
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "ObsConfig",
    "ObsSession",
    "ReplayError",
    "Span",
    "TenantObsSession",
    "Timer",
    "Tracer",
    "build_report",
    "get_registry",
    "read_events",
    "render_json",
    "render_text",
    "replay_all_job_metrics",
    "replay_job_metrics",
    "reset_registry",
]
