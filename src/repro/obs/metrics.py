"""Process-wide metrics registry: counters, gauges, timers, histograms.

Sparklet, the DFS and the ML layer publish here (guarded by the session's
``enabled`` flag, so disabled observability costs one attribute check).
Histograms use *fixed* bucket edges so snapshots from different runs are
directly comparable and the report renderer can draw stable task-skew
histograms.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Iterator, Sequence

#: Default histogram bucket edges (seconds-flavoured log scale).  A value v
#: lands in the first bucket whose edge is >= v; values beyond the last edge
#: land in the +Inf overflow bucket.
DEFAULT_EDGES: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 300.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max aggregates."""

    __slots__ = ("name", "edges", "counts", "overflow", "total", "count", "min", "max")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> None:
        if list(edges) != sorted(edges) or len(edges) < 1:
            raise ValueError("histogram edges must be a non-empty ascending sequence")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * len(self.edges)
        self.overflow = 0
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        # Bucket i holds values in (edges[i-1], edges[i]]: the first edge
        # >= value, found by bisect_left (edge-inclusive on the right).
        idx = bisect_left(self.edges, value)
        if idx >= len(self.edges):
            self.overflow += 1
        else:
            self.counts[idx] += 1
        self.total += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class Timer:
    """Duration recorder; use as a context manager around the timed block."""

    __slots__ = ("name", "histogram", "_t0")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> None:
        self.name = name
        self.histogram = Histogram(name, edges)

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_s(self) -> float:
        return self.histogram.total

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name maps to exactly one instrument kind for the registry's lifetime;
    asking for the same name with a different kind is a bug and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get(self, name: str, cls, *args):
        inst = self._metrics.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._metrics[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, "
                f"not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> Histogram:
        return self._get(name, Histogram, edges)

    def timer(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> Timer:
        return self._get(name, Timer, edges)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every instrument, sorted by name."""
        out: dict[str, Any] = {}
        for name, inst in self:
            if isinstance(inst, Counter):
                out[name] = {"kind": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"kind": "gauge", "value": inst.value}
            elif isinstance(inst, Timer):
                out[name] = {"kind": "timer", **inst.histogram.to_dict()}
            else:
                out[name] = {"kind": "histogram", **inst.to_dict()}
        return out

    def reset(self) -> None:
        self._metrics.clear()


#: The process-wide registry (``use_global_registry=True`` sessions publish
#: here; :func:`get_registry` is the blessed accessor).
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def reset_registry() -> None:
    """Clear the process-wide registry (test isolation)."""
    _GLOBAL.reset()
