"""Span-based tracer: nested, monotonic-clock, seeded-deterministic ids.

A span covers one unit of work (a pipeline stage, a Sparklet stage wave, a
task attempt).  Spans nest — entering a span while another is open makes it
the child — so a faulted D-RAPID run shows recomputation waves *inside* the
task attempt that triggered them.  Span ids are a pure function of the
configured seed and an allocation counter (no wall clock, no randomness),
so a seeded chaos run produces the same span tree every time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventLog


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    span_id: str
    parent_id: str | None
    name: str
    #: Offset from the tracer's epoch, monotonic clock.
    start_s: float
    duration_s: float = 0.0
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            **({"attrs": self.attrs} if self.attrs else {}),
        }


class Tracer:
    """Allocates spans and (optionally) mirrors them into an event log."""

    def __init__(self, seed: int = 0, log: "EventLog | None" = None) -> None:
        self.seed = seed
        self.log = log
        self.spans: list[Span] = []
        self._counter = 0
        self._stack: list[Span] = []
        self._t0 = time.perf_counter()

    def _new_id(self) -> str:
        self._counter += 1
        return f"{self.seed & 0xFFFFFFFF:08x}-{self._counter:06d}"

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span for the block."""
        parent = self._stack[-1].span_id if self._stack else None
        sp = Span(
            span_id=self._new_id(),
            parent_id=parent,
            name=name,
            start_s=round(time.perf_counter() - self._t0, 9),
            attrs=dict(attrs),
        )
        self.spans.append(sp)
        self._stack.append(sp)
        if self.log is not None:
            self.log.emit("span_start", span_id=sp.span_id, parent_id=sp.parent_id,
                          name=name, **attrs)
        t0 = time.perf_counter()
        try:
            yield sp
        except BaseException as exc:
            sp.status = f"error:{type(exc).__name__}"
            raise
        finally:
            sp.duration_s = time.perf_counter() - t0
            self._stack.pop()
            if self.log is not None:
                self.log.emit("span_end", span_id=sp.span_id, name=name,
                              duration_s=sp.duration_s, status=sp.status)

    def tree(self) -> list[tuple[int, Span]]:
        """Spans in start order, each with its nesting depth."""
        depth: dict[str | None, int] = {None: -1}
        out: list[tuple[int, Span]] = []
        for sp in self.spans:
            d = depth.get(sp.parent_id, -1) + 1
            depth[sp.span_id] = d
            out.append((d, sp))
        return out
