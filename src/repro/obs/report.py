"""Report renderer: turn an event log into human/machine-readable summaries.

Produces the run views the paper's analysis needs (and Spark's UI would
show): per-stage timelines, task-skew histograms, straggler and
blacklist/executor-loss summaries, fault-injection and DFS activity counts,
and the span tree.  Usable programmatically (:func:`build_report`) or from
the CLI (``python -m repro trace-report <run.jsonl>``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.events import (
    BATCH_COMPLETED,
    BATCH_SUBMITTED,
    DFS_HEARTBEAT,
    DFS_PUT,
    DFS_REREPLICATE,
    DRIFT_DETECTED,
    EXECUTOR_BLACKLISTED,
    EXECUTOR_LOST,
    FAULT_INJECTED,
    JOB_END,
    JOB_START,
    KERNEL_SELECTED,
    MODEL_SWAPPED,
    RETRAIN_COMPLETED,
    SHM_SEGMENT_CREATED,
    SHM_SEGMENT_RELEASED,
    SIM_STAGE,
    SPAN_END,
    SPAN_START,
    WORKER_EXITED,
    WORKER_SPAWNED,
    read_events,
)
from repro.obs.replay import replay_job_metrics

#: Fixed bucket edges for the task-skew histogram: task duration divided by
#: its stage's mean duration.  1.0 is a perfectly balanced stage; the paper's
#: task-skew "knees" show up as mass beyond 2x.
SKEW_EDGES: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0)


def _table(headers: list[str], rows: list[list[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r_i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r_i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 when empty)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[idx]


def _tenant_events(events: list[dict], tenant: str) -> list[dict]:
    """One tenant's slice of a shared multi-tenant event log.

    Engine/session events carry explicit ``tenant``/``pool`` fields; stage
    and task events carry neither, but the shared driver executes jobs
    strictly sequentially, so everything between a tenant's ``job_start``
    (whose ``pool`` names the tenant) and its ``job_end`` belongs to it.
    """
    kept: list[dict] = []
    in_tenant_job = False
    for e in events:
        etype = e.get("type")
        tagged = e.get("tenant") == tenant or e.get("pool") == tenant
        if etype == JOB_START:
            in_tenant_job = tagged
            if tagged:
                kept.append(e)
        elif etype == JOB_END:
            if in_tenant_job:
                kept.append(e)
            in_tenant_job = False
        elif in_tenant_job or tagged:
            kept.append(e)
    return kept


def _pool_summaries(events: list[dict]) -> list[dict[str, Any]]:
    """Per-pool scheduling-delay and service summary (streaming + jobs)."""
    delays: dict[str, list[float]] = {}
    processing: dict[str, float] = {}
    n_jobs: dict[str, int] = {}
    for e in events:
        etype = e.get("type")
        if etype == BATCH_SUBMITTED:
            pool = e.get("pool", "default")
            delays.setdefault(pool, []).append(
                float(e.get("start_s", 0.0)) - float(e.get("boundary_s", 0.0))
            )
        elif etype == BATCH_COMPLETED:
            pool = e.get("pool", "default")
            processing[pool] = processing.get(pool, 0.0) + float(
                e.get("processing_s", 0.0)
            )
        elif etype == JOB_START:
            pool = e.get("pool", "default")
            n_jobs[pool] = n_jobs.get(pool, 0) + 1
    pools = sorted(set(delays) | set(processing) | set(n_jobs))
    out = []
    for pool in pools:
        d = sorted(delays.get(pool, []))
        out.append(
            {
                "pool": pool,
                "n_batches": len(d),
                "n_jobs": n_jobs.get(pool, 0),
                "sched_delay_mean_s": sum(d) / len(d) if d else 0.0,
                "sched_delay_p50_s": _percentile(d, 0.50),
                "sched_delay_p99_s": _percentile(d, 0.99),
                "processing_s": processing.get(pool, 0.0),
            }
        )
    return out


def build_report(
    source: str | Path | Iterable[dict], *, tenant: str | None = None
) -> dict[str, Any]:
    """Aggregate an event log into a JSON-able report dict.

    ``tenant`` restricts the report to one tenant's slice of a shared
    multi-tenant log (see :func:`_tenant_events`) — the serving analogue of
    grepping one service out of a fleet's log.
    """
    events = read_events(source)
    if tenant is not None:
        events = _tenant_events(events, tenant)
    jobs = replay_job_metrics(events)

    # -- per-stage timeline ------------------------------------------------
    stages: list[dict[str, Any]] = []
    all_tasks: list[tuple[str, Any]] = []  # (stage label, TaskMetrics)
    skew_counts = [0] * (len(SKEW_EDGES) + 1)
    for job in jobs:
        for sm in job.stages:
            n = len(sm.tasks)
            total = sm.total_task_seconds
            longest = sm.max_task_seconds
            mean = total / n if n else 0.0
            label = f"{sm.stage_id}.{sm.attempt}"
            stages.append(
                {
                    "job_id": job.job_id,
                    "stage": label,
                    "name": sm.name,
                    "kind": "map" if sm.is_shuffle_map else "result",
                    "n_tasks": n,
                    "total_task_s": total,
                    "max_task_s": longest,
                    "skew": longest / mean if mean > 0 else 0.0,
                    "shuffle_read_b": sum(t.shuffle_read_bytes for t in sm.tasks),
                    "shuffle_write_b": sm.total_shuffle_write,
                    "failures": sm.n_task_failures + sm.n_executor_lost + sm.n_fetch_failures,
                }
            )
            for t in sm.tasks:
                all_tasks.append((label, t))
                if mean > 0:
                    ratio = t.duration_s / mean
                    idx = next(
                        (i for i, e in enumerate(SKEW_EDGES) if ratio <= e),
                        len(SKEW_EDGES),
                    )
                    skew_counts[idx] += 1

    # -- stragglers --------------------------------------------------------
    slowest = sorted(all_tasks, key=lambda lt: lt[1].duration_s, reverse=True)[:5]
    stragglers = [
        {
            "stage": label,
            "partition": t.partition,
            "duration_s": t.duration_s,
            "attempts": t.attempts,
            "executor_id": t.executor_id,
            "worker_id": t.worker_id,
        }
        for label, t in slowest
    ]

    # -- worker processes (parallel backend) -------------------------------
    # Per-worker task-time totals expose placement skew: with the static
    # partition % num_workers rule, an unlucky residue class shows up here
    # as one worker's busy-seconds towering over the rest.
    per_worker: dict[str, dict[str, Any]] = {}
    for _label, t in all_tasks:
        if not t.worker_id:
            continue
        w = per_worker.setdefault(
            t.worker_id, {"worker_id": t.worker_id, "n_tasks": 0, "busy_s": 0.0}
        )
        w["n_tasks"] += 1
        w["busy_s"] += t.duration_s
    busy = [w["busy_s"] for w in per_worker.values()]
    mean_busy = sum(busy) / len(busy) if busy else 0.0
    for w in per_worker.values():
        w["skew"] = w["busy_s"] / mean_busy if mean_busy > 0 else 0.0
    shm_created = [e for e in events if e["type"] == SHM_SEGMENT_CREATED]
    shm_released = [e for e in events if e["type"] == SHM_SEGMENT_RELEASED]
    workers = {
        "per_worker": sorted(per_worker.values(), key=lambda w: w["worker_id"]),
        "spawned": sum(1 for e in events if e["type"] == WORKER_SPAWNED),
        "exited": sum(1 for e in events if e["type"] == WORKER_EXITED),
        "shm_segments_created": len(shm_created),
        "shm_bytes_created": sum(e.get("nbytes", 0) for e in shm_created),
        "shm_segments_released": len(shm_released),
    }

    # -- executor / fault / dfs activity -----------------------------------
    lost = [e for e in events if e["type"] == EXECUTOR_LOST]
    blacklisted = [e for e in events if e["type"] == EXECUTOR_BLACKLISTED]
    faults: dict[str, int] = {}
    for e in events:
        if e["type"] == FAULT_INJECTED:
            faults[e["kind"]] = faults.get(e["kind"], 0) + 1
    dfs = {
        "puts": sum(1 for e in events if e["type"] == DFS_PUT),
        "bytes_written": sum(e.get("n_bytes", 0) for e in events if e["type"] == DFS_PUT),
        "heartbeats": sum(1 for e in events if e["type"] == DFS_HEARTBEAT),
        "replicas_restored": sum(
            e.get("restored", 0) for e in events if e["type"] == DFS_REREPLICATE
        ),
    }

    # -- span tree ---------------------------------------------------------
    durations = {
        e["span_id"]: (e.get("duration_s", 0.0), e.get("status", "ok"))
        for e in events
        if e["type"] == SPAN_END
    }
    spans = []
    depth: dict[str | None, int] = {None: -1}
    for e in events:
        if e["type"] != SPAN_START:
            continue
        d = depth.get(e.get("parent_id"), -1) + 1
        depth[e["span_id"]] = d
        dur, status = durations.get(e["span_id"], (0.0, "open"))
        spans.append(
            {
                "depth": d,
                "name": e["name"],
                "span_id": e["span_id"],
                "duration_s": dur,
                "status": status,
            }
        )

    sim_stages = [
        {k: e[k] for k in ("stage_id", "name", "makespan_s", "spilled_bytes") if k in e}
        for e in events
        if e["type"] == SIM_STAGE
    ]

    # -- model serving: swaps and drift ------------------------------------
    model_swaps = [
        {
            k: e[k]
            for k in ("batch_id", "old_version", "version", "tenant")
            if k in e
        }
        for e in events
        if e["type"] == MODEL_SWAPPED
    ]
    drift_events = [
        {
            k: e[k]
            for k in ("batch_id", "tenant", "psi", "ks", "rate_ratio", "reasons")
            if k in e
        }
        for e in events
        if e["type"] == DRIFT_DETECTED
    ]
    serving = {
        "n_model_swaps": len(model_swaps),
        "model_swaps": model_swaps,
        "n_drift_detections": len(drift_events),
        "drift_detections": drift_events,
        "n_retrains": sum(1 for e in events if e["type"] == RETRAIN_COMPLETED),
    }

    # -- front-end kernels -------------------------------------------------
    # Which kernels the run resolved to (kernel_selected events) and how
    # long each kernel stage actually took ("kernel.*" spans, aggregated).
    kernel_selected = [
        {
            k: e[k]
            for k in ("method", "impl", "impl_requested", "boxcar", "source")
            if k in e
        }
        for e in events
        if e["type"] == KERNEL_SELECTED
    ]
    span_names = {
        e["span_id"]: e["name"] for e in events if e["type"] == SPAN_START
    }
    kernel_stage_totals: dict[str, dict[str, Any]] = {}
    for e in events:
        if e["type"] != SPAN_END:
            continue
        name = str(e.get("name") or span_names.get(e.get("span_id"), ""))
        if not name.startswith("kernel."):
            continue
        st = kernel_stage_totals.setdefault(
            name, {"stage": name, "count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        st["count"] += 1
        dur = float(e.get("duration_s", 0.0))
        st["total_s"] += dur
        st["max_s"] = max(st["max_s"], dur)
    kernels = {
        "selected": kernel_selected,
        "stages": sorted(kernel_stage_totals.values(), key=lambda r: r["stage"]),
    }

    return {
        "summary": {
            "tenant": tenant,
            "n_events": len(events),
            "n_jobs": len(jobs),
            "n_stage_executions": len(stages),
            "n_tasks": len(all_tasks),
            "total_task_s": sum(t.duration_s for _l, t in all_tasks),
            "n_task_failures": sum(j.n_task_failures for j in jobs),
            "n_executor_lost": sum(j.n_executor_lost for j in jobs),
            "n_fetch_failures": sum(j.n_fetch_failures for j in jobs),
            "n_recomputed_stages": sum(j.n_recomputed_stages for j in jobs),
        },
        "stages": stages,
        "task_skew_histogram": {
            "edges": list(SKEW_EDGES),
            "counts": skew_counts[:-1],
            "overflow": skew_counts[-1],
        },
        "stragglers": stragglers,
        "workers": workers,
        "executors": {
            "lost": [e.get("executor_id", "?") for e in lost],
            "blacklisted": [e.get("executor_id", "?") for e in blacklisted],
        },
        "faults_injected": faults,
        "dfs": dfs,
        "pools": _pool_summaries(events),
        "spans": spans,
        "sim_stages": sim_stages,
        "kernels": kernels,
        "serving": serving,
    }


def render_text(report: dict[str, Any]) -> str:
    """Fixed-width text rendering of :func:`build_report` output."""
    out: list[str] = []
    s = report["summary"]
    out.append("== run summary ==")
    if s.get("tenant"):
        out.append(f"tenant: {s['tenant']}")
    out.append(
        f"events={s['n_events']}  jobs={s['n_jobs']}  "
        f"stage-executions={s['n_stage_executions']}  tasks={s['n_tasks']}  "
        f"task-seconds={s['total_task_s']:.4f}"
    )
    out.append(
        f"failures: task={s['n_task_failures']}  executor={s['n_executor_lost']}  "
        f"fetch={s['n_fetch_failures']}  recomputed-stages={s['n_recomputed_stages']}"
    )

    if report["stages"]:
        out.append("\n== stage timeline ==")
        out.append(
            _table(
                ["job", "stage", "name", "kind", "tasks", "total s", "max s",
                 "skew", "shuf R", "shuf W", "fail"],
                [
                    [r["job_id"], r["stage"], r["name"][:36], r["kind"], r["n_tasks"],
                     r["total_task_s"], r["max_task_s"], r["skew"],
                     r["shuffle_read_b"], r["shuffle_write_b"], r["failures"]]
                    for r in report["stages"]
                ],
            )
        )

    hist = report["task_skew_histogram"]
    if sum(hist["counts"]) + hist["overflow"] > 0:
        out.append("\n== task skew (duration / stage mean) ==")
        labels = [f"<={e}" for e in hist["edges"]] + [f">{hist['edges'][-1]}"]
        counts = hist["counts"] + [hist["overflow"]]
        peak = max(counts) or 1
        for label, count in zip(labels, counts):
            bar = "#" * round(30 * count / peak)
            out.append(f"  {label:>7s}  {count:6d}  {bar}")

    if report["stragglers"]:
        out.append("\n== slowest tasks ==")
        out.append(
            _table(
                ["stage", "partition", "duration s", "attempts", "executor", "worker"],
                [[r["stage"], r["partition"], r["duration_s"], r["attempts"],
                  r["executor_id"], r.get("worker_id", "") or "-"]
                 for r in report["stragglers"]],
            )
        )

    w = report.get("workers", {})
    if w.get("per_worker"):
        out.append("\n== worker processes ==")
        out.append(
            _table(
                ["worker", "tasks", "busy s", "skew"],
                [[r["worker_id"], r["n_tasks"], r["busy_s"], r["skew"]]
                 for r in w["per_worker"]],
            )
        )
        out.append(
            f"spawned={w['spawned']}  exited={w['exited']}  "
            f"shm-segments={w['shm_segments_created']} "
            f"({w['shm_bytes_created']} B created, "
            f"{w['shm_segments_released']} released)"
        )

    ex = report["executors"]
    if ex["lost"] or ex["blacklisted"]:
        out.append("\n== executors ==")
        out.append(f"lost: {', '.join(ex['lost']) or '-'}")
        out.append(f"blacklisted: {', '.join(ex['blacklisted']) or '-'}")

    if report["faults_injected"]:
        out.append("\n== injected faults ==")
        for kind, count in sorted(report["faults_injected"].items()):
            out.append(f"  {kind}: {count}")

    if report["dfs"]["puts"] or report["dfs"]["heartbeats"]:
        d = report["dfs"]
        out.append("\n== dfs ==")
        out.append(
            f"puts={d['puts']}  bytes={d['bytes_written']}  "
            f"heartbeats={d['heartbeats']}  replicas-restored={d['replicas_restored']}"
        )

    if report.get("pools"):
        out.append("\n== scheduling pools ==")
        out.append(
            _table(
                ["pool", "batches", "jobs", "delay mean s", "delay p50 s",
                 "delay p99 s", "processing s"],
                [[r["pool"], r["n_batches"], r["n_jobs"],
                  r["sched_delay_mean_s"], r["sched_delay_p50_s"],
                  r["sched_delay_p99_s"], r["processing_s"]]
                 for r in report["pools"]],
            )
        )

    kernels = report.get("kernels", {})
    if kernels.get("selected") or kernels.get("stages"):
        out.append("\n== front-end kernels ==")
        for sel in kernels.get("selected", []):
            requested = sel.get("impl_requested")
            impl = sel.get("impl", "?")
            impl_txt = (
                f"{impl} (requested {requested})"
                if requested and requested != impl
                else impl
            )
            out.append(
                f"  selected: method={sel.get('method', '?')}  impl={impl_txt}  "
                f"boxcar={sel.get('boxcar', '?')}  source={sel.get('source', '-')}"
            )
        if kernels.get("stages"):
            out.append(
                _table(
                    ["stage", "count", "total s", "max s"],
                    [[r["stage"], r["count"], r["total_s"], r["max_s"]]
                     for r in kernels["stages"]],
                )
            )

    serving = report.get("serving", {})
    if serving.get("n_model_swaps") or serving.get("n_drift_detections"):
        out.append("\n== model serving ==")
        out.append(
            f"swaps={serving['n_model_swaps']}  "
            f"drift-detections={serving['n_drift_detections']}  "
            f"retrains={serving['n_retrains']}"
        )
        if serving.get("model_swaps"):
            out.append(
                _table(
                    ["batch", "old", "new", "tenant"],
                    [[r.get("batch_id", "?"), r.get("old_version", "-"),
                      r.get("version", "?"), r.get("tenant", "-") or "-"]
                     for r in serving["model_swaps"]],
                )
            )

    if report["spans"]:
        out.append("\n== span tree ==")
        for sp in report["spans"]:
            out.append(
                f"  {'  ' * sp['depth']}{sp['name']}  "
                f"[{sp['duration_s']:.4f}s {sp['status']}]"
            )

    if report["sim_stages"]:
        out.append("\n== simulated stages ==")
        out.append(
            _table(
                ["stage", "name", "makespan s", "spilled B"],
                [[r.get("stage_id", "?"), r.get("name", "?")[:36],
                  r.get("makespan_s", 0.0), r.get("spilled_bytes", 0.0)]
                 for r in report["sim_stages"]],
            )
        )

    return "\n".join(out) + "\n"


def render_json(report: dict[str, Any]) -> str:
    return json.dumps(report, indent=2) + "\n"
