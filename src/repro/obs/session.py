"""ObsSession: the live bundle of event log + tracer + metrics registry.

One session is shared by every subsystem participating in a run (the
pipeline creates it from its ``obs_config`` and hands it to the Sparklet
context and the DFS client), so all events land in a single ordered log and
all spans form a single tree.

The disabled path is a singleton (:data:`NULL_OBS`) whose ``enabled`` flag
is False; hot paths guard with ``if obs.enabled:`` so the disabled cost is
one attribute load — the observability benchmark holds this under 2%
end to end.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, ContextManager

from repro.obs.config import ObsConfig
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer


class _NullTracer:
    """Tracer stand-in whose spans are free."""

    spans: list = []

    def span(self, name: str, **attrs: Any) -> ContextManager[None]:
        return nullcontext()

    def tree(self) -> list:
        return []


class ObsSession:
    """Everything a subsystem needs to observe itself."""

    __slots__ = ("enabled", "config", "log", "tracer", "registry")

    def __init__(
        self,
        config: ObsConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ObsConfig()
        self.enabled = self.config.enabled
        if self.enabled:
            self.log = EventLog(self.config.event_log_path, keep=self.config.keep_events)
            self.tracer: Tracer | _NullTracer = Tracer(self.config.trace_seed, log=self.log)
            if registry is not None:
                self.registry = registry
            elif self.config.use_global_registry:
                self.registry = get_registry()
            else:
                self.registry = MetricsRegistry()
        else:
            self.log = None  # type: ignore[assignment]
            self.tracer = _NULL_TRACER
            self.registry = _NULL_REGISTRY

    # -- emission -----------------------------------------------------------
    def emit(self, etype: str, **fields: Any) -> None:
        """Append one structured event (no-op when disabled)."""
        if self.enabled:
            self.log.emit(etype, **fields)

    def events(self) -> list[dict[str, Any]]:
        """In-memory event list (empty when disabled)."""
        return self.log.events if self.enabled else []

    def flush(self) -> None:
        if self.enabled:
            self.log.flush()

    def close(self) -> None:
        if self.enabled:
            self.log.close()

    # -- construction --------------------------------------------------------
    @classmethod
    def from_config(cls, config: "ObsConfig | ObsSession | None") -> "ObsSession":
        """Build a session, passing through an existing one unchanged.

        Accepting a session lets composed subsystems (pipeline → context →
        scheduler; pipeline → DFS client) share a single event stream.
        ``None`` and disabled configs return the :data:`NULL_OBS` singleton,
        so the disabled path allocates nothing.
        """
        if isinstance(config, ObsSession):
            return config
        if config is None or not config.enabled:
            return NULL_OBS
        return cls(config)


_NULL_TRACER = _NullTracer()
_NULL_REGISTRY = MetricsRegistry()

#: The shared disabled session.  Its registry is a private always-empty-ish
#: sink: nothing guards writes into it because nothing writes when disabled.
NULL_OBS = ObsSession(ObsConfig(enabled=False))
