"""ObsSession: the live bundle of event log + tracer + metrics registry.

One session is shared by every subsystem participating in a run (the
pipeline creates it from its ``obs_config`` and hands it to the Sparklet
context and the DFS client), so all events land in a single ordered log and
all spans form a single tree.

The disabled path is a singleton (:data:`NULL_OBS`) whose ``enabled`` flag
is False; hot paths guard with ``if obs.enabled:`` so the disabled cost is
one attribute load — the observability benchmark holds this under 2%
end to end.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, ContextManager

from repro.obs.config import ObsConfig
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer


class _NullTracer:
    """Tracer stand-in whose spans are free."""

    spans: list = []

    def span(self, name: str, **attrs: Any) -> ContextManager[None]:
        return nullcontext()

    def tree(self) -> list:
        return []


class ObsSession:
    """Everything a subsystem needs to observe itself."""

    __slots__ = ("enabled", "config", "log", "tracer", "registry")

    def __init__(
        self,
        config: ObsConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ObsConfig()
        self.enabled = self.config.enabled
        if self.enabled:
            self.log = EventLog(self.config.event_log_path, keep=self.config.keep_events)
            self.tracer: Tracer | _NullTracer = Tracer(self.config.trace_seed, log=self.log)
            if registry is not None:
                self.registry = registry
            elif self.config.use_global_registry:
                self.registry = get_registry()
            else:
                self.registry = MetricsRegistry()
        else:
            self.log = None  # type: ignore[assignment]
            self.tracer = _NULL_TRACER
            self.registry = _NULL_REGISTRY

    # -- emission -----------------------------------------------------------
    def emit(self, etype: str, **fields: Any) -> None:
        """Append one structured event (no-op when disabled)."""
        if self.enabled:
            self.log.emit(etype, **fields)

    def events(self) -> list[dict[str, Any]]:
        """In-memory event list (empty when disabled)."""
        return self.log.events if self.enabled else []

    def flush(self) -> None:
        if self.enabled:
            self.log.flush()

    def close(self) -> None:
        if self.enabled:
            self.log.close()

    # -- multi-tenant views --------------------------------------------------
    def for_tenant(self, tenant_id: str, *, pool: str | None = None,
                   path: str | None = None) -> "TenantObsSession":
        """A per-tenant view of this session (see :class:`TenantObsSession`).

        Every event emitted through the view carries ``tenant`` and
        ``pool`` fields in the shared log; with ``path`` the view also
        routes a private copy of the tenant's events to its own JSONL
        file, so one tenant's trace can be shipped without the others'.
        """
        return TenantObsSession(self, tenant_id, pool=pool, path=path)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_config(cls, config: "ObsConfig | ObsSession | None") -> "ObsSession":
        """Build a session, passing through an existing one unchanged.

        Accepting a session lets composed subsystems (pipeline → context →
        scheduler; pipeline → DFS client) share a single event stream.
        ``None`` and disabled configs return the :data:`NULL_OBS` singleton,
        so the disabled path allocates nothing.
        """
        if isinstance(config, ObsSession):
            return config
        if config is None or not config.enabled:
            return NULL_OBS
        return cls(config)


class TenantObsSession:
    """One tenant's window onto a shared :class:`ObsSession`.

    Implements the session interface the engine and DFS consume (enabled /
    emit / events / tracer / registry / flush / close), adding the tenant
    identity to every event and optionally mirroring the tenant's events
    into a private :class:`~repro.obs.events.EventLog`.  Tracer and
    registry are the parent's: spans stay one tree, metrics one registry
    (per-tenant series are separated by the event fields).  Disabled
    parents yield a disabled view — the NULL_OBS fast path survives.
    """

    __slots__ = ("enabled", "parent", "tenant", "pool", "private_log")

    def __init__(self, parent: ObsSession, tenant_id: str, *,
                 pool: str | None = None, path: str | None = None) -> None:
        self.parent = parent
        self.enabled = parent.enabled
        self.tenant = tenant_id
        #: Scheduler pool the tenant's jobs run under (defaults 1:1).
        self.pool = pool if pool is not None else tenant_id
        self.private_log = (
            EventLog(path) if (path is not None and parent.enabled) else None
        )

    # Shared pieces delegate to the parent.
    @property
    def config(self) -> ObsConfig:
        return self.parent.config

    @property
    def log(self):
        return self.parent.log

    @property
    def tracer(self):
        return self.parent.tracer

    @property
    def registry(self):
        return self.parent.registry

    def emit(self, etype: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.parent.emit(etype, tenant=self.tenant, pool=self.pool, **fields)
        if self.private_log is not None:
            self.private_log.emit(etype, tenant=self.tenant, pool=self.pool,
                                  **fields)

    def events(self) -> list[dict[str, Any]]:
        """This tenant's events in the shared log."""
        return [e for e in self.parent.events()
                if e.get("tenant") == self.tenant]

    def flush(self) -> None:
        self.parent.flush()
        if self.private_log is not None:
            self.private_log.flush()

    def close(self) -> None:
        """Close the private log only; the shared session outlives the view."""
        if self.private_log is not None:
            self.private_log.close()


_NULL_TRACER = _NullTracer()
_NULL_REGISTRY = MetricsRegistry()

#: The shared disabled session.  Its registry is a private always-empty-ish
#: sink: nothing guards writes into it because nothing writes when disabled.
NULL_OBS = ObsSession(ObsConfig(enabled=False))
