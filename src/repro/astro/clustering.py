"""Customized DBSCAN for single-pulse event clustering (stage 2 of Fig. 2).

Implements the clustering of Pang et al. (2017) as the paper describes it:
density-based clustering of SPEs in the DM-vs-time plane, with two
radio-astronomy customizations:

1. **anisotropic scaling** — the time axis is measured in seconds and the DM
   axis in *ladder steps* (trial indices), because DMSpacing varies by two
   orders of magnitude across the ladder; clustering raw DM values would
   fragment high-DM pulses and fuse low-DM ones;
2. **cluster merging** — one physical pulse can be split into several
   apparent clusters by processing artifacts (e.g., the event list being
   chunked in time, or dropouts at specific trial DMs).  A post-pass merges
   clusters that are adjacent in time and overlap in DM extent.

Neighbour search uses a **lexsorted cell index**: points are sorted by their
grid cell (``np.lexsort`` over (cx, cy)), so each 3×3 cell block reduces to
three contiguous slices found by binary search, and the distance filter is
one vectorized pass — O(n · k) overall, with none of the per-point dict
probes of the seed implementation (retained as :func:`_reference_dbscan`
for equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane import SPEBatch

NOISE = -1


@dataclass
class Cluster:
    """A cluster of SPE indices with summary statistics.

    ``n_spes`` persists the member count across CSV round-trips: a cluster
    parsed from disk has no ``indices`` (they are not serialized), so
    :attr:`size` falls back to the persisted count.
    """

    cluster_id: int
    indices: list[int]
    dm_lo: float
    dm_hi: float
    t_lo: float
    t_hi: float
    max_snr: float
    #: 1-based SNR rank among clusters of the same observation (ClusterRank).
    rank: int = 0
    #: Persisted member count (used when ``indices`` is empty).
    n_spes: int = 0

    @property
    def size(self) -> int:
        return len(self.indices) if self.indices else self.n_spes

    def to_csv_row(self) -> str:
        return (
            f"{self.cluster_id},{self.size},{self.dm_lo:.3f},{self.dm_hi:.3f},"
            f"{self.t_lo:.6f},{self.t_hi:.6f},{self.max_snr:.3f}"
        )

    @classmethod
    def from_csv_row(cls, row: str) -> "Cluster":
        p = row.strip().split(",")
        if len(p) != 7:
            raise ValueError(f"malformed cluster row: {row!r}")
        return cls(
            cluster_id=int(p[0]),
            indices=[],
            dm_lo=float(p[2]),
            dm_hi=float(p[3]),
            t_lo=float(p[4]),
            t_hi=float(p[5]),
            max_snr=float(p[6]),
            n_spes=int(p[1]),
        )


class _CellGrid:
    """Lexsorted uniform-grid index with cell size 1 (the scaled eps).

    Cells are encoded as a single monotone integer key; after lexsorting,
    every cell is a contiguous slice of the point order, and the three cells
    ``(cx+dx, cy-1..cy+1)`` of a 3×3 block share one contiguous key range —
    so a neighbour query is three binary searches plus one vectorized
    distance filter.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        self.x = x
        self.y = y
        self.cx = np.floor(x).astype(np.int64)
        self.cy = np.floor(y).astype(np.int64)
        self._cx0 = int(self.cx.min())
        self._cy0 = int(self.cy.min())
        # +3 keeps (cx, cy±1) lexicographic even at the cy range edges.
        self._ny = int(self.cy.max()) - self._cy0 + 3
        key = (self.cx - self._cx0) * self._ny + (self.cy - self._cy0)
        self.order = np.lexsort((self.cy, self.cx))
        self.sorted_keys = key[self.order]

    def neighbours(self, i: int) -> np.ndarray:
        """Indices of all points within unit distance of point ``i``."""
        kx = (self.cx[i] - self._cx0) * self._ny
        ky = self.cy[i] - self._cy0
        chunks = []
        for dx in (-1, 0, 1):
            base = kx + dx * self._ny + ky
            lo = np.searchsorted(self.sorted_keys, base - 1, side="left")
            hi = np.searchsorted(self.sorted_keys, base + 1, side="right")
            if hi > lo:
                chunks.append(self.order[lo:hi])
        cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        d2 = (self.x[cand] - self.x[i]) ** 2 + (self.y[cand] - self.y[i]) ** 2
        return cand[d2 <= 1.0]


@dataclass
class SinglePulseDBSCAN:
    """DBSCAN over (time, DM-step) with artifact-merging post-pass.

    Parameters
    ----------
    eps_time_s:
        Neighbourhood radius along time, seconds.
    eps_dm_steps:
        Neighbourhood radius along DM, in ladder-step units.
    min_samples:
        Core-point density threshold (DBSCAN ``minPts``).
    merge_gap_s / merge overlap:
        Two clusters merge when their time gap is below ``merge_gap_s`` and
        their DM extents overlap.
    """

    eps_time_s: float = 0.1
    eps_dm_steps: float = 4.0
    min_samples: int = 4
    merge_gap_s: float = 0.25
    _grid: dict = field(default_factory=dict, repr=False)

    def fit(
        self, times: np.ndarray, dms: np.ndarray, snrs: np.ndarray, dm_steps: np.ndarray
    ) -> tuple[np.ndarray, list[Cluster]]:
        """Cluster events; return (labels, clusters).

        ``dm_steps`` gives each event's DM expressed in ladder-step index
        units (``dm / spacing_at(dm)`` works when spacing is locally uniform).
        Labels are cluster ids or :data:`NOISE`.
        """
        times = np.asarray(times, dtype=float)
        dms = np.asarray(dms, dtype=float)
        snrs = np.asarray(snrs, dtype=float)
        dm_steps = np.asarray(dm_steps, dtype=float)
        n = times.size
        if not (dms.size == snrs.size == dm_steps.size == n):
            raise ValueError("times, dms, snrs, dm_steps must have equal length")
        if n == 0:
            return np.empty(0, dtype=int), []

        # Scale both axes to unit neighbourhood radius.
        x = times / self.eps_time_s
        y = dm_steps / self.eps_dm_steps
        labels = self._dbscan(x, y)
        labels = self._merge_artifact_clusters(labels, times, dms)
        clusters = self._summarize(labels, times, dms, snrs)
        return labels, clusters

    def fit_batch(
        self, batch: "SPEBatch", dm_steps: np.ndarray
    ) -> tuple[np.ndarray, list[Cluster]]:
        """Columnar entry point: cluster an :class:`SPEBatch` directly.

        The batch's columns feed :meth:`fit` with no per-record
        materialization.
        """
        return self.fit(batch.time_s, batch.dm, batch.snr, dm_steps)

    # -- DBSCAN core ---------------------------------------------------------
    def _expand(self, neighbours, n: int) -> np.ndarray:
        """The classic DBSCAN sweep, given any neighbour oracle."""
        labels = np.full(n, NOISE, dtype=int)
        visited = np.zeros(n, dtype=bool)
        cluster_id = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            seed = neighbours(i)
            if len(seed) < self.min_samples:
                continue  # not a core point (may later join as border point)
            labels[i] = cluster_id
            queue = [j for j in seed if j != i]
            while queue:
                j = queue.pop()
                if labels[j] == NOISE:
                    labels[j] = cluster_id  # border point
                if visited[j]:
                    continue
                visited[j] = True
                labels[j] = cluster_id
                nb = neighbours(j)
                if len(nb) >= self.min_samples:
                    queue.extend(k for k in nb if not visited[k] or labels[k] == NOISE)
            cluster_id += 1
        return labels

    def _dbscan(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if x.size == 0:
            return np.empty(0, dtype=int)
        grid = _CellGrid(x, y)
        return self._expand(grid.neighbours, x.size)

    def _reference_dbscan(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """The seed's dict-of-cells neighbour search, retained for tests."""
        n = x.size
        cells: dict[tuple[int, int], list[int]] = {}
        cx = np.floor(x).astype(int)
        cy = np.floor(y).astype(int)
        for i in range(n):
            cells.setdefault((cx[i], cy[i]), []).append(i)

        def neighbours(i: int) -> list[int]:
            out: list[int] = []
            xi, yi = x[i], y[i]
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    bucket = cells.get((cx[i] + dx, cy[i] + dy))
                    if not bucket:
                        continue
                    for j in bucket:
                        if (x[j] - xi) ** 2 + (y[j] - yi) ** 2 <= 1.0:
                            out.append(j)
            return out

        return self._expand(neighbours, n)

    # -- artifact merging ------------------------------------------------------
    def _merge_artifact_clusters(
        self, labels: np.ndarray, times: np.ndarray, dms: np.ndarray
    ) -> np.ndarray:
        """Union clusters that nearly touch in time and overlap in DM."""
        valid = labels != NOISE
        ids = np.unique(labels[valid])
        k = ids.size
        if k < 2:
            return labels
        # Vectorized per-cluster bounds: one scatter-reduce pass each,
        # instead of a labels == c scan per cluster.
        pos = np.searchsorted(ids, labels[valid])
        t_lo = np.full(k, np.inf)
        t_hi = np.full(k, -np.inf)
        dm_lo = np.full(k, np.inf)
        dm_hi = np.full(k, -np.inf)
        np.minimum.at(t_lo, pos, times[valid])
        np.maximum.at(t_hi, pos, times[valid])
        np.minimum.at(dm_lo, pos, dms[valid])
        np.maximum.at(dm_hi, pos, dms[valid])

        parent = np.arange(k)

        def find(c: int) -> int:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        ordered = np.argsort(t_lo, kind="stable")
        for a_pos, a in enumerate(ordered):
            for b in ordered[a_pos + 1 :]:
                if t_lo[b] - t_hi[a] > self.merge_gap_s:
                    break  # sorted by start time; nothing later can touch
                dm_overlap = min(dm_hi[a], dm_hi[b]) - max(dm_lo[a], dm_lo[b])
                if dm_overlap >= 0:
                    ra, rb = find(int(a)), find(int(b))
                    if ra != rb:
                        parent[rb] = ra
        roots = np.array([find(c) for c in range(k)])
        dense_roots, dense_of_root = np.unique(roots, return_inverse=True)
        # Single-pass dense relabel through a lookup table.
        out = labels.copy()
        out[valid] = dense_of_root[pos]
        return out

    # -- summaries --------------------------------------------------------------
    def _summarize(
        self, labels: np.ndarray, times: np.ndarray, dms: np.ndarray, snrs: np.ndarray
    ) -> list[Cluster]:
        valid_idx = np.nonzero(labels != NOISE)[0]
        if valid_idx.size == 0:
            return []
        # Group members by label with one stable argsort instead of a full
        # labels == c scan per cluster.
        vlab = labels[valid_idx]
        order = np.argsort(vlab, kind="stable")
        sorted_idx = valid_idx[order]
        sorted_lab = vlab[order]
        starts = np.concatenate([[0], np.nonzero(np.diff(sorted_lab))[0] + 1])
        ends = np.concatenate([starts[1:], [sorted_lab.size]])
        clusters: list[Cluster] = []
        for s, e in zip(starts, ends):
            members = sorted_idx[s:e]
            clusters.append(
                Cluster(
                    cluster_id=int(sorted_lab[s]),
                    indices=members.tolist(),
                    dm_lo=float(dms[members].min()),
                    dm_hi=float(dms[members].max()),
                    t_lo=float(times[members].min()),
                    t_hi=float(times[members].max()),
                    max_snr=float(snrs[members].max()),
                )
            )
        # ClusterRank: 1 = brightest cluster in the observation.
        for rank, cluster in enumerate(
            sorted(clusters, key=lambda cl: -cl.max_snr), start=1
        ):
            cluster.rank = rank
        return clusters
