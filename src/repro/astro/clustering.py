"""Customized DBSCAN for single-pulse event clustering (stage 2 of Fig. 2).

Implements the clustering of Pang et al. (2017) as the paper describes it:
density-based clustering of SPEs in the DM-vs-time plane, with two
radio-astronomy customizations:

1. **anisotropic scaling** — the time axis is measured in seconds and the DM
   axis in *ladder steps* (trial indices), because DMSpacing varies by two
   orders of magnitude across the ladder; clustering raw DM values would
   fragment high-DM pulses and fuse low-DM ones;
2. **cluster merging** — one physical pulse can be split into several
   apparent clusters by processing artifacts (e.g., the event list being
   chunked in time, or dropouts at specific trial DMs).  A post-pass merges
   clusters that are adjacent in time and overlap in DM extent.

The implementation uses a uniform grid index for neighbour search, so it is
O(n · k) rather than O(n²) for the long observation lists the surveys
produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

NOISE = -1


@dataclass
class Cluster:
    """A cluster of SPE indices with summary statistics."""

    cluster_id: int
    indices: list[int]
    dm_lo: float
    dm_hi: float
    t_lo: float
    t_hi: float
    max_snr: float
    #: 1-based SNR rank among clusters of the same observation (ClusterRank).
    rank: int = 0

    @property
    def size(self) -> int:
        return len(self.indices)

    def to_csv_row(self) -> str:
        return (
            f"{self.cluster_id},{self.size},{self.dm_lo:.3f},{self.dm_hi:.3f},"
            f"{self.t_lo:.6f},{self.t_hi:.6f},{self.max_snr:.3f}"
        )

    @classmethod
    def from_csv_row(cls, row: str) -> "Cluster":
        p = row.strip().split(",")
        if len(p) != 7:
            raise ValueError(f"malformed cluster row: {row!r}")
        return cls(
            cluster_id=int(p[0]),
            indices=[],
            dm_lo=float(p[2]),
            dm_hi=float(p[3]),
            t_lo=float(p[4]),
            t_hi=float(p[5]),
            max_snr=float(p[6]),
        )


@dataclass
class SinglePulseDBSCAN:
    """DBSCAN over (time, DM-step) with artifact-merging post-pass.

    Parameters
    ----------
    eps_time_s:
        Neighbourhood radius along time, seconds.
    eps_dm_steps:
        Neighbourhood radius along DM, in ladder-step units.
    min_samples:
        Core-point density threshold (DBSCAN ``minPts``).
    merge_gap_s / merge overlap:
        Two clusters merge when their time gap is below ``merge_gap_s`` and
        their DM extents overlap.
    """

    eps_time_s: float = 0.1
    eps_dm_steps: float = 4.0
    min_samples: int = 4
    merge_gap_s: float = 0.25
    _grid: dict = field(default_factory=dict, repr=False)

    def fit(
        self, times: np.ndarray, dms: np.ndarray, snrs: np.ndarray, dm_steps: np.ndarray
    ) -> tuple[np.ndarray, list[Cluster]]:
        """Cluster events; return (labels, clusters).

        ``dm_steps`` gives each event's DM expressed in ladder-step index
        units (``dm / spacing_at(dm)`` works when spacing is locally uniform).
        Labels are cluster ids or :data:`NOISE`.
        """
        times = np.asarray(times, dtype=float)
        dms = np.asarray(dms, dtype=float)
        snrs = np.asarray(snrs, dtype=float)
        dm_steps = np.asarray(dm_steps, dtype=float)
        n = times.size
        if not (dms.size == snrs.size == dm_steps.size == n):
            raise ValueError("times, dms, snrs, dm_steps must have equal length")
        if n == 0:
            return np.empty(0, dtype=int), []

        # Scale both axes to unit neighbourhood radius.
        x = times / self.eps_time_s
        y = dm_steps / self.eps_dm_steps
        labels = self._dbscan(x, y)
        labels = self._merge_artifact_clusters(labels, times, dms)
        clusters = self._summarize(labels, times, dms, snrs)
        return labels, clusters

    # -- DBSCAN core ---------------------------------------------------------
    def _dbscan(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        n = x.size
        # Uniform grid index with cell size 1 (the scaled eps): all
        # neighbours of a point lie in its 3×3 cell block.
        cells: dict[tuple[int, int], list[int]] = {}
        cx = np.floor(x).astype(int)
        cy = np.floor(y).astype(int)
        for i in range(n):
            cells.setdefault((cx[i], cy[i]), []).append(i)

        def neighbours(i: int) -> list[int]:
            out: list[int] = []
            xi, yi = x[i], y[i]
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    bucket = cells.get((cx[i] + dx, cy[i] + dy))
                    if not bucket:
                        continue
                    for j in bucket:
                        if (x[j] - xi) ** 2 + (y[j] - yi) ** 2 <= 1.0:
                            out.append(j)
            return out

        labels = np.full(n, NOISE, dtype=int)
        visited = np.zeros(n, dtype=bool)
        cluster_id = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            seed = neighbours(i)
            if len(seed) < self.min_samples:
                continue  # not a core point (may later join as border point)
            labels[i] = cluster_id
            queue = [j for j in seed if j != i]
            while queue:
                j = queue.pop()
                if labels[j] == NOISE:
                    labels[j] = cluster_id  # border point
                if visited[j]:
                    continue
                visited[j] = True
                labels[j] = cluster_id
                nb = neighbours(j)
                if len(nb) >= self.min_samples:
                    queue.extend(k for k in nb if not visited[k] or labels[k] == NOISE)
            cluster_id += 1
        return labels

    # -- artifact merging ------------------------------------------------------
    def _merge_artifact_clusters(
        self, labels: np.ndarray, times: np.ndarray, dms: np.ndarray
    ) -> np.ndarray:
        """Union clusters that nearly touch in time and overlap in DM."""
        ids = [c for c in np.unique(labels) if c != NOISE]
        if len(ids) < 2:
            return labels
        bounds = {}
        for c in ids:
            mask = labels == c
            bounds[c] = (
                float(times[mask].min()),
                float(times[mask].max()),
                float(dms[mask].min()),
                float(dms[mask].max()),
            )
        parent = {c: c for c in ids}

        def find(c: int) -> int:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        ordered = sorted(ids, key=lambda c: bounds[c][0])
        for a_pos, a in enumerate(ordered):
            t_lo_a, t_hi_a, dm_lo_a, dm_hi_a = bounds[a]
            for b in ordered[a_pos + 1 :]:
                t_lo_b, t_hi_b, dm_lo_b, dm_hi_b = bounds[b]
                if t_lo_b - t_hi_a > self.merge_gap_s:
                    break  # sorted by start time; nothing later can touch
                dm_overlap = min(dm_hi_a, dm_hi_b) - max(dm_lo_a, dm_lo_b)
                if dm_overlap >= 0:
                    ra, rb = find(a), find(b)
                    if ra != rb:
                        parent[rb] = ra
        # Relabel to dense ids.
        roots = sorted({find(c) for c in ids})
        dense = {root: i for i, root in enumerate(roots)}
        out = labels.copy()
        for c in ids:
            out[labels == c] = dense[find(c)]
        return out

    # -- summaries --------------------------------------------------------------
    def _summarize(
        self, labels: np.ndarray, times: np.ndarray, dms: np.ndarray, snrs: np.ndarray
    ) -> list[Cluster]:
        clusters: list[Cluster] = []
        for c in sorted(set(labels[labels != NOISE].tolist())):
            mask = labels == c
            idx = np.nonzero(mask)[0].tolist()
            clusters.append(
                Cluster(
                    cluster_id=int(c),
                    indices=idx,
                    dm_lo=float(dms[mask].min()),
                    dm_hi=float(dms[mask].max()),
                    t_lo=float(times[mask].min()),
                    t_hi=float(times[mask].max()),
                    max_snr=float(snrs[mask].max()),
                )
            )
        # ClusterRank: 1 = brightest cluster in the observation.
        for rank, cluster in enumerate(
            sorted(clusters, key=lambda cl: -cl.max_snr), start=1
        ):
            cluster.rank = rank
        return clusters
