"""Single pulse event (SPE) records and PRESTO-style file blocks.

``single_pulse_search.py`` emits one row per detected event:
``DM  Sigma(SNR)  Time(s)  Sample  Downfact``.  D-RAPID consumes a large csv
of all SPEs for a data set plus a smaller cluster file; both carry the same
descriptive key prefix (data set name, MJD, sky position, beam) which
becomes the Sparklet pair key (Section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane import SPEBatch


@dataclass(frozen=True)
class ObservationKey:
    """The descriptive prefix shared by SPE and cluster rows."""

    dataset: str
    mjd: float
    sky_position: str
    beam: int

    def to_key(self) -> str:
        return f"{self.dataset}|{self.mjd:.4f}|{self.sky_position}|{self.beam}"

    @classmethod
    def from_key(cls, key: str) -> "ObservationKey":
        parts = key.split("|")
        if len(parts) != 4:
            raise ValueError(f"malformed observation key: {key!r}")
        return cls(parts[0], float(parts[1]), parts[2], int(parts[3]))


@dataclass(frozen=True)
class SPE:
    """One single pulse event: a detection at one trial DM and time."""

    dm: float
    snr: float
    time_s: float
    sample: int
    downfact: int = 1

    def to_csv_row(self) -> str:
        return f"{self.dm:.3f},{self.snr:.3f},{self.time_s:.6f},{self.sample},{self.downfact}"

    @classmethod
    def from_csv_row(cls, row: str) -> "SPE":
        parts = row.strip().split(",")
        if len(parts) != 5:
            raise ValueError(f"malformed SPE row: {row!r}")
        return cls(
            dm=float(parts[0]),
            snr=float(parts[1]),
            time_s=float(parts[2]),
            sample=int(parts[3]),
            downfact=int(parts[4]),
        )


def spes_from_search(
    trial_dms: np.ndarray,
    sample_time_s: float,
    rows: np.ndarray,
    samples: np.ndarray,
    snrs: np.ndarray,
    widths: np.ndarray,
) -> list["SPE"]:
    """Materialize detections from a block search into SPE records.

    The one place the search arrays become SPEs, shared by every kernel
    method — the rounding conventions (SNR to 3 decimals, time to 6) are
    part of the on-disk format and must not drift between code paths.
    """
    return [
        SPE(
            dm=float(trial_dms[d]),
            snr=round(float(s), 3),
            time_s=round(int(i) * sample_time_s, 6),
            sample=int(i),
            downfact=int(w),
        )
        for d, i, s, w in zip(rows, samples, snrs, widths)
    ]


class SPEBlock:
    """A set of SPEs for one observation, with vectorized column views."""

    def __init__(self, key: ObservationKey, spes: Sequence[SPE]) -> None:
        self.key = key
        self.spes = list(spes)

    def __len__(self) -> int:
        return len(self.spes)

    def __iter__(self) -> Iterable[SPE]:
        return iter(self.spes)

    @property
    def dms(self) -> np.ndarray:
        return np.array([s.dm for s in self.spes], dtype=float)

    @property
    def snrs(self) -> np.ndarray:
        return np.array([s.snr for s in self.spes], dtype=float)

    @property
    def times(self) -> np.ndarray:
        return np.array([s.time_s for s in self.spes], dtype=float)

    def sorted_by_dm(self) -> "SPEBlock":
        return SPEBlock(self.key, sorted(self.spes, key=lambda s: (s.dm, s.time_s)))

    def sorted_by_time(self) -> "SPEBlock":
        return SPEBlock(self.key, sorted(self.spes, key=lambda s: (s.time_s, s.dm)))

    def subset(self, indices: Iterable[int]) -> "SPEBlock":
        return SPEBlock(self.key, [self.spes[i] for i in indices])

    def to_batch(self) -> "SPEBatch":
        """Columnar view of the block (the data-plane representation)."""
        from repro.dataplane import SPEBatch

        return SPEBatch.from_records(self.spes)

    @classmethod
    def from_batch(cls, key: ObservationKey, batch: "SPEBatch") -> "SPEBlock":
        return cls(key, batch.to_records())


SPE_FILE_HEADER = "# dataset|mjd|sky|beam,DM,Sigma,Time_s,Sample,Downfact"
CLUSTER_FILE_HEADER = (
    "# dataset|mjd|sky|beam,cluster_id,n_spes,dm_lo,dm_hi,t_lo,t_hi,max_snr"
)


def spes_to_csv(key: ObservationKey, spes: Iterable[SPE], include_header: bool = False) -> str:
    """Render SPE rows in the D-RAPID data-file format (key prefix + data).

    Record-oriented path, retained as the reference the vectorized
    ``SPEBatch.to_data_csv`` is equivalence-gated against.
    """
    lines = [SPE_FILE_HEADER] if include_header else []
    prefix = key.to_key()
    lines.extend(f"{prefix},{spe.to_csv_row()}" for spe in spes)
    return "\n".join(lines) + ("\n" if lines else "")


def parse_spe_line(line: str) -> tuple[str, SPE]:
    """Parse ``key,dm,snr,time,sample,downfact`` → (key, SPE)."""
    key, _, rest = line.partition(",")
    if not rest:
        raise ValueError(f"malformed SPE line: {line!r}")
    return key, SPE.from_csv_row(rest)
