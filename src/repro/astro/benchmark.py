"""Labeled single pulse benchmarks (Section 4's data sets, synthesized).

The paper builds two fully labeled benchmarks:

- **GBT350Drift**: 5,204 single pulses from 48 pulsars + 100,000 confirmed
  negatives;
- **PALFA**: 3,170 single pulses from 98 pulsars/RRATs + 100,000 negatives.

:func:`build_benchmark` reproduces the construction end to end: synthesize
a population, generate observations, cluster the events, run RAPID to
*identify* single pulses, and label each identified pulse by the ground
truth of its cluster.  Instance counts are parameterized (paper scale is
expensive; tests use hundreds, benchmarks thousands) but the imbalance
ratio, RRAT fraction, and feature distributions follow the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.population import Pulsar, synthesize_population
from repro.astro.survey import SurveyConfig, generate_observation
from repro.core.alm import ALM_SCHEMES, AlmScheme, label_instances
from repro.core.features import FEATURE_NAMES
from repro.core.rapid import SinglePulse, run_rapid_observation_batch
from repro.dataplane import PulseBatch
from repro.ml.dataset import Dataset


@dataclass
class Benchmark:
    """A labeled single pulse benchmark for one survey."""

    survey_name: str
    features: np.ndarray  # (n, 22) in FEATURE_NAMES order
    is_pulsar: np.ndarray  # bool
    is_rrat: np.ndarray  # bool
    source_names: list[str | None]
    pulses: list[SinglePulse]
    #: Columnar source of the arrays above, when built by the data plane
    #: (None for benchmarks loaded from legacy persistence files).
    pulse_batch: PulseBatch | None = None

    @property
    def n_instances(self) -> int:
        return self.features.shape[0]

    @property
    def n_positive(self) -> int:
        return int(self.is_pulsar.sum())

    @property
    def n_negative(self) -> int:
        return self.n_instances - self.n_positive

    @property
    def n_rrat(self) -> int:
        return int(self.is_rrat.sum())

    def labels(self, scheme: AlmScheme | str) -> np.ndarray:
        return label_instances(
            scheme, self.features, self.is_pulsar, self.is_rrat,
            source_names=self.source_names,
        )

    def dataset(self, scheme: AlmScheme | str) -> Dataset:
        if isinstance(scheme, str):
            scheme = ALM_SCHEMES[scheme]
        return Dataset(
            X=self.features,
            y=self.labels(scheme),
            feature_names=FEATURE_NAMES,
            class_names=scheme.classes,
            name=f"{self.survey_name}-scheme{scheme.name}",
        )

    def subsample(self, n_positive: int, n_negative: int, seed: int = 0) -> "Benchmark":
        """Random subset preserving RRAT representation where possible."""
        rng = np.random.default_rng(seed)
        pos_idx = np.nonzero(self.is_pulsar)[0]
        neg_idx = np.nonzero(~self.is_pulsar)[0]
        if n_positive > pos_idx.size or n_negative > neg_idx.size:
            raise ValueError(
                f"requested {n_positive}/{n_negative} but benchmark has "
                f"{pos_idx.size}/{neg_idx.size}"
            )
        keep = np.concatenate(
            [
                rng.choice(pos_idx, size=n_positive, replace=False),
                rng.choice(neg_idx, size=n_negative, replace=False),
            ]
        )
        rng.shuffle(keep)
        return Benchmark(
            survey_name=self.survey_name,
            features=self.features[keep],
            is_pulsar=self.is_pulsar[keep],
            is_rrat=self.is_rrat[keep],
            source_names=[self.source_names[i] for i in keep],
            pulses=[self.pulses[i] for i in keep],
            pulse_batch=(
                self.pulse_batch.take(keep) if self.pulse_batch is not None else None
            ),
        )


def build_benchmark(
    survey: SurveyConfig,
    n_pulsars: int = 24,
    target_positive: int = 500,
    target_negative: int = 3000,
    rrat_fraction: float = 0.15,
    grid_coarsen: float = 10.0,
    seed: int = 0,
    max_observations: int = 400,
) -> Benchmark:
    """Generate observations and identify pulses until targets are met.

    Each observation carries a couple of in-beam pulsars plus a heavy load
    of noise clusters and RFI bursts so negatives accumulate at roughly the
    paper's imbalance.  Raises if ``max_observations`` is hit before the
    targets — a misconfiguration guard, not an expected path.
    """
    rng = np.random.default_rng(seed)
    population = synthesize_population(
        n_pulsars, rrat_fraction=rrat_fraction, max_dm=survey.max_dm * 0.6, seed=seed + 1
    )

    chunks: list[PulseBatch] = []
    n_pos = n_neg = 0

    for obs_i in range(max_observations):
        if n_pos >= target_positive and n_neg >= target_negative:
            break
        # Rotate through the population so every pulsar contributes.
        k = int(rng.integers(1, 3))
        in_beam: list[Pulsar] = [
            population[(obs_i * 2 + j) % len(population)] for j in range(k)
        ]
        obs = generate_observation(
            survey,
            in_beam if n_pos < target_positive else [],
            mjd=55000.0 + obs_i,
            beam=obs_i % survey.n_beams,
            n_noise_clusters=110,
            n_rfi_bursts=4,
            n_pulse_mimics=45,
            grid_coarsen=grid_coarsen,
            seed=seed + 101 * obs_i,
            obs_length_s=min(survey.obs_length_s, 90.0),
        )
        result = run_rapid_observation_batch(obs)
        pb = result.pulse_batch
        # Cap each class in pulse order, then restore the original row
        # order — identical to the retired per-pulse accumulation loop.
        positive = pb.is_pulsar
        pos_idx = np.nonzero(positive)[0][: max(target_positive - n_pos, 0)]
        neg_idx = np.nonzero(~positive)[0][: max(target_negative - n_neg, 0)]
        keep = np.sort(np.concatenate([pos_idx, neg_idx]))
        if keep.size:
            chunks.append(pb.take(keep))
        n_pos += pos_idx.size
        n_neg += neg_idx.size
    else:
        raise RuntimeError(
            f"benchmark generation exhausted {max_observations} observations "
            f"with {n_pos}/{target_positive} positives, {n_neg}/{target_negative} negatives"
        )

    collected = PulseBatch.concat(chunks)
    order = np.argsort(rng.random(len(collected)))
    batch = collected.take(order)
    return Benchmark(
        survey_name=survey.name,
        features=batch.features,
        is_pulsar=batch.is_pulsar,
        is_rrat=np.asarray(batch.is_rrat),
        source_names=batch.source_name.tolist(),
        pulses=batch.to_records(),
        pulse_batch=batch,
    )


_BENCH_CACHE: dict[tuple, Benchmark] = {}


def cached_benchmark(survey: SurveyConfig, **kwargs) -> Benchmark:
    """Memoized :func:`build_benchmark` (benchmark files reuse the data)."""
    key = (survey.name,) + tuple(sorted(kwargs.items()))
    if key not in _BENCH_CACHE:
        _BENCH_CACHE[key] = build_benchmark(survey, **kwargs)
    return _BENCH_CACHE[key]
