"""Survey configurations and observation generation.

Two presets mirror the paper's data sources:

- :data:`GBT350DRIFT` — the Green Bank Telescope 350 MHz drift-scan survey
  (Boyles et al. 2013): low frequency, 100 MHz bandwidth, single beam.
- :data:`PALFA` — the Arecibo L-band Feed Array survey (Cordes et al. 2006):
  1.4 GHz, 300 MHz bandwidth, seven beams.

:func:`generate_observation` composes the population, pulse, noise and RFI
generators into one labeled observation: an SPE list, clusters found by the
customized DBSCAN, and each cluster's ground-truth class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.astro.clustering import Cluster, SinglePulseDBSCAN
from repro.astro.dispersion import DMGrid
from repro.astro.population import Pulsar
from repro.astro.pulses import PulseTruth, generate_pulsar_spes
from repro.astro.rfi import (
    RFIStormModel,
    generate_noise_spes,
    generate_pulse_mimic_spes,
    generate_rfi_spes,
    generate_storm_rfi_spes,
)
from repro.astro.spe import SPE, ObservationKey, SPEBlock
from repro.dataplane import SPEBatch


@dataclass(frozen=True)
class SurveyConfig:
    """Receiver/search parameters of one sky survey."""

    name: str
    center_freq_mhz: float
    bandwidth_mhz: float
    sample_time_s: float
    n_beams: int
    obs_length_s: float
    max_dm: float
    snr_threshold: float = 5.0

    def dm_grid(self, coarsen: float = 1.0) -> DMGrid:
        return DMGrid(max_dm=self.max_dm, coarsen=coarsen)

    @classmethod
    def presets(cls) -> dict[str, "SurveyConfig"]:
        """Registry of built-in survey presets keyed by canonical name."""
        return dict(_PRESETS)

    @classmethod
    def preset(cls, name: str) -> "SurveyConfig":
        """Case-insensitive preset lookup accepting common aliases."""
        key = _ALIASES.get(name.lower())
        if key is None:
            known = sorted(_PRESETS) + sorted(
                a for a, k in _ALIASES.items() if a != k.lower()
            )
            raise KeyError(f"unknown survey {name!r}; expected one of {known}")
        return _PRESETS[key]


GBT350DRIFT = SurveyConfig(
    name="GBT350Drift",
    center_freq_mhz=350.0,
    bandwidth_mhz=100.0,
    sample_time_s=8.192e-5,
    n_beams=1,
    obs_length_s=140.0,
    max_dm=500.0,
)

PALFA = SurveyConfig(
    name="PALFA",
    center_freq_mhz=1400.0,
    bandwidth_mhz=300.0,
    sample_time_s=6.4e-5,
    n_beams=7,
    obs_length_s=268.0,
    max_dm=1000.0,
)

CHIME = SurveyConfig(
    name="CHIME",
    center_freq_mhz=600.0,
    bandwidth_mhz=400.0,
    sample_time_s=9.8304e-4,
    n_beams=4,
    obs_length_s=120.0,
    max_dm=2000.0,
)

FAST_CRAFTS = SurveyConfig(
    name="FAST-CRAFTS",
    center_freq_mhz=1250.0,
    bandwidth_mhz=400.0,
    sample_time_s=4.9152e-5,
    n_beams=19,
    obs_length_s=300.0,
    max_dm=1000.0,
)

_PRESETS: dict[str, SurveyConfig] = {
    "GBT350Drift": GBT350DRIFT,
    "PALFA": PALFA,
    "CHIME": CHIME,
    "FAST-CRAFTS": FAST_CRAFTS,
}

_ALIASES: dict[str, str] = {
    "gbt350drift": "GBT350Drift",
    "gbt350": "GBT350Drift",
    "gbt": "GBT350Drift",
    "palfa": "PALFA",
    "chime": "CHIME",
    "fast-crafts": "FAST-CRAFTS",
    "fast": "FAST-CRAFTS",
    "crafts": "FAST-CRAFTS",
}


@dataclass
class Observation:
    """One labeled synthetic observation."""

    key: ObservationKey
    config: SurveyConfig
    grid: DMGrid
    spes: list[SPE]
    labels: np.ndarray
    clusters: list[Cluster]
    pulse_truths: list[PulseTruth] = field(default_factory=list)
    #: cluster_id -> (pulsar_name | None, is_rrat).  None = noise/RFI cluster.
    cluster_truth: dict[int, tuple[str | None, bool]] = field(default_factory=dict)
    #: Columnar view of ``spes``; built once by the generator (or lazily)
    #: and read by everything downstream.  Excluded from equality/repr.
    _spe_batch: SPEBatch | None = field(default=None, repr=False, compare=False)

    @property
    def spe_batch(self) -> SPEBatch:
        """The observation's SPEs as columns (the data-plane view)."""
        if self._spe_batch is None:
            self._spe_batch = SPEBatch.from_records(self.spes)
        return self._spe_batch

    @property
    def block(self) -> SPEBlock:
        return SPEBlock(self.key, self.spes)

    def positives(self) -> list[Cluster]:
        return [c for c in self.clusters if self.cluster_truth.get(c.cluster_id, (None, False))[0]]

    def negatives(self) -> list[Cluster]:
        return [c for c in self.clusters if not self.cluster_truth.get(c.cluster_id, (None, False))[0]]


def frontend_single_pulse_search(
    config: SurveyConfig,
    pulses: list,
    duration_s: float = 8.0,
    n_channels: int = 64,
    grid_coarsen: float = 10.0,
    sample_time_s: float | None = None,
    kernel=None,
    params=None,
    seed: int = 0,
    obs=None,
) -> tuple[object, list[SPE]]:
    """Run the phases 1–3 front end with this survey's band and DM ladder.

    Synthesizes a filterbank spanning the survey's frequency band (with the
    given :class:`repro.astro.filterbank.InjectedPulse` ground truth) and
    searches it over the survey's trial-DM grid.  ``kernel`` is a
    :class:`repro.execution.KernelConfig` selecting the dedispersion
    method/implementation; ``params`` a
    :class:`repro.core.search.FrontendParams` (defaults to the survey's
    ``snr_threshold``).  Returns ``(filterbank, spes)``.
    """
    from repro.astro.filterbank import single_pulse_search, synthesize_filterbank
    from repro.core.search import FrontendParams

    if params is None:
        params = FrontendParams(snr_threshold=config.snr_threshold)
    fb = synthesize_filterbank(
        duration_s=duration_s,
        n_channels=n_channels,
        f_low_mhz=config.center_freq_mhz - config.bandwidth_mhz / 2.0,
        f_high_mhz=config.center_freq_mhz + config.bandwidth_mhz / 2.0,
        sample_time_s=sample_time_s if sample_time_s is not None else config.sample_time_s,
        pulses=pulses,
        seed=seed,
    )
    trial_dms = config.dm_grid(coarsen=grid_coarsen).trial_dms()
    spes = single_pulse_search(
        fb, trial_dms, params=params, kernel=kernel, obs=obs
    )
    return fb, spes


def default_clusterer(grid: DMGrid) -> SinglePulseDBSCAN:
    """Clustering parameters matched to the synthetic event density."""
    return SinglePulseDBSCAN(
        eps_time_s=0.08,
        eps_dm_steps=5.0,
        min_samples=3,
        merge_gap_s=0.2,
    )


def generate_observation(
    config: SurveyConfig,
    pulsars: list[Pulsar],
    mjd: float = 55000.0,
    beam: int = 0,
    n_noise_clusters: int = 60,
    n_rfi_bursts: int = 3,
    n_pulse_mimics: int = 0,
    grid_coarsen: float = 10.0,
    seed: int = 0,
    obs_length_s: float | None = None,
    gain: float = 1.0,
    storm: RFIStormModel | None = None,
) -> Observation:
    """Generate one fully labeled observation.

    Each in-beam pulsar contributes dispersed pulse clusters; noise and RFI
    contribute negatives.  Cluster ground truth is derived by majority vote
    of the generating mechanism of the cluster's SPEs.

    ``gain`` scales the SNR of astrophysical (pulsar) events — a sensitivity
    or calibration step; events falling below the survey threshold are lost.
    ``storm`` overlays a time-correlated :class:`RFIStormModel`: extra
    broadband bursts arrive in storm seasons and every co-temporal non-storm
    event has its SNR suppressed by the inflated noise floor.  The default
    arguments leave the classic draw sequence untouched, so output is
    byte-identical to older call signatures.
    """
    rng = np.random.default_rng(seed)
    grid = config.dm_grid(coarsen=grid_coarsen)
    obs_len = obs_length_s if obs_length_s is not None else config.obs_length_s

    spes: list[SPE] = []
    origins: list[tuple[str | None, bool]] = []  # per-SPE (source name, is_rrat)
    truths: list[PulseTruth] = []

    for pulsar in pulsars:
        p_spes, p_truths = generate_pulsar_spes(
            pulsar,
            obs_len,
            grid,
            config.center_freq_mhz,
            config.bandwidth_mhz,
            sample_time_s=config.sample_time_s,
            snr_threshold=config.snr_threshold,
            rng=rng,
            start_index=len(spes),
        )
        spes.extend(p_spes)
        origins.extend([(pulsar.name, pulsar.is_rrat)] * len(p_spes))
        truths.extend(p_truths)

    noise = generate_noise_spes(
        n_noise_clusters, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
    )
    spes.extend(noise)
    origins.extend([(None, False)] * len(noise))

    rfi = generate_rfi_spes(
        n_rfi_bursts, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
    )
    spes.extend(rfi)
    origins.extend([(None, False)] * len(rfi))

    mimics = generate_pulse_mimic_spes(
        n_pulse_mimics, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
    )
    spes.extend(mimics)
    origins.extend([(None, False)] * len(mimics))

    # Regime modifiers.  All extra rng draws happen after the classic ones,
    # so the default path (gain=1, storm=None) is byte-identical.
    storm_windows: list[tuple[float, float]] = []
    storm_spes: list[SPE] = []
    if storm is not None:
        storm_spes, storm_windows = generate_storm_rfi_spes(
            storm, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
        )
    if gain != 1.0 or storm_windows:
        kept: list[SPE] = []
        kept_origins: list[tuple[str | None, bool]] = []
        remap: dict[int, int] = {}
        for i, (spe, origin) in enumerate(zip(spes, origins)):
            snr = spe.snr
            if origin[0] is not None:
                snr *= gain
            if storm is not None and storm.in_window(spe.time_s, storm_windows):
                snr *= storm.snr_suppression
            if snr < config.snr_threshold:
                continue
            remap[i] = len(kept)
            if snr != spe.snr:
                spe = replace(spe, snr=round(snr, 3))
            kept.append(spe)
            kept_origins.append(origin)
        spes, origins = kept, kept_origins
        truths = [
            replace(t, spe_indices=tuple(
                remap[i] for i in t.spe_indices if i in remap
            ))
            for t in truths
        ]
    spes.extend(storm_spes)
    origins.extend([(None, False)] * len(storm_spes))

    key = ObservationKey(
        dataset=config.name,
        mjd=mjd,
        sky_position=pulsars[0].sky_position if pulsars else "J0000+0000",
        beam=beam,
    )

    if not spes:
        return Observation(key, config, grid, [], np.empty(0, dtype=int), [], truths, {})

    batch = SPEBatch.from_records(spes)
    times, dms, snrs = batch.time_s, batch.dm, batch.snr
    steps = dms / grid.spacing_of(dms)

    clusterer = default_clusterer(grid)
    labels, clusters = clusterer.fit_batch(batch, steps)

    cluster_truth: dict[int, tuple[str | None, bool]] = {}
    for cluster in clusters:
        votes: dict[tuple[str | None, bool], int] = {}
        for i in cluster.indices:
            votes[origins[i]] = votes.get(origins[i], 0) + 1
        winner = max(votes.items(), key=lambda kv: kv[1])[0]
        # A cluster is a positive only if pulsar SPEs dominate it.
        pulsar_frac = sum(v for (name, _r), v in votes.items() if name) / cluster.size
        cluster_truth[cluster.cluster_id] = winner if pulsar_frac >= 0.5 else (None, False)

    return Observation(key, config, grid, spes, labels, clusters, truths,
                       cluster_truth, _spe_batch=batch)
