"""Survey configurations and observation generation.

Two presets mirror the paper's data sources:

- :data:`GBT350DRIFT` — the Green Bank Telescope 350 MHz drift-scan survey
  (Boyles et al. 2013): low frequency, 100 MHz bandwidth, single beam.
- :data:`PALFA` — the Arecibo L-band Feed Array survey (Cordes et al. 2006):
  1.4 GHz, 300 MHz bandwidth, seven beams.

:func:`generate_observation` composes the population, pulse, noise and RFI
generators into one labeled observation: an SPE list, clusters found by the
customized DBSCAN, and each cluster's ground-truth class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.astro.clustering import Cluster, SinglePulseDBSCAN
from repro.astro.dispersion import DMGrid
from repro.astro.population import Pulsar
from repro.astro.pulses import PulseTruth, generate_pulsar_spes
from repro.astro.rfi import generate_noise_spes, generate_pulse_mimic_spes, generate_rfi_spes
from repro.astro.spe import SPE, ObservationKey, SPEBlock
from repro.dataplane import SPEBatch


@dataclass(frozen=True)
class SurveyConfig:
    """Receiver/search parameters of one sky survey."""

    name: str
    center_freq_mhz: float
    bandwidth_mhz: float
    sample_time_s: float
    n_beams: int
    obs_length_s: float
    max_dm: float
    snr_threshold: float = 5.0

    def dm_grid(self, coarsen: float = 1.0) -> DMGrid:
        return DMGrid(max_dm=self.max_dm, coarsen=coarsen)


GBT350DRIFT = SurveyConfig(
    name="GBT350Drift",
    center_freq_mhz=350.0,
    bandwidth_mhz=100.0,
    sample_time_s=8.192e-5,
    n_beams=1,
    obs_length_s=140.0,
    max_dm=500.0,
)

PALFA = SurveyConfig(
    name="PALFA",
    center_freq_mhz=1400.0,
    bandwidth_mhz=300.0,
    sample_time_s=6.4e-5,
    n_beams=7,
    obs_length_s=268.0,
    max_dm=1000.0,
)


@dataclass
class Observation:
    """One labeled synthetic observation."""

    key: ObservationKey
    config: SurveyConfig
    grid: DMGrid
    spes: list[SPE]
    labels: np.ndarray
    clusters: list[Cluster]
    pulse_truths: list[PulseTruth] = field(default_factory=list)
    #: cluster_id -> (pulsar_name | None, is_rrat).  None = noise/RFI cluster.
    cluster_truth: dict[int, tuple[str | None, bool]] = field(default_factory=dict)
    #: Columnar view of ``spes``; built once by the generator (or lazily)
    #: and read by everything downstream.  Excluded from equality/repr.
    _spe_batch: SPEBatch | None = field(default=None, repr=False, compare=False)

    @property
    def spe_batch(self) -> SPEBatch:
        """The observation's SPEs as columns (the data-plane view)."""
        if self._spe_batch is None:
            self._spe_batch = SPEBatch.from_records(self.spes)
        return self._spe_batch

    @property
    def block(self) -> SPEBlock:
        return SPEBlock(self.key, self.spes)

    def positives(self) -> list[Cluster]:
        return [c for c in self.clusters if self.cluster_truth.get(c.cluster_id, (None, False))[0]]

    def negatives(self) -> list[Cluster]:
        return [c for c in self.clusters if not self.cluster_truth.get(c.cluster_id, (None, False))[0]]


def frontend_single_pulse_search(
    config: SurveyConfig,
    pulses: list,
    duration_s: float = 8.0,
    n_channels: int = 64,
    grid_coarsen: float = 10.0,
    sample_time_s: float | None = None,
    kernel=None,
    params=None,
    seed: int = 0,
    obs=None,
) -> tuple[object, list[SPE]]:
    """Run the phases 1–3 front end with this survey's band and DM ladder.

    Synthesizes a filterbank spanning the survey's frequency band (with the
    given :class:`repro.astro.filterbank.InjectedPulse` ground truth) and
    searches it over the survey's trial-DM grid.  ``kernel`` is a
    :class:`repro.execution.KernelConfig` selecting the dedispersion
    method/implementation; ``params`` a
    :class:`repro.core.search.FrontendParams` (defaults to the survey's
    ``snr_threshold``).  Returns ``(filterbank, spes)``.
    """
    from repro.astro.filterbank import single_pulse_search, synthesize_filterbank
    from repro.core.search import FrontendParams

    if params is None:
        params = FrontendParams(snr_threshold=config.snr_threshold)
    fb = synthesize_filterbank(
        duration_s=duration_s,
        n_channels=n_channels,
        f_low_mhz=config.center_freq_mhz - config.bandwidth_mhz / 2.0,
        f_high_mhz=config.center_freq_mhz + config.bandwidth_mhz / 2.0,
        sample_time_s=sample_time_s if sample_time_s is not None else config.sample_time_s,
        pulses=pulses,
        seed=seed,
    )
    trial_dms = config.dm_grid(coarsen=grid_coarsen).trial_dms()
    spes = single_pulse_search(
        fb, trial_dms, params=params, kernel=kernel, obs=obs
    )
    return fb, spes


def default_clusterer(grid: DMGrid) -> SinglePulseDBSCAN:
    """Clustering parameters matched to the synthetic event density."""
    return SinglePulseDBSCAN(
        eps_time_s=0.08,
        eps_dm_steps=5.0,
        min_samples=3,
        merge_gap_s=0.2,
    )


def generate_observation(
    config: SurveyConfig,
    pulsars: list[Pulsar],
    mjd: float = 55000.0,
    beam: int = 0,
    n_noise_clusters: int = 60,
    n_rfi_bursts: int = 3,
    n_pulse_mimics: int = 0,
    grid_coarsen: float = 10.0,
    seed: int = 0,
    obs_length_s: float | None = None,
) -> Observation:
    """Generate one fully labeled observation.

    Each in-beam pulsar contributes dispersed pulse clusters; noise and RFI
    contribute negatives.  Cluster ground truth is derived by majority vote
    of the generating mechanism of the cluster's SPEs.
    """
    rng = np.random.default_rng(seed)
    grid = config.dm_grid(coarsen=grid_coarsen)
    obs_len = obs_length_s if obs_length_s is not None else config.obs_length_s

    spes: list[SPE] = []
    origins: list[tuple[str | None, bool]] = []  # per-SPE (source name, is_rrat)
    truths: list[PulseTruth] = []

    for pulsar in pulsars:
        p_spes, p_truths = generate_pulsar_spes(
            pulsar,
            obs_len,
            grid,
            config.center_freq_mhz,
            config.bandwidth_mhz,
            sample_time_s=config.sample_time_s,
            snr_threshold=config.snr_threshold,
            rng=rng,
            start_index=len(spes),
        )
        spes.extend(p_spes)
        origins.extend([(pulsar.name, pulsar.is_rrat)] * len(p_spes))
        truths.extend(p_truths)

    noise = generate_noise_spes(
        n_noise_clusters, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
    )
    spes.extend(noise)
    origins.extend([(None, False)] * len(noise))

    rfi = generate_rfi_spes(
        n_rfi_bursts, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
    )
    spes.extend(rfi)
    origins.extend([(None, False)] * len(rfi))

    mimics = generate_pulse_mimic_spes(
        n_pulse_mimics, obs_len, grid, config.sample_time_s, config.snr_threshold, rng
    )
    spes.extend(mimics)
    origins.extend([(None, False)] * len(mimics))

    key = ObservationKey(
        dataset=config.name,
        mjd=mjd,
        sky_position=pulsars[0].sky_position if pulsars else "J0000+0000",
        beam=beam,
    )

    if not spes:
        return Observation(key, config, grid, [], np.empty(0, dtype=int), [], truths, {})

    batch = SPEBatch.from_records(spes)
    times, dms, snrs = batch.time_s, batch.dm, batch.snr
    steps = dms / grid.spacing_of(dms)

    clusterer = default_clusterer(grid)
    labels, clusters = clusterer.fit_batch(batch, steps)

    cluster_truth: dict[int, tuple[str | None, bool]] = {}
    for cluster in clusters:
        votes: dict[tuple[str | None, bool], int] = {}
        for i in cluster.indices:
            votes[origins[i]] = votes.get(origins[i], 0) + 1
        winner = max(votes.items(), key=lambda kv: kv[1])[0]
        # A cluster is a positive only if pulsar SPEs dominate it.
        pulsar_frac = sum(v for (name, _r), v in votes.items() if name) / cluster.size
        cluster_truth[cluster.cluster_id] = winner if pulsar_frac >= 0.5 else (None, False)

    return Observation(key, config, grid, spes, labels, clusters, truths,
                       cluster_truth, _spe_batch=batch)
