"""Pulsar and RRAT population synthesis.

Generates a catalog of synthetic sources whose distributions mirror the
properties the paper's classification features depend on:

- **DM** couples to distance (``SNRPeakDM`` is the paper's distance proxy,
  Section 5.2.2), spanning the near/mid/far ALM bins [0,100)/[100,175)/[175,∞);
- **brightness** (mean single-pulse SNR) spans the weak/strong ALM split at
  AvgSNR = 8;
- **RRATs** emit sporadically (McLaughlin et al. 2006) and form the rare
  class of ALM scheme 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.astro.dispersion import dm_from_distance_kpc


@dataclass(frozen=True)
class Pulsar:
    """A synthetic single-pulse-emitting source."""

    name: str
    period_s: float
    dm: float
    width_ms: float
    #: Mean SNR of a single pulse at the true DM (log-normal across pulses).
    mean_snr: float
    #: Pulse-to-pulse SNR modulation (log-normal sigma).
    snr_sigma: float
    #: Fraction of rotations that produce a detectable pulse.  ~1 for bright
    #: pulsars, << 1 for RRATs.
    pulse_fraction: float
    is_rrat: bool
    sky_position: str

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"period must be positive: {self.name}")
        if not 0.0 < self.pulse_fraction <= 1.0:
            raise ValueError(f"pulse_fraction must be in (0,1]: {self.name}")
        if self.dm < 0:
            raise ValueError(f"DM must be non-negative: {self.name}")


def _sky_position(rng: np.random.Generator) -> str:
    """A Jname-style position string, e.g. 'J1853+0101'."""
    ra_h = rng.integers(0, 24)
    ra_m = rng.integers(0, 60)
    dec_sign = "+" if rng.random() < 0.5 else "-"
    dec_d = rng.integers(0, 90)
    dec_m = rng.integers(0, 60)
    return f"J{ra_h:02d}{ra_m:02d}{dec_sign}{dec_d:02d}{dec_m:02d}"


def synthesize_population(
    n_pulsars: int,
    rrat_fraction: float = 0.15,
    max_dm: float = 600.0,
    seed: int = 0,
) -> list[Pulsar]:
    """Draw a synthetic *detected* population.

    Distributions (simplified population synthesis, conditioned on
    detection): periods log-normal around 0.5 s (RRATs around 2 s); DMs
    drawn from a mixture spanning the ALM near/mid/far bins; widths
    log-normal around 5 ms (RRATs ~30 ms); apparent brightness heavy-tailed
    across the ALM weak/strong boundary with mild distance attenuation
    (surveys only see sources above threshold, so detected brightness is
    only weakly coupled to distance).  RRAT count is deterministic:
    ``round(n_pulsars * rrat_fraction)``.
    """
    if n_pulsars < 1:
        raise ValueError(f"n_pulsars must be >= 1, got {n_pulsars}")
    if not 0.0 <= rrat_fraction <= 1.0:
        raise ValueError(f"rrat_fraction must be in [0,1], got {rrat_fraction}")
    rng = np.random.default_rng(seed)
    # Deterministic RRAT count: benchmarks need the rare class present.
    n_rrats = int(round(n_pulsars * rrat_fraction))
    rrat_flags = np.zeros(n_pulsars, dtype=bool)
    rrat_flags[:n_rrats] = True
    rng.shuffle(rrat_flags)
    out: list[Pulsar] = []
    for i in range(n_pulsars):
        is_rrat = bool(rrat_flags[i])
        if is_rrat:
            # RRATs rotate slowly (McLaughlin et al. 2006: periods 0.4–7 s).
            period = float(np.exp(rng.normal(math.log(2.0), 0.5)))
        else:
            period = float(np.exp(rng.normal(math.log(0.5), 0.8)))
        period = min(max(period, 0.002), 10.0)
        # DM of the *detected* population: a mixture spanning the paper's
        # ALM distance bins (near [0,100) / mid [100,175) / far [175,∞)) in
        # the rough proportions its thresholds imply.
        u = rng.random()
        if u < 0.55:
            dm = float(rng.uniform(5.0, 100.0))
        elif u < 0.85:
            dm = float(rng.uniform(100.0, 175.0))
        else:
            dm = float(rng.uniform(175.0, max(max_dm, 180.0)))
        dm = min(max(dm, 2.0), max_dm)
        distance_kpc = dm / 30.0  # consistent with dm_from_distance_kpc
        assert abs(dm_from_distance_kpc(distance_kpc) - dm) < 1e-6
        if is_rrat:
            # RRAT single pulses are broad (tens of ms) — part of what makes
            # them visually distinctive in candidate plots.
            width = float(np.exp(rng.normal(math.log(30.0), 0.3)))
        else:
            width = float(np.exp(rng.normal(math.log(5.0), 0.7)))  # ms
        width = min(max(width, 0.5), 50.0)
        # Brightness of the *detected* population: surveys only see sources
        # above threshold, so apparent brightness is only weakly coupled to
        # distance (far detections are intrinsically luminous).  A heavy
        # tail spans the ALM weak/strong boundary at AvgSNR = 8.
        base = 6.0 + float(rng.exponential(6.0))
        attenuation = 1.0 / (1.0 + 0.06 * distance_kpc)
        mean_snr = base * attenuation + 1.0
        snr_sigma = float(rng.uniform(0.15, 0.5))
        if is_rrat:
            pulse_fraction = float(rng.uniform(0.03, 0.15))
            mean_snr = mean_snr * 2.0 + 14.0  # RRAT detections are individually bright
        else:
            pulse_fraction = float(rng.uniform(0.4, 1.0))
        prefix = "RRAT" if is_rrat else "PSR"
        out.append(
            Pulsar(
                name=f"{prefix}-{i:04d}",
                period_s=period,
                dm=float(dm),
                width_ms=width,
                mean_snr=mean_snr,
                snr_sigma=snr_sigma,
                pulse_fraction=pulse_fraction,
                is_rrat=is_rrat,
                sky_position=_sky_position(rng),
            )
        )
    return out


def b1853_like(seed: int = 1853) -> Pulsar:
    """A bright, moderate-DM pulsar resembling B1853+01 (Fig. 1's subject).

    B1853+01 has DM ≈ 96.7 pc cm^-3 and period ≈ 0.267 s; an observation of
    a few minutes yields hundreds of detectable single pulses, which is what
    lets D-RAPID find ~188 single pulses where DPG-RAPID found one.
    """
    return Pulsar(
        name="B1853+01",
        period_s=0.267,
        dm=96.7,
        width_ms=6.0,
        mean_snr=14.0,
        snr_sigma=0.45,
        pulse_fraction=0.85,
        is_rrat=False,
        sky_position="J1856+0113",
    )
