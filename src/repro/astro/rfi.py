"""Noise and radio-frequency-interference (RFI) event generation.

Negatives in the paper's benchmarks are "single pulses from noise or RFI".
Two mechanisms produce them here:

- **thermal noise clusters**: chance coincidences of threshold-crossing
  noise samples at adjacent trial DMs/times.  These form small, weak,
  shapeless clusters (no coherent SNR-vs-DM peak).
- **broadband RFI**: terrestrial impulses are *undispersed*, so they appear
  strongest at DM ≈ 0 and smear out to a slowly decaying SNR tail across a
  wide DM range at nearly constant time — a vertical stripe in DM-vs-time,
  visually and statistically distinct from a real pulse's peaked profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.dispersion import DMGrid
from repro.astro.spe import SPE


@dataclass(frozen=True)
class RFIStormModel:
    """Time-correlated bursty interference: a two-state Markov chain.

    The chain steps every ``interval_s`` seconds between a *quiet* and a
    *storm* state.  Broadband bursts arrive as a Poisson process whose rate
    is ``quiet_rate_hz`` in quiet intervals and
    ``quiet_rate_hz × storm_rate_multiplier`` inside storms, so bursts come
    in seasons rather than uniformly — the signature real RFI environments
    show (and what the cluster-rate drift alarm keys on).  During a storm
    the noise floor is inflated, which *suppresses* the measured SNR of
    every non-storm event by ``snr_suppression``.
    """

    p_on: float = 0.10      #: per-step probability quiet → storm
    p_off: float = 0.30     #: per-step probability storm → quiet
    interval_s: float = 5.0  #: Markov chain step length
    quiet_rate_hz: float = 0.02   #: broadband-burst rate outside storms
    storm_rate_multiplier: float = 12.0  #: rate boost inside storms
    snr_suppression: float = 0.7  #: SNR factor applied to co-temporal events
    start_in_storm: bool = False  #: initial chain state

    def windows(
        self, obs_length_s: float, rng: np.random.Generator
    ) -> list[tuple[float, float]]:
        """Simulate the chain; return merged [start, end) storm windows."""
        windows: list[tuple[float, float]] = []
        in_storm = self.start_in_storm
        t = 0.0
        while t < obs_length_s:
            end = min(t + self.interval_s, obs_length_s)
            if in_storm:
                if windows and windows[-1][1] == t:
                    windows[-1] = (windows[-1][0], end)
                else:
                    windows.append((t, end))
            flip = self.p_off if in_storm else self.p_on
            if float(rng.random()) < flip:
                in_storm = not in_storm
            t = end
        return windows

    def in_window(
        self, time_s: float, windows: list[tuple[float, float]]
    ) -> bool:
        return any(lo <= time_s < hi for lo, hi in windows)


def generate_noise_spes(
    n_clusters: int,
    obs_length_s: float,
    grid: DMGrid,
    sample_time_s: float = 6.4e-5,
    snr_threshold: float = 5.0,
    rng: np.random.Generator | None = None,
) -> list[SPE]:
    """Clusters of weak, incoherent noise events.

    Cluster sizes follow a heavy-tailed (geometric) distribution: mostly a
    handful of events, occasionally tens — matching the paper's observation
    that real cluster files have a median size of ~19 SPEs with a long tail.
    """
    rng = rng or np.random.default_rng(0)
    trials = grid.trial_dms()
    spes: list[SPE] = []
    for _ in range(n_clusters):
        size = 2 + int(rng.geometric(0.12))
        center_idx = int(rng.integers(0, len(trials)))
        t0 = float(rng.uniform(0.0, obs_length_s))
        for _ in range(size):
            idx = int(np.clip(center_idx + rng.integers(-6, 7), 0, len(trials) - 1))
            dm = float(trials[idx])
            # Exponential tail above threshold: almost all noise events weak.
            snr = snr_threshold + float(rng.exponential(0.7))
            t = t0 + float(rng.normal(0.0, 0.05))
            if not 0.0 <= t < obs_length_s:
                continue
            spes.append(
                SPE(dm=dm, snr=round(snr, 3), time_s=round(t, 6),
                    sample=int(t / sample_time_s), downfact=int(rng.integers(1, 5)))
            )
    return spes


def generate_pulse_mimic_spes(
    n_mimics: int,
    obs_length_s: float,
    grid: DMGrid,
    sample_time_s: float = 6.4e-5,
    snr_threshold: float = 5.0,
    rng: np.random.Generator | None = None,
) -> list[SPE]:
    """Dispersed-RFI mimics: peaked SNR-vs-DM profiles that are *not* pulses.

    Swept-frequency interference and chance alignments of impulsive RFI can
    dedisperse coherently at a non-zero DM, producing candidates that look
    like single pulses (these are the "manually verified" negatives of
    Section 4 — verification is needed precisely because they mimic pulses).
    They make the binary classification problem genuinely hard: the profile
    is peaked like a real pulse, but the peak DM is uncorrelated with
    brightness/width structure, the profile is asymmetric, and the time
    footprint is wider and noisier.
    """
    rng = rng or np.random.default_rng(0)
    trials = grid.trial_dms()
    spes: list[SPE] = []
    for _ in range(n_mimics):
        t0 = float(rng.uniform(0.0, obs_length_s))
        peak_dm = float(rng.uniform(trials[0], trials[-1]))
        peak_snr = snr_threshold + float(rng.exponential(6.0)) + 0.5
        # Asymmetric pseudo-pulse: different decay scales on each side, in
        # ladder-step units so mimics exist at every DM like real pulses.
        step = max(grid.spacing_at(peak_dm), 1e-3)
        scale_lo = float(rng.uniform(1.0, 8.0)) * step
        scale_hi = float(rng.uniform(1.0, 8.0)) * step
        span = trials[np.abs(trials - peak_dm) <= 4.0 * max(scale_lo, scale_hi)]
        for dm in span:
            delta = float(dm - peak_dm)
            scale = scale_hi if delta >= 0 else scale_lo
            snr = peak_snr * float(np.exp(-abs(delta) / scale))
            snr += float(rng.normal(0.0, 0.8))  # mimics are noisier than pulses
            if snr < snr_threshold:
                continue
            t = t0 + float(rng.normal(0.0, 0.15))
            if not 0.0 <= t < obs_length_s:
                continue
            spes.append(
                SPE(dm=float(dm), snr=round(snr, 3), time_s=round(t, 6),
                    sample=int(t / sample_time_s), downfact=int(rng.integers(1, 12)))
            )
    return spes


def generate_rfi_spes(
    n_bursts: int,
    obs_length_s: float,
    grid: DMGrid,
    sample_time_s: float = 6.4e-5,
    snr_threshold: float = 5.0,
    rng: np.random.Generator | None = None,
) -> list[SPE]:
    """Broadband RFI bursts: strong at DM≈0, decaying across a wide DM span."""
    rng = rng or np.random.default_rng(0)
    spes: list[SPE] = []
    for _ in range(n_bursts):
        t0 = float(rng.uniform(0.0, obs_length_s))
        spes.extend(
            _broadband_burst(t0, obs_length_s, grid, sample_time_s,
                             snr_threshold, rng)
        )
    return spes


def _broadband_burst(
    t0: float,
    obs_length_s: float,
    grid: DMGrid,
    sample_time_s: float,
    snr_threshold: float,
    rng: np.random.Generator,
) -> list[SPE]:
    """One broadband burst at ``t0`` (the draw sequence of the classic path)."""
    trials = grid.trial_dms()
    spes: list[SPE] = []
    peak = snr_threshold + float(rng.uniform(5.0, 40.0))
    # Decay scale in DM: RFI stays detectable over a wide range.
    scale = float(rng.uniform(30.0, 200.0))
    span = trials[trials <= min(grid.max_dm, scale * 3.0)]
    step = max(1, len(span) // int(rng.integers(30, 120)))
    for dm in span[::step]:
        snr = peak * float(np.exp(-dm / scale)) + float(rng.normal(0.0, 0.4))
        if snr < snr_threshold:
            continue
        t = t0 + float(rng.normal(0.0, 0.01))
        if not 0.0 <= t < obs_length_s:
            continue
        spes.append(
            SPE(dm=float(dm), snr=round(snr, 3), time_s=round(t, 6),
                sample=int(t / sample_time_s), downfact=int(rng.integers(1, 10)))
        )
    return spes


def generate_storm_rfi_spes(
    storm: RFIStormModel,
    obs_length_s: float,
    grid: DMGrid,
    sample_time_s: float = 6.4e-5,
    snr_threshold: float = 5.0,
    rng: np.random.Generator | None = None,
) -> tuple[list[SPE], list[tuple[float, float]]]:
    """Broadband bursts driven by the storm's Markov chain.

    Returns ``(spes, storm_windows)``.  Draws are strictly time-ordered —
    chain transitions first, then per-interval burst counts and bursts — so
    output is deterministic for a given ``rng`` state.
    """
    rng = rng or np.random.default_rng(0)
    windows = storm.windows(obs_length_s, rng)
    spes: list[SPE] = []
    t = 0.0
    while t < obs_length_s:
        end = min(t + storm.interval_s, obs_length_s)
        rate = storm.quiet_rate_hz
        if storm.in_window((t + end) / 2.0, windows):
            rate *= storm.storm_rate_multiplier
        n_bursts = int(rng.poisson(rate * (end - t)))
        for _ in range(n_bursts):
            t0 = float(rng.uniform(t, end))
            spes.extend(
                _broadband_burst(t0, obs_length_s, grid, sample_time_s,
                                 snr_threshold, rng)
            )
        t = end
    return spes, windows
