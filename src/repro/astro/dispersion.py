"""Cold-plasma dispersion physics and trial-DM grids.

A broadband radio pulse traversing the ionized interstellar medium arrives
later at lower frequencies; the delay between frequencies ``f1 < f2`` (MHz)
for dispersion measure ``DM`` (pc cm^-3) is

    dt = K_DM * DM * (f1^-2 - f2^-2)  seconds,  K_DM = 4.148808e3 MHz^2 s.

Single-pulse searches dedisperse at a ladder of *trial* DMs; the ladder's
step size (the paper's ``DMSpacing`` feature) grows from 0.01 at low DM to
2.00 at very high DM, because dispersion smearing tolerance grows with DM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Dispersion constant in MHz^2 pc^-1 cm^3 s (Lorimer & Kramer 2012).
K_DM = 4.148808e3


def dispersion_delay_s(dm: float, f_low_mhz: float, f_high_mhz: float) -> float:
    """Arrival-time delay of ``f_low`` relative to ``f_high`` for this DM."""
    if f_low_mhz <= 0 or f_high_mhz <= 0:
        raise ValueError("frequencies must be positive")
    if dm < 0:
        raise ValueError(f"DM must be non-negative, got {dm}")
    return K_DM * dm * (f_low_mhz**-2 - f_high_mhz**-2)


def smearing_snr_factor(
    delta_dm: float, width_ms: float, center_freq_mhz: float, bandwidth_mhz: float
) -> float:
    """SNR degradation for dedispersing at the wrong DM.

    Cordes & McLaughlin (2003): with

        zeta = 6.91e-3 * dDM * BW_MHz / (W_ms * f_GHz^3)

    the recovered SNR fraction is ``sqrt(pi)/2 * erf(zeta)/zeta`` (→ 1 as
    zeta → 0).  This is what makes a single pulse appear as a *cluster* of
    SPEs across neighbouring trial DMs with a peaked SNR-vs-DM profile —
    the structure RAPID's peak search exploits.
    """
    if width_ms <= 0:
        raise ValueError(f"width_ms must be positive, got {width_ms}")
    f_ghz = center_freq_mhz / 1000.0
    zeta = 6.91e-3 * abs(delta_dm) * bandwidth_mhz / (width_ms * f_ghz**3)
    if zeta < 1e-9:
        return 1.0
    return (math.sqrt(math.pi) / 2.0) * math.erf(zeta) / zeta


def smearing_snr_factors(
    delta_dms: np.ndarray,
    width_ms: float,
    center_freq_mhz: float,
    bandwidth_mhz: float,
) -> np.ndarray:
    """Vectorized :func:`smearing_snr_factor` over an array of DM offsets.

    Uses :func:`scipy.special.erf`, which can differ from :func:`math.erf`
    in the last ulp; callers rounding to a few decimals (SPE records) are
    unaffected.
    """
    if width_ms <= 0:
        raise ValueError(f"width_ms must be positive, got {width_ms}")
    from scipy.special import erf

    f_ghz = center_freq_mhz / 1000.0
    zeta = 6.91e-3 * np.abs(np.asarray(delta_dms, dtype=float)) * bandwidth_mhz / (
        width_ms * f_ghz**3
    )
    safe = np.where(zeta < 1e-9, 1.0, zeta)
    out = (math.sqrt(math.pi) / 2.0) * erf(safe) / safe
    return np.where(zeta < 1e-9, 1.0, out)


#: Default trial-DM ladder bands: (dm_start, dm_stop, step).  Matches the
#: paper's statement that DMSpacing runs from 0.01 at low DM to 2.00 at very
#: high DM.  ``DMGrid`` can coarsen these uniformly for fast tests.
DEFAULT_BANDS: tuple[tuple[float, float, float], ...] = (
    (0.0, 30.0, 0.01),
    (30.0, 100.0, 0.05),
    (100.0, 300.0, 0.10),
    (300.0, 1000.0, 0.50),
    (1000.0, 5000.0, 2.00),
)


def dm_spacing_bands() -> tuple[tuple[float, float, float], ...]:
    """The canonical banded spacing table (exposed for tests/docs)."""
    return DEFAULT_BANDS


@dataclass(frozen=True)
class DMGrid:
    """A trial-DM ladder assembled from spacing bands.

    Parameters
    ----------
    max_dm:
        Upper end of the search.
    coarsen:
        Multiply every band step by this factor (≥ 1).  Tests and scaled-down
        benchmarks use coarse grids; the *relative* banded structure — and
        hence the ``DMSpacing`` feature distribution — is preserved.
    """

    max_dm: float = 1000.0
    coarsen: float = 1.0
    bands: tuple[tuple[float, float, float], ...] = DEFAULT_BANDS

    def __post_init__(self) -> None:
        if self.max_dm <= 0:
            raise ValueError(f"max_dm must be positive, got {self.max_dm}")
        if self.coarsen < 1.0:
            raise ValueError(f"coarsen must be >= 1, got {self.coarsen}")

    def trial_dms(self) -> np.ndarray:
        """All trial DM values, ascending, de-duplicated."""
        chunks: list[np.ndarray] = []
        for start, stop, step in self.bands:
            if start >= self.max_dm:
                break
            stop = min(stop, self.max_dm)
            chunks.append(np.arange(start, stop, step * self.coarsen))
        grid = np.unique(np.concatenate(chunks)) if chunks else np.array([0.0])
        return grid

    def spacing_at(self, dm: float) -> float:
        """The ladder step at a given DM (the ``DMSpacing`` feature value)."""
        for start, stop, step in self.bands:
            if start <= dm < stop:
                return step * self.coarsen
        return self.bands[-1][2] * self.coarsen

    def spacing_of(self, dms: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`spacing_at` for a whole SPE list at once.

        One ``np.searchsorted`` over the band starts replaces the per-value
        linear band scan; DMs at or beyond the last band stop get the last
        band's step, matching the scalar fallback.
        """
        dms = np.asarray(dms, dtype=float)
        starts = np.array([b[0] for b in self.bands])
        steps = np.array([b[2] for b in self.bands]) * self.coarsen
        idx = np.clip(np.searchsorted(starts, dms, side="right") - 1, 0, steps.size - 1)
        return steps[idx]

    def nearest_trial(self, dm: float) -> float:
        grid = self.trial_dms()
        idx = int(np.argmin(np.abs(grid - dm)))
        return float(grid[idx])

    def trials_near(self, dm: float, half_width: float) -> np.ndarray:
        """Trial DMs within ±half_width of ``dm`` (a pulse's SPE footprint)."""
        grid = self.trial_dms()
        lo, hi = dm - half_width, dm + half_width
        return grid[(grid >= lo) & (grid <= hi)]


def dm_from_distance_kpc(distance_kpc: float, ne_per_cc: float = 0.03) -> float:
    """Crude NE2001-flavoured DM estimate: mean electron density × path.

    Used by the population synthesizer to couple pulsar distances to DMs so
    that ``SNRPeakDM`` behaves as the distance proxy the paper's ALM scheme
    assumes (Section 5.2.2).
    """
    if distance_kpc < 0:
        raise ValueError("distance must be non-negative")
    return ne_per_cc * distance_kpc * 1000.0
