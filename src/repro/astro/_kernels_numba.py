"""Optional numba ``njit`` implementations of the hot kernel loops.

Importing this module never fails: when numba is absent (:data:`HAS_NUMBA`
is False) every symbol is ``None`` and :mod:`repro.astro.kernels` routes to
its pure-NumPy implementations, which remain the reference oracle (the same
``_reference_*`` equivalence pattern PR 1 established).

The JIT loops are written to accumulate in **the same per-element order**
as the NumPy slice-add paths — for each output row, channels stream through
in ascending order, each contributing ``src[s:]`` to ``row[:n-s]`` — so on
hosts where numba is installed the outputs are bit-identical to NumPy, not
merely close.  The CI ``kernels`` job runs the kernel suite under
``REPRO_KERNEL_IMPL=numba`` to hold that line.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    import numpy as _np

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the common (baked-image) case
    _numba = None
    HAS_NUMBA = False

if HAS_NUMBA:  # pragma: no cover - compiled paths, covered by the CI numba leg

    @_numba.njit(cache=True)
    def dedisperse_accumulate(out, cols, shifts):
        """out[d] += Σ_ch cols[ch] shifted by shifts[d, ch] (row-major)."""
        n_dms, n_samples = out.shape
        n_chan = cols.shape[0]
        for d in range(n_dms):
            for ch in range(n_chan):
                s = shifts[d, ch]
                if s < n_samples:
                    for i in range(n_samples - s):
                        out[d, i] += cols[ch, s + i]

    @_numba.njit(cache=True)
    def scatter_add_shifted(out, srcs, out_rows, src_rows, shifts):
        """out[out_rows[k]] += srcs[src_rows[k]] shifted by shifts[k], ∀k."""
        n_samples = out.shape[1]
        for k in range(out_rows.size):
            o = out_rows[k]
            r = src_rows[k]
            s = shifts[k]
            if s < n_samples:
                for i in range(n_samples - s):
                    out[o, i] += srcs[r, s + i]

    @_numba.njit(cache=True)
    def best_z_cumsum(series, widths, med, csum, best):
        """The ``_best_z`` cumsum/window loop; float ops match NumPy's.

        ``(csum[i+w] - csum[i]) * (1/√w) - √w·med`` — the exact expression
        (and operand order) of the NumPy path, and ``np.cumsum`` is a plain
        sequential accumulation, so results are bit-identical.
        """
        n = series.size
        csum[0] = 0.0
        acc = 0.0
        for i in range(n):
            acc += series[i]
            csum[i + 1] = acc
        for i in range(n):
            best[i] = -_np.inf
        for k in range(widths.size):
            w = widths[k]
            if w > n:
                break
            m = n - w + 1
            inv = 1.0 / _np.sqrt(w)
            sub = _np.sqrt(w) * med
            for i in range(m):
                z = (csum[i + w] - csum[i]) * inv - sub
                if z > best[i]:
                    best[i] = z

else:
    dedisperse_accumulate = None
    scatter_add_shifted = None
    best_z_cumsum = None
