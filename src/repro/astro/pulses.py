"""Single-pulse event generation: pulses → SPE clusters across trial DMs.

Each emitted pulse is detected not only at the trial DM nearest the source's
true DM but at a *range* of neighbouring trials, with SNR rolling off
according to the dedispersion-smearing response
(:func:`repro.astro.dispersion.smearing_snr_factor`) and arrival time
drifting linearly with the DM error.  The resulting point cloud — a narrow
streak in DM-vs-time with a peaked SNR-vs-DM profile — is exactly the single
pulse structure of the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.dispersion import (
    K_DM,
    DMGrid,
    smearing_snr_factor,
    smearing_snr_factors,
)
from repro.astro.population import Pulsar
from repro.astro.spe import SPE


def effective_width_ms(
    intrinsic_width_ms: float,
    dm: float,
    center_freq_mhz: float,
    bandwidth_mhz: float,
    n_channels: int = 1024,
    scatter_coeff_ms: float = 0.01,
) -> float:
    """Observed pulse width after propagation/instrumental broadening.

    Quadrature sum of the intrinsic width, intra-channel dispersion smearing
    (8.3e6 · DM · Δν_chan / ν³ ms) and a scattering tail scaling as
    DM^2.2 · ν^-4.4 (Bhat et al. 2004, simplified).  Broadening grows fast
    with DM at low frequencies, which is what gives high-DM pulses a wide
    trial-DM footprint (and is why 350 MHz surveys lose sensitivity to
    distant pulsars).
    """
    if intrinsic_width_ms <= 0:
        raise ValueError("intrinsic_width_ms must be positive")
    chan_mhz = bandwidth_mhz / max(n_channels, 1)
    smear_ms = 8.3e6 * dm * chan_mhz / center_freq_mhz**3
    scatter_ms = scatter_coeff_ms * (dm / 100.0) ** 2.2 * (1400.0 / center_freq_mhz) ** 4.4
    return float(np.sqrt(intrinsic_width_ms**2 + smear_ms**2 + scatter_ms**2))


@dataclass(frozen=True)
class PulseTruth:
    """Ground truth for one emitted pulse (used to label clusters)."""

    pulsar_name: str
    is_rrat: bool
    time_s: float
    peak_snr: float
    dm: float
    spe_indices: tuple[int, ...]


def _detection_half_width_dm(
    width_ms: float, center_freq_mhz: float, bandwidth_mhz: float, threshold: float, peak_snr: float
) -> float:
    """DM offset beyond which the smeared SNR falls below threshold.

    Solved by bisection on the monotone smearing response; gives each pulse
    its DM footprint so we only evaluate trial DMs that can matter.
    """
    if peak_snr <= threshold:
        return 0.0
    lo, hi = 0.0, 1.0
    resp = lambda d: peak_snr * smearing_snr_factor(  # noqa: E731
        d, width_ms, center_freq_mhz, bandwidth_mhz
    )
    while resp(hi) > threshold and hi < 4096.0:
        hi *= 2.0
    for _ in range(48):
        mid = 0.5 * (lo + hi)
        if resp(mid) > threshold:
            lo = mid
        else:
            hi = mid
    return hi


def generate_pulsar_spes(
    pulsar: Pulsar,
    obs_length_s: float,
    grid: DMGrid,
    center_freq_mhz: float,
    bandwidth_mhz: float,
    sample_time_s: float = 6.4e-5,
    snr_threshold: float = 5.0,
    rng: np.random.Generator | None = None,
    start_index: int = 0,
    n_channels: int = 1024,
) -> tuple[list[SPE], list[PulseTruth]]:
    """Generate all SPEs a pulsar produces in one observation.

    Returns the SPE list and per-pulse ground truth records.  ``start_index``
    offsets the SPE indices recorded in the truth (so several sources can
    share one observation's SPE list).
    """
    rng = rng or np.random.default_rng(0)
    if obs_length_s <= 0:
        raise ValueError(f"obs_length_s must be positive, got {obs_length_s}")
    spes: list[SPE] = []
    truths: list[PulseTruth] = []

    f_low = center_freq_mhz - bandwidth_mhz / 2.0
    f_high = center_freq_mhz + bandwidth_mhz / 2.0

    n_rotations = int(obs_length_s / pulsar.period_s)
    if n_rotations < 1:
        return spes, truths
    # Which rotations emit a detectable pulse.
    emitted = rng.random(n_rotations) < pulsar.pulse_fraction
    phase0 = rng.uniform(0.0, pulsar.period_s)

    for rot in np.nonzero(emitted)[0]:
        t_pulse = phase0 + rot * pulsar.period_s
        if t_pulse >= obs_length_s:
            continue
        peak_snr = pulsar.mean_snr * float(np.exp(rng.normal(0.0, pulsar.snr_sigma)))
        if peak_snr <= snr_threshold:
            continue
        width_ms = effective_width_ms(
            pulsar.width_ms, pulsar.dm, center_freq_mhz, bandwidth_mhz, n_channels
        )
        half_width = _detection_half_width_dm(
            width_ms, center_freq_mhz, bandwidth_mhz, snr_threshold, peak_snr
        )
        trials = grid.trials_near(pulsar.dm, half_width)
        if trials.size == 0:
            continue
        pulse_spes: list[int] = []
        # Arrival-time drift: dedispersing at DM' shifts the apparent arrival
        # by roughly half the residual intra-band delay.  The whole trial-DM
        # footprint is evaluated in one vectorized pass; the noise draw uses
        # one size=n call, which consumes the generator stream exactly like
        # the seed's per-trial scalar draws did.
        deltas = trials - pulsar.dm
        snr_arr = peak_snr * smearing_snr_factors(
            deltas, width_ms, center_freq_mhz, bandwidth_mhz
        )
        snr_arr += rng.normal(0.0, 0.25, size=trials.size)  # radiometer noise
        drift = 0.5 * (K_DM * np.abs(deltas) * (f_low**-2 - f_high**-2))
        t_arr = t_pulse + np.where(deltas > 0, drift, -drift)
        keep = (snr_arr >= snr_threshold) & (t_arr >= 0.0) & (t_arr < obs_length_s)
        downfact = max(1, int(width_ms / (sample_time_s * 1e3)))
        for j in np.nonzero(keep)[0]:
            t = float(t_arr[j])
            spes.append(
                SPE(
                    dm=float(trials[j]),
                    snr=round(float(snr_arr[j]), 3),
                    time_s=round(t, 6),
                    sample=int(t / sample_time_s),
                    downfact=downfact,
                )
            )
            pulse_spes.append(start_index + len(spes) - 1)
        if len(pulse_spes) >= 2:
            truths.append(
                PulseTruth(
                    pulsar_name=pulsar.name,
                    is_rrat=pulsar.is_rrat,
                    time_s=float(t_pulse),
                    peak_snr=float(peak_snr),
                    dm=pulsar.dm,
                    spe_indices=tuple(pulse_spes),
                )
            )
    return spes, truths
