"""Filterbank synthesis, dedispersion, and single pulse event detection.

Section 3 of the paper describes the three phases *upstream* of its "raw
data": signal collection, dedispersion, and single pulse searching (PRESTO's
``single_pulse_search.py``).  This module implements that front end so the
whole chain — voltages to classified candidates — exists in the repository:

- :func:`synthesize_filterbank` — a (channels × samples) dynamic spectrum
  with radiometer noise and dispersed pulses swept across the band;
- :func:`dedisperse` — incoherent shift-and-sum dedispersion at one trial
  DM (the classic tree/brute-force step);
- :func:`dedisperse_all` — the whole trial-DM grid at once, via the batch
  (exact) or two-stage subband (partial-sum reuse) kernels;
- :func:`single_pulse_search` — matched filtering of each dedispersed time
  series with boxcars of several widths and thresholding, emitting the SPE
  records the rest of the pipeline consumes.

The heavy lifting lives in :mod:`repro.astro.kernels`; the seed's naive
loops are retained there (and as :func:`_reference_single_pulse_search`
here) for equivalence tests and the front-end kernel benchmark.

The output of :func:`single_pulse_search` over a trial-DM grid is exactly
the kind of SPE list :mod:`repro.astro.pulses` synthesizes directly; a test
asserts the two agree on where the pulse lives.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.astro.dispersion import K_DM
from repro.astro.kernels import (
    _reference_dedisperse,
    dedisperse_batch,
    dedisperse_grid,
    dedisperse_subband,
    dedisperse_tree,
    resolve_impl,
    single_pulse_block_search,
)
from repro.astro.spe import SPE, spes_from_search
from repro.execution import KernelConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.search import FrontendParams
    from repro.obs.session import ObsSession


@dataclass(frozen=True)
class Filterbank:
    """A dynamic spectrum: power per (channel, sample)."""

    data: np.ndarray  # (n_channels, n_samples), float32
    f_low_mhz: float
    f_high_mhz: float
    sample_time_s: float

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise ValueError("filterbank data must be 2-D (channels × samples)")
        if self.f_low_mhz >= self.f_high_mhz:
            raise ValueError("f_low must be below f_high")
        if self.sample_time_s <= 0:
            raise ValueError("sample_time_s must be positive")

    @property
    def n_channels(self) -> int:
        return self.data.shape[0]

    @property
    def n_samples(self) -> int:
        return self.data.shape[1]

    @property
    def channel_freqs_mhz(self) -> np.ndarray:
        """Centre frequency of each channel, ascending."""
        edges = np.linspace(self.f_low_mhz, self.f_high_mhz, self.n_channels + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    @property
    def duration_s(self) -> float:
        return self.n_samples * self.sample_time_s


@dataclass(frozen=True)
class InjectedPulse:
    """Ground truth for a pulse injected into a filterbank."""

    time_s: float
    dm: float
    width_ms: float
    amplitude: float


def synthesize_filterbank(
    duration_s: float,
    n_channels: int = 64,
    f_low_mhz: float = 300.0,
    f_high_mhz: float = 400.0,
    sample_time_s: float = 1e-3,
    pulses: list[InjectedPulse] | None = None,
    noise_sigma: float = 1.0,
    seed: int = 0,
) -> Filterbank:
    """Gaussian-noise dynamic spectrum with dispersed pulses swept in.

    Each pulse arrives at its nominal time at the top of the band and is
    delayed per channel by the cold-plasma law; its profile is a Gaussian of
    the given width in every channel.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = np.random.default_rng(seed)
    n_samples = int(round(duration_s / sample_time_s))
    data = rng.normal(0.0, noise_sigma, size=(n_channels, n_samples)).astype(np.float32)

    edges = np.linspace(f_low_mhz, f_high_mhz, n_channels + 1)
    freqs = 0.5 * (edges[:-1] + edges[1:])
    t = np.arange(n_samples) * sample_time_s
    for pulse in pulses or []:
        width_s = pulse.width_ms / 1e3
        for ch, f in enumerate(freqs):
            delay = K_DM * pulse.dm * (f**-2 - f_high_mhz**-2)
            center = pulse.time_s + delay
            if not -4 * width_s <= center <= duration_s + 4 * width_s:
                continue
            lo = max(0, int((center - 5 * width_s) / sample_time_s))
            hi = min(n_samples, int((center + 5 * width_s) / sample_time_s) + 1)
            if hi <= lo:
                continue
            seg = t[lo:hi]
            data[ch, lo:hi] += pulse.amplitude * np.exp(
                -0.5 * ((seg - center) / max(width_s, sample_time_s / 2)) ** 2
            )
    return Filterbank(data=data, f_low_mhz=f_low_mhz, f_high_mhz=f_high_mhz,
                      sample_time_s=sample_time_s)


def dedisperse(fb: Filterbank, dm: float) -> np.ndarray:
    """Incoherent dedispersion: shift each channel by its DM delay and sum.

    Arrival times are referenced to the top of the band (the highest
    frequency), matching :func:`synthesize_filterbank`'s convention.
    Delegates to :func:`repro.astro.kernels.dedisperse_batch` (single-row
    call); the seed's per-channel loop is retained as
    :func:`repro.astro.kernels._reference_dedisperse`.
    """
    if dm < 0:
        raise ValueError("DM must be non-negative")
    return dedisperse_batch(
        fb.data, fb.channel_freqs_mhz, fb.f_high_mhz, fb.sample_time_s, [dm]
    )[0]


def dedisperse_all(
    fb: Filterbank,
    trial_dms: np.ndarray,
    method: str = "batch",
    out_dtype: np.dtype | type = np.float64,
    kernel: KernelConfig | None = None,
) -> np.ndarray:
    """The full (n_dms × n_samples) dedispersed block in one call.

    ``method="batch"`` (alias ``"direct"``) is exact (matches
    :func:`dedisperse` per row); ``method="subband"`` reuses partial sums
    across neighbouring trial DMs and ``method="tree"`` applies that trick
    recursively over a binary merge tree — both tolerance-bounded (see the
    :mod:`repro.astro.kernels` tolerance law), large wins on fine DM
    ladders.  A full :class:`repro.execution.KernelConfig` overrides
    ``method`` and also selects the implementation layer (NumPy/numba).
    """
    args = (fb.data, fb.channel_freqs_mhz, fb.f_high_mhz, fb.sample_time_s, trial_dms)
    if kernel is not None:
        return dedisperse_grid(*args, kernel=kernel, out_dtype=out_dtype)
    if method in ("batch", "direct"):
        return dedisperse_batch(*args, out_dtype=out_dtype)
    if method == "subband":
        return dedisperse_subband(*args, out_dtype=out_dtype)
    if method == "tree":
        return dedisperse_tree(*args, out_dtype=out_dtype)
    raise ValueError(f"unknown dedispersion method: {method!r}")


def single_pulse_search(
    fb: Filterbank,
    trial_dms: np.ndarray,
    snr_threshold: float = 5.0,
    boxcar_widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    dtype: np.dtype | type = np.float32,
    dedispersion: str = "batch",
    kernel: KernelConfig | None = None,
    params: "FrontendParams | None" = None,
    obs: "ObsSession | None" = None,
) -> list[SPE]:
    """PRESTO-style single pulse search over the whole trial-DM grid.

    Vectorized front end: one dedispersion of the full grid, then an O(n)
    boxcar filter per series with median/MAD noise estimated once per
    series, and a vectorized threshold + local-maxima pass
    (:mod:`repro.astro.kernels`).

    Sample convention: boxcar windows are **left-aligned** — each emitted
    SPE's ``sample`` (and ``time_s = sample × t_samp``) is the *first*
    sample of the best-matching width-``downfact`` window, which therefore
    covers ``[time_s, time_s + downfact × t_samp)``.  The seed centred
    windows with ``np.convolve(..., mode="same")``, which put even-width
    boxcars half a sample off; that implementation is retained as
    :func:`_reference_single_pulse_search`.

    ``dtype`` controls the accumulation precision of the search path.  The
    float32 default halves memory traffic (PRESTO dedisperses in float32
    too) and perturbs SNRs only at the 1e-5 level; pass ``np.float64`` for
    bit-level agreement with the float64 kernels.

    ``kernel`` (a :class:`repro.execution.KernelConfig`, resolved against
    the environment) selects the dedispersion method, boxcar mode and
    implementation layer; it supersedes the legacy ``dedispersion`` string.
    ``params`` (:class:`repro.core.search.FrontendParams`) bundles
    threshold + widths; explicit keyword arguments win.  ``obs`` records
    per-stage ``kernel.dedisperse`` / ``kernel.boxcar`` spans.
    """
    if params is not None:
        snr_threshold = snr_threshold if snr_threshold != 5.0 else params.snr_threshold
        if boxcar_widths == (1, 2, 4, 8, 16, 32):
            boxcar_widths = params.boxcar_widths
    if snr_threshold <= 0:
        raise ValueError("snr_threshold must be positive")
    trial_dms = np.asarray(trial_dms, dtype=float)
    if kernel is None:
        span = obs.tracer.span if obs is not None else (lambda *a, **k: nullcontext())
        with span("kernel.dedisperse", method=dedispersion, impl="numpy"):
            block = dedisperse_all(fb, trial_dms, method=dedispersion,
                                   out_dtype=dtype)
        with span("kernel.boxcar", boxcar="cumsum"):
            rows, samples, snrs, widths = single_pulse_block_search(
                block, snr_threshold, boxcar_widths
            )
        return spes_from_search(trial_dms, fb.sample_time_s, rows, samples,
                                snrs, widths)
    k = kernel.resolved()
    impl = resolve_impl(k.impl)
    span = obs.tracer.span if obs is not None else (lambda *a, **k_: nullcontext())
    with span("kernel.dedisperse", method=k.method, impl=impl):
        block = dedisperse_all(fb, trial_dms, out_dtype=dtype, kernel=k)
    with span("kernel.boxcar", boxcar=k.boxcar, impl=impl):
        rows, samples, snrs, widths = single_pulse_block_search(
            block, snr_threshold, boxcar_widths, boxcar=k.boxcar, impl=impl
        )
    return spes_from_search(trial_dms, fb.sample_time_s, rows, samples, snrs, widths)


def _reference_single_pulse_search(
    fb: Filterbank,
    trial_dms: np.ndarray,
    snr_threshold: float = 5.0,
    boxcar_widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> list[SPE]:
    """The seed's naive search, retained as the benchmark baseline.

    Per trial DM: a per-channel Python dedispersion loop, an O(n·w)
    ``np.convolve`` per boxcar width with median/MAD re-estimated on every
    smoothed series, and a Python local-maxima scan.  Note the two seed
    conventions the vectorized path deliberately changes: windows are
    centred (``mode="same"``, half a sample off for even widths) and noise
    is estimated per width rather than once per series.
    """
    if snr_threshold <= 0:
        raise ValueError("snr_threshold must be positive")
    trial_dms = np.asarray(trial_dms, dtype=float)
    spes: list[SPE] = []
    for dm in trial_dms:
        series = _reference_dedisperse(
            fb.data, fb.channel_freqs_mhz, fb.f_high_mhz, fb.sample_time_s, float(dm)
        )
        best_snr = np.full(series.size, -np.inf)
        best_width = np.ones(series.size, dtype=int)
        for width in boxcar_widths:
            if width > series.size:
                break
            kernel = np.ones(width) / np.sqrt(width)
            smoothed = np.convolve(series, kernel, mode="same")
            med = np.median(smoothed)
            mad = np.median(np.abs(smoothed - med)) * 1.4826
            snr = (smoothed - med) / max(mad, 1e-9)
            better = snr > best_snr
            best_snr[better] = snr[better]
            best_width[better] = width
        above = best_snr >= snr_threshold
        if not above.any():
            continue
        # Local maxima only: one SPE per peak, not per above-threshold sample.
        idx = np.nonzero(above)[0]
        for i in idx:
            left = best_snr[i - 1] if i > 0 else -np.inf
            right = best_snr[i + 1] if i + 1 < best_snr.size else -np.inf
            if best_snr[i] >= left and best_snr[i] > right:
                spes.append(
                    SPE(
                        dm=float(dm),
                        snr=round(float(best_snr[i]), 3),
                        time_s=round(i * fb.sample_time_s, 6),
                        sample=int(i),
                        downfact=int(best_width[i]),
                    )
                )
    return spes
