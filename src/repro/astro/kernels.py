"""Vectorized front-end kernels: batch dedispersion and O(n) boxcar search.

The paper's Fig. 2 pipeline spends its upstream phases — dedispersion →
single pulse search — before RAPID ever runs.  The seed implementation ran
those phases in near-pure-Python loops: a per-channel shift loop inside
``dedisperse`` repeated for every trial DM, an O(n·w) ``np.convolve`` per
boxcar width, and a Python local-maxima scan.  This module replaces them
with NumPy kernels that process the whole trial-DM grid at once:

- :func:`shift_table` — the per-(trial DM, channel) sample-shift table,
  computed once for the whole grid;
- :func:`dedisperse_batch` — the full (n_dms × n_samples) dedispersed
  block via vectorized slice-adds;
- :func:`dedisperse_subband` — an optional two-stage subband path that
  reuses partial sums across neighbouring trial DMs (the classic ~O(√n_chan)
  trick; tolerance-bounded, wins on fine DM ladders);
- :func:`dedisperse_tree` — the recursive extension of the subband trick: a
  binary merge tree over channel subbands where every node is evaluated on a
  coarsened trial-DM ladder, giving O(N·log DM)-style reuse on fine ladders
  (Adámek & Armour's algorithmic framing);
- :func:`dedisperse_grid` — the method/impl dispatcher driven by
  :class:`repro.execution.KernelConfig`;
- :func:`boxcar_snr` — O(n) sliding-boxcar SNR via cumulative sums, with
  median/MAD noise estimated once per series, plus a ``decomposed`` mode
  that builds long windows from shorter power-of-two window sums;
- :func:`find_peaks` — vectorized threshold + local-maxima pass;
- :func:`single_pulse_block_search` — the fused per-row fast path used by
  :func:`repro.astro.filterbank.single_pulse_search`.

Sample convention
-----------------
Boxcar windows are **left-aligned**: the width-``w`` window at sample ``i``
covers samples ``[i, i+w)``, and a detection is reported at the window's
*first* sample.  The seed used ``np.convolve(..., mode="same")``, which
centres even-width boxcars half a sample off; left alignment makes the
convention exact and documentable on the emitted SPE.

Performance notes (they shape this file)
----------------------------------------
Measured on the single-core reference host:

- ``np.median`` costs ~8× a raw ``np.partition`` (NaN-checking overhead);
  :func:`_median_inplace` uses partition directly.
- Temporaries are expensive; every hot ufunc call writes into a
  preallocated buffer (``out=``).
- The dedispersed block (n_dms × n_samples) exceeds L2, so the boxcar
  stage iterates row-by-row: one dedispersed series (~0.5 MB) stays
  cache-resident through its cumsum, window, and noise passes.
- Tracking the best boxcar width per sample needs two fancy-index writes
  per width; instead only the best statistic is tracked (``np.maximum``)
  and the winning width is recomputed at the (few) detected peaks.

Implementation layers
---------------------
Every hot loop exists twice: the pure-NumPy path (the reference oracle) and
an optional numba ``njit`` path (:mod:`repro.astro._kernels_numba`),
auto-detected at import.  ``impl="auto"`` resolves to numba when importable
and NumPy otherwise (:func:`resolve_impl`); requesting ``"numba"`` on a
numba-less host falls back to NumPy cleanly — the resolution is surfaced
through the ``kernel_selected`` obs event rather than an import error.

Tolerance law (tree/subband)
----------------------------
The approximate paths replace per-(DM, channel) exact shifts with composed
per-node shifts evaluated on coarsened DM ladders.  The guarantee, asserted
by the hypothesis suite via :func:`_tree_effective_shifts`: every channel's
*effective* shift is within :func:`tree_shift_bound` samples of the exact
:func:`shift_table` shift — per tree level, at most ``tol_samples`` of
ladder-coarsening error plus 1 sample of re-rounding.  Tie-break rules are
exact and deterministic: ladder grouping is greedy over the ascending
sorted unique DM ladder, a DM joins the open group while
``dm − rep ≤ ddm(node)`` (strict ``>`` opens a new group), and the group's
*first* member is its representative.  When a ladder admits no coarsening
the paths fall back to the exact :func:`dedisperse_batch`.

The seed's naive implementations are retained as ``_reference_*`` functions
so property tests can assert bit-for-bit (or tolerance-bounded)
equivalence, and so the benchmark can time naive vs. vectorized honestly.
"""

from __future__ import annotations

import numpy as np

from repro.astro import _kernels_numba as _nb
from repro.astro.dispersion import K_DM

#: True when the optional numba layer compiled at import.
HAS_NUMBA = _nb.HAS_NUMBA

__all__ = [
    "delay_table",
    "shift_table",
    "dedisperse_batch",
    "dedisperse_subband",
    "dedisperse_tree",
    "dedisperse_grid",
    "resolve_impl",
    "tree_shift_bound",
    "boxcar_snr",
    "find_peaks",
    "single_pulse_block_search",
    "HAS_NUMBA",
]


def resolve_impl(impl: str | None = None) -> str:
    """Resolve an impl request to the concrete layer: ``numpy`` or ``numba``.

    ``auto`` (and ``None``) pick numba when importable; an explicit
    ``numba`` request degrades to ``numpy`` when the import failed — the
    caller records both requested and resolved impl in the
    ``kernel_selected`` event, keeping the fallback observable.
    """
    impl = impl or "auto"
    if impl == "auto":
        return "numba" if HAS_NUMBA else "numpy"
    if impl == "numba":
        return "numba" if HAS_NUMBA else "numpy"
    if impl != "numpy":
        raise ValueError(f"impl must be 'numpy', 'numba' or 'auto', got {impl!r}")
    return impl


# -- shift tables ------------------------------------------------------------

def delay_table(
    freqs_mhz: np.ndarray, f_ref_mhz: float, trial_dms: np.ndarray
) -> np.ndarray:
    """Cold-plasma delay in seconds, shape (n_dms, n_channels).

    Delays are referenced to ``f_ref_mhz`` (the top of the band), matching
    :func:`repro.astro.filterbank.synthesize_filterbank`'s convention.
    """
    freqs_mhz = np.asarray(freqs_mhz, dtype=np.float64)
    trial_dms = np.atleast_1d(np.asarray(trial_dms, dtype=np.float64))
    if np.any(trial_dms < 0):
        raise ValueError("trial DMs must be non-negative")
    g = freqs_mhz**-2.0 - float(f_ref_mhz) ** -2.0
    return K_DM * trial_dms[:, None] * g[None, :]


def shift_table(
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    trial_dms: np.ndarray,
    sample_time_s: float,
) -> np.ndarray:
    """Integer sample shifts, shape (n_dms, n_channels), computed once.

    Uses round-half-even (:func:`np.rint`), matching the seed's Python
    ``round``.  All shifts must be non-negative, i.e. ``f_ref_mhz`` must sit
    at or above every channel frequency.
    """
    if sample_time_s <= 0:
        raise ValueError("sample_time_s must be positive")
    shifts = np.rint(delay_table(freqs_mhz, f_ref_mhz, trial_dms) / sample_time_s)
    shifts = shifts.astype(np.int64)
    if shifts.size and shifts.min() < 0:
        raise ValueError("negative shift: f_ref_mhz must be the top of the band")
    return shifts


# -- batch dedispersion ------------------------------------------------------

def dedisperse_batch(
    data: np.ndarray,
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    sample_time_s: float,
    trial_dms: np.ndarray,
    out_dtype: np.dtype | type = np.float64,
    impl: str = "numpy",
) -> np.ndarray:
    """Dedisperse at every trial DM at once → (n_dms, n_samples) block.

    Row-major vectorized slice-adds: for each trial DM the output row stays
    cache-resident while the channels stream through it, exactly mirroring
    the seed's per-channel loop (so float64 output matches
    :func:`_reference_dedisperse` bit-for-bit).  ``out_dtype=np.float32``
    halves memory traffic for search pipelines that do not need 1e-9
    reproducibility (PRESTO itself dedisperses in float32).

    ``impl="numba"`` runs the same loop JIT-compiled with an identical
    per-element accumulation order, so the output stays bit-identical.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (channels × samples)")
    trial_dms = np.atleast_1d(np.asarray(trial_dms, dtype=np.float64))
    n_chan, n_samples = data.shape
    shifts = shift_table(freqs_mhz, f_ref_mhz, trial_dms, sample_time_s)
    cols = np.ascontiguousarray(data, dtype=out_dtype)
    out = np.zeros((trial_dms.size, n_samples), dtype=out_dtype)
    if impl == "numba" and HAS_NUMBA:
        _nb.dedisperse_accumulate(out, cols, shifts)
    else:
        shift_rows = shifts.tolist()  # python ints: no per-iteration unboxing
        for d, row_shifts in enumerate(shift_rows):
            row = out[d]
            for ch, s in enumerate(row_shifts):
                if s == 0:
                    row += cols[ch]
                elif s < n_samples:
                    row[: n_samples - s] += cols[ch, s:]
    out *= out.dtype.type(1.0) / np.sqrt(out.dtype.type(n_chan))
    return out


def _subband_edges(n_chan: int, n_subbands: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal channel ranges [(lo, hi), ...].

    When ``n_chan`` does not divide evenly, the remainder is spread one
    channel at a time across the *leading* subbands (13 channels over 4
    subbands → sizes 4, 3, 3, 3), keeping the worst-case subband span — and
    hence the tolerance-law residual — as small as possible.  The previous
    ``np.linspace(...).astype(int)`` edges truncated toward zero and piled
    the whole remainder into the last subband.
    """
    n_subbands = min(n_subbands, n_chan)
    base, extra = divmod(n_chan, n_subbands)
    edges: list[tuple[int, int]] = []
    lo = 0
    for b in range(n_subbands):
        hi = lo + base + (1 if b < extra else 0)
        edges.append((lo, hi))
        lo = hi
    return edges


def dedisperse_subband(
    data: np.ndarray,
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    sample_time_s: float,
    trial_dms: np.ndarray,
    n_subbands: int | None = None,
    tol_samples: float = 1.0,
    out_dtype: np.dtype | type = np.float64,
    impl: str = "numpy",
) -> np.ndarray:
    """Two-stage subband dedispersion: reuse partial sums across trial DMs.

    Stage 1 dedisperses each subband once per *group* of neighbouring trial
    DMs (intra-subband shifts evaluated at the group's first DM); stage 2
    shifts and sums the ``n_subbands`` partial series per trial DM.  Groups
    are chosen greedily so the worst-case intra-subband residual shift is at
    most ``tol_samples``; with rounding, every channel lands within
    ``tol_samples + 1`` samples of the exact :func:`dedisperse_batch` shift.

    Cost is ``n_groups × n_chan + n_dms × n_subbands`` slice-adds instead of
    ``n_dms × n_chan`` — a large win on fine DM ladders (the low-DM bands of
    :class:`repro.astro.dispersion.DMGrid`, where spacing is 0.01–0.1),
    approaching the classic ~O(√n_chan) saving.  On coarse grids every DM
    forms its own group and the exact path is used instead.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (channels × samples)")
    if tol_samples <= 0:
        raise ValueError("tol_samples must be positive")
    freqs_mhz = np.asarray(freqs_mhz, dtype=np.float64)
    trial_dms = np.atleast_1d(np.asarray(trial_dms, dtype=np.float64))
    n_chan, n_samples = data.shape
    if n_subbands is None:
        n_subbands = max(1, int(round(np.sqrt(n_chan))))
    n_subbands = min(n_subbands, n_chan)
    edges = _subband_edges(n_chan, n_subbands)
    # Reference frequency of each subband: its highest channel.
    sub_refs = np.array([freqs_mhz[hi - 1] for _lo, hi in edges])

    # Greedy grouping of the sorted ladder: a group spans at most ddm_max.
    g_span = max(
        float(np.max(np.abs(freqs_mhz[lo:hi] ** -2.0 - sub_refs[b] ** -2.0)))
        for b, (lo, hi) in enumerate(edges)
    )
    if g_span <= 0:  # single channel per subband: stage 1 shifts are exact
        ddm_max = np.inf
    else:
        ddm_max = tol_samples * sample_time_s / (K_DM * g_span)

    order = np.argsort(trial_dms, kind="stable")
    sorted_dms = trial_dms[order]
    group_of = np.empty(trial_dms.size, dtype=np.int64)
    group_reps: list[float] = []
    for pos, dm in enumerate(sorted_dms):
        if not group_reps or dm - group_reps[-1] > ddm_max:
            group_reps.append(float(dm))
        group_of[order[pos]] = len(group_reps) - 1

    if len(group_reps) >= trial_dms.size:
        # No reuse possible on this ladder: fall back to the exact path.
        return dedisperse_batch(
            data, freqs_mhz, f_ref_mhz, sample_time_s, trial_dms, out_dtype,
            impl=impl,
        )

    reps = np.asarray(group_reps)
    cols = np.ascontiguousarray(data, dtype=out_dtype)
    use_nb = impl == "numba" and HAS_NUMBA

    # Stage-1 shift tables (per subband, per group) and stage-2 shifts (per
    # exact trial DM), all computed up front.
    s1_arrays = [
        shift_table(freqs_mhz[lo:hi], float(sub_refs[b]), reps, sample_time_s)
        for b, (lo, hi) in enumerate(edges)
    ]
    s2_array = shift_table(sub_refs, f_ref_mhz, trial_dms, sample_time_s)
    s1_tables = [t.tolist() for t in s1_arrays]
    s2 = s2_array.tolist()
    if use_nb:
        # Flat (group → per-channel shift) view for the scatter-add kernel.
        s1_flat = np.concatenate(s1_arrays, axis=1)  # (n_groups, n_chan)
        s1_out_rows = np.concatenate(
            [np.full(hi - lo, b, dtype=np.int64) for b, (lo, hi) in enumerate(edges)]
        )
        s1_src_rows = np.arange(n_chan, dtype=np.int64)
        sub_rows = np.arange(len(edges), dtype=np.int64)

    # Process group-major so the (n_subbands × n_samples) partial buffer is
    # reused for every group and stays cache-resident — materializing all
    # groups at once is hundreds of MB at survey scale and thrashes.
    out = np.zeros((trial_dms.size, n_samples), dtype=out_dtype)
    partial = np.empty((len(edges), n_samples), dtype=out_dtype)
    dms_of_group: list[list[int]] = [[] for _ in range(len(reps))]
    for d, g in enumerate(group_of.tolist()):
        dms_of_group[g].append(d)
    for g, members in enumerate(dms_of_group):
        if not members:
            continue
        # Stage 1: intra-subband sums at the group's representative DM.
        partial[:] = 0.0
        if use_nb:
            _nb.scatter_add_shifted(partial, cols, s1_out_rows, s1_src_rows,
                                    s1_flat[g])
            for d in members:
                _nb.scatter_add_shifted(
                    out, partial, np.full(len(edges), d, dtype=np.int64),
                    sub_rows, s2_array[d],
                )
            continue
        for b, (lo, _hi) in enumerate(edges):
            row = partial[b]
            for ch_off, s in enumerate(s1_tables[b][g]):
                if s == 0:
                    row += cols[lo + ch_off]
                elif s < n_samples:
                    row[: n_samples - s] += cols[lo + ch_off, s:]
        # Stage 2: shift each subband partial by the inter-subband delay at
        # the *exact* trial DM and sum.
        for d in members:
            row = out[d]
            for b, s in enumerate(s2[d]):
                if s == 0:
                    row += partial[b]
                elif s < n_samples:
                    row[: n_samples - s] += partial[b, s:]
    out *= out.dtype.type(1.0) / np.sqrt(out.dtype.type(n_chan))
    return out


# -- tree dedispersion -------------------------------------------------------

def _coarsen_ladder(sorted_dms: np.ndarray, ddm: float) -> tuple[np.ndarray, np.ndarray]:
    """Greedy-group an ascending DM ladder: (representatives, group index).

    The documented tie-break: a DM joins the open group while
    ``dm − rep ≤ ddm`` (strictly greater opens a new group) and the group's
    first member is its representative — identical to
    :func:`dedisperse_subband`'s grouping, so both approximate paths share
    one rule.
    """
    reps: list[float] = []
    group = np.empty(sorted_dms.size, dtype=np.int64)
    for i, dm in enumerate(sorted_dms.tolist()):
        if not reps or dm - reps[-1] > ddm:
            reps.append(float(dm))
        group[i] = len(reps) - 1
    return np.asarray(reps), group


def _tree_plan(
    freqs_mhz: np.ndarray,
    sample_time_s: float,
    sorted_dms: np.ndarray,
    n_subbands: int,
    tol_samples: float,
) -> tuple[list[list[tuple[int, int]]], dict, dict]:
    """Build the merge tree: node ranges per level, per-node DM ladders and
    parent→child ladder group maps.

    ``levels[0]`` is the leaf subbands, ``levels[-1]`` the single root whose
    ladder is the exact sorted trial-DM ladder.  Walking top-down, each
    node's ladder is its parent's ladder coarsened with the node's own
    ``ddm = tol·t_samp / (K_DM·span)`` — narrower nodes (less intra-node
    dispersion) tolerate coarser ladders, which is where the reuse comes
    from.  ``groups[(level, j)]`` maps a parent-ladder index to the node's
    ladder index.
    """
    n_chan = freqs_mhz.size
    levels = [_subband_edges(n_chan, n_subbands)]
    while len(levels[-1]) > 1:
        prev = levels[-1]
        merged = [
            (prev[i][0], prev[i + 1][1]) if i + 1 < len(prev) else prev[i]
            for i in range(0, len(prev), 2)
        ]
        levels.append(merged)
    top = len(levels) - 1
    ladders: dict[tuple[int, int], np.ndarray] = {(top, 0): sorted_dms}
    groups: dict[tuple[int, int], np.ndarray] = {}
    for level in range(top - 1, -1, -1):
        for j, (lo, hi) in enumerate(levels[level]):
            parent_ladder = ladders[(level + 1, j // 2)]
            span = float(freqs_mhz[lo] ** -2.0 - freqs_mhz[hi - 1] ** -2.0)
            ddm = (
                tol_samples * sample_time_s / (K_DM * span) if span > 0 else np.inf
            )
            reps, group = _coarsen_ladder(parent_ladder, ddm)
            ladders[(level, j)] = reps
            groups[(level, j)] = group
    return levels, ladders, groups


def _tree_cost(levels: list, ladders: dict) -> int:
    """Total slice-adds the tree plan would execute (leaf fills + merges)."""
    cost = sum(
        ladders[(0, j)].size * (hi - lo) for j, (lo, hi) in enumerate(levels[0])
    )
    for level in range(1, len(levels)):
        for j in range(len(levels[level])):
            fan_in = sum(1 for c in (2 * j, 2 * j + 1) if c < len(levels[level - 1]))
            cost += ladders[(level, j)].size * fan_in
    return cost


def tree_shift_bound(n_levels: int, tol_samples: float) -> float:
    """Worst-case |effective − exact| shift (samples) on the tree path.

    Each of the ``n_levels`` tree levels contributes at most ``tol_samples``
    of ladder-coarsening error plus one sample of re-rounding, and the final
    root→band-reference correction adds one more rounding; the hypothesis
    suite asserts this bound against :func:`_tree_effective_shifts`.
    """
    return (n_levels + 1) * (tol_samples + 1.0)


def dedisperse_tree(
    data: np.ndarray,
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    sample_time_s: float,
    trial_dms: np.ndarray,
    n_subbands: int | None = None,
    tol_samples: float = 1.0,
    out_dtype: np.dtype | type = np.float64,
    impl: str = "numpy",
) -> np.ndarray:
    """Tree dedispersion: a binary merge tree of subband partial sums.

    The subband trick applied recursively.  Leaf subbands are dedispersed
    once per entry of a *coarsened* DM ladder; each internal node merges its
    two children with a single shift-add per ladder entry, and ladders
    refine toward the root, which carries the exact trial DMs.  Cost is
    ``Σ_node |ladder(node)| × fan-in`` slice-adds instead of
    ``n_dms × n_chan`` — on fine ladders the leaf ladders are ~10× coarser
    than the trial grid, giving the O(N·log DM)-style reuse, and the whole
    evaluation keeps only one node buffer per live tree path (children are
    freed as soon as they merge).

    Accuracy follows the module-level tolerance law (see
    :func:`tree_shift_bound`); when the plan offers no saving — coarse
    ladders, few DMs — the exact :func:`dedisperse_batch` runs instead.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (channels × samples)")
    if tol_samples <= 0:
        raise ValueError("tol_samples must be positive")
    freqs_mhz = np.asarray(freqs_mhz, dtype=np.float64)
    trial_dms = np.atleast_1d(np.asarray(trial_dms, dtype=np.float64))
    n_chan, n_samples = data.shape
    if n_subbands is None:
        n_subbands = max(1, int(round(np.sqrt(n_chan))))
    n_subbands = min(n_subbands, n_chan)
    # The merge tree assumes ascending channel frequencies (each node's
    # reference is its top channel); fall back on anything else.
    ascending = n_chan > 1 and bool(np.all(np.diff(freqs_mhz) > 0))
    sorted_dms, inverse = np.unique(trial_dms, return_inverse=True)
    if not ascending or n_subbands < 2 or sorted_dms.size < 2:
        return dedisperse_batch(
            data, freqs_mhz, f_ref_mhz, sample_time_s, trial_dms, out_dtype,
            impl=impl,
        )

    levels, ladders, groups = _tree_plan(
        freqs_mhz, sample_time_s, sorted_dms, n_subbands, tol_samples
    )
    top = len(levels) - 1
    if _tree_cost(levels, ladders) >= sorted_dms.size * n_chan:
        # The ladders refused to coarsen: the tree would cost more than the
        # exact path, so run the exact path.
        return dedisperse_batch(
            data, freqs_mhz, f_ref_mhz, sample_time_s, trial_dms, out_dtype,
            impl=impl,
        )

    cols = np.ascontiguousarray(data, dtype=out_dtype)
    use_nb = impl == "numba" and HAS_NUMBA

    def shift_into(row: np.ndarray, src: np.ndarray, s: int, first: bool) -> None:
        # First contribution assigns (row starts uninitialized — half the
        # memory traffic of zero-then-add); later ones accumulate.
        if first:
            if s == 0:
                row[:] = src
            elif s < n_samples:
                row[: n_samples - s] = src[s:]
                row[n_samples - s :] = 0.0
            else:
                row[:] = 0.0
        elif s == 0:
            row += src
        elif s < n_samples:
            row[: n_samples - s] += src[s:]

    values: dict[tuple[int, int], np.ndarray] = {}
    for j, (lo, hi) in enumerate(levels[0]):
        reps = ladders[(0, j)]
        st = shift_table(freqs_mhz[lo:hi], float(freqs_mhz[hi - 1]), reps,
                         sample_time_s)
        if use_nb:
            buf = np.zeros((reps.size, n_samples), dtype=out_dtype)
            _nb.dedisperse_accumulate(buf, cols[lo:hi], st)
        else:
            buf = np.empty((reps.size, n_samples), dtype=out_dtype)
            for r, row_shifts in enumerate(st.tolist()):
                row = buf[r]
                for ch_off, s in enumerate(row_shifts):
                    shift_into(row, cols[lo + ch_off], s, first=ch_off == 0)
        values[(0, j)] = buf
    for level in range(1, top + 1):
        for j, (lo, hi) in enumerate(levels[level]):
            children = [c for c in (2 * j, 2 * j + 1) if c < len(levels[level - 1])]
            reps = ladders[(level, j)]
            if (
                len(children) == 1
                and levels[level - 1][children[0]] == (lo, hi)
                and reps.size == ladders[(level - 1, children[0])].size
            ):
                # Odd node carried up unchanged with an identical ladder:
                # pass the child buffer through without a copy.
                values[(level, j)] = values.pop((level - 1, children[0]))
                continue
            ref = float(freqs_mhz[hi - 1])
            if use_nb:
                buf = np.zeros((reps.size, n_samples), dtype=out_dtype)
            else:
                buf = np.empty((reps.size, n_samples), dtype=out_dtype)
            for ci, cj in enumerate(children):
                _clo, chi = levels[level - 1][cj]
                cref = float(freqs_mhz[chi - 1])
                cgroup = groups[(level - 1, cj)]
                stage = shift_table(np.array([cref]), ref, reps, sample_time_s)[:, 0]
                child = values.pop((level - 1, cj))
                if use_nb:
                    _nb.scatter_add_shifted(
                        buf, child, np.arange(reps.size, dtype=np.int64),
                        cgroup, stage,
                    )
                else:
                    for r, s in enumerate(stage.tolist()):
                        shift_into(buf[r], child[cgroup[r]], s, first=ci == 0)
            values[(level, j)] = buf

    # Final correction: the root is referenced to its own top channel; shift
    # to the caller's band reference at the *exact* trial DM, fanning unique
    # ladder rows back out to the (possibly duplicated, unsorted) trials.
    root = values.pop((top, 0))
    root_ref = float(freqs_mhz[-1])
    final = shift_table(np.array([root_ref]), f_ref_mhz, sorted_dms,
                        sample_time_s)[:, 0]
    if (
        not final.any()
        and trial_dms.size == sorted_dms.size
        and bool(np.all(inverse == np.arange(trial_dms.size)))
    ):
        out = root  # already referenced to f_ref, rows already in trial order
    else:
        out = np.empty((trial_dms.size, n_samples), dtype=out_dtype)
        for d, r in enumerate(inverse.tolist()):
            shift_into(out[d], root[r], int(final[r]), first=True)
    out *= out.dtype.type(1.0) / np.sqrt(out.dtype.type(n_chan))
    return out


def _tree_effective_shifts(
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    sample_time_s: float,
    trial_dms: np.ndarray,
    n_subbands: int | None = None,
    tol_samples: float = 1.0,
) -> np.ndarray:
    """(n_dms, n_chan) total shift each channel receives on the tree path.

    Test helper: composes leaf + stage + final shifts exactly as
    :func:`dedisperse_tree` applies them, so the suite can assert both the
    tolerance law (|effective − exact| ≤ :func:`tree_shift_bound`) and that
    the tree output equals a direct shift-add with these effective shifts.
    """
    freqs_mhz = np.asarray(freqs_mhz, dtype=np.float64)
    trial_dms = np.atleast_1d(np.asarray(trial_dms, dtype=np.float64))
    n_chan = freqs_mhz.size
    if n_subbands is None:
        n_subbands = max(1, int(round(np.sqrt(n_chan))))
    n_subbands = min(n_subbands, n_chan)
    ascending = n_chan > 1 and bool(np.all(np.diff(freqs_mhz) > 0))
    sorted_dms, inverse = np.unique(trial_dms, return_inverse=True)
    if not ascending or n_subbands < 2 or sorted_dms.size < 2:
        return shift_table(freqs_mhz, f_ref_mhz, trial_dms, sample_time_s)
    levels, ladders, groups = _tree_plan(
        freqs_mhz, sample_time_s, sorted_dms, n_subbands, tol_samples
    )
    if _tree_cost(levels, ladders) >= sorted_dms.size * n_chan:
        # Mirror dedisperse_tree's cost gate: on the exact fallback path the
        # effective shifts ARE the exact shifts.
        return shift_table(freqs_mhz, f_ref_mhz, trial_dms, sample_time_s)
    top = len(levels) - 1
    eff = np.zeros((sorted_dms.size, n_chan), dtype=np.int64)
    final = shift_table(np.array([float(freqs_mhz[-1])]), f_ref_mhz, sorted_dms,
                        sample_time_s)[:, 0]

    def descend(level: int, j: int, idx: int, acc: int, r: int) -> None:
        lo, hi = levels[level][j]
        reps = ladders[(level, j)]
        if level == 0:
            st = shift_table(freqs_mhz[lo:hi], float(freqs_mhz[hi - 1]),
                             reps[idx : idx + 1], sample_time_s)[0]
            eff[r, lo:hi] = acc + st
            return
        ref = float(freqs_mhz[hi - 1])
        for cj in (2 * j, 2 * j + 1):
            if cj >= len(levels[level - 1]):
                continue
            _clo, chi = levels[level - 1][cj]
            cref = float(freqs_mhz[chi - 1])
            stage = int(
                shift_table(np.array([cref]), ref, reps[idx : idx + 1],
                            sample_time_s)[0, 0]
            )
            descend(level - 1, cj, int(groups[(level - 1, cj)][idx]), acc + stage, r)

    for r in range(sorted_dms.size):
        descend(top, 0, r, int(final[r]), r)
    return eff[inverse]


def dedisperse_grid(
    data: np.ndarray,
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    sample_time_s: float,
    trial_dms: np.ndarray,
    kernel=None,
    out_dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Dedisperse the whole trial grid via the configured kernel.

    The single dispatch point for :class:`repro.execution.KernelConfig`:
    resolves unset method/impl fields (env, then defaults) and routes to
    :func:`dedisperse_batch` / :func:`dedisperse_subband` /
    :func:`dedisperse_tree`.
    """
    from repro.execution import KernelConfig

    k = (kernel or KernelConfig()).resolved()
    impl = resolve_impl(k.impl)
    if k.method == "subband":
        return dedisperse_subband(
            data, freqs_mhz, f_ref_mhz, sample_time_s, trial_dms,
            n_subbands=k.n_subbands, tol_samples=k.tol_samples,
            out_dtype=out_dtype, impl=impl,
        )
    if k.method == "tree":
        return dedisperse_tree(
            data, freqs_mhz, f_ref_mhz, sample_time_s, trial_dms,
            n_subbands=k.n_subbands, tol_samples=k.tol_samples,
            out_dtype=out_dtype, impl=impl,
        )
    return dedisperse_batch(
        data, freqs_mhz, f_ref_mhz, sample_time_s, trial_dms, out_dtype,
        impl=impl,
    )


# -- O(n) boxcar matched filtering -------------------------------------------

def _median_inplace(a: np.ndarray) -> float:
    """``np.median`` semantics without its NaN-check overhead; ~8× faster.

    Partitions ``a`` in place (callers pass scratch buffers).
    """
    m = a.size
    h = m // 2
    a.partition(h)
    if m % 2:
        return a[h]
    # Even length: the (h-1)-th order statistic is the max of the left
    # partition half.  A tuple kth costs ~10× a single kth + max pass.
    return (a[:h].max() + a[h]) * a.dtype.type(0.5)


def _noise_stats(series: np.ndarray, scratch: np.ndarray) -> tuple[float, float]:
    """(median, robust sigma) of one dedispersed series, estimated once.

    sigma = 1.4826 × MAD, floored at 1e-9 (the seed's convention).
    """
    scratch[:] = series
    med = _median_inplace(scratch)
    np.subtract(series, med, out=scratch)
    np.abs(scratch, out=scratch)
    mad = _median_inplace(scratch)
    sigma = mad * series.dtype.type(1.4826)
    return float(med), max(float(sigma), 1e-9)


def _best_z(
    series: np.ndarray,
    widths: tuple[int, ...],
    med: float,
    csum: np.ndarray,
    buf: np.ndarray,
    best: np.ndarray,
) -> None:
    """Fill ``best`` with max-over-widths of the normalized window statistic.

    For a left-aligned width-``w`` window starting at ``i``,
    ``z_w[i] = (Σ series[i:i+w]) / √w − √w · med``; dividing by sigma gives
    the SNR.  Because sigma is shared across widths, the max over widths can
    be taken on ``z`` directly — one ``np.maximum`` per width instead of two
    fancy-index writes.
    """
    n = series.size
    csum[0] = 0.0
    np.cumsum(series, out=csum[1:])
    best[:] = -np.inf
    for w in widths:
        if w > n:
            break
        m = n - w + 1
        zw = np.subtract(csum[w:], csum[: m], out=buf[:m])
        zw *= 1.0 / np.sqrt(w)
        zw -= np.sqrt(w) * med
        np.maximum(best[:m], zw, out=best[:m])


def _widths_at(
    samples: np.ndarray,
    best: np.ndarray,
    widths: tuple[int, ...],
    med: float,
    csum: np.ndarray,
    n: int,
) -> np.ndarray:
    """Recover the winning boxcar width at the given samples only.

    Recomputes ``z_w`` with the exact same expressions as :func:`_best_z`
    (bitwise-identical floats), then takes the first width attaining the
    tracked maximum — matching the seed's first-width-wins tie-breaking.
    """
    k = samples.size
    applicable = [w for w in widths if w <= n]
    out = np.ones(k, dtype=np.int64)  # the seed's default width
    if not applicable:
        return out
    z = np.full((len(applicable), k), -np.inf)
    for row, w in enumerate(applicable):
        ok = samples <= n - w
        s_ok = samples[ok]
        zw = csum[s_ok + w] - csum[s_ok]
        zw *= 1.0 / np.sqrt(w)
        zw -= np.sqrt(w) * med
        z[row, ok] = zw
    # -inf best (no width fits at this sample) must keep the default width,
    # not "match" the -inf placeholder rows.
    hit = (z == best[samples][None, :]) & np.isfinite(best[samples])[None, :]
    any_hit = hit.any(axis=0)
    first = np.argmax(hit, axis=0)
    out[any_hit] = np.asarray(applicable, dtype=np.int64)[first[any_hit]]
    return out


def _pow2_window_sums(series: np.ndarray, max_w: int) -> dict[int, np.ndarray]:
    """Sliding window sums for power-of-two widths, each built from the last.

    ``sums[w][i] = Σ series[i:i+w]`` (valid for ``i ≤ n−w``);
    ``sums[2w] = sums[w][i] + sums[w][i+w]`` — one vector add per doubling,
    the boxcar-decomposition reuse (Adámek & Armour).  ``sums[1]`` aliases
    ``series`` (read-only by every consumer).
    """
    n = series.size
    sums: dict[int, np.ndarray] = {1: series}
    w = 1
    while 2 * w <= max_w and 2 * w <= n:
        prev = sums[w]
        cur = np.empty(n, dtype=series.dtype)
        m = n - 2 * w + 1
        np.add(prev[:m], prev[w : w + m], out=cur[:m])
        sums[2 * w] = cur
        w *= 2
    return sums


def _window_sum_decomposed(
    w: int, sums: dict[int, np.ndarray], n: int, out: np.ndarray
) -> int:
    """``out[:m]`` = width-``w`` window sums assembled from power-of-two parts.

    Parts are added **largest-first** at increasing offsets (w = 8+4+1 →
    S₈[i] + S₄[i+8] + S₁[i+12]); the order is part of the documented law so
    :func:`_widths_at_decomposed` can reproduce the floats bitwise.
    """
    m = n - w + 1
    off = 0
    first = True
    for p in sorted((p for p in sums if w & p), reverse=True):
        src = sums[p]
        if first:
            out[:m] = src[off : off + m]
            first = False
        else:
            out[:m] += src[off : off + m]
        off += p
    return m


def _best_z_decomposed(
    series: np.ndarray,
    widths: tuple[int, ...],
    med: float,
    buf: np.ndarray,
    best: np.ndarray,
) -> dict[int, np.ndarray]:
    """:func:`_best_z` via decomposed window sums; returns them for reuse.

    Same ``z_w`` normalization expressions as the cumsum path; values differ
    only by float summation order (pairwise part-sums vs running cumsum),
    which is the tolerance the equivalence tests assert.
    """
    n = series.size
    best[:] = -np.inf
    applicable = [w for w in widths if w <= n]
    if not applicable:
        return {}
    sums = _pow2_window_sums(series, max(applicable))
    for w in applicable:
        m = _window_sum_decomposed(w, sums, n, buf)
        zw = buf[:m]
        zw *= 1.0 / np.sqrt(w)
        zw -= np.sqrt(w) * med
        np.maximum(best[:m], zw, out=best[:m])
    return sums


def _widths_at_decomposed(
    samples: np.ndarray,
    best: np.ndarray,
    widths: tuple[int, ...],
    med: float,
    sums: dict[int, np.ndarray],
    n: int,
) -> np.ndarray:
    """:func:`_widths_at` for the decomposed mode: recompute ``z_w`` at the
    peaks from the same part sums in the same largest-first order (bitwise
    identical), then first-width-wins."""
    k = samples.size
    applicable = [w for w in widths if w <= n]
    out = np.ones(k, dtype=np.int64)
    if not applicable:
        return out
    z = np.full((len(applicable), k), -np.inf)
    for row, w in enumerate(applicable):
        ok = samples <= n - w
        s_ok = samples[ok]
        zw = None
        off = 0
        for p in sorted((p for p in sums if w & p), reverse=True):
            part = sums[p][s_ok + off]
            zw = part.copy() if zw is None else zw + part
            off += p
        zw *= 1.0 / np.sqrt(w)
        zw -= np.sqrt(w) * med
        z[row, ok] = zw
    hit = (z == best[samples][None, :]) & np.isfinite(best[samples])[None, :]
    any_hit = hit.any(axis=0)
    first = np.argmax(hit, axis=0)
    out[any_hit] = np.asarray(applicable, dtype=np.int64)[first[any_hit]]
    return out


def boxcar_snr(
    series: np.ndarray,
    widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    mode: str = "cumsum",
) -> tuple[np.ndarray, np.ndarray]:
    """Best boxcar SNR and width per sample for one dedispersed series.

    Returns ``(snr, best_width)``; ``snr[i]`` is the SNR of the best
    left-aligned window starting at ``i`` (−inf where no configured width
    fits), against median/MAD noise estimated once from the raw series.
    ``mode="cumsum"`` is O(n) per width via cumulative sums (bit-stable
    reference); ``mode="decomposed"`` builds each width from power-of-two
    window sums, reusing shorter widths for longer ones.
    """
    if mode not in ("cumsum", "decomposed"):
        raise ValueError(f"mode must be 'cumsum' or 'decomposed', got {mode!r}")
    series = np.ascontiguousarray(series)
    n = series.size
    if n == 0:
        return np.empty(0, dtype=series.dtype), np.empty(0, dtype=np.int64)
    scratch = np.empty_like(series)
    med, sigma = _noise_stats(series, scratch)
    best = np.empty(n, dtype=series.dtype)
    all_samples = np.arange(n)
    if mode == "decomposed":
        sums = _best_z_decomposed(series, widths, med, scratch, best)
        best_width = _widths_at_decomposed(all_samples, best, widths, med, sums, n)
    else:
        csum = np.empty(n + 1, dtype=series.dtype)
        _best_z(series, widths, med, csum, scratch, best)
        best_width = _widths_at(all_samples, best, widths, med, csum, n)
    snr = best / series.dtype.type(sigma)
    return snr, best_width


def find_peaks(snr: np.ndarray, threshold: float) -> np.ndarray:
    """Indices of above-threshold local maxima (vectorized).

    A peak satisfies ``snr[i] >= threshold``, ``snr[i] >= snr[i-1]`` and
    ``snr[i] > snr[i+1]`` (boundary neighbours count as −inf) — the seed's
    exact plateau convention.
    """
    n = snr.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    idx = np.nonzero(snr >= threshold)[0]
    if idx.size == 0:
        return idx
    left = snr[np.maximum(idx - 1, 0)].copy()
    left[idx == 0] = -np.inf
    right = snr[np.minimum(idx + 1, n - 1)].copy()
    right[idx == n - 1] = -np.inf
    at = snr[idx]
    return idx[(at >= left) & (at > right)]


def single_pulse_block_search(
    block: np.ndarray,
    threshold: float,
    widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    boxcar: str = "cumsum",
    impl: str = "numpy",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Boxcar-search every row of a dedispersed block.

    Returns ``(row_idx, sample, snr, width)`` arrays ordered by
    (row, sample).  This is the fused cache-friendly path: each row's
    cumsum/window/noise passes run while the row is L2-resident, and the
    winning width is recomputed only at detected peaks.  ``boxcar`` selects
    the window-sum strategy (see :func:`boxcar_snr`); ``impl="numba"`` JITs
    the cumsum inner loop when numba is available (bit-identical floats).
    """
    if boxcar not in ("cumsum", "decomposed"):
        raise ValueError(f"boxcar must be 'cumsum' or 'decomposed', got {boxcar!r}")
    block = np.asarray(block)
    if block.ndim != 2:
        raise ValueError("block must be 2-D (trial DMs × samples)")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    n_rows, n = block.shape
    csum = np.empty(n + 1, dtype=block.dtype)
    buf = np.empty(n, dtype=block.dtype)
    best = np.empty(n, dtype=block.dtype)
    snr = np.empty(n, dtype=block.dtype)
    scratch = np.empty(n, dtype=block.dtype)
    use_nb = boxcar == "cumsum" and impl == "numba" and HAS_NUMBA
    widths_arr = np.asarray(widths, dtype=np.int64)
    out_rows: list[np.ndarray] = []
    out_samples: list[np.ndarray] = []
    out_snrs: list[np.ndarray] = []
    out_widths: list[np.ndarray] = []
    for d in range(n_rows):
        series = block[d]
        med, sigma = _noise_stats(series, scratch)
        sums: dict[int, np.ndarray] = {}
        if boxcar == "decomposed":
            sums = _best_z_decomposed(series, widths, med, buf, best)
        elif use_nb:
            _nb.best_z_cumsum(series, widths_arr, med, csum, best)
        else:
            _best_z(series, widths, med, csum, buf, best)
        np.divide(best, block.dtype.type(sigma), out=snr)
        peaks = find_peaks(snr, threshold)
        if peaks.size == 0:
            continue
        out_rows.append(np.full(peaks.size, d, dtype=np.int64))
        out_samples.append(peaks)
        out_snrs.append(snr[peaks].copy())
        if boxcar == "decomposed":
            out_widths.append(
                _widths_at_decomposed(peaks, best, widths, med, sums, n)
            )
        else:
            out_widths.append(_widths_at(peaks, best, widths, med, csum, n))
    if not out_rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=block.dtype), empty
    return (
        np.concatenate(out_rows),
        np.concatenate(out_samples),
        np.concatenate(out_snrs),
        np.concatenate(out_widths),
    )


# -- retained naive references (seed implementations) ------------------------

def _reference_dedisperse(
    data: np.ndarray,
    freqs_mhz: np.ndarray,
    f_ref_mhz: float,
    sample_time_s: float,
    dm: float,
) -> np.ndarray:
    """The seed's per-channel shift-and-sum loop, one trial DM at a time."""
    if dm < 0:
        raise ValueError("DM must be non-negative")
    n_chan, n_samples = data.shape
    out = np.zeros(n_samples, dtype=np.float64)
    for ch, f in enumerate(np.asarray(freqs_mhz, dtype=np.float64)):
        delay = K_DM * dm * (f**-2 - f_ref_mhz**-2)
        shift = int(round(delay / sample_time_s))
        if shift == 0:
            out += data[ch]
        elif shift < n_samples:
            out[: n_samples - shift] += data[ch, shift:]
    return out / np.sqrt(n_chan)


def _reference_boxcar_snr(
    series: np.ndarray, widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
) -> tuple[np.ndarray, np.ndarray]:
    """Naive O(n·w) boxcar SNR: ``np.convolve`` per width, left-aligned.

    Same math as :func:`boxcar_snr` (noise once per series, identical
    normalization expressions) so equivalence is tolerance-bounded only by
    the convolve-vs-cumsum summation order.
    """
    series = np.asarray(series)
    n = series.size
    if n == 0:
        return np.empty(0, dtype=series.dtype), np.empty(0, dtype=np.int64)
    med = float(np.median(series))
    mad = float(np.median(np.abs(series - med))) * 1.4826
    sigma = max(mad, 1e-9)
    best_z = np.full(n, -np.inf, dtype=series.dtype)
    best_width = np.ones(n, dtype=np.int64)
    for w in widths:
        if w > n:
            break
        m = n - w + 1
        win = np.convolve(series, np.ones(w, dtype=series.dtype), mode="full")[
            w - 1 : n
        ]
        zw = win * (1.0 / np.sqrt(w))
        zw -= np.sqrt(w) * med
        better = zw > best_z[:m]
        best_z[:m][better] = zw[better]
        best_width[:m][better] = w
    return best_z / series.dtype.type(sigma), best_width


def _reference_find_peaks(snr: np.ndarray, threshold: float) -> np.ndarray:
    """The seed's Python local-maxima scan over above-threshold samples."""
    out = []
    n = snr.size
    for i in np.nonzero(snr >= threshold)[0]:
        left = snr[i - 1] if i > 0 else -np.inf
        right = snr[i + 1] if i + 1 < n else -np.inf
        if snr[i] >= left and snr[i] > right:
            out.append(i)
    return np.asarray(out, dtype=np.int64)
